"""Setuptools entry point.

The execution environment ships setuptools 65 without the ``wheel``
package, so PEP 517 editable installs (which must build a wheel) fail.
Keeping the metadata here lets ``pip install -e .`` use the classic
``setup.py develop`` path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "RAPIDS reproduction: fast post-placement rewiring using easily "
        "detectable functional symmetries (DAC 2000)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "networkx"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis", "scipy"],
    },
    entry_points={"console_scripts": ["rapids=repro.cli:main"]},
)
