#!/usr/bin/env python3
"""Markdown link checker for the repository docs (CI: docs-check).

Walks the given markdown files (default: README.md, docs/, ROADMAP.md,
CHANGES.md, PAPER.md, PAPERS.md, SNIPPETS.md, ISSUE.md), extracts
every inline link and verifies:

* relative file links resolve to an existing file or directory
  (relative to the linking file);
* fragment links (``path#anchor`` or ``#anchor``) point at a heading
  that exists in the target file, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to dashes);
* ``http(s)``/``mailto`` links are accepted without network access
  (CI must stay hermetic).

It also verifies the generated event tables in
``docs/architecture.md`` are byte-identical to what
``python -m tools.lint --fix-docs`` would regenerate from
``repro/network/events.py`` — drift fails the docs-check CI job.

Exit status is the number of broken links (plus drift findings), so
the CI job fails loudly and lists every offender.  No third-party
dependencies.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DEFAULT_TARGETS = [
    "README.md",
    "docs",
    "ROADMAP.md",
    "CHANGES.md",
    "PAPER.md",
    "PAPERS.md",
    "SNIPPETS.md",
    "ISSUE.md",
]

#: Inline markdown links: [text](target) — images share the syntax.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Fenced code blocks are stripped before link extraction.
FENCE_RE = re.compile(r"^(```|~~~)", re.MULTILINE)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading."""
    text = re.sub(r"[`*_~]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_fences(text: str) -> str:
    """Remove fenced code blocks (links inside them are examples)."""
    out: list[str] = []
    fenced = False
    for line in text.splitlines():
        if FENCE_RE.match(line):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def anchors_of(path: Path) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in HEADING_RE.finditer(strip_fences(path.read_text())):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def collect_files(targets: list[str]) -> list[Path]:
    files: list[Path] = []
    for target in targets:
        path = REPO / target
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    text = strip_fences(path.read_text())
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO)}: broken link "
                              f"-> {target} (no such file)")
                continue
        else:
            resolved = path
        if fragment:
            if resolved.suffix != ".md" or not resolved.is_file():
                continue  # anchors into non-markdown: nothing to check
            if fragment not in anchors_of(resolved):
                errors.append(f"{path.relative_to(REPO)}: broken anchor "
                              f"-> {target} (no heading "
                              f"'#{fragment}' in "
                              f"{resolved.relative_to(REPO)})")
    return errors


def check_generated_blocks() -> list[str]:
    """Drift between docs/architecture.md and the events registry."""
    sys.path.insert(0, str(REPO))
    try:
        from tools.lint import docs_sync
        from tools.lint.core import ensure_src_on_path

        ensure_src_on_path()
        return [finding.render() for finding in docs_sync.check()]
    finally:
        sys.path.remove(str(REPO))


def main(argv: list[str]) -> int:
    files = collect_files(argv[1:] or DEFAULT_TARGETS)
    if not files:
        print("check_docs: no markdown files found", file=sys.stderr)
        return 1
    errors: list[str] = []
    links = 0
    for path in files:
        links += len(LINK_RE.findall(strip_fences(path.read_text())))
        errors.extend(check_file(path))
    errors.extend(check_generated_blocks())
    for error in errors:
        print(error, file=sys.stderr)
    print(f"check_docs: {len(files)} files, {links} links, "
          f"{len(errors)} broken")
    return len(errors)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
