"""Rule family D — hash-seed determinism in marked modules.

Modules that declare ``__deterministic__ = True`` promise that their
float accumulations, selections, and tie-breaks never follow
set-iteration order (which is ``PYTHONHASHSEED``-dependent).  This is
exactly the PR-2 bug class: ``placer._anneal`` summed HPWL deltas in
set order, ``TimingEngine.resize_gain`` folded fanin caps in set
order, and ``rapids.moves._bounded_swaps`` truncated a sorted-by-
float-key list whose ties fell back to set order.

What counts as **unordered** (tracked per function, syntactically):

* set literals, set comprehensions, ``set(...)``/``frozenset(...)``;
* set-algebra results (``|``, ``&``, ``-``, ``^``, ``.union()``, ...)
  of anything unordered;
* names assigned from the above inside the same function;
* names/attributes *annotated* ``set[...]`` / ``frozenset[...]`` —
  including ``self.attr`` annotations collected from the enclosing
  class (so long-lived dirty-sets are covered).

``sorted(...)`` / ``list(...)`` / ``tuple(...)`` launder an unordered
value into a deterministic one (dict iteration is insertion-ordered in
modern Python and is *not* flagged).

The flagged sinks:

* **D1**: ``sum(U)`` / ``sum(... for x in U)`` — float accumulation
  in set order;
* **D2**: ``for x in U:`` whose body accumulates (``+=`` / ``-=``) —
  same hazard, spelled as a loop;
* **D3**: ``for x in U:`` whose body updates state under an ordering
  comparison (``if score > best: best = ...``) — first-wins selection
  depends on iteration order;
* **D4**: ``min``/``max``/``sorted`` over ``U`` with a ``key=`` whose
  lambda does not fold the element itself into a tie-breaking tuple —
  equal keys fall back to set order (the ``_bounded_swaps`` bug; the
  fix is ``key=lambda p: (score(p), p)``).

Suppression pragma: ``# lint: allow(determinism)``.
"""

from __future__ import annotations

import ast

from .core import Finding, Module, Project

RULE = "determinism"

_SET_METHODS = frozenset({
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
})
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_LAUNDERING = frozenset({"sorted", "list", "tuple", "len", "bool", "any", "all"})


def is_marked(module: Module) -> bool:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__deterministic__"
                for t in node.targets
            ):
                return bool(
                    isinstance(node.value, ast.Constant) and node.value.value
                )
    return False


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation)
    head = text.split("[", 1)[0].strip()
    return head in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")


def _class_set_attrs(classdef: ast.ClassDef) -> set[str]:
    """Attribute names annotated as sets anywhere in the class body."""
    attrs: set[str] = set()
    for node in ast.walk(classdef):
        if isinstance(node, ast.AnnAssign) and _annotation_is_set(
            node.annotation
        ):
            target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return attrs


class _FunctionChecker:
    def __init__(
        self,
        module: Module,
        func: ast.FunctionDef,
        set_attrs: set[str],
    ) -> None:
        self.module = module
        self.func = func
        self.set_attrs = set_attrs
        self.unordered_names: set[str] = set()
        self.findings: list[Finding] = []
        for arg, annotation in self._annotated_args():
            if _annotation_is_set(annotation):
                self.unordered_names.add(arg)

    def _annotated_args(self):
        args = self.func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            yield arg.arg, arg.annotation

    # ------------------------------------------------------------------
    # unordered-ness
    # ------------------------------------------------------------------
    def is_unordered(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.unordered_names
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.set_attrs
            )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return True
                if func.id in _LAUNDERING:
                    return False
                return False
            if isinstance(func, ast.Attribute):
                if func.attr in _SET_METHODS:
                    return self.is_unordered(func.value) or any(
                        self.is_unordered(arg) for arg in node.args
                    )
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, _SET_BINOPS
        ):
            return self.is_unordered(node.left) or self.is_unordered(
                node.right
            )
        if isinstance(node, ast.IfExp):
            return self.is_unordered(node.body) or self.is_unordered(
                node.orelse
            )
        return False

    def _note_assignments(self) -> None:
        """One forward pass binding names assigned from unordered exprs."""
        for node in ast.walk(self.func):
            if isinstance(node, ast.Assign) and node.value is not None:
                if self.is_unordered(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.unordered_names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if _annotation_is_set(node.annotation) or (
                    node.value is not None and self.is_unordered(node.value)
                ):
                    if isinstance(node.target, ast.Name):
                        self.unordered_names.add(node.target.id)

    # ------------------------------------------------------------------
    # sinks
    # ------------------------------------------------------------------
    def _iterates_unordered(self, iter_expr: ast.expr) -> bool:
        if self.is_unordered(iter_expr):
            return True
        if isinstance(iter_expr, ast.Call) and isinstance(
            iter_expr.func, ast.Name
        ):
            # enumerate(U) / iter(U) / reversed(U) keep the hazard
            if iter_expr.func.id in ("enumerate", "iter", "reversed"):
                return any(self.is_unordered(a) for a in iter_expr.args)
        return False

    def _arg_is_unordered_iteration(self, node: ast.Call) -> bool:
        if not node.args:
            return False
        first = node.args[0]
        if self.is_unordered(first):
            return True
        if isinstance(first, (ast.GeneratorExp, ast.ListComp)):
            return any(
                self.is_unordered(comp.iter) for comp in first.generators
            )
        return False

    def _flag(self, lineno: int, message: str) -> None:
        if not self.module.allows(RULE, lineno):
            self.findings.append(
                Finding(RULE, self.module.path, lineno, message)
            )

    def _key_has_tiebreak(self, node: ast.Call) -> bool:
        """True when a key= lambda folds the element into the key."""
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            key = keyword.value
            if not isinstance(key, ast.Lambda):
                return False  # named key function: cannot verify -> flag
            if not key.args.args:
                return False
            param = key.args.args[0].arg
            body = key.body
            if isinstance(body, ast.Name) and body.id == param:
                return True  # identity key: total order on elements
            if isinstance(body, ast.Tuple):
                return any(
                    isinstance(elt, ast.Name) and elt.id == param
                    for elt in body.elts
                )
            return False
        return True  # no key: plain value ordering, element-total
    # ------------------------------------------------------------------
    def run(self) -> list[Finding]:
        self._note_assignments()
        for node in ast.walk(self.func):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                name = node.func.id
                if name == "sum" and self._arg_is_unordered_iteration(node):
                    self._flag(
                        node.lineno,
                        "sum() over set iteration: float accumulation "
                        "order depends on PYTHONHASHSEED — sort first",
                    )
                elif name in ("min", "max", "sorted"):
                    if self._arg_is_unordered_iteration(
                        node
                    ) and not self._key_has_tiebreak(node):
                        self._flag(
                            node.lineno,
                            f"{name}() over a set with a key that cannot "
                            "break ties: equal keys fall back to set "
                            "order — add the element itself to the key "
                            "tuple (key=lambda x: (score(x), x))",
                        )
            elif isinstance(node, ast.For):
                if not self._iterates_unordered(node.iter):
                    continue
                self._check_loop_body(node)
        return self.findings

    def _check_loop_body(self, loop: ast.For) -> None:
        for node in ast.walk(loop):
            if node is loop:
                continue
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                self._flag(
                    node.lineno,
                    "accumulation inside iteration over a set: the "
                    "running value depends on PYTHONHASHSEED — iterate "
                    "sorted(...) instead",
                )
            elif isinstance(node, ast.If) and isinstance(
                node.test, ast.Compare
            ):
                if any(
                    isinstance(op, (ast.Lt, ast.Gt, ast.LtE, ast.GtE))
                    for op in node.test.ops
                ) and any(
                    isinstance(inner, (ast.Assign, ast.AugAssign))
                    for stmt in node.body
                    for inner in ast.walk(stmt)
                ):
                    self._flag(
                        node.lineno,
                        "first-wins selection inside iteration over a "
                        "set: ties resolve in PYTHONHASHSEED order — "
                        "iterate sorted(...) or make the comparison a "
                        "total order",
                    )


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        if not is_marked(module):
            continue
        # map each function to the set-annotated attrs of its class
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef):
                findings.extend(
                    _FunctionChecker(module, node, set()).run()
                )
            elif isinstance(node, ast.ClassDef):
                set_attrs = _class_set_attrs(node)
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        findings.extend(
                            _FunctionChecker(module, item, set_attrs).run()
                        )
    return findings
