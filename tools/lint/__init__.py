"""AST-enforced contract linter for the repro codebase.

Four rule families (run as ``python -m tools.lint``; see
``docs/architecture.md`` § "Enforced contracts" for how to annotate
new code):

* **events** — every emitted mutation-event kind is registered in
  :mod:`repro.network.events` with a schema-matching payload, and
  every listener handles or explicitly ignores every registered kind;
* **purity** — ``@projection_only`` code never reaches a mutating
  ``Network`` call or event emission;
* **determinism** — modules marked ``__deterministic__ = True`` never
  feed set-iteration order into float sums, selections, or
  tie-breaks (the PR-2 ``PYTHONHASHSEED`` bug class);
* **worker-global** — code reachable from ``@worker_entry`` functions
  never writes module-level mutable globals without an explicit
  ``# lint: allow(worker-global)`` waiver.

Plus the generated-docs drift check / ``--fix-docs`` regenerator for
the event tables in ``docs/architecture.md``.
"""

from .cli import main, run_lint
from .core import Finding

__all__ = ["Finding", "main", "run_lint"]
