"""Rule family W — worker-side module-global safety.

:class:`~repro.parallel.pool.EvalPool` worker processes are shared
across batches — and, once rewiring-as-a-service lands (ROADMAP item
3), across *sessions*.  Any module-level mutable state written by
worker-side code is therefore either a correctness hazard or a
session-scoping obstacle (``rapids.engine.SUPERGATE_STORE`` is the
canonical parent-side example of the pattern this rule fences off).

The rule walks a cross-module call graph from every function marked
``@worker_entry`` (see :mod:`repro.contracts`), resolving:

* plain calls to same-module functions;
* ``self.``/``cls.`` calls to same-class methods;
* imported names (``from ..x import f``; ``f()``), including imports
  inside function bodies;
* ``Class.method(...)`` / ``module.function(...)`` attribute calls
  whose head resolves through the import map.

Within every reachable function, a write to a module-level name of
*that function's own module* is flagged: ``global`` rebinding,
subscript stores (``CACHE[k] = v``), attribute stores, deletes, and
mutating method calls (``.update``, ``.append``, ``.clear``, ...).

Intentional worker-side caches carry ``# lint: allow(worker-global)``
at the write site — the waiver inventory *is* the work list for the
session-scoping refactor.
"""

from __future__ import annotations

import ast

from .core import (
    Finding,
    FunctionInfo,
    Project,
    decorator_names,
    local_names,
    module_level_names,
)

RULE = "worker-global"

MARKER = "worker_entry"

#: Functions marked ``@fault_hook`` (repro.parallel.faults) are exempt
#: from the write checks: they are deterministic env-gated shims whose
#: only module state is a parsed-plan cache keyed by the immutable env
#: payload.  Their *callees* are still walked — the exemption covers
#: the hook body, not everything behind it.
EXEMPT_MARKER = "fault_hook"

_MUTATING_METHODS = frozenset({
    "add",
    "append",
    "extend",
    "insert",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "move_to_end",
    "sort",
    "reverse",
})


def _entry_points(project: Project) -> list[FunctionInfo]:
    return [
        info
        for info in project.functions.values()
        if MARKER in decorator_names(info.node)
    ]


def _resolve_call(
    project: Project, info: FunctionInfo, call: ast.Call
) -> FunctionInfo | None:
    """Best-effort static resolution of a call site to a FunctionInfo."""
    target = call.func
    module = info.module
    if isinstance(target, ast.Name):
        # same-module function first, then imported names
        qualname = f"{module.modname}.{target.id}"
        if qualname in project.functions:
            return project.functions[qualname]
        imported = module.import_map.get(target.id)
        if imported:
            if imported in project.functions:
                return project.functions[imported]
            # a class: treat a call as its constructor
            init = project.classes.get(imported, {}).get("__init__")
            if init is not None:
                return init
    elif isinstance(target, ast.Attribute):
        if (
            isinstance(target.value, ast.Name)
            and target.value.id in ("self", "cls")
            and info.classname is not None
        ):
            class_qual = f"{module.modname}.{info.classname}"
            return project.classes.get(class_qual, {}).get(target.attr)
        qualified = module.qualified(target)
        if qualified:
            if qualified in project.functions:
                return project.functions[qualified]
            init = project.classes.get(qualified, {}).get("__init__")
            if init is not None:
                return init
    return None


def _check_function(info: FunctionInfo, findings: list[Finding]) -> None:
    if EXEMPT_MARKER in decorator_names(info.node):
        return
    module = info.module
    func = info.node
    globals_of_module = module_level_names(module)
    locals_of_func = local_names(func)

    def is_module_global(name: str) -> bool:
        return name in globals_of_module and name not in locals_of_func

    def flag(lineno: int, message: str) -> None:
        if not module.allows(RULE, lineno):
            findings.append(Finding(RULE, module.path, lineno, message))

    declared_global: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in declared_global
                ):
                    flag(
                        node.lineno,
                        f"worker-reachable {func.name!r} rebinds module "
                        f"global {target.id!r}",
                    )
                elif isinstance(
                    target, (ast.Subscript, ast.Attribute)
                ) and isinstance(target.value, ast.Name):
                    name = target.value.id
                    if is_module_global(name):
                        flag(
                            node.lineno,
                            f"worker-reachable {func.name!r} writes into "
                            f"module global {name!r}",
                        )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                inner = target
                if isinstance(inner, (ast.Subscript, ast.Attribute)):
                    inner = inner.value
                if isinstance(inner, ast.Name) and is_module_global(
                    inner.id
                ):
                    flag(
                        node.lineno,
                        f"worker-reachable {func.name!r} deletes from "
                        f"module global {inner.id!r}",
                    )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            attr = node.func
            if attr.attr in _MUTATING_METHODS and isinstance(
                attr.value, ast.Name
            ):
                name = attr.value.id
                if is_module_global(name):
                    flag(
                        node.lineno,
                        f"worker-reachable {func.name!r} mutates module "
                        f"global {name!r} via .{attr.attr}()",
                    )


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for entry in _entry_points(project):
        visited: set[str] = set()
        stack = [entry]
        while stack:
            info = stack.pop()
            if info.qualname in visited:
                continue
            visited.add(info.qualname)
            _check_function(info, findings)
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    callee = _resolve_call(project, info, node)
                    if callee is not None and callee.qualname not in visited:
                        stack.append(callee)
    # two entry points reaching the same bad write would double-report
    unique: dict[tuple, Finding] = {}
    for finding in findings:
        unique[(finding.path, finding.line, finding.message)] = finding
    return sorted(
        unique.values(), key=lambda f: (str(f.path), f.line, f.message)
    )
