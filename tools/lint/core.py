"""Shared infrastructure for the contract linter.

The linter is purely static: target modules are parsed with
:mod:`ast`, never imported (the single exception is the event registry
:mod:`repro.network.events`, which rule implementations import to get
the authoritative kind table — it has no third-party dependencies).

This module provides:

* :class:`Finding` — one reported violation;
* :class:`Module` — a parsed source file with its dotted module name,
  suppression pragmas, and per-module import map;
* :class:`Project` — the set of modules under analysis plus the
  cross-module symbol index used for call-graph walks;
* pragma handling: a line (or the line above it) carrying
  ``# lint: allow(<rule>)`` suppresses findings of that rule at that
  line.  Waivers are deliberate documentation — every one marks a
  known contract exception.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def ensure_src_on_path() -> None:
    """Make ``import repro.network.events`` work from a repo checkout."""
    src = str(SRC)
    if src not in sys.path:
        sys.path.insert(0, src)


def load_events_registry():
    """The :mod:`repro.network.events` module, loaded standalone.

    Executed directly from its file path so importing the registry
    does not trigger ``repro/__init__`` (which pulls in the full
    package, numpy included) — the linter must run on a bare Python
    install.  The registry itself only needs :mod:`dataclasses`.
    """
    import importlib.util

    name = "_tools_lint_events_registry"
    cached = sys.modules.get(name)
    if cached is not None:
        return cached
    spec = importlib.util.spec_from_file_location(
        name, SRC / "repro" / "network" / "events.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@dataclass(frozen=True)
class Finding:
    """One reported contract violation."""

    rule: str
    path: Path
    line: int
    message: str

    def render(self) -> str:
        try:
            shown = self.path.relative_to(REPO)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: [{self.rule}] {self.message}"


PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\(([a-z\-, ]+)\)")


class Module:
    """A parsed target file plus the lookup tables rules need."""

    def __init__(self, path: Path, modname: str, source: str) -> None:
        self.path = path
        self.modname = modname
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        #: line -> set of rule names waived on that line
        self.pragmas: dict[int, set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = PRAGMA_RE.search(line)
            if match:
                self.pragmas[lineno] = {
                    rule.strip() for rule in match.group(1).split(",")
                }
        self.is_package = path.name == "__init__.py"
        self._import_map: dict[str, str] | None = None

    def allows(self, rule: str, line: int) -> bool:
        """True when a pragma on *line* (or the line above) waives *rule*."""
        return rule in self.pragmas.get(line, ()) or rule in self.pragmas.get(
            line - 1, ()
        )

    # ------------------------------------------------------------------
    # import resolution
    # ------------------------------------------------------------------
    def _resolve_relative(self, level: int, module: str | None) -> str:
        parts = self.modname.split(".")
        if not self.is_package:
            parts = parts[:-1]
        if level > 1:
            parts = parts[: len(parts) - (level - 1)]
        base = ".".join(parts)
        if module:
            base = f"{base}.{module}" if base else module
        return base

    @property
    def import_map(self) -> dict[str, str]:
        """Local name -> fully qualified dotted target.

        Covers ``import a.b [as c]`` and ``from x import y [as z]`` at
        any nesting depth (worker entry points import inside function
        bodies to dodge circular imports); later bindings win, which is
        close enough for lint purposes.
        """
        if self._import_map is not None:
            return self._import_map
        table: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        table[alias.name.split(".")[0]] = alias.name.split(
                            "."
                        )[0]
            elif isinstance(node, ast.ImportFrom):
                base = (
                    self._resolve_relative(node.level, node.module)
                    if node.level
                    else (node.module or "")
                )
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{base}.{alias.name}" if base else alias.name
        self._import_map = table
        return table

    def qualified(self, node: ast.expr) -> str | None:
        """Dotted target of a Name/Attribute chain, through the imports.

        ``ev.ADD_GATE`` with ``from repro.network import events as ev``
        resolves to ``repro.network.events.ADD_GATE``; unresolvable
        expressions return ``None``.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.import_map.get(current.id, None)
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str  # "repro.timing.sta.TimingEngine.swap_gain"
    classname: str | None  # enclosing class, if a method


class Project:
    """Every module under analysis, plus cross-module symbol indices."""

    def __init__(self, modules: list[Module]) -> None:
        self.modules = modules
        self.by_name: dict[str, Module] = {m.modname: m for m in modules}
        #: qualified function name -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: qualified class name -> {method name -> FunctionInfo}
        self.classes: dict[str, dict[str, FunctionInfo]] = {}
        for module in modules:
            self._index(module)

    def _index(self, module: Module) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module.modname}.{node.name}"
                self.functions[qualname] = FunctionInfo(
                    module, node, qualname, None
                )
            elif isinstance(node, ast.ClassDef):
                class_qual = f"{module.modname}.{node.name}"
                methods: dict[str, FunctionInfo] = {}
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info = FunctionInfo(
                            module,
                            item,
                            f"{class_qual}.{item.name}",
                            node.name,
                        )
                        methods[item.name] = info
                        self.functions[info.qualname] = info
                self.classes[class_qual] = methods

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    @staticmethod
    def modname_for(path: Path) -> str:
        """Dotted module name of *path* under src/ (fallback: stem)."""
        path = path.resolve()
        for root, prefix in ((SRC, ""), (REPO, "")):
            try:
                rel = path.relative_to(root)
            except ValueError:
                continue
            parts = list(rel.parts)
            if parts[-1] == "__init__.py":
                parts = parts[:-1]
            else:
                parts[-1] = parts[-1][:-3]
            return prefix + ".".join(parts)
        return path.stem

    @classmethod
    def load(cls, paths: list[Path] | None = None) -> "Project":
        """Parse the given files (default: every module in src/repro)."""
        if paths is None:
            paths = sorted((SRC / "repro").rglob("*.py"))
        modules = []
        for path in paths:
            source = path.read_text()
            modules.append(Module(path, cls.modname_for(path), source))
        return cls(modules)


def decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Bare names of a function's decorators (``a.b.c`` -> ``c``)."""
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def module_level_names(module: Module) -> set[str]:
    """Names bound by top-level assignments of *module*."""
    names: set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally inside *func* (params, assignments, loops).

    Names declared ``global`` are excluded — a write to them is a
    module-global write even though it syntactically looks local.
    """
    bound: set[str] = set()
    args = func.args
    for arg in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *( [args.vararg] if args.vararg else [] ),
        *( [args.kwarg] if args.kwarg else [] ),
    ):
        bound.add(arg.arg)
    globals_declared: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                for name_node in ast.walk(target):
                    # ctx filter: in `CACHE[k] = v` the base Name CACHE
                    # is a Load — only Store-context Names are bindings
                    if isinstance(name_node, ast.Name) and isinstance(
                        name_node.ctx, ast.Store
                    ):
                        bound.add(name_node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        elif isinstance(node, ast.withitem) and node.optional_vars:
            for name_node in ast.walk(node.optional_vars):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        elif isinstance(node, ast.comprehension):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    return bound - globals_declared
