"""Command-line entry point: ``python -m tools.lint``.

Runs the four contract rule families over ``src/repro`` (or explicit
paths) plus the generated-docs drift check, prints every finding as
``path:line: [rule] message``, and exits non-zero when anything is
found — the CI ``static-analysis`` job runs exactly this.

Modes:

* ``python -m tools.lint`` — lint everything, check docs;
* ``python -m tools.lint --fix-docs`` — rewrite the generated tables
  in ``docs/architecture.md`` from the registry and exit;
* ``python -m tools.lint path.py ...`` — lint specific files only
  (used by the fixture tests; the docs check is skipped);
* ``--rules events,purity,determinism,worker-global`` — restrict the
  rule families.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import determinism, docs_sync, events_rule, purity, worker_safety
from .core import Finding, Project, ensure_src_on_path

#: rule name -> checker(project) -> findings
RULES = {
    "events": events_rule.check,
    "purity": purity.check,
    "determinism": determinism.check,
    "worker-global": worker_safety.check,
}


def run_lint(
    paths: list[Path] | None,
    rules: list[str] | None = None,
    include_docs: bool = True,
) -> list[Finding]:
    """All findings over *paths* (``None`` = the whole src tree)."""
    ensure_src_on_path()
    project = Project.load(paths)
    findings: list[Finding] = []
    for name, checker in RULES.items():
        if rules is not None and name not in rules:
            continue
        findings.extend(checker(project))
    if include_docs and (rules is None or "docs" in rules):
        findings.extend(docs_sync.check())
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule, f.message))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="AST-enforced contract linter (events, purity, "
        "determinism, worker safety, generated docs).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files to lint (default: every module under src/repro)",
    )
    parser.add_argument(
        "--fix-docs",
        action="store_true",
        help="regenerate the event tables in docs/architecture.md "
        "from repro/network/events.py and exit",
    )
    parser.add_argument(
        "--no-docs",
        action="store_true",
        help="skip the generated-docs drift check",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule subset "
        f"(default: all of {', '.join(RULES)}, docs)",
    )
    args = parser.parse_args(argv)

    if args.fix_docs:
        ensure_src_on_path()
        changed = docs_sync.fix()
        print(
            "tools.lint --fix-docs: "
            + ("docs/architecture.md updated" if changed else "already in sync")
        )
        return 0

    rules = (
        [rule.strip() for rule in args.rules.split(",")]
        if args.rules
        else None
    )
    include_docs = not args.no_docs and not args.paths
    findings = run_lint(args.paths or None, rules, include_docs)
    for finding in findings:
        print(finding.render(), file=sys.stderr)
    scope = (
        ", ".join(str(p) for p in args.paths) if args.paths else "src/repro"
    )
    print(
        f"tools.lint: {scope}: {len(findings)} finding"
        + ("" if len(findings) == 1 else "s")
    )
    return 1 if findings else 0
