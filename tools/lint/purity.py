"""Rule family P — the projection-only pricing contract.

Functions marked ``@projection_only`` (see :mod:`repro.contracts`)
price candidate moves purely from cached analysis state.  This rule
walks a module-local call graph from every marked function — direct
calls to same-module functions, ``self.``/``cls.`` calls to
same-class methods — and flags any reachable call whose target name
is a mutating :class:`~repro.network.netlist.Network` API or the
event machinery itself (``_touch`` / ``notify_network_event``), per
:data:`repro.network.events.MUTATING_NETWORK_METHODS`.

The walk is deliberately name-based: ``anything.replace_fanin(...)``
is flagged no matter what the receiver is, because the mutator names
are unique to ``Network`` in this codebase and a false negative here
costs a silent engine-corruption bug.  Cross-module calls through
attributes the walk cannot resolve (``engine.swap_gain(...)``) end
the walk — mark the callee in *its* module to extend coverage.

Suppression pragma: ``# lint: allow(purity)``.
"""

from __future__ import annotations

import ast

from .core import Finding, Module, Project, decorator_names, load_events_registry

RULE = "purity"

MARKER = "projection_only"


def _mutator_names() -> frozenset[str]:
    return load_events_registry().MUTATING_NETWORK_METHODS


def _receiver_is_self(node: ast.Attribute) -> bool:
    return isinstance(node.value, ast.Name) and node.value.id in (
        "self",
        "cls",
    )


def _walk_function(
    module: Module,
    func: ast.FunctionDef,
    classname: str | None,
    module_funcs: dict[str, ast.FunctionDef],
    class_methods: dict[str, dict[str, ast.FunctionDef]],
    chain: list[str],
    visited: set[int],
    findings: list[Finding],
) -> None:
    if id(func) in visited:
        return
    visited.add(id(func))
    mutators = _mutator_names()
    label = ".".join(chain)
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if isinstance(target, ast.Attribute):
            if target.attr in mutators:
                if not module.allows(RULE, node.lineno):
                    via = f" (reached via {label})" if len(chain) > 1 else ""
                    findings.append(
                        Finding(
                            RULE,
                            module.path,
                            node.lineno,
                            f"projection-only {chain[0]!r} reaches mutating "
                            f"call .{target.attr}(){via}",
                        )
                    )
            elif _receiver_is_self(target) and classname is not None:
                method = class_methods.get(classname, {}).get(target.attr)
                if method is not None:
                    _walk_function(
                        module,
                        method,
                        classname,
                        module_funcs,
                        class_methods,
                        chain + [target.attr],
                        visited,
                        findings,
                    )
        elif isinstance(target, ast.Name):
            callee = module_funcs.get(target.id)
            if callee is not None:
                _walk_function(
                    module,
                    callee,
                    None,
                    module_funcs,
                    class_methods,
                    chain + [target.id],
                    visited,
                    findings,
                )


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        module_funcs: dict[str, ast.FunctionDef] = {}
        class_methods: dict[str, dict[str, ast.FunctionDef]] = {}
        marked: list[tuple[ast.FunctionDef, str | None]] = []
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef):
                module_funcs[node.name] = node
                if MARKER in decorator_names(node):
                    marked.append((node, None))
            elif isinstance(node, ast.ClassDef):
                methods = {
                    item.name: item
                    for item in node.body
                    if isinstance(item, ast.FunctionDef)
                }
                class_methods[node.name] = methods
                for item in methods.values():
                    if MARKER in decorator_names(item):
                        marked.append((item, node.name))
        for func, classname in marked:
            _walk_function(
                module,
                func,
                classname,
                module_funcs,
                class_methods,
                [func.name],
                set(),
                findings,
            )
    return findings
