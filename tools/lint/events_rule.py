"""Rule family E — the mutation-event contract.

Verified against the canonical registry (:mod:`repro.network.events`):

* **E1 — emission schema**: every ``_touch((kind, payload))`` call
  passes a registered kind *constant* (bare strings are flagged: the
  registry is the single source of truth) and a payload dict literal
  whose keys equal the registered operand tuple exactly.  A bare
  ``_touch()`` is the documented untracked-mutation escape hatch and
  is allowed.
* **E2 — listener coverage**: every ``notify_network_event``
  implementation must *mention* every registered kind — handle it or
  explicitly ignore it via a membership set — and must end in a
  catch-all branch (or name :data:`~repro.network.events.UNKNOWN`
  explicitly) so unregistered/future kinds degrade to a full
  invalidation instead of being silently dropped.
* **E3 — operand use**: inside a branch guarded by
  ``kind == events.X`` (or ``kind in (X, Y)``), every constant
  ``data["key"]`` subscript must name an operand that every guarded
  kind actually carries.

Suppression pragma: ``# lint: allow(events)``.
"""

from __future__ import annotations

import ast

from .core import Finding, Module, Project, load_events_registry

RULE = "events"

EVENTS_MODULE = "repro.network.events"


def _registry():
    return load_events_registry().REGISTRY


def resolve_kind(module: Module, node: ast.expr) -> tuple[str | None, bool]:
    """Resolve an expression to an event-kind string.

    Returns ``(kind, is_constant_ref)``: *kind* is ``None`` when the
    expression cannot be a kind reference at all; ``is_constant_ref``
    distinguishes registry constants from bare string literals.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    qualified = module.qualified(node)
    if qualified and qualified.startswith(EVENTS_MODULE + "."):
        const = qualified[len(EVENTS_MODULE) + 1 :]
        registry = _registry()
        value = getattr(load_events_registry(), const, None)
        if isinstance(value, str) and value in registry:
            return value, True
        return None, True
    return None, False


def _module_kind_sets(module: Module) -> dict[str, set[str]]:
    """Module-level names bound to sets/tuples of event kinds."""
    out: dict[str, set[str]] = {}
    for node in module.tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        value = node.value
        if value is None:
            continue
        elements = _set_elements(value)
        if elements is None:
            continue
        kinds: set[str] = set()
        for element in elements:
            kind, _ = resolve_kind(module, element)
            if kind is not None:
                kinds.add(kind)
        if not kinds:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = kinds
    return out


def _set_elements(value: ast.expr) -> list[ast.expr] | None:
    """Elements of a set/frozenset/tuple/list literal, else ``None``."""
    if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
        return list(value.elts)
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("frozenset", "set", "tuple")
        and len(value.args) == 1
    ):
        return _set_elements(value.args[0])
    return None


# ---------------------------------------------------------------------------
# E1: emission sites
# ---------------------------------------------------------------------------
def _check_emissions(module: Module) -> list[Finding]:
    registry = _registry()
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "_touch"):
            continue
        if not node.args:
            continue  # bare version bump -> the catch-all "unknown" event
        event = node.args[0]
        if isinstance(event, ast.Constant) and event.value is None:
            continue
        if not isinstance(event, ast.Tuple) or len(event.elts) != 2:
            findings.append(
                Finding(
                    RULE,
                    module.path,
                    node.lineno,
                    "_touch argument must be a literal (kind, payload) "
                    "tuple so the schema is statically checkable",
                )
            )
            continue
        kind_expr, payload = event.elts
        kind, is_const = resolve_kind(module, kind_expr)
        if kind is None:
            findings.append(
                Finding(
                    RULE,
                    module.path,
                    kind_expr.lineno,
                    "event kind is not a resolvable registry constant "
                    f"(use repro.network.events.*): {ast.unparse(kind_expr)}",
                )
            )
            continue
        if not is_const:
            findings.append(
                Finding(
                    RULE,
                    module.path,
                    kind_expr.lineno,
                    f"bare string event kind {kind!r}: emit the "
                    "repro.network.events constant instead",
                )
            )
        if kind not in registry:
            findings.append(
                Finding(
                    RULE,
                    module.path,
                    kind_expr.lineno,
                    f"unregistered event kind {kind!r}",
                )
            )
            continue
        expected = set(registry[kind].operands)
        if isinstance(payload, ast.Dict) and all(
            isinstance(key, ast.Constant) and isinstance(key.value, str)
            for key in payload.keys
        ):
            got = {key.value for key in payload.keys}
            if got != expected:
                missing = sorted(expected - got)
                extra = sorted(got - expected)
                detail = []
                if missing:
                    detail.append(f"missing operands {missing}")
                if extra:
                    detail.append(f"unregistered operands {extra}")
                findings.append(
                    Finding(
                        RULE,
                        module.path,
                        payload.lineno,
                        f"payload of {kind!r} does not match the "
                        f"registered schema: {', '.join(detail)}",
                    )
                )
        else:
            findings.append(
                Finding(
                    RULE,
                    module.path,
                    payload.lineno,
                    f"payload of {kind!r} must be a dict literal with "
                    "string keys so the operand schema is checkable",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# E2/E3: listener dispatch
# ---------------------------------------------------------------------------
def _is_stub(func: ast.FunctionDef) -> bool:
    body = func.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]
    return all(
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
        for stmt in body
    ) or not body


def _has_catch_all(func: ast.FunctionDef) -> bool:
    """True when some if/elif chain in the body ends in a plain else."""
    for node in ast.walk(func):
        if isinstance(node, ast.If):
            tail = node
            while tail.orelse and len(tail.orelse) == 1 and isinstance(
                tail.orelse[0], ast.If
            ):
                tail = tail.orelse[0]
            if tail.orelse:
                return True
    return False


def _branch_kinds(
    module: Module, kind_sets: dict[str, set[str]], test: ast.expr
) -> set[str] | None:
    """Kinds guarded by an ``if`` test comparing the ``kind`` argument."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    op = test.ops[0]
    comparator = test.comparators[0]
    if isinstance(op, ast.Eq):
        kind, _ = resolve_kind(module, comparator)
        return {kind} if kind is not None else None
    if isinstance(op, ast.In):
        elements = _set_elements(comparator)
        if elements is not None:
            kinds = set()
            for element in elements:
                kind, _ = resolve_kind(module, element)
                if kind is not None:
                    kinds.add(kind)
            return kinds or None
        if isinstance(comparator, ast.Name):
            return kind_sets.get(comparator.id)
    return None


def _data_keys(body: list[ast.stmt]) -> list[tuple[int, str]]:
    """Constant ``data["key"]`` subscripts in a branch body."""
    keys: list[tuple[int, str]] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == "data"
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                keys.append((node.lineno, node.slice.value))
    return keys


def _check_listener(
    module: Module, func: ast.FunctionDef, kind_sets: dict[str, set[str]]
) -> list[Finding]:
    registry = _registry()
    events = load_events_registry()

    findings: list[Finding] = []
    mentioned: set[str] = set()

    # every kind-constant reference anywhere in the body counts as
    # "mentioned" — handling and explicit ignoring look the same here
    for node in ast.walk(func):
        if isinstance(node, (ast.Attribute, ast.Name)):
            kind, is_const = resolve_kind(module, node)
            if kind is not None and is_const:
                mentioned.add(kind)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value in registry:
                findings.append(
                    Finding(
                        RULE,
                        module.path,
                        node.lineno,
                        f"bare string event kind {node.value!r} in listener:"
                        " dispatch on repro.network.events constants",
                    )
                )
                mentioned.add(node.value)
        elif isinstance(node, ast.Name):
            pass
    for name, kinds in kind_sets.items():
        if any(
            isinstance(n, ast.Name) and n.id == name
            for n in ast.walk(func)
        ):
            mentioned.update(kinds)

    missing = sorted(set(registry) - mentioned - {events.UNKNOWN})
    for kind in missing:
        findings.append(
            Finding(
                RULE,
                module.path,
                func.lineno,
                f"listener neither handles nor explicitly ignores "
                f"registered kind {kind!r}",
            )
        )
    if events.UNKNOWN not in mentioned and not _has_catch_all(func):
        findings.append(
            Finding(
                RULE,
                module.path,
                func.lineno,
                "listener has no catch-all branch: unregistered kinds "
                "(and 'unknown') would be silently dropped",
            )
        )

    # E3: operand use inside kind-guarded branches
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        kinds = _branch_kinds(module, kind_sets, node.test)
        if not kinds or any(kind not in registry for kind in kinds):
            continue
        allowed = set.intersection(
            *(set(registry[kind].operands) for kind in kinds)
        )
        for lineno, key in _data_keys(node.body):
            if key not in allowed:
                findings.append(
                    Finding(
                        RULE,
                        module.path,
                        lineno,
                        f"data[{key!r}] is not an operand of "
                        f"{sorted(kinds)} (registered: {sorted(allowed)})",
                    )
                )
    return findings


def check(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        module_findings = _check_emissions(module)
        kind_sets = _module_kind_sets(module)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == "notify_network_event"
                and not _is_stub(node)
            ):
                module_findings.extend(
                    _check_listener(module, node, kind_sets)
                )
        findings.extend(
            f
            for f in module_findings
            if not module.allows(RULE, f.line)
        )
    return findings
