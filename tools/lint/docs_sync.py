"""Generated documentation blocks: registry -> ``docs/architecture.md``.

The event-kind tables in the architecture reference are *generated*
from :mod:`repro.network.events`, between HTML comment markers:

.. code-block:: markdown

   <!-- BEGIN GENERATED: event-kinds -->
   ...one table row per registered kind...
   <!-- END GENERATED: event-kinds -->

``python -m tools.lint --fix-docs`` rewrites every generated block in
place; the default lint run (and ``tools/check_docs.py``, which CI
runs) fails when the committed text differs byte-for-byte from the
regeneration — doc/code agreement is mechanical, not social.
"""

from __future__ import annotations

import re
from pathlib import Path

from .core import Finding, REPO, load_events_registry

RULE = "docs"

ARCHITECTURE = REPO / "docs" / "architecture.md"

_BEGIN = "<!-- BEGIN GENERATED: {name} -->"
_END = "<!-- END GENERATED: {name} -->"


def _registry():
    return load_events_registry()


def render_event_table() -> str:
    """The kind/operand/meaning table, one row per registered kind."""
    events = _registry()
    lines = [
        "| kind | operands | structural | meaning |",
        "|---|---|---|---|",
    ]
    for kind in events.REGISTRY.values():
        operands = ", ".join(f"`{op}`" for op in kind.operands) or "—"
        structural = "yes" if kind.structural else "no"
        lines.append(
            f"| `{kind.name}` | {operands} | {structural} | {kind.meaning} |"
        )
    return "\n".join(lines)


def render_emitters_table() -> str:
    """Which API emits which kind (mutator methods + the two escapes)."""
    events = _registry()
    special = {
        events.RESTORE: "`sizing/coudert.py` best-snapshot rollback",
        events.UNKNOWN: "bare `Network._touch()` after an out-of-band mutation",
    }
    lines = [
        "| emitter | kind |",
        "|---|---|",
    ]
    for kind in events.REGISTRY.values():
        emitter = special.get(
            kind.name, f"`Network.{kind.name}()`"
        )
        lines.append(f"| {emitter} | `{kind.name}` |")
    return "\n".join(lines)


#: Every generated block: marker name -> renderer.
BLOCKS = {
    "event-kinds": render_event_table,
    "event-emitters": render_emitters_table,
}


def _block_re(name: str) -> re.Pattern[str]:
    return re.compile(
        re.escape(_BEGIN.format(name=name))
        + r"\n.*?"
        + re.escape(_END.format(name=name)),
        re.S,
    )


def regenerate(text: str) -> str:
    """Text with every generated block replaced by a fresh rendering."""
    for name, renderer in BLOCKS.items():
        pattern = _block_re(name)
        if not pattern.search(text):
            raise ValueError(
                f"missing generated-block markers for {name!r} "
                f"({_BEGIN.format(name=name)})"
            )
        replacement = (
            f"{_BEGIN.format(name=name)}\n{renderer()}\n"
            f"{_END.format(name=name)}"
        )
        text = pattern.sub(lambda _m: replacement, text)
    return text


def fix(path: Path = ARCHITECTURE) -> bool:
    """Rewrite generated blocks in place; True when the file changed."""
    original = path.read_text()
    updated = regenerate(original)
    if updated != original:
        path.write_text(updated)
        return True
    return False


def check(path: Path = ARCHITECTURE) -> list[Finding]:
    """Findings when the committed blocks differ from regeneration."""
    try:
        original = path.read_text()
    except OSError as exc:
        return [Finding(RULE, path, 1, f"cannot read: {exc}")]
    try:
        updated = regenerate(original)
    except ValueError as exc:
        return [Finding(RULE, path, 1, str(exc))]
    if updated == original:
        return []
    first_diff = next(
        (
            index
            for index, (a, b) in enumerate(
                zip(
                    original.splitlines(),
                    updated.splitlines(),
                ),
                start=1,
            )
            if a != b
        ),
        min(
            len(original.splitlines()), len(updated.splitlines())
        ) + 1,
    )
    return [
        Finding(
            RULE,
            path,
            first_diff,
            "generated event tables drifted from repro/network/events.py"
            " — run `python -m tools.lint --fix-docs`",
        )
    ]
