"""Logic substrate: values, simulation, truth-table algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.simulate import (
    cone_truth_table,
    extract_cone,
    random_simulate_outputs,
    simulate,
    table_mask,
    truth_tables,
    variable_word,
)
from repro.logic.truthtable import (
    all_symmetric_pairs,
    cofactor,
    complement_variable,
    depends_on,
    es_check_by_swap,
    is_es,
    is_nes,
    nes_check_by_swap,
    swap_variables,
)
from repro.logic.values import (
    Value,
    and_values,
    from_pair,
    or_values,
    xor_values,
)
from repro.network.builder import NetworkBuilder

from helpers import random_network


# ----------------------------------------------------------------------
# five-valued algebra
# ----------------------------------------------------------------------
def test_value_channels():
    assert Value.D.good == 1 and Value.D.faulty == 0
    assert Value.DBAR.good == 0 and Value.DBAR.faulty == 1
    assert Value.X.good is None
    assert (~Value.D) is Value.DBAR
    assert (~Value.X) is Value.X


def test_value_predicates():
    assert Value.D.is_fault_effect() and not Value.ONE.is_fault_effect()
    assert Value.ZERO.is_binary() and not Value.D.is_binary()
    assert not Value.X.is_assigned()


@given(st.lists(st.sampled_from(list(Value)), min_size=1, max_size=4))
def test_and_or_consistent_with_channelwise_eval(values):
    for op in (and_values, or_values):
        result = op(values)
        expect_channels = []
        for bits in (
            [v.good for v in values], [v.faulty for v in values],
        ):
            if op is and_values:
                expect_channels.append(
                    0 if 0 in bits else (None if None in bits else 1)
                )
            else:
                expect_channels.append(
                    1 if 1 in bits else (None if None in bits else 0)
                )
        # the five-valued domain cannot represent "one channel known":
        # such results collapse to X (conservative, like classic ATPG)
        if None in expect_channels:
            assert result is Value.X
        else:
            assert result is from_pair(*expect_channels)


def test_xor_values_x_dominant():
    assert xor_values([Value.D, Value.X]) is Value.X
    assert xor_values([Value.D, Value.DBAR]) is Value.ONE
    assert xor_values([Value.D, Value.D]) is Value.ZERO
    assert xor_values([Value.D, Value.ONE]) is Value.DBAR


def test_from_pair():
    assert from_pair(1, 0) is Value.D
    assert from_pair(None, 1) is Value.X


# ----------------------------------------------------------------------
# simulation
# ----------------------------------------------------------------------
def test_variable_word_patterns():
    assert variable_word(0, 3) == 0b10101010
    assert variable_word(1, 3) == 0b11001100
    assert variable_word(2, 3) == 0b11110000
    with pytest.raises(ValueError):
        variable_word(3, 3)


def test_simulate_requires_all_inputs():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    builder.output(builder.and_(a, b, name="f"))
    net = builder.build()
    with pytest.raises(KeyError):
        simulate(net, {"i0": 1})


def test_truth_tables_refuse_wide_support():
    from repro.network.gatetype import GateType

    builder = NetworkBuilder()
    nets = builder.inputs(25)
    builder.output(builder.tree(GateType.AND, nets, fanin_limit=4))
    net = builder.build()
    with pytest.raises(ValueError):
        truth_tables(net)


def test_extract_cone_is_selfcontained():
    net = random_network(3, num_gates=18)
    out = net.outputs[0]
    cone = extract_cone(net, [out])
    assert cone.outputs == [out]
    assert set(cone.inputs) <= set(net.inputs)
    support, table = cone_truth_table(net, out)
    assert len(support) == len(cone.inputs)
    assert 0 <= table < (1 << (1 << len(support)))


def test_random_simulation_deterministic():
    net = random_network(4)
    assert random_simulate_outputs(net, seed=1) == (
        random_simulate_outputs(net, seed=1)
    )
    # different seeds almost surely differ on a non-constant circuit
    outs = {tuple(random_simulate_outputs(net, seed=s)) for s in range(4)}
    assert len(outs) > 1


# ----------------------------------------------------------------------
# truth-table algebra (hypothesis-driven)
# ----------------------------------------------------------------------
@st.composite
def table_and_vars(draw, max_vars=4):
    num_vars = draw(st.integers(min_value=2, max_value=max_vars))
    table = draw(st.integers(min_value=0, max_value=table_mask(num_vars)))
    var_i = draw(st.integers(min_value=0, max_value=num_vars - 1))
    var_j = draw(
        st.integers(min_value=0, max_value=num_vars - 1).filter(
            lambda v: v != var_i
        )
    )
    return table, num_vars, var_i, var_j


@given(table_and_vars())
@settings(max_examples=200)
def test_nes_equals_swap_invariance(args):
    table, num_vars, var_i, var_j = args
    assert is_nes(table, num_vars, var_i, var_j) == nes_check_by_swap(
        table, num_vars, var_i, var_j
    )


@given(table_and_vars())
@settings(max_examples=200)
def test_es_equals_swap_complement_invariance(args):
    table, num_vars, var_i, var_j = args
    assert is_es(table, num_vars, var_i, var_j) == es_check_by_swap(
        table, num_vars, var_i, var_j
    )


@given(table_and_vars())
@settings(max_examples=100)
def test_cofactor_idempotent_and_independent(args):
    table, num_vars, var_i, _ = args
    pos = cofactor(table, num_vars, var_i, 1)
    assert cofactor(pos, num_vars, var_i, 0) == pos
    assert not depends_on(pos, num_vars, var_i)


@given(table_and_vars())
@settings(max_examples=100)
def test_swap_variables_involution(args):
    table, num_vars, var_i, var_j = args
    once = swap_variables(table, num_vars, var_i, var_j)
    assert swap_variables(once, num_vars, var_i, var_j) == table


@given(table_and_vars())
@settings(max_examples=100)
def test_complement_variable_involution(args):
    table, num_vars, var_i, _ = args
    once = complement_variable(table, num_vars, var_i)
    assert complement_variable(once, num_vars, var_i) == table
    shannon = cofactor(table, num_vars, var_i, 1) != cofactor(
        table, num_vars, var_i, 0
    )
    assert (once != table) == shannon


def test_known_symmetries_of_majority():
    # majority(a, b, c) is totally NES-symmetric
    maj = 0
    for minterm in range(8):
        bits = [(minterm >> i) & 1 for i in range(3)]
        if sum(bits) >= 2:
            maj |= 1 << minterm
    pairs = all_symmetric_pairs(maj, 3)
    assert {(i, j) for i, j, _ in pairs} == {(0, 1), (0, 2), (1, 2)}
    assert all(kind == "nes" for _, _, kind in pairs)


def test_known_symmetries_of_xor():
    # XOR is both NES and ES in every pair
    xor3 = variable_word(0, 3) ^ variable_word(1, 3) ^ variable_word(2, 3)
    pairs = all_symmetric_pairs(xor3, 3)
    assert all(kind == "both" for _, _, kind in pairs)
    assert len(pairs) == 3
