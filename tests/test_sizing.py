"""The two-phase Coudert optimizer: monotonicity, area recovery, moves."""

import pytest

from repro.place.placer import place
from repro.sizing.coudert import network_delay, optimize
from repro.sizing.moves import ResizeMove, resize_sites
from repro.synth.mapper import map_network, network_area
from repro.verify.equiv import networks_equivalent

from helpers import random_network


def prepared(seed, library, gates=40):
    net = random_network(seed, num_gates=gates, num_outputs=4)
    map_network(net, library)
    placement = place(net, library, seed=seed)
    return net, placement


def test_resize_move_mechanics(library):
    net, placement = prepared(1, library)
    sites = resize_sites(net, library)
    assert sites
    move = sites[0].moves[0]
    assert isinstance(move, ResizeMove)
    area_before = network_area(net, library)
    move.apply(net, library)
    assert net.gate(move.gate).cell == move.new_cell
    assert network_area(net, library) == pytest.approx(
        area_before + move.area_delta(library)
    )
    assert move.gate in move.footprint(net)
    assert "resize" in move.describe()


def test_resize_sites_filter(library):
    net, _ = prepared(2, library)
    allowed = {list(net.gate_names())[0]}
    sites = resize_sites(net, library, gate_filter=lambda n: n in allowed)
    assert {site.key.split(":")[1] for site in sites} <= allowed


def test_optimize_never_worsens_delay(library):
    for seed in (3, 4, 5):
        net, placement = prepared(seed, library)
        before = network_delay(net, placement, library)
        reference = net.copy()
        result = optimize(
            net, placement, library,
            site_factory=lambda n, e: resize_sites(n, library),
            mode="gs",
        )
        after = network_delay(net, placement, library)
        assert after <= before + 1e-9, seed
        assert result.final_delay == pytest.approx(after, abs=1e-6)
        assert result.initial_delay == pytest.approx(before, abs=1e-6)
        assert networks_equivalent(reference, net), seed


def test_improvement_percent_math(library):
    net, placement = prepared(6, library)
    result = optimize(
        net, placement, library,
        site_factory=lambda n, e: resize_sites(n, library),
        mode="gs",
    )
    expect = 100.0 * (
        result.initial_delay - result.final_delay
    ) / result.initial_delay
    assert result.improvement_percent == pytest.approx(expect)
    assert result.rounds >= 1


def test_empty_site_factory_is_noop(library):
    net, placement = prepared(7, library)
    before_delay = network_delay(net, placement, library)
    result = optimize(
        net, placement, library,
        site_factory=lambda n, e: [],
        mode="noop",
    )
    assert result.moves_applied == 0
    assert result.final_delay == pytest.approx(before_delay, abs=1e-9)


def test_collect_log(library):
    net, placement = prepared(8, library)
    result = optimize(
        net, placement, library,
        site_factory=lambda n, e: resize_sites(n, library),
        collect_log=True,
    )
    if result.moves_applied:
        assert result.move_log
        assert any("resize" in line for line in result.move_log)


def test_area_recovery_shrinks_oversized_designs(library):
    net, placement = prepared(9, library, gates=100)
    # inflate everything to X8 - recovery pulls back what positive
    # slack allows (it never trades the achieved delay for area, so on
    # all-critical gates the X8 stays)
    for gate in net.gates():
        if gate.cell is None:
            continue
        cells = library.sizes_of(library.cell(gate.cell))
        gate.cell = cells[-1].name
    net._touch()
    inflated = network_area(net, library)
    delay_before = network_delay(net, placement, library)
    optimize(
        net, placement, library,
        site_factory=lambda n, e: resize_sites(n, library),
        mode="gs",
    )
    assert network_area(net, library) < inflated * 0.85
    assert network_delay(net, placement, library) <= delay_before + 1e-9
