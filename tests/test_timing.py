"""Timing substrate: star/Elmore net model and the STA engine."""

import pytest

from repro.network.builder import NetworkBuilder
from repro.network.netlist import Pin
from repro.place.placement import Placement
from repro.library.cells import wire_capacitance, wire_resistance
from repro.synth.mapper import map_network
from repro.timing.netmodel import PO_PAD_CAP, build_star
from repro.timing.sta import TimingEngine

from helpers import random_network


def chain_network(library):
    """PI -> NAND2 -> NAND2 -> PO with hand-placed cells."""
    builder = NetworkBuilder("chain")
    a, b = builder.inputs(2)
    g1 = builder.nand(a, b, name="g1")
    g2 = builder.nand(g1, a, name="g2")
    builder.output(g2)
    net = builder.build()
    for gate in net.gates():
        gate.cell = "NAND2_X2"
    pl = Placement(die_width=1000, die_height=1000)
    pl.input_pads["i0"] = (0.0, 0.0)
    pl.input_pads["i1"] = (0.0, 100.0)
    pl.output_pads[0] = (1000.0, 0.0)
    pl.set_location("g1", 300.0, 0.0)
    pl.set_location("g2", 600.0, 0.0)
    return net, pl


# ----------------------------------------------------------------------
# star net model
# ----------------------------------------------------------------------
def test_star_single_sink_geometry(library):
    net, pl = chain_network(library)
    star = build_star(net, pl, library, "g1")
    assert star.source == (300.0, 0.0)
    # single sink at (600, 0): center midway
    assert star.center == (450.0, 0.0)
    sink = star.sinks[0]
    assert sink.pin == Pin("g2", 0)
    assert sink.pin_cap == library.cell("NAND2_X2").input_cap
    # total load: 300 um of wire plus the sink pin
    assert star.total_cap == pytest.approx(
        wire_capacitance(300.0) + sink.pin_cap
    )
    # Elmore: R_src * (everything) + R_sink * (segment + pin)
    r_half, c_half = wire_resistance(150.0), wire_capacitance(150.0)
    expected = r_half * (c_half * 2 + sink.pin_cap) + r_half * (
        c_half + sink.pin_cap
    )
    assert sink.wire_delay == pytest.approx(expected)


def test_star_po_pad_sink(library):
    net, pl = chain_network(library)
    star = build_star(net, pl, library, "g2")
    pad_sinks = [s for s in star.sinks if s.pin is None]
    assert len(pad_sinks) == 1
    assert pad_sinks[0].pin_cap == PO_PAD_CAP


def test_star_zero_fanout(library):
    net, pl = chain_network(library)
    # i1 drives only g1; make an isolated net by querying a PI with one
    # sink removed through an override
    star = build_star(net, pl, library, "i1", override_sinks=[])
    assert star.total_cap == 0.0
    assert star.sinks == ()


def test_longer_wire_means_more_delay(library):
    net, pl = chain_network(library)
    near = build_star(net, pl, library, "g1")
    pl.set_location("g2", 900.0, 0.0)
    far = build_star(net, pl, library, "g1")
    assert far.sinks[0].wire_delay > near.sinks[0].wire_delay
    assert far.total_cap > near.total_cap


# ----------------------------------------------------------------------
# STA
# ----------------------------------------------------------------------
def test_sta_hand_computed_chain(library):
    net, pl = chain_network(library)
    engine = TimingEngine(net, pl, library)
    engine.analyze()
    cell = library.cell("NAND2_X2")
    load_g1 = engine.stars["g1"].total_cap
    # arrival at g1 (negative unate: rise from fall and vice versa,
    # inputs arrive at 0 so both transitions reduce to wire + gate)
    rise, fall = engine.arrival["g1"]
    assert rise == pytest.approx(
        max(
            engine.stars["i0"].sink_delay(Pin("g1", 0)),
            engine.stars["i1"].sink_delay(Pin("g1", 1)),
        ) + cell.delay(load_g1, "rise")
    )
    assert engine.max_delay > 0
    assert engine.is_fresh()
    net._touch()
    assert not engine.is_fresh()


def test_sta_slack_and_required(library):
    net, pl = chain_network(library)
    engine = TimingEngine(net, pl, library)
    engine.analyze()
    # with the period defaulting to the max delay, the worst slack is ~0
    assert engine.worst_slack() == pytest.approx(0.0, abs=1e-9)
    # an explicit looser period shifts every slack up uniformly
    relaxed = TimingEngine(net, pl, library, period=engine.max_delay + 1.0)
    relaxed.analyze()
    assert relaxed.worst_slack() == pytest.approx(1.0, abs=1e-6)


def test_sta_critical_path_is_connected(library):
    net = random_network(11, num_gates=30, num_outputs=3)
    map_network(net, library)
    from repro.place.placer import place

    pl = place(net, library, seed=1)
    engine = TimingEngine(net, pl, library)
    engine.analyze()
    path = engine.critical_path()
    assert path, "must find a path"
    assert net.is_input(path[0].net)
    for earlier, later in zip(path, path[1:]):
        assert earlier.net in net.gate(later.net).fanins
    assert path[-1].arrival == pytest.approx(
        max(
            engine.worst_arrival(out) for out in net.outputs
        ), rel=1e-6,
    )


def test_arrivals_monotone_along_path(library):
    net = random_network(13, num_gates=25, num_outputs=2)
    map_network(net, library)
    from repro.place.placer import place

    pl = place(net, library, seed=2)
    engine = TimingEngine(net, pl, library)
    engine.analyze()
    for point_a, point_b in zip(
        engine.critical_path(), engine.critical_path()[1:]
    ):
        assert point_b.arrival >= point_a.arrival - 1e-12


def test_swap_gain_matches_real_delay_direction(library):
    """Projected positive min-gains should usually reduce real delay."""
    from repro.symmetry.supergate import extract_supergates
    from repro.symmetry.swap import enumerate_swaps, swapped_copy

    agreements = 0
    checked = 0
    for seed in (3, 5, 8):
        net = random_network(seed, num_gates=40, num_outputs=4)
        map_network(net, library)
        from repro.place.placer import place

        pl = place(net, library, seed=seed)
        engine = TimingEngine(net, pl, library)
        engine.analyze()
        sgn = extract_supergates(net)
        for sg in sgn.nontrivial():
            for swap in enumerate_swaps(sg, leaves_only=True):
                gains = engine.swap_gain(swap)
                if gains.min_gain <= 0.003:
                    continue
                trial = swapped_copy(net, swap)
                from repro.rapids.moves import bind_new_inverters

                bind_new_inverters(
                    trial, library,
                    trial.recent_gates(len(trial) - len(net)),
                )
                trial_engine = TimingEngine(trial, pl.copy(), library)
                trial_engine.analyze()
                checked += 1
                if trial_engine.max_delay <= engine.max_delay + 1e-9:
                    agreements += 1
    if checked:
        assert agreements / checked >= 0.7, (agreements, checked)


def test_resize_gain_sign_sanity(library):
    net = random_network(17, num_gates=30, num_outputs=2)
    map_network(net, library)
    from repro.place.placer import place

    pl = place(net, library, seed=3)
    engine = TimingEngine(net, pl, library)
    engine.analyze()
    # upsizing the most critical driver should project a gain
    path = engine.critical_path()
    for point in reversed(path):
        if net.is_input(point.net):
            continue
        gate = net.gate(point.net)
        if gate.cell is None:
            continue
        cells = library.sizes_of(library.cell(gate.cell))
        bigger = [c for c in cells if c.size > library.cell(gate.cell).size]
        if not bigger:
            continue
        gains = engine.resize_gain(point.net, bigger[-1].name)
        # not strictly guaranteed, but the projection must be finite
        assert abs(gains.min_gain) < 10
        assert abs(gains.sum_gain) < 100
        break
