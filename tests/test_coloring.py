"""Differential harness for whole-netlist coloring (ISSUE 10).

Every claim the coloring makes is checked against a functional ground
truth computed by simulation, never against the coloring itself:

* cone-color class mates must compute *identical functions*
  (exhaustive sweep of the shared input cone) — zero false positives;
* the leaf symmetry classes must rediscover every swap the paper's
  per-supergate enumeration finds (superset, class-for-class), and
  each claimed class-mate pair must be NES/ES of the region root's
  cut function;
* the coloring additionally sees cross-supergate candidates the
  per-supergate walk cannot (strict superset), each of which survives
  the simulation filter;
* shape-color-deduplicated extraction must equal plain extraction
  field-for-field, with the dedup accounting consistent;
* the memoized verification layer (``TruthTableMemo``) must compute
  each distinct supergate structure exactly once (call-count
  regression for the repeated-``supergate_truth_table`` fix);
* every partition is ``PYTHONHASHSEED``-independent (subprocess
  fingerprint comparison).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.symmetry import verify as verify_module
from repro.symmetry.coloring import (
    class_swap_candidates,
    color_network,
    extract_supergates_colored,
    DedupStats,
)
from repro.symmetry.supergate import extract_supergates
from repro.symmetry.swap import enumerate_swaps
from repro.symmetry.verify import (
    TruthTableMemo,
    leaf_pair_symmetry,
    nets_functionally_equal,
    pin_pair_symmetry,
)

from helpers import random_network

SEEDS = [0, 1, 2, 3, 4, 7, 11, 19]


def _network(seed):
    """Small enough for exhaustive cut-cone ground truth (<= 20 vars)."""
    return random_network(
        seed, num_inputs=6, num_gates=30, num_outputs=3, reuse=0.7
    )


# ----------------------------------------------------------------------
# cone colors: equal color => identical function
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_cone_class_mates_are_functionally_identical(seed):
    net = _network(seed)
    coloring = color_network(net)
    checked = 0
    for _digest, members in coloring.net_classes():
        for net_a, net_b in zip(members, members[1:]):
            assert nets_functionally_equal(net, net_a, net_b), (
                f"seed {seed}: cone class mates {net_a}/{net_b} "
                "differ functionally — false positive"
            )
            checked += 1
    if checked:
        # functional equality is transitive, so consecutive pairs
        # certify the whole class; record that we exercised something
        assert checked >= 1


def test_cone_classes_found_somewhere():
    """The property suite must not pass vacuously."""
    total = sum(
        len(color_network(_network(seed)).net_classes()) for seed in SEEDS
    )
    assert total > 0, "no cone-color classes across the whole seed sweep"


# ----------------------------------------------------------------------
# leaf classes: every claimed symmetry verified, every enumerated
# swap rediscovered
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_symmetry_class_claims_hold_functionally(seed):
    net = _network(seed)
    coloring = color_network(net)
    by_root: dict = {}
    for (root, tag), pins in coloring.symmetry_classes():
        by_root.setdefault(root, {})[tag] = pins
    for root, tags in sorted(by_root.items()):
        # same tag: consecutive distinct-net pairs claim NES
        for tag, pins in sorted(tags.items(), key=lambda item: str(item[0])):
            for pin_a, pin_b in zip(pins, pins[1:]):
                if net.fanin_net(pin_a) == net.fanin_net(pin_b):
                    continue
                kinds = pin_pair_symmetry(net, root, pin_a, pin_b)
                expected = {"nes", "es"} if tag == "x" else {"nes"}
                assert expected <= kinds, (
                    f"seed {seed}: {pin_a}/{pin_b} class ({root},{tag}) "
                    f"claims {expected}, simulation says {kinds}"
                )
        # opposite 0/1 tags under one root claim ES
        if 0 in tags and 1 in tags:
            pin_a, pin_b = tags[0][0], tags[1][0]
            if net.fanin_net(pin_a) != net.fanin_net(pin_b):
                kinds = pin_pair_symmetry(net, root, pin_a, pin_b)
                assert "es" in kinds, (
                    f"seed {seed}: {pin_a}/{pin_b} across tags of {root} "
                    f"claim ES, simulation says {kinds}"
                )


@pytest.mark.parametrize("seed", SEEDS)
def test_coloring_rediscovers_per_supergate_enumeration(seed):
    """Superset: every enumerated leaf swap is a coloring class mate."""
    net = _network(seed)
    coloring = color_network(net)
    leaf_class = coloring.leaf_class
    swaps = 0
    for sg in extract_supergates(net).nontrivial():
        for swap in enumerate_swaps(sg, leaves_only=True):
            swaps += 1
            assert swap.pin_a in leaf_class, (seed, swap)
            assert swap.pin_b in leaf_class, (seed, swap)
            root_a, tag_a = leaf_class[swap.pin_a]
            root_b, tag_b = leaf_class[swap.pin_b]
            assert root_a == root_b, (
                f"seed {seed}: {swap} pins land in different regions "
                f"{root_a}/{root_b}"
            )
            if tag_a != "x":
                if swap.inverting:
                    assert tag_a != tag_b, (seed, swap)
                else:
                    assert tag_a == tag_b, (seed, swap)
    assert swaps > 0 or seed not in (0, 1), (
        "enumeration came up empty on a seed known to have swaps"
    )


def test_coloring_is_a_strict_superset():
    """Somewhere in the sweep the coloring must see candidates the
    per-supergate enumeration cannot — and they must be real."""
    cross_verified = 0
    for seed in SEEDS:
        net = random_network(
            seed, num_inputs=8, num_gates=60, num_outputs=4, reuse=0.7
        )
        coloring = color_network(net)
        per_supergate = {
            frozenset((swap.pin_a, swap.pin_b))
            for sg in extract_supergates(net).nontrivial()
            for swap in enumerate_swaps(sg, leaves_only=True)
        }
        for cand in class_swap_candidates(net, coloring):
            if frozenset((cand.pin_a, cand.pin_b)) in per_supergate:
                continue
            assert nets_functionally_equal(net, cand.net_a, cand.net_b), (
                f"seed {seed}: cross-supergate candidate "
                f"{cand.net_a}/{cand.net_b} is a false positive"
            )
            cross_verified += 1
    assert cross_verified > 0, (
        "no cross-supergate candidate beyond the per-supergate "
        "enumeration across the whole sweep — not a strict superset"
    )


def test_class_swap_footprint_covers_both_cones():
    """The conflict-model contract: a class swap's footprint holds
    both nets, every cone gate and every net a cone gate reads."""
    for seed in SEEDS:
        net = random_network(
            seed, num_inputs=8, num_gates=60, num_outputs=4, reuse=0.7
        )
        for cand in class_swap_candidates(net, color_network(net)):
            assert cand.net_a in cand.footprint
            assert cand.net_b in cand.footprint
            for name in net.fanin_cone(cand.net_a) | net.fanin_cone(
                cand.net_b
            ):
                assert name in cand.footprint, (seed, cand, name)
                for fanin in net.gate(name).fanins:
                    assert fanin in cand.footprint, (seed, cand, fanin)


# ----------------------------------------------------------------------
# deduplicated extraction: byte-identical partitions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_colored_extraction_equals_plain_extraction(seed):
    net = _network(seed)
    plain = extract_supergates(net)
    stats = DedupStats()
    colored = extract_supergates_colored(net, stats=stats)
    assert set(plain.supergates) == set(colored.supergates)
    assert plain.owner == colored.owner
    for root, sg in plain.supergates.items():
        twin = colored.supergates[root]
        assert sg.sg_class == twin.sg_class, root
        assert sg.root_value == twin.root_value, root
        assert sg.covered == twin.covered, root
        assert sg.leaves == twin.leaves, root
        assert list(sg.pin_values.items()) == list(
            twin.pin_values.items()
        ), root
        assert sg.parent_pin == twin.parent_pin, root
    assert stats.grown + stats.grafted + stats.fallbacks == len(
        colored.supergates
    )


def test_extraction_dedup_actually_grafts():
    total = DedupStats()
    for seed in SEEDS:
        extract_supergates_colored(_network(seed), stats=total)
    assert total.grafted > 0, "dedup never replayed a template"
    assert total.hit_rate > 0.0


# ----------------------------------------------------------------------
# memoized verification (the supergate_truth_table fix)
# ----------------------------------------------------------------------
def test_truth_table_memo_computes_each_structure_once(monkeypatch):
    """Call-count regression: the expensive cut-and-sweep runs once
    per distinct (content hash, width), every other lookup is a hit."""
    net = random_network(3, num_inputs=8, num_gates=60, num_outputs=4,
                         reuse=0.7)
    calls = {"n": 0}
    original = verify_module.supergate_truth_table

    def counting(*args, **kwargs):
        calls["n"] += 1
        return original(*args, **kwargs)

    monkeypatch.setattr(verify_module, "supergate_truth_table", counting)
    memo = TruthTableMemo()
    candidates = 0
    for sg in extract_supergates(net).nontrivial():
        if len(sg.leaves) > 14:
            continue
        for swap in enumerate_swaps(sg, leaves_only=True):
            kinds = leaf_pair_symmetry(
                net, sg, swap.pin_a, swap.pin_b, memo=memo
            )
            assert kinds, (sg.root, swap)
            candidates += 1
    assert candidates > 1, "regression net exercised too few candidates"
    assert calls["n"] == memo.computed
    assert memo.computed == len(memo._tables)
    assert memo.hits == candidates - memo.computed
    assert memo.hits > 0, (
        "memo never hit — repeated supergate_truth_table calls are back"
    )


# ----------------------------------------------------------------------
# PYTHONHASHSEED invariance
# ----------------------------------------------------------------------
_FINGERPRINT_SCRIPT = """
import hashlib
import sys

from repro.symmetry.coloring import class_swap_candidates, color_network
from helpers import random_network

h = hashlib.blake2b(digest_size=16)
for seed in (0, 3, 7):
    net = random_network(
        seed, num_inputs=8, num_gates=60, num_outputs=4, reuse=0.7
    )
    coloring = color_network(net)
    h.update(repr(coloring.net_classes()).encode())
    h.update(repr(coloring.symmetry_classes()).encode())
    h.update(repr(sorted(coloring.shape.items())).encode())
    h.update(repr(sorted(
        (c.pin_a, c.pin_b, c.net_a, c.net_b, sorted(c.footprint))
        for c in class_swap_candidates(net, coloring)
    )).encode())
print(h.hexdigest())
"""


def _coloring_fingerprint(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    here = os.path.dirname(__file__)
    src = os.path.abspath(os.path.join(here, os.pardir, "src"))
    env["PYTHONPATH"] = os.pathsep.join([src, here])
    result = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT],
        capture_output=True, text=True, env=env, check=True, timeout=300,
    )
    return result.stdout.strip()


def test_coloring_fingerprint_independent_of_hash_seed():
    fingerprints = {
        seed: _coloring_fingerprint(seed) for seed in ("1", "4242", "random")
    }
    assert len(set(fingerprints.values())) == 1, (
        "coloring depends on PYTHONHASHSEED: "
        + ", ".join(f"{s}->{f}" for s, f in fingerprints.items())
    )
