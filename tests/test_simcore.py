"""Compiled vectorized simulation core: backends, engine, fault sim.

The load-bearing property: the numpy backend must match the bigint
reference backend (and the historical ``repro.logic.simulate`` walker)
bit-for-bit — on random networks, at random pattern widths including
non-multiples of 64, and after random mutations followed by
incremental resimulation.
"""

from __future__ import annotations

import random

import pytest

from repro.atpg.faults import all_faults
from repro.atpg.podem import find_test, generate_tests
from repro.atpg.redundancy import untestable_fault_count
from repro.logic.simcore import (
    AdaptiveBackend,
    FaultSimulator,
    SimEngine,
    choose_backend,
    compile_network,
    estimate_sweep_costs,
    get_compiled,
    make_backend,
    numpy_available,
    pack_tests,
    random_pattern_block,
    sweep_shape,
)
from repro.logic.simulate import random_words, simulate, truth_tables
from repro.network.builder import NetworkBuilder
from repro.network.gatetype import GateType
from repro.network.netlist import Pin

from helpers import random_network

BACKENDS = ["bigint"] + (["numpy"] if numpy_available() else [])

WIDTHS = [1, 7, 64, 65, 100, 128, 200, 257]


# ----------------------------------------------------------------------
# compiled form
# ----------------------------------------------------------------------
def test_compiled_form_shape():
    net = random_network(3, num_inputs=4, num_gates=12, num_outputs=2)
    compiled = compile_network(net)
    assert compiled.num_inputs == len(net.inputs)
    assert compiled.num_gates == len(net)
    assert list(compiled.gate_names) == net.topo_order()
    assert len(compiled.po_index) == len(net.outputs)
    # every gate's fanins are compiled before it
    for position in range(compiled.num_gates):
        for fanin in compiled.fanins_of(position):
            assert fanin < compiled.num_inputs + position


def test_get_compiled_caches_and_invalidates():
    net = random_network(4, num_gates=10)
    first = get_compiled(net)
    assert get_compiled(net) is first
    name = next(net.gate_names())
    # a cell rebind patches the shared view in place: same object,
    # version kept current, logic arrays untouched
    net.set_cell(name, None)
    assert get_compiled(net) is first
    assert first.version == net.version
    # a structural mutation forces a fresh compile
    gate = net.gate(name)
    net.set_fanins(name, list(gate.fanins))
    assert get_compiled(net) is not first
    assert get_compiled(net).version == net.version


def test_get_compiled_absorbs_pin_rewiring_in_place():
    net = random_network(7, num_inputs=5, num_gates=14, num_outputs=2)
    first = get_compiled(net)
    revision = first.revision
    # find a gate pin that can legally point at a primary input it
    # does not already read
    for gate in net.gates():
        for index, fanin in enumerate(gate.fanins):
            for candidate in net.inputs:
                if candidate not in gate.fanins:
                    net.replace_fanin(Pin(gate.name, index), candidate)
                    patched = get_compiled(net)
                    assert patched is first
                    assert patched.revision > revision
                    assert patched.version == net.version
                    slot = patched.fanin_offset[
                        patched.position_of(gate.name)
                    ] + index
                    assert (
                        patched.fanin_flat[slot]
                        == patched.net_index[candidate]
                    )
                    return
    pytest.skip("no legal rewiring candidate in the random net")


# ----------------------------------------------------------------------
# backends agree with each other and with the reference walker
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_reference_walker(backend):
    for seed in range(8):
        net = random_network(seed, num_inputs=6, num_gates=22, num_outputs=3)
        engine = SimEngine(net, backend)
        rng = random.Random(seed)
        for width in WIDTHS:
            assignments = random_words(net.inputs, width=width, seed=rng.randrange(999))
            engine.set_patterns(assignments, width)
            reference = simulate(net, assignments, mask=(1 << width) - 1)
            assert engine.words() == reference, (seed, backend, width)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_numpy_matches_bigint_bit_for_bit():
    for seed in range(10):
        net = random_network(seed, num_inputs=7, num_gates=30, num_outputs=4)
        big = SimEngine(net, "bigint")
        vec = SimEngine(net, "numpy")
        for width in WIDTHS:
            assignments = random_words(net.inputs, width=width, seed=seed)
            big.set_patterns(assignments, width)
            vec.set_patterns(assignments, width)
            assert big.words() == vec.words(), (seed, width)


@pytest.mark.parametrize("backend", BACKENDS)
def test_truth_tables_match_reference(backend):
    for seed in range(6):
        net = random_network(seed, num_inputs=5, num_gates=15)
        engine = SimEngine(net, backend)
        assert engine.truth_tables() == truth_tables(net), (seed, backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_constants_and_wide_gates(backend):
    builder = NetworkBuilder("consts")
    a, b = builder.inputs(2)
    builder.gate(GateType.CONST1, name="one")
    builder.gate(GateType.CONST0, name="zero")
    wide = builder.gate(GateType.NAND, a, b, "one", name="wide")
    builder.output(builder.gate(GateType.XNOR, wide, "zero", name="f"))
    net = builder.build()
    engine = SimEngine(net, backend)
    for width in (1, 3, 64, 130):
        assignments = random_words(net.inputs, width=width, seed=1)
        engine.set_patterns(assignments, width)
        assert engine.words() == simulate(
            net, assignments, mask=(1 << width) - 1
        )


# ----------------------------------------------------------------------
# adaptive "auto" backend: shape-driven choice, bit-identical results
# ----------------------------------------------------------------------
def _deep_narrow_chain(depth: int = 160):
    """Alternating INV/NAND2 chain: one gate per level, width <= 2."""
    builder = NetworkBuilder("chain")
    head, side = builder.inputs(2)
    current = head
    for step in range(depth):
        if step % 2:
            current = builder.gate(GateType.NAND, current, side,
                                   name=f"n{step}")
        else:
            current = builder.gate(GateType.INV, current, name=f"n{step}")
    builder.output(current)
    return builder.build()


def _wide_shallow_xor(levels: int = 4, width: int = 144,
                      num_inputs: int = 48):
    """c499-flavoured XOR mesh: few levels, >100 same-op gates each."""
    builder = NetworkBuilder("wide")
    current = builder.inputs(num_inputs)
    for level in range(levels):
        current = [
            builder.gate(
                GateType.XOR,
                current[k % len(current)],
                current[(k * 7 + 3) % len(current)],
                name=f"l{level}_{k}",
            )
            for k in range(width)
        ]
    for net in current[::3]:
        builder.output(net)
    return builder.build()


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_auto_resolves_bigint_on_deep_narrow_chain():
    """One-gate level groups leave numpy nothing to amortize its ufunc
    dispatch over: bigint wins deep narrow control logic at every
    measured block width (the regime bench_simulate recorded)."""
    net = _deep_narrow_chain()
    compiled = get_compiled(net)
    shape = sweep_shape(compiled)
    assert shape.mean_group_size <= 2.0  # genuinely narrow
    for width in (64, 256, 4096):
        assert choose_backend(compiled, width) == "bigint", width
    engine = SimEngine(net, "auto")
    engine.set_random_patterns(width=64, seed=0)
    assert engine.resolved_backend == "bigint"


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_auto_resolves_numpy_on_wide_shallow_xor():
    net = _wide_shallow_xor()
    compiled = get_compiled(net)
    shape = sweep_shape(compiled)
    assert shape.mean_group_size >= 16.0  # genuinely wide
    for width in (64, 256, 4096):
        assert choose_backend(compiled, width) == "numpy", width
    engine = SimEngine(net, "auto")
    engine.set_random_patterns(width=64, seed=0)
    assert engine.resolved_backend == "numpy"


def test_auto_without_numpy_is_bigint_everywhere(monkeypatch):
    import repro.logic.simcore.backends as backends_module

    monkeypatch.setattr(backends_module, "_np", None)
    nets = (
        _deep_narrow_chain(40),
        _wide_shallow_xor(levels=2, width=48, num_inputs=24),
    )
    for net in nets:
        compiled = compile_network(net)
        assert backends_module.choose_backend(compiled, 64) == "bigint"
        backend = backends_module.make_backend("auto")
        assert backend.resolve(compiled, 64).name == "bigint"


def test_sweep_costs_are_shape_monotone():
    """More words must never make a backend look cheaper."""
    compiled = get_compiled(_deep_narrow_chain(60))
    previous = (0.0, 0.0)
    for width in (1, 64, 256, 1024):
        costs = estimate_sweep_costs(compiled, width)
        assert costs[0] >= previous[0] and costs[1] >= previous[1]
        previous = costs


@pytest.mark.parametrize(
    "net_builder", [_deep_narrow_chain, _wide_shallow_xor],
    ids=["chain", "wide-xor"],
)
def test_auto_bit_identical_to_both_explicit_backends(net_builder):
    """Whatever "auto" picks, every word matches both explicit
    backends — including widths that are not multiples of 64."""
    net = net_builder()
    engines = {name: SimEngine(net, name) for name in ["auto"] + BACKENDS}
    for width in (1, 63, 65, 100, 257):
        assignments = random_words(net.inputs, width=width, seed=width)
        words = {}
        for name, engine in engines.items():
            engine.set_patterns(assignments, width)
            words[name] = engine.words()
        for name in BACKENDS:
            assert words["auto"] == words[name], (net.name, width, name)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_adaptive_state_survives_incremental_resimulation():
    """The choice travels with the state: mutate + resimulate on an
    auto engine must keep matching the reference walker."""
    net = random_network(21, num_inputs=6, num_gates=25, num_outputs=3)
    engine = SimEngine(net, "auto")
    assert isinstance(engine.backend, AdaptiveBackend)
    rng = random.Random(21)
    assignments = random_words(net.inputs, width=100, seed=21)
    engine.set_patterns(assignments, 100)
    for _ in range(15):
        _random_safe_mutation(net, rng)
        engine.resimulate()
        assert engine.words() == simulate(net, assignments, (1 << 100) - 1)


# ----------------------------------------------------------------------
# import surface: the package facade is the supported entry point
# ----------------------------------------------------------------------
def test_simcore_import_surface_is_complete():
    """Everything consumers need importable from ``repro.logic.simcore``
    itself (not its submodules), declared in ``__all__``, and resolvable."""
    import repro.logic.simcore as simcore

    required = {
        "SimEngine", "get_compiled", "FaultSimulator",
        "AdaptiveBackend", "BigintBackend", "NumpyBackend", "SimBackend",
        "CompiledNetwork", "SweepShape", "choose_backend",
        "compile_network", "estimate_sweep_costs", "eval_word",
        "fault_simulate", "make_backend", "numpy_available",
        "pack_tests", "random_pattern_block", "sweep_shape",
    }
    missing = required - set(simcore.__all__)
    assert not missing, f"missing from simcore __all__: {sorted(missing)}"
    for name in simcore.__all__:
        assert getattr(simcore, name, None) is not None, name
    # the logic package facade re-exports the engine-level surface too
    import repro.logic as logic

    for name in ("SimEngine", "get_compiled", "FaultSimulator",
                 "AdaptiveBackend", "choose_backend", "sweep_shape"):
        assert getattr(logic, name) is getattr(simcore, name), name
        assert name in logic.__all__, name


# ----------------------------------------------------------------------
# incremental resimulation after mutations
# ----------------------------------------------------------------------
def _random_safe_mutation(net, rng):
    """Apply one function-changing mutation that keeps the DAG acyclic."""
    gates = [g.name for g in net.gates() if g.arity() >= 1]
    name = rng.choice(gates)
    gate = net.gate(name)
    kind = rng.choice(["replace", "swap", "settype"])
    if kind == "replace":
        pin = Pin(name, rng.randrange(gate.arity()))
        forbidden = net.fanout_cone(name) | {name}
        candidates = [x for x in net.nets() if x not in forbidden]
        net.replace_fanin(pin, rng.choice(candidates))
    elif kind == "swap":
        other_name = rng.choice(gates)
        other = net.gate(other_name)
        pin_a = Pin(name, rng.randrange(gate.arity()))
        pin_b = Pin(other_name, rng.randrange(other.arity()))
        net_a, net_b = net.fanin_net(pin_a), net.fanin_net(pin_b)
        if (
            net_b in net.fanout_cone(name) or net_b == name
            or net_a in net.fanout_cone(other_name) or net_a == other_name
        ):
            return  # would create a cycle; skip this step
        net.swap_fanins(pin_a, pin_b)
    else:
        if gate.arity() == 1:
            net.set_gate_type(
                name, rng.choice([GateType.INV, GateType.BUF])
            )
        else:
            net.set_gate_type(name, rng.choice([
                GateType.AND, GateType.OR, GateType.XOR,
                GateType.NAND, GateType.NOR, GateType.XNOR,
            ]))


@pytest.mark.parametrize("backend", BACKENDS)
def test_incremental_resimulation_matches_fresh(backend):
    for seed in range(8):
        base = random_network(seed, num_inputs=6, num_gates=25, num_outputs=3)
        net = base.copy()
        rng = random.Random(seed + 1000)
        engine = SimEngine(net, backend)
        width = rng.choice(WIDTHS)
        assignments = random_words(net.inputs, width=width, seed=seed)
        engine.set_patterns(assignments, width)
        for step in range(25):
            _random_safe_mutation(net, rng)
            engine.resimulate()
            reference = simulate(net, assignments, mask=(1 << width) - 1)
            assert engine.words() == reference, (seed, backend, step)
        # rewiring steps must actually have used the incremental path
        assert engine.incremental_updates > 0, (seed, backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_incremental_cheaper_than_full_sweep(backend):
    """A single swap must not re-evaluate the whole network."""
    net = random_network(2, num_inputs=8, num_gates=60, num_outputs=4)
    engine = SimEngine(net, backend)
    assignments = random_words(net.inputs, width=64, seed=0)
    engine.set_patterns(assignments, 64)
    evals_before = engine.gate_evals
    # swap two fanins of one gate: dirties two gates' fanout cones only
    gate = next(g for g in net.gates() if g.arity() >= 2)
    net.swap_fanins(Pin(gate.name, 0), Pin(gate.name, 1))
    engine.resimulate()
    assert engine.gate_evals - evals_before < len(net)


def test_exhaustive_patterns_require_full_support():
    """A support that misses a primary input fails loudly, like the
    reference ``truth_tables`` (no silent zero-fill)."""
    net = random_network(0, num_inputs=4, num_gates=8)
    engine = SimEngine(net)
    with pytest.raises(KeyError):
        engine.set_exhaustive_patterns(support=net.inputs[:-1])


def test_structural_mutation_forces_consistent_state():
    net = random_network(5, num_inputs=5, num_gates=15, num_outputs=2)
    engine = SimEngine(net)
    assignments = random_words(net.inputs, width=96, seed=5)
    engine.set_patterns(assignments, 96)
    new = net.fresh_name("extra")
    net.add_gate(new, GateType.AND, [net.inputs[0], net.inputs[1]])
    net.replace_fanin(Pin(next(net.gate_names()), 0), new)
    engine.resimulate()
    assert engine.words() == simulate(net, assignments, mask=(1 << 96) - 1)


# ----------------------------------------------------------------------
# fault simulation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_fault_simulator_agrees_with_forced_resimulation(backend):
    for seed in range(6):
        net = random_network(seed, num_inputs=5, num_gates=16, num_outputs=3)
        assignments, num = random_pattern_block(
            net.inputs, width=64, seed=seed, rounds=2
        )
        mask = (1 << num) - 1
        good = simulate(net, assignments, mask)
        simulator = FaultSimulator(net, backend)
        simulator.load_patterns(assignments, num)
        for fault in all_faults(net, include_branches=True):
            expected = _brute_force_detects(net, fault, assignments, mask, good)
            got = bool(simulator.detecting_patterns(fault))
            assert got == expected, (seed, backend, str(fault))


def _brute_force_detects(net, fault, assignments, mask, good):
    words = {}
    for pi in net.inputs:
        word = assignments[pi] & mask
        if fault.pin is None and fault.net == pi:
            word = mask if fault.stuck_at else 0
        words[pi] = word
    for name in net.topo_order():
        gate = net.gate(name)
        fanin_words = []
        for index, fanin in enumerate(gate.fanins):
            word = words[fanin]
            if fault.pin == Pin(name, index) and fault.net == fanin:
                word = mask if fault.stuck_at else 0
            fanin_words.append(word)
        word = gate.eval(fanin_words, mask)
        if fault.pin is None and fault.net == name:
            word = mask if fault.stuck_at else 0
        words[name] = word
    return any(words[out] != good[out] for out in net.outputs)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_fault_simulation_identical_across_backends():
    for seed in range(5):
        net = random_network(seed, num_inputs=6, num_gates=20, num_outputs=3)
        assignments, num = random_pattern_block(net.inputs, width=64, seed=seed)
        faults = list(all_faults(net, include_branches=True))
        reports = {}
        for backend in ("bigint", "numpy"):
            simulator = FaultSimulator(net, backend)
            simulator.load_patterns(assignments, num)
            reports[backend] = [
                simulator.detecting_patterns(fault) for fault in faults
            ]
        assert reports["bigint"] == reports["numpy"], seed


# ----------------------------------------------------------------------
# ATPG integration: test generation with batch fault dropping
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_generate_tests_classification_sound(backend):
    for seed in range(4):
        net = random_network(seed, num_inputs=5, num_gates=14, num_outputs=2)
        report = generate_tests(net, backend=backend, max_backtracks=4000)
        total = (
            len(report.detected) + len(report.untestable)
            + len(report.undecided)
        )
        assert total == len(list(all_faults(net, include_branches=False)))
        # every fault PODEM proved untestable really has no test
        for fault in report.untestable:
            assert find_test(net, fault=fault).test is None, str(fault)
        # every claim of detection is backed by simulation: the
        # reported random block plus the PODEM tests must together
        # detect every fault in the detected list
        if report.detected:
            simulator = FaultSimulator(net, backend)
            still = list(report.detected)
            if report.random_block is not None:
                assignments, num = report.random_block
                simulator.load_patterns(assignments, num)
                still = simulator.run(still).undetected
            if report.tests and still:
                assignments, num = pack_tests(net.inputs, report.tests)
                simulator.load_patterns(assignments, num)
                still = simulator.run(still).undetected
            assert not still, (seed, [str(f) for f in still])


def test_generate_tests_drops_most_faults_without_podem():
    net = random_network(1, num_inputs=7, num_gates=40, num_outputs=4)
    report = generate_tests(net, max_backtracks=4000)
    total = (
        len(report.detected) + len(report.untestable) + len(report.undecided)
    )
    # the vectorized random pre-pass must carry most of the load: PODEM
    # may only run for the residue it left behind
    assert report.random_dropped > 0
    assert report.podem_calls < total
    assert report.podem_calls == total - report.random_dropped - report.sim_dropped


@pytest.mark.parametrize("backend", BACKENDS)
def test_untestable_fault_count_matches_search_only(backend):
    for seed in range(4):
        net = random_network(seed, num_inputs=5, num_gates=12, num_outputs=2)
        filtered = untestable_fault_count(
            net, max_backtracks=4000, random_filter=True, backend=backend
        )
        baseline = untestable_fault_count(
            net, max_backtracks=4000, random_filter=False
        )
        # with a generous budget both classify everything identically
        assert filtered == baseline, seed
