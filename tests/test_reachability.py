"""Definition 1 predicates and Theorem 1 (reachability <=> symmetry)."""

from repro.network.builder import NetworkBuilder
from repro.network.netlist import Pin
from repro.symmetry.reachability import (
    and_or_implied_value,
    and_or_reachable,
    reachability_class,
    xor_reachable,
)
from repro.symmetry.verify import pin_pair_symmetry

from helpers import random_network


def test_and_or_reachability_basic():
    builder = NetworkBuilder()
    a, b, c = builder.inputs(3)
    inner = builder.nor(a, b, name="inner")
    f = builder.and_(inner, c, name="f")
    builder.output(f)
    net = builder.build()
    # f=1 forces inner=1 and c=1; NOR=1 forces a=b=0
    assert and_or_implied_value(net, Pin("f", 1), "f") == 1
    assert and_or_implied_value(net, Pin("inner", 0), "f") == 0
    assert and_or_implied_value(net, Pin("inner", 1), "f") == 0
    assert and_or_reachable(net, Pin("inner", 0), "f")
    assert not xor_reachable(net, Pin("inner", 0), "f")


def test_reachability_stops_at_nonforcing():
    builder = NetworkBuilder()
    a, b, c = builder.inputs(3)
    inner = builder.and_(a, b, name="inner")
    f = builder.or_(inner, c, name="f")
    builder.output(f)
    net = builder.build()
    # f=0 forces inner=0, but AND=0 forces nothing below
    assert and_or_reachable(net, Pin("f", 0), "f")
    assert not and_or_reachable(net, Pin("inner", 0), "f")


def test_reachability_stops_at_multifanout():
    builder = NetworkBuilder()
    a, b, c = builder.inputs(3)
    shared = builder.and_(a, b, name="shared")
    g = builder.and_(shared, c, name="g")
    h = builder.inv(shared, name="h")
    builder.output(g)
    builder.output(h)
    net = builder.build()
    # shared has two fanouts: growth from g must not enter it
    assert not and_or_reachable(net, Pin("shared", 0), "g")
    assert and_or_reachable(net, Pin("g", 0), "g")


def test_xor_reachability():
    builder = NetworkBuilder()
    a, b, c = builder.inputs(3)
    x1 = builder.xor(a, b, name="x1")
    f = builder.xnor(x1, c, name="f")
    builder.output(f)
    net = builder.build()
    assert xor_reachable(net, Pin("x1", 0), "f")
    assert xor_reachable(net, Pin("f", 1), "f")
    assert not and_or_reachable(net, Pin("x1", 0), "f")


def test_xor_reachability_blocked_by_andor():
    builder = NetworkBuilder()
    a, b, c = builder.inputs(3)
    inner = builder.and_(a, b, name="inner")
    f = builder.xor(inner, c, name="f")
    builder.output(f)
    net = builder.build()
    assert xor_reachable(net, Pin("f", 0), "f")
    assert not xor_reachable(net, Pin("inner", 0), "f")
    assert not and_or_reachable(net, Pin("inner", 0), "f")


def test_classes_are_mutually_exclusive():
    """The paper: and-or and xor reachability are mutually exclusive."""
    for seed in range(20):
        net = random_network(seed, num_gates=15)
        roots = list(net.gate_names())
        for root in roots:
            for name in net.gate_names():
                for pin in net.gate(name).pins():
                    ao = and_or_reachable(net, pin, root)
                    xo = xor_reachable(net, pin, root)
                    assert not (ao and xo), (seed, root, pin)


def test_theorem1_reachable_pins_are_symmetric():
    """Theorem 1, soundness direction, on fanout-free constructions.

    If two pins are both and-or-reachable or both xor-reachable from a
    root (paths not containing each other), they are functionally
    symmetric w.r.t. the root.
    """
    checked = 0
    for seed in range(12):
        net = random_network(seed, num_gates=10, num_outputs=1, reuse=0.1)
        for root in list(net.gate_names())[-4:]:
            pins = [
                pin
                for name in net.gate_names()
                for pin in net.gate(name).pins()
            ]
            reach = {
                pin: reachability_class(net, pin, root) for pin in pins
            }
            both_ao = [p for p, c in reach.items() if c == "and-or"]
            both_xo = [p for p, c in reach.items() if c == "xor"]
            for group in (both_ao, both_xo):
                for i in range(len(group)):
                    for j in range(i + 1, len(group)):
                        pin_a, pin_b = group[i], group[j]
                        if _on_same_path(net, pin_a, pin_b, root):
                            continue
                        kinds = pin_pair_symmetry(net, root, pin_a, pin_b)
                        assert kinds, (seed, root, pin_a, pin_b)
                        checked += 1
    assert checked > 20


def _on_same_path(net, pin_a, pin_b, root) -> bool:
    """Proper-containment guard for the Theorem 1 test."""
    cone_a = net.fanin_cone(net.fanin_net(pin_a)) | {net.fanin_net(pin_a)}
    cone_b = net.fanin_cone(net.fanin_net(pin_b)) | {net.fanin_net(pin_b)}
    return pin_b.gate in cone_a or pin_a.gate in cone_b or (
        pin_a.gate == pin_b.gate and pin_a.index == pin_b.index
    )
