"""Network container: construction, queries, mutation, caching."""

import pytest

from repro.network.gatetype import GateType
from repro.network.netlist import Network, NetworkError, Pin

from helpers import random_network


def build_simple() -> Network:
    net = Network("simple")
    net.add_input("a")
    net.add_input("b")
    net.add_input("c")
    net.add_gate("g1", GateType.AND, ["a", "b"])
    net.add_gate("g2", GateType.OR, ["g1", "c"])
    net.add_output("g2")
    return net


def test_membership_and_lookup():
    net = build_simple()
    assert "a" in net and "g1" in net and "zzz" not in net
    assert net.gate("g1").gtype is GateType.AND
    assert net.is_input("a") and not net.is_input("g1")
    assert net.driver("a") is None
    assert net.driver("g2").name == "g2"
    with pytest.raises(NetworkError):
        net.gate("a")  # PIs have no gate
    with pytest.raises(NetworkError):
        net.driver("zzz")


def test_duplicate_names_rejected():
    net = build_simple()
    with pytest.raises(NetworkError):
        net.add_input("a")
    with pytest.raises(NetworkError):
        net.add_gate("g1", GateType.AND, ["a", "b"])
    with pytest.raises(NetworkError):
        net.add_gate("a", GateType.AND, ["b", "c"])


def test_arity_checked_at_creation():
    net = Network("t")
    net.add_input("x")
    with pytest.raises(NetworkError):
        net.add_gate("bad", GateType.INV, ["x", "x"])
    with pytest.raises(NetworkError):
        net.add_gate("bad", GateType.AND, ["x"])
    with pytest.raises(NetworkError):
        net.add_gate("bad", GateType.CONST0, ["x"])


def test_fanout_map():
    net = build_simple()
    assert net.fanout("a") == [Pin("g1", 0)]
    assert net.fanout("g1") == [Pin("g2", 0)]
    assert net.fanout("g2") == []
    assert net.fanout_degree("g2") == 1  # the primary output counts
    assert net.fanout_degree("g1") == 1
    assert net.fanout_degree("c") == 1


def test_topo_order_and_cycle_detection():
    net = build_simple()
    order = net.topo_order()
    assert order.index("g1") < order.index("g2")
    # create a cycle
    net.replace_fanin(Pin("g1", 0), "g2")
    with pytest.raises(NetworkError):
        net.topo_order()


def test_levels_and_depth():
    net = build_simple()
    levels = net.levels()
    assert levels["a"] == 0
    assert levels["g1"] == 1
    assert levels["g2"] == 2
    assert net.depth() == 2


def test_cones():
    net = build_simple()
    assert net.fanin_cone("g2") == {"g1", "g2"}
    assert net.cone_inputs("g2") == ["a", "b", "c"]
    assert net.cone_inputs("g1") == ["a", "b"]
    assert net.fanout_cone("a") == {"g1", "g2"}
    assert net.cone_inputs("a") == ["a"]


def test_replace_and_swap_fanins():
    net = build_simple()
    old = net.replace_fanin(Pin("g1", 1), "c")
    assert old == "b"
    assert net.gate("g1").fanins == ["a", "c"]
    net.swap_fanins(Pin("g1", 0), Pin("g2", 1))
    assert net.gate("g1").fanins == ["c", "c"]
    assert net.gate("g2").fanins == ["g1", "a"]
    with pytest.raises(NetworkError):
        net.replace_fanin(Pin("g1", 0), "nope")


def test_remove_gate_guards():
    net = build_simple()
    with pytest.raises(NetworkError):
        net.remove_gate("g1")  # still drives g2
    with pytest.raises(NetworkError):
        net.remove_gate("g2")  # primary output
    net.replace_fanin(Pin("g2", 0), "a")
    net.remove_gate("g1")
    assert "g1" not in net


def test_replace_output():
    net = build_simple()
    net.replace_output("g2", "g1")
    assert net.outputs == ["g1"]
    with pytest.raises(NetworkError):
        net.replace_output("g1", "zzz")


def test_version_bumps_invalidate_caches():
    net = build_simple()
    first = net.topo_order()
    version = net.version
    net.replace_fanin(Pin("g2", 1), "a")
    assert net.version > version
    second = net.topo_order()
    assert second is not first


def test_copy_is_deep():
    net = build_simple()
    dup = net.copy()
    dup.gate("g1").fanins[0] = "c"
    assert net.gate("g1").fanins[0] == "a"
    dup.add_input("d")
    assert "d" not in net


def test_recent_gates():
    net = build_simple()
    assert net.recent_gates(1) == ["g2"]
    assert net.recent_gates(2) == ["g1", "g2"]
    assert net.recent_gates(0) == []


def test_fresh_name_never_collides():
    net = build_simple()
    name1 = net.fresh_name("g1")
    assert name1 != "g1" and name1 not in net
    assert net.fresh_name("brand_new") == "brand_new"


def test_stats_keys():
    net = build_simple()
    stats = net.stats()
    assert stats["gates"] == 2
    assert stats["inputs"] == 3
    assert stats["outputs"] == 1
    assert stats["depth"] == 2
    assert stats["n_and"] == 1


def test_random_networks_are_deterministic():
    one = random_network(7)
    two = random_network(7)
    assert list(one.gate_names()) == list(two.gate_names())
    assert [g.fanins for g in one.gates()] == [g.fanins for g in two.gates()]
