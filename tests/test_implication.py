"""Direct backward implication: the engine behind supergate growth."""

from repro.logic.implication import (
    backward_imply,
    forward_value,
    implies_inputs,
)
from repro.logic.simulate import truth_tables
from repro.network.builder import NetworkBuilder
from repro.network.gatetype import GateType

from helpers import random_network


def test_implies_inputs_table():
    assert implies_inputs(GateType.AND, 1) == 1
    assert implies_inputs(GateType.AND, 0) is None
    assert implies_inputs(GateType.NAND, 0) == 1
    assert implies_inputs(GateType.NAND, 1) is None
    assert implies_inputs(GateType.OR, 0) == 0
    assert implies_inputs(GateType.NOR, 1) == 0
    assert implies_inputs(GateType.XOR, 0) is None
    assert implies_inputs(GateType.XOR, 1) is None
    assert implies_inputs(GateType.INV, 1) == 0
    assert implies_inputs(GateType.INV, 0) == 1
    assert implies_inputs(GateType.BUF, 1) == 1


def test_paper_example_and_gate():
    # Section 2.0: "let type(g) = AND and v=1. All in-pins of g are
    # inferred with logic value 1."
    builder = NetworkBuilder()
    a, b, c = builder.inputs(3)
    g = builder.and_(a, b, c, name="g")
    builder.output(g)
    net = builder.build()
    result = backward_imply(net, "g", 1)
    assert result.values == {"g": 1, "i0": 1, "i1": 1, "i2": 1}
    assert not result.conflicts and not result.agreements


def test_implication_stops_at_nonforcing_value():
    builder = NetworkBuilder()
    a, b, c = builder.inputs(3)
    inner = builder.and_(a, b, name="inner")
    f = builder.or_(inner, c, name="f")
    builder.output(f)
    net = builder.build()
    result = backward_imply(net, "f", 0)
    # f=0 forces inner=0 and c=0, but AND=0 does not force a, b
    assert result.values == {"f": 0, "inner": 0, "i2": 0}
    assert "inner" in result.frontier


def test_implication_through_wires():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    inv = builder.inv(a, name="n")
    f = builder.and_(inv, b, name="f")
    builder.output(f)
    net = builder.build()
    result = backward_imply(net, "f", 1)
    assert result.values["n"] == 1
    assert result.values["i0"] == 0  # through the inverter


def test_conflict_detected_on_reconvergence():
    # f = AND(x, INV(x)): f=1 implies x=1 and (via INV) x=0
    builder = NetworkBuilder()
    x = builder.input()
    inv = builder.inv(x, name="n")
    f = builder.and_(x, inv, name="f")
    builder.output(f)
    net = builder.build()
    result = backward_imply(net, "f", 1)
    assert result.conflicts == [x]


def test_agreement_detected_on_reconvergence():
    # h = AND(AND(x, y), x): forcing h=1 reaches stem x twice with 1
    builder = NetworkBuilder()
    x, y = builder.inputs(2)
    g = builder.and_(x, y, name="g")
    h = builder.and_(g, x, name="h")
    builder.output(h)
    net = builder.build()
    result = backward_imply(net, "h", 1)
    assert result.agreements == [x]
    assert result.values[x] == 1


def test_cross_fanout_flag_stops_at_stems():
    builder = NetworkBuilder()
    x, y = builder.inputs(2)
    g = builder.and_(x, y, name="g")
    h = builder.and_(g, x, name="h")
    builder.output(h)
    builder.output(g)  # g is also observed: multi-fanout
    net = builder.build()
    confined = backward_imply(net, "h", 1, cross_fanout=False)
    assert "g" in confined.frontier
    assert "i1" not in confined.values
    free = backward_imply(net, "h", 1, cross_fanout=True)
    assert free.values.get("i1") == 1


def test_implied_values_are_sound():
    """Every implication must hold on every satisfying input vector."""
    for seed in range(15):
        net = random_network(seed, num_gates=12, num_outputs=1)
        tables = truth_tables(net)
        num_vars = len(net.inputs)
        for target in list(net.gate_names())[:6]:
            for value in (0, 1):
                result = backward_imply(net, target, value)
                if result.conflicts:
                    continue
                for minterm in range(1 << num_vars):
                    if ((tables[target] >> minterm) & 1) != value:
                        continue
                    for net_name, implied in result.values.items():
                        actual = (tables[net_name] >> minterm) & 1
                        assert actual == implied, (
                            seed, target, value, net_name, minterm,
                        )


def test_forward_value_helper():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    f = builder.and_(a, b, name="f")
    builder.output(f)
    net = builder.build()
    assert forward_value(net, {"i0": 1, "i1": 1}, "f") == 1
    assert forward_value(net, {"i0": 1}, "f") is None
    assert forward_value(net, {"i0": 0}, "i0") == 0
