"""The fault-injection harness itself: plans, hooks, determinism.

``repro.parallel.faults`` carries a :class:`FaultPlan` through the
``REPRO_FAULT_PLAN`` environment variable so forked workers inherit
it, and every hook is a pure function of (plan, submission index).
These tests pin the plan round-trip, the per-point hook behavior, and
the no-plan fast path; the chaos tests in ``test_parallel_eval.py``
and ``test_partitioned_rewiring.py`` drive the hooks end to end.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.parallel import faults


def test_plan_round_trips_through_the_environment():
    plan = faults.FaultPlan({
        "worker": {0: {"action": "kill"}, 3: {"action": "stale"}},
        "checkpoint_round": {2: {"action": "sigterm"}},
    })
    rebuilt = faults.FaultPlan.from_env(plan.to_env())
    assert rebuilt.entries == plan.entries
    assert rebuilt.get("worker", 0) == {"action": "kill"}
    assert rebuilt.get("worker", 1) is None
    assert rebuilt.get("nonexistent", 0) is None


def test_active_scopes_and_restores_the_environment():
    previous = os.environ.get(faults.ENV_VAR)
    with faults.active({"worker": {0: {"action": "stale"}}}):
        assert faults.ENV_VAR in os.environ
        assert faults.spec("worker", 0) == {"action": "stale"}
    assert os.environ.get(faults.ENV_VAR) == previous
    assert faults.spec("worker", 0) is None


def test_hooks_are_noops_without_a_plan():
    with faults.active(None):
        assert faults.worker_fault(0) is None
        assert faults.worker_fault(-1) is None
        assert not faults.decode_fault("shm_attach", 0)
        assert faults.checkpoint_fault(1) is None


def test_malformed_plan_payload_is_ignored(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, "{not json")
    assert faults.spec("worker", 0) is None
    assert faults.worker_fault(0) is None


def test_worker_fault_exception_and_stale_and_delay():
    plan = {
        "worker": {
            0: {"action": "exception"},
            1: {"action": "stale"},
            2: {"action": "delay", "seconds": 0.0},
        },
    }
    with faults.active(plan):
        with pytest.raises(faults.FaultInjected):
            faults.worker_fault(0)
        assert faults.worker_fault(1) == "stale"
        assert faults.worker_fault(2) is None   # delayed, then proceeds
        assert faults.worker_fault(3) is None   # unplanned index


def test_decode_fault_keys_on_point_and_token():
    with faults.active({"shm_attach": {5: {"action": "fail"}}}):
        assert faults.decode_fault("shm_attach", 5)
        assert not faults.decode_fault("shm_attach", 4)
        assert not faults.decode_fault("corrupt_delta", 5)
        # the sentinel token (no parent submission) never fires
        assert not faults.decode_fault("shm_attach", -1)


def test_checkpoint_fault_raises_a_real_sigterm():
    received = []
    previous = signal.signal(
        signal.SIGTERM, lambda signum, frame: received.append(signum)
    )
    try:
        with faults.active({"checkpoint_round": {7: {"action": "sigterm"}}}):
            assert faults.checkpoint_fault(6) is None
            assert faults.checkpoint_fault(7) == "sigterm"
    finally:
        signal.signal(signal.SIGTERM, previous)
    assert received == [signal.SIGTERM]


def test_hooks_carry_the_lint_exemption_marker():
    # the worker-global lint rule exempts @fault_hook functions (their
    # whole purpose is to consult process-wide plan state from worker
    # entries); the marker must actually be present
    for hook in (faults.worker_fault, faults.decode_fault, faults.spec):
        assert getattr(hook, "__fault_hook__", False), hook.__name__
