"""Synthesis pipeline: strash, decomposition, phase mapping, binding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.builder import NetworkBuilder
from repro.network.gatetype import CONST_TYPES, GateType
from repro.network.validate import check_network
from repro.synth.mapper import (
    decompose,
    is_mapped,
    map_network,
    mapping_stats,
    network_area,
)
from repro.synth.phase import phase_map
from repro.synth.strash import script_rugged, simplify_trivial, strash
from repro.verify.equiv import networks_equivalent

from helpers import random_network

_MAPPED_TYPES = frozenset(
    {
        GateType.NAND, GateType.NOR, GateType.XOR, GateType.XNOR,
        GateType.INV, GateType.BUF,
    }
) | CONST_TYPES


def test_strash_merges_duplicates():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    g1 = builder.and_(a, b)
    g2 = builder.and_(b, a)  # same multiset of fanins
    f = builder.or_(g1, g2, name="f")
    builder.output(f)
    net = builder.build()
    reference = net.copy()
    merged = strash(net)
    assert merged == 1
    assert networks_equivalent(reference, net)


def test_strash_cascades():
    builder = NetworkBuilder()
    a, b, c = builder.inputs(3)
    g1 = builder.and_(a, b)
    g2 = builder.and_(a, b)
    h1 = builder.or_(g1, c)
    h2 = builder.or_(g2, c)
    f = builder.xor(h1, h2, name="f")
    builder.output(f)
    net = builder.build()
    reference = net.copy()
    merged = strash(net)
    assert merged >= 2  # the merge of g's makes the h's identical too
    assert networks_equivalent(reference, net)


def test_simplify_trivial():
    from repro.network.netlist import Network

    net = Network("t")
    net.add_input("a")
    net.add_input("b")
    net.add_gate("g", GateType.AND, ["a", "b"])
    net.add_output("g")
    # degenerate arity appears only through direct mutation (generators,
    # constant folding); the checked constructor refuses it
    net.gate("g").fanins = ["a"]
    net._touch()
    assert simplify_trivial(net) == 1
    assert net.gate("g").gtype is GateType.BUF


def test_script_rugged_preserves_function():
    for seed in range(10):
        net = random_network(seed, num_gates=22)
        reference = net.copy()
        script_rugged(net)
        assert networks_equivalent(reference, net), seed


def test_decompose_respects_library_arity(library):
    builder = NetworkBuilder()
    nets = builder.inputs(9)
    builder.output(builder.gate(GateType.AND, *nets, name="wide"))
    builder.output(builder.gate(GateType.XNOR, *nets[:5], name="wx"))
    net = builder.build()
    reference = net.copy()
    decompose(net, library)
    check_network(net)
    for gate in net.gates():
        if gate.gtype in (GateType.NAND, GateType.NOR, GateType.AND,
                          GateType.OR):
            assert gate.arity() <= 4
        if gate.gtype in (GateType.XOR, GateType.XNOR):
            assert gate.arity() <= 2
    assert networks_equivalent(reference, net)


def test_phase_map_only_inverting_cells():
    for seed in range(10):
        net = random_network(seed, num_gates=18, max_arity=4)
        mapped = phase_map(net)
        check_network(mapped)
        for gate in mapped.gates():
            assert gate.gtype in _MAPPED_TYPES, (seed, gate)
        assert networks_equivalent(net, mapped), seed


def test_phase_map_shares_pi_inverters():
    builder = NetworkBuilder()
    a, b, c = builder.inputs(3)
    # two ORs in negative contexts need 'a' inverted twice
    f = builder.and_(builder.or_(a, b), builder.or_(a, c), name="f")
    builder.output(f)
    net = builder.build()
    mapped = phase_map(net)
    inverters_of_a = [
        g for g in mapped.gates()
        if g.gtype is GateType.INV and g.fanins == ["i0"]
    ]
    assert len(inverters_of_a) <= 1


def test_map_network_full_pipeline(library):
    for seed in range(8):
        net = random_network(seed, num_gates=20, max_arity=5)
        reference = net.copy()
        map_network(net, library)
        check_network(net)
        assert is_mapped(net)
        assert networks_equivalent(reference, net), seed
        for gate in net.gates():
            if gate.cell is not None:
                cell = library.cell(gate.cell)
                assert cell.function is gate.gtype
                assert cell.arity == gate.arity()


def test_wlm_sizing_upsizes_heavy_fanout(library):
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    hub = builder.and_(a, b, name="hub")
    for index in range(12):
        builder.output(builder.nand(hub, a, name=f"o{index}"))
    net = builder.build()
    map_network(net, library)
    hub_cell = library.cell(net.gate("hub").cell)
    leaf_cell = library.cell(net.gate("o3").cell)
    assert hub_cell.size > leaf_cell.size


def test_area_and_stats(library):
    net = random_network(3, num_gates=15)
    map_network(net, library)
    area = network_area(net, library)
    assert area > 0
    stats = mapping_stats(net, library)
    assert stats["area"] == area
    assert stats["gates"] == len(net)


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=30, deadline=None)
def test_mapping_equivalence_property(seed):
    library = __import__(
        "repro.library.cells", fromlist=["default_library"]
    ).default_library()
    net = random_network(seed, num_inputs=4, num_gates=12, max_arity=5)
    reference = net.copy()
    map_network(net, library)
    assert networks_equivalent(reference, net)
