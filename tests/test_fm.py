"""Edge cases and determinism of the FM bipartitioner.

``place.fm.bipartition`` used to be exercised only through the placer;
the partitioned-rewiring carve (``place.regions``) now feeds it
geometry-seeded initial partitions and degenerate sub-hypergraphs
(single cells, empty nets, wildly skewed weights), so its corners get
direct coverage here.  The hash-seed test mirrors
``test_determinism.py``: FM tie-breaks must not follow set iteration
order, or the carve — and the whole partitioned trajectory — would
differ per process.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

from repro.place.fm import FmResult, bipartition


def _random_hypergraph(
    seed: int, num_cells: int, num_nets: int, max_pins: int = 4
) -> list[list[int]]:
    rng = random.Random(seed)
    nets = []
    for _ in range(num_nets):
        pins = rng.randint(2, max_pins)
        nets.append(rng.sample(range(num_cells), min(pins, num_cells)))
    return nets


def _cut(nets: list[list[int]], side: list[int]) -> int:
    return sum(
        1 for net in nets
        if net and any(side[c] != side[net[0]] for c in net)
    )


def test_empty_and_single_cell():
    empty = bipartition(0, [])
    assert empty.side == [] and empty.cut == 0
    single = bipartition(1, [[0]])
    assert single.side in ([0], [1])
    assert single.cut == 0


def test_two_cells_connected():
    result = bipartition(2, [[0, 1]])
    assert sorted(result.side) in ([0, 0], [0, 1], [1, 1])
    assert result.cut == _cut([[0, 1]], result.side)


def test_valid_partition_properties():
    for seed in range(5):
        nets = _random_hypergraph(seed, num_cells=30, num_nets=45)
        result = bipartition(30, nets, seed=seed)
        assert isinstance(result, FmResult)
        assert len(result.side) == 30
        assert set(result.side) <= {0, 1}
        # the reported cut describes the returned partition
        assert result.cut == _cut(nets, result.side)
        assert 1 <= result.passes <= 8


def test_balance_bound_respected():
    nets = _random_hypergraph(7, num_cells=40, num_nets=60)
    result = bipartition(40, nets, balance=0.55, seed=7)
    heavy = max(result.side.count(0), result.side.count(1))
    # classic FM slack: the ratio bound may be exceeded by one cell
    assert heavy <= 0.55 * 40 + 1


def test_balance_infeasible_weights_still_valid():
    # one cell outweighs everything: no balanced split exists, but the
    # result must still be a valid two-sided partition with a truthful
    # cut (the max_side formula admits the giant on either side)
    nets = [[0, 1], [1, 2], [2, 3], [3, 0]]
    weights = [1000.0, 1.0, 1.0, 1.0]
    result = bipartition(4, nets, weights=weights, seed=3)
    assert len(result.side) == 4
    assert set(result.side) <= {0, 1}
    assert result.cut == _cut(nets, result.side)


def test_initial_partition_skips_random_seed():
    # with an explicit initial partition the RNG is never consulted:
    # different seeds must produce identical refined partitions
    nets = _random_hypergraph(11, num_cells=24, num_nets=36)
    initial = [i % 2 for i in range(24)]
    a = bipartition(24, nets, seed=1, initial=initial)
    b = bipartition(24, nets, seed=999, initial=initial)
    assert a.side == b.side
    assert a.cut == b.cut


def test_refinement_never_worse_than_initial():
    nets = _random_hypergraph(13, num_cells=24, num_nets=36)
    initial = [i % 2 for i in range(24)]
    refined = bipartition(24, nets, initial=initial)
    assert refined.cut <= _cut(nets, initial)


_FM_FINGERPRINT_SCRIPT = """
import random
from repro.place.fm import bipartition

rng = random.Random(5)
nets = [rng.sample(range(60), rng.randint(2, 4)) for _ in range(90)]
result = bipartition(60, nets, seed=5)
print("".join(map(str, result.side)), result.cut)
"""


def _run_fm(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    result = subprocess.run(
        [sys.executable, "-c", _FM_FINGERPRINT_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=120,
    )
    return result.stdout.strip()


def test_bipartition_independent_of_hash_seed():
    outcomes = {seed: _run_fm(seed) for seed in ("1", "4242", "random")}
    assert len(set(outcomes.values())) == 1, (
        "FM partition depends on PYTHONHASHSEED: "
        + ", ".join(f"{s}->{o}" for s, o in outcomes.items())
    )
