"""Vectorized incremental wirelength engine + batched rewiring.

Locks the PR-4 contracts:

* cached per-net boxes == fresh ``total_hpwl`` to 1e-9 under random
  applied-swap sequences (incremental correctness);
* structural mutations invalidate the flattening (engine notices);
* candidate pricing fires **zero** mutation events (listener spy);
* batch deltas are bit-identical to scalar and to the interpreted
  trial-apply-and-revert computation;
* batched rewiring preserves function on random networks x random
  placements and never lengthens the total;
* candidate enumeration is deduplicated, same-net-free and
  ``PYTHONHASHSEED``-independent (subprocess comparison).
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest

from repro.network.gatetype import GateType
from repro.place.hpwl import WirelengthEngine
from repro.place.placement import net_hpwl, total_hpwl
from repro.place.placer import place
from repro.rapids.wirelength import reduce_wirelength, swap_hpwl_delta
from repro.symmetry.supergate import extract_supergates
from repro.symmetry.swap import enumerate_swaps
from repro.synth.mapper import map_network
from repro.verify.equiv import networks_equivalent

from helpers import random_network


def prepared(seed, library, gates=60):
    net = random_network(seed, num_gates=gates, num_outputs=4)
    map_network(net, library)
    placement = place(net, library, seed=seed)
    return net, placement


def leaf_pairs(net):
    sgn = extract_supergates(net)
    pairs = []
    for sg in sgn.nontrivial():
        for swap in enumerate_swaps(
            sg, leaves_only=True, include_inverting=False, network=net
        ):
            pairs.append((swap.pin_a, swap.pin_b))
    return pairs


class EventSpy:
    """Counts every mutation event the network emits."""

    def __init__(self, network):
        self.events = []
        network.subscribe(self)

    def notify_network_event(self, kind, data):
        self.events.append(kind)


def test_incremental_matches_fresh_total(library):
    for seed in (41, 42, 43):
        net, placement = prepared(seed, library)
        engine = WirelengthEngine(net, placement)
        rng = random.Random(seed)
        pairs = leaf_pairs(net)
        if not pairs:
            continue
        for _ in range(30):
            pin_a, pin_b = rng.choice(pairs)
            if net.fanin_net(pin_a) != net.fanin_net(pin_b):
                net.swap_fanins(pin_a, pin_b)
            assert engine.total_hpwl() == pytest.approx(
                total_hpwl(net, placement), abs=1e-9
            )
        # the whole sequence rode the event hook, never a rebuild
        assert engine.rebuilds == 1


def test_structural_mutation_invalidates(library):
    net, placement = prepared(44, library)
    engine = WirelengthEngine(net, placement)
    before = engine.total_hpwl()
    assert before == pytest.approx(total_hpwl(net, placement), abs=1e-9)
    # splice an inverter in front of some sink: structural mutation
    gate = next(g for g in net.gates() if g.fanins)
    victim = gate.fanins[0]
    inv = net.fresh_name(f"{victim}_spy")
    net.add_gate(inv, GateType.INV, [victim])
    net.replace_fanin(
        next(iter(gate.pins())), inv
    )
    placement.ensure_covered(net)
    assert engine.total_hpwl() == pytest.approx(
        total_hpwl(net, placement), abs=1e-9
    )
    assert engine.rebuilds == 2


def test_candidate_pricing_fires_zero_events(library):
    net, placement = prepared(45, library)
    engine = WirelengthEngine(net, placement)
    engine.refresh()
    pairs = leaf_pairs(net)
    assert pairs, "seed produced no swap candidates"
    spy = EventSpy(net)
    engine.score_swaps(pairs)
    for pin_a, pin_b in pairs[:10]:
        engine.swap_delta(pin_a, pin_b)
    sgn = extract_supergates(net)
    for sg in sgn.nontrivial():
        for swap in enumerate_swaps(
            sg, leaves_only=True, include_inverting=False
        ):
            swap_hpwl_delta(net, placement, swap)
    assert spy.events == [], f"pricing mutated the network: {spy.events}"


def test_batch_deltas_bit_identical_to_interpreted(library):
    for seed in (46, 47):
        net, placement = prepared(seed, library)
        engine = WirelengthEngine(net, placement)
        pairs = leaf_pairs(net)
        batch = engine.score_swaps(pairs)
        for (pin_a, pin_b), batch_delta in zip(pairs, batch):
            scalar = engine.swap_delta(pin_a, pin_b)
            net_a = net.fanin_net(pin_a)
            net_b = net.fanin_net(pin_b)
            before = net_hpwl(net, placement, net_a) + net_hpwl(
                net, placement, net_b
            )
            net.swap_fanins(pin_a, pin_b)
            after = net_hpwl(net, placement, net_a) + net_hpwl(
                net, placement, net_b
            )
            net.swap_fanins(pin_a, pin_b)
            interpreted = after - before
            assert batch_delta == interpreted, (seed, pin_a, pin_b)
            assert scalar == interpreted, (seed, pin_a, pin_b)


def test_batched_preserves_function_and_total(library):
    improved_any = False
    for seed in (48, 49, 50, 51):
        net, placement = prepared(seed, library)
        reference = net.copy()
        before = total_hpwl(net, placement)
        result = reduce_wirelength(net, placement, batched=True)
        after = total_hpwl(net, placement)
        assert result.mode == "batched"
        assert after <= before + 1e-6
        assert result.final_hpwl == pytest.approx(after, abs=1e-9)
        assert networks_equivalent(reference, net), seed
        if result.swaps_applied or result.cross_swaps_applied:
            improved_any = True
    assert improved_any, "no seed produced a single batched move"


def test_batched_is_idempotent(library):
    net, placement = prepared(52, library)
    reduce_wirelength(net, placement, batched=True)
    again = reduce_wirelength(net, placement, batched=True)
    assert again.swaps_applied == 0
    assert again.cross_swaps_applied == 0


def test_enumeration_dedupes_same_net_pairs(library):
    for seed in (53, 54):
        net, _ = prepared(seed, library)
        sgn = extract_supergates(net)
        for sg in sgn.nontrivial():
            swaps = list(enumerate_swaps(
                sg, leaves_only=True, include_inverting=False, network=net
            ))
            keys = [(s.pin_a, s.pin_b) for s in swaps]
            assert len(keys) == len(set(keys))
            for swap in swaps:
                assert net.fanin_net(swap.pin_a) != net.fanin_net(swap.pin_b)


_TRAJECTORY_SCRIPT = """
import hashlib, sys
sys.path.insert(0, {tests_dir!r})
from helpers import random_network
from repro.library.cells import default_library
from repro.place.placer import place
from repro.rapids.wirelength import reduce_wirelength
from repro.synth.mapper import map_network

library = default_library()
net = random_network(55, num_gates=70, num_outputs=4)
map_network(net, library)
placement = place(net, library, seed=55)
result = reduce_wirelength(net, placement, batched=True)
digest = hashlib.blake2b(digest_size=16)
for name in sorted(net.gate_names()):
    gate = net.gate(name)
    digest.update(f"{{name}}:{{gate.gtype.value}}:{{','.join(gate.fanins)}}".encode())
digest.update(f"{{result.final_hpwl:.9f}}:{{result.swaps_applied}}".encode())
print(digest.hexdigest())
"""


def test_batched_trajectory_hash_seed_independent():
    """The batched apply order must not depend on PYTHONHASHSEED."""
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )
    script = _TRAJECTORY_SCRIPT.format(
        tests_dir=os.path.abspath(os.path.dirname(__file__))
    )
    fingerprints = {}
    for seed in ("1", "9001"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = src
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
            timeout=300,
        )
        fingerprints[seed] = result.stdout.strip()
    assert len(set(fingerprints.values())) == 1, fingerprints
