"""Gate-type algebra: controlling values, inversion, evaluation."""

import pytest

from repro.network.gatetype import (
    GateType,
    base_type,
    complement_type,
    controlling_value,
    demorgan_dual,
    eval_gate,
    forced_input_value,
    forcing_output_value,
    is_inverted,
    max_arity,
    min_arity,
    noncontrolling_value,
)


def test_base_type_strips_inversion():
    assert base_type(GateType.NAND) is GateType.AND
    assert base_type(GateType.NOR) is GateType.OR
    assert base_type(GateType.XNOR) is GateType.XOR
    assert base_type(GateType.INV) is GateType.BUF
    assert base_type(GateType.AND) is GateType.AND


def test_inverted_flags():
    assert is_inverted(GateType.NAND)
    assert is_inverted(GateType.NOR)
    assert is_inverted(GateType.XNOR)
    assert is_inverted(GateType.INV)
    assert not is_inverted(GateType.AND)
    assert not is_inverted(GateType.BUF)


def test_complement_type_is_involution():
    for gtype in GateType:
        assert complement_type(complement_type(gtype)) is gtype


def test_controlling_values_match_paper():
    # Section 2.0: for AND, cv = 0
    assert controlling_value(GateType.AND) == 0
    assert controlling_value(GateType.NAND) == 0
    assert controlling_value(GateType.OR) == 1
    assert controlling_value(GateType.NOR) == 1
    assert controlling_value(GateType.XOR) is None
    assert controlling_value(GateType.INV) is None


def test_noncontrolling_is_opposite():
    for gtype in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR):
        assert noncontrolling_value(gtype) == 1 - controlling_value(gtype)


@pytest.mark.parametrize(
    "gtype,expected",
    [
        (GateType.AND, 1),   # AND=1 forces all inputs 1
        (GateType.NAND, 0),  # NAND=0 forces all inputs 1
        (GateType.OR, 0),
        (GateType.NOR, 1),
        (GateType.XOR, None),
        (GateType.XNOR, None),
    ],
)
def test_forcing_output_value(gtype, expected):
    assert forcing_output_value(gtype) == expected


def test_forced_input_value_is_ncv():
    assert forced_input_value(GateType.AND) == 1
    assert forced_input_value(GateType.NAND) == 1
    assert forced_input_value(GateType.OR) == 0
    assert forced_input_value(GateType.NOR) == 0


def test_demorgan_dual():
    assert demorgan_dual(GateType.AND) is GateType.OR
    assert demorgan_dual(GateType.NAND) is GateType.NOR
    with pytest.raises(ValueError):
        demorgan_dual(GateType.XOR)


def test_eval_gate_truth_tables():
    # two variables: a=0b0101 (lsb-first minterms), b=0b0011
    a, b = 0b1010, 0b1100
    mask = 0b1111
    assert eval_gate(GateType.AND, [a, b], mask) == 0b1000
    assert eval_gate(GateType.OR, [a, b], mask) == 0b1110
    assert eval_gate(GateType.XOR, [a, b], mask) == 0b0110
    assert eval_gate(GateType.NAND, [a, b], mask) == 0b0111
    assert eval_gate(GateType.NOR, [a, b], mask) == 0b0001
    assert eval_gate(GateType.XNOR, [a, b], mask) == 0b1001
    assert eval_gate(GateType.INV, [a], mask) == 0b0101
    assert eval_gate(GateType.BUF, [a], mask) == a


def test_eval_gate_constants():
    assert eval_gate(GateType.CONST0, [], 0b1111) == 0
    assert eval_gate(GateType.CONST1, [], 0b1111) == 0b1111


def test_eval_gate_wide():
    words = [0b1111, 0b1110, 0b1100]
    assert eval_gate(GateType.AND, words, 0b1111) == 0b1100
    assert eval_gate(GateType.OR, words, 0b1111) == 0b1111


def test_eval_gate_rejects_bad_arity():
    with pytest.raises(ValueError):
        eval_gate(GateType.INV, [1, 2], 3)
    with pytest.raises(ValueError):
        eval_gate(GateType.AND, [], 1)


def test_arity_bounds():
    assert min_arity(GateType.INV) == 1
    assert max_arity(GateType.INV) == 1
    assert min_arity(GateType.AND) == 2
    assert max_arity(GateType.AND) is None
    assert min_arity(GateType.CONST0) == 0
    assert max_arity(GateType.CONST1) == 0
