"""Command-line interface and the equivalence checker itself."""

import pytest

from repro.cli import main
from repro.network.builder import NetworkBuilder
from repro.verify.equiv import (
    EquivalenceError,
    assert_equivalent,
    find_counterexample,
    networks_equivalent,
)

from helpers import random_network


# ----------------------------------------------------------------------
# equivalence checking
# ----------------------------------------------------------------------
def test_identical_networks_equivalent():
    net = random_network(31)
    assert networks_equivalent(net, net.copy())


def test_single_gate_difference_detected():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    builder.output(builder.and_(a, b, name="f"))
    net = builder.build()
    other = net.copy()
    from repro.network.gatetype import GateType

    other.set_gate_type("f", GateType.OR)
    assert not networks_equivalent(net, other)
    example = find_counterexample(net, other)
    assert example is not None
    from repro.logic.simulate import simulate_outputs

    assert simulate_outputs(net, example) != simulate_outputs(other, example)


def test_interface_mismatch_is_inequivalent():
    net = random_network(32)
    other = net.copy()
    other.add_input("extra")
    assert not networks_equivalent(net, other)


def test_assert_equivalent_raises_with_counterexample():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    builder.output(builder.xor(a, b, name="f"))
    net = builder.build()
    other = net.copy()
    from repro.network.gatetype import GateType

    other.set_gate_type("f", GateType.XNOR)
    with pytest.raises(EquivalenceError):
        assert_equivalent(net, other)
    assert_equivalent(net, net.copy())


def test_wide_networks_use_bdd_path():
    net = random_network(33, num_inputs=18, num_gates=30)
    assert networks_equivalent(net, net.copy(), exhaustive_limit=4)


def _buffered_and(direct: bool):
    """AND of two inputs, with or without an intermediate buffer net."""
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    if direct:
        builder.output(builder.and_(a, b, name="f"))
    else:
        mid = builder.and_(a, b, name="mid")
        builder.output(builder.buf(mid, name="f"))
    return builder.build()


def test_bdd_path_handles_nets_deleted_from_after():
    # redundancy removal deletes whole nets: the clean-cone sweep must
    # treat a net missing from *after* as dirty, not crash on lookup
    before = _buffered_and(direct=False)
    after = _buffered_and(direct=True)
    assert "mid" not in after
    assert networks_equivalent(before, after, exhaustive_limit=0)
    assert networks_equivalent(after, before, exhaustive_limit=0)
    from repro.network.gatetype import GateType

    broken = _buffered_and(direct=True)
    broken.set_gate_type("f", GateType.OR)
    assert not networks_equivalent(before, broken, exhaustive_limit=0)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "alu2" in out and "s38417" in out


def test_cli_unknown_benchmark_exits_cleanly(capsys):
    assert main(["bench", "alu3"]) == 2
    err = capsys.readouterr().err
    assert "unknown benchmark 'alu3'" in err
    assert "alu2" in err


def test_cli_bench_small(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.12")
    assert main(["bench", "c432", "--scale", "0.12"]) == 0
    out = capsys.readouterr().out
    assert "initial delay" in out
    assert "gsg_gs" in out


def test_cli_symmetries_on_blif(tmp_path, capsys):
    from repro.network.blif import blif_text

    net = random_network(34, num_gates=12)
    path = tmp_path / "toy.blif"
    path.write_text(blif_text(net))
    assert main(["symmetries", str(path)]) == 0
    out = capsys.readouterr().out
    assert "supergates" in out


def test_cli_symmetries_on_bench(tmp_path, capsys):
    from repro.network.bench_io import bench_text

    net = random_network(35, num_gates=12)
    path = tmp_path / "toy.bench"
    path.write_text(bench_text(net))
    assert main(["symmetries", str(path)]) == 0
    assert "swap" in capsys.readouterr().out.replace("swappable", "swap")
