"""The @fault_hook exemption: hook bodies pass, their callees don't."""

from repro.contracts import fault_hook, worker_entry

_PLAN_CACHE = {}
TALLY = {}


@worker_entry
def run_shard(task):
    return _plan_for(task)


@fault_hook
def _plan_for(task):
    # exempt: the hook's documented parsed-plan cache
    _PLAN_CACHE[task.token] = task.plan
    return _tally(task)


def _tally(task):
    TALLY[task.key] = 1  # a hook callee is NOT exempt
    return TALLY[task.key]
