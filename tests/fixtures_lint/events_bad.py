"""Seeded events-rule violations: every class the rule must catch."""


class BadEmitter:
    def add_widget(self, name):
        # unregistered kind + bare string
        self._touch(("add_widget", {"gate": name}))

    def add_gate(self, name, fanins):
        # registered kind, bare string, payload misses 'fanins' and
        # smuggles an unregistered operand
        self._touch(("add_gate", {"gate": name, "extra": fanins}))


class PartialListener:
    """Handles two kinds, ignores the rest silently: both findings."""

    def notify_network_event(self, event):
        kind, data = event
        if kind == "replace_fanin":
            self.dirty(data["pin"])
        elif kind == "swap_fanins":
            # operand misuse: 'old' is not in swap_fanins' schema
            self.dirty(data["old"])

    def dirty(self, pin):
        pass
