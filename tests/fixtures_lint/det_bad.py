"""The exact PR-2 PYTHONHASHSEED bug patterns, pre-fix.

Three historical sites, reproduced shape-for-shape so the determinism
rule is regression-locked against the bug class it was built for:

* ``anneal_cost`` — ``placer._anneal``: HPWL float accumulation in
  set-iteration order;
* ``resize_gain`` — ``TimingEngine.resize_gain``: cap sum over an
  unsorted fanin set;
* ``bounded_swaps`` — ``rapids.wirelength._bounded_swaps``: min()
  selection whose key cannot break ties, falling back to set order.
"""

__deterministic__ = True


def anneal_cost(affected_nets: set, net_hpwl):
    delta = 0.0
    for net in affected_nets:  # hash order feeds the float sum
        delta += net_hpwl(net)
    return delta


def resize_gain(gate, cap):
    total = 0.0
    for fanin in set(gate.fanins):  # dedup, then hash-order sum
        total += cap[fanin]
    return total


def bounded_swaps(candidates: frozenset, pin_slack):
    # equal slacks tie-break in hash order
    return min(candidates, key=lambda pin: pin_slack(pin))


def first_improving(moves: set, gain):
    best = None
    for move in moves:  # first-wins selection in hash order
        if gain(move) > 0:
            best = move
            break
    return best
