"""Blessed purity idioms: read-only projection, local overlays."""

from repro.contracts import projection_only


@projection_only
def projected_delta(network, gate, candidate):
    overlay = dict(network.gates[gate].fanins_map())
    overlay[candidate.pin] = candidate.net
    return sum(_arc_delay(network, net) for net in overlay.values())


def _arc_delay(network, net):
    # reads cached analysis; never mutates, never emits
    return network.arrival.get(net, 0.0)


class Pricer:
    @projection_only
    def gains(self, network, moves):
        return [projected_delta(network, m.gate, m) for m in moves]
