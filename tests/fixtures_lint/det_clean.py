"""The PR-2 sites as fixed: sorted iteration and tie-broken keys."""

__deterministic__ = True


def anneal_cost(affected_nets: set, net_hpwl):
    delta = 0.0
    for net in sorted(affected_nets):
        delta += net_hpwl(net)
    return delta


def resize_gain(gate, cap):
    total = 0.0
    for fanin in sorted(set(gate.fanins)):
        total += cap[fanin]
    return total


def bounded_swaps(candidates: frozenset, pin_slack):
    # the element itself in the key tuple breaks slack ties
    return min(candidates, key=lambda pin: (pin_slack(pin), pin))


def bare_min(weights: set):
    # no key at all: ordered by the element values themselves — safe
    return min(weights)


def waived(stars: set, rc):
    total = 0.0
    for star in stars:  # lint: allow(determinism)
        total += rc(star)
    return total
