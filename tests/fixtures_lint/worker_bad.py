"""Seeded worker-safety violations: direct, transitive, and methods."""

from repro.contracts import worker_entry

RESULT_CACHE = {}
SEEN = set()
COUNTER = 0


@worker_entry
def run_shard(task):
    RESULT_CACHE[task.key] = _evaluate(task)
    return RESULT_CACHE[task.key]


def _evaluate(task):
    global COUNTER
    COUNTER += 1  # rebinding through `global`
    SEEN.add(task.key)  # mutating method on a module global
    return COUNTER
