"""Seeded purity violations: direct, transitive, and emission cases."""

from repro.contracts import projection_only


@projection_only
def direct_mutation(network, gate):
    network.set_cell(gate, "INVX4")
    return 0.0


@projection_only
def transitive_mutation(network, gate):
    return _helper(network, gate)


def _helper(network, gate):
    # reached through the module-local call graph
    network.replace_fanin(gate, "a", "b")
    return 0.0


class Pricer:
    @projection_only
    def gains(self, network):
        # event emission is as impure as the mutation it signals
        network._touch()
        return []
