"""Blessed worker idioms: locals, parameters, and the explicit waiver."""

from repro.contracts import worker_entry

BASELINES = {}


@worker_entry
def run_shard(task, scratch=None):
    scratch = scratch if scratch is not None else {}
    scratch[task.key] = _evaluate(task, scratch)
    return scratch[task.key]


def _evaluate(task, scratch):
    # session-keyed worker cache, waived on purpose (ROADMAP item 3)
    BASELINES[task.token] = task.baseline  # lint: allow(worker-global)
    local = set()
    local.add(task.key)
    return len(local)
