"""Blessed events idioms: constants, full coverage, kind-set dispatch."""

from repro.network import events

_STRUCTURAL = frozenset({
    events.ADD_GATE,
    events.REMOVE_GATE,
    events.SET_FANINS,
    events.ADD_INPUT,
    events.ADD_OUTPUT,
    events.REPLACE_OUTPUT,
    events.RESTORE,
    events.UNKNOWN,
})


class GoodEmitter:
    def add_gate(self, name, fanins):
        self._touch((events.ADD_GATE, {"gate": name, "fanins": tuple(fanins)}))

    def out_of_band(self):
        self._touch()  # bare touch: reaches listeners as 'unknown'


class FullListener:
    """Every kind mentioned: handled, set-dispatched, or catch-all."""

    def notify_network_event(self, event):
        kind, data = event
        if kind == events.REPLACE_FANIN:
            self.dirty(data["pin"], data["old"], data["new"])
        elif kind == events.SWAP_FANINS:
            self.dirty(data["pin_a"], data["net_a"], data["net_b"])
        elif kind in (events.SET_CELL, events.SET_GATE_TYPE):
            pass  # geometry-neutral: explicitly ignored
        elif kind in _STRUCTURAL:
            self.rebuild()
        else:
            # unregistered/future kinds: full invalidation
            self.rebuild()

    def dirty(self, *args):
        pass

    def rebuild(self):
        pass
