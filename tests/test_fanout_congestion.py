"""Fanout buffering (the paper's future-work item) and congestion."""


from repro.network.builder import NetworkBuilder
from repro.place.congestion import congestion_map, congestion_stats
from repro.place.placer import place
from repro.rapids.fanout import (
    buffer_net,
    heavy_nets,
    optimize_fanout,
)
from repro.synth.mapper import map_network
from repro.verify.equiv import networks_equivalent

from helpers import random_network


def hub_network(library, sinks=20):
    """One gate driving many spread-out consumers."""
    builder = NetworkBuilder("hub")
    a, b = builder.inputs(2)
    hub = builder.and_(a, b, name="hub")
    for index in range(sinks):
        builder.output(builder.nand(hub, a, name=f"o{index}"))
    net = builder.build()
    map_network(net, library)
    placement = place(net, library, seed=0)
    return net, placement


def test_heavy_nets_ordering(library):
    net, _ = hub_network(library)
    heavy = heavy_nets(net, min_fanout=4)
    assert heavy and heavy[0][0] in ("hub", "i0")
    degrees = [degree for _, degree in heavy]
    assert degrees == sorted(degrees, reverse=True)


def test_buffer_net_splits_sinks(library):
    net, placement = hub_network(library)
    reference = net.copy()
    added = buffer_net(net, placement, library, "hub", cluster_size=5)
    assert added >= 2
    # hub now drives only buffers
    for pin in net.fanout("hub"):
        assert net.gate(pin.gate).gtype.name == "BUF"
    # buffers are placed and bound to cells
    for pin in net.fanout("hub"):
        assert pin.gate in placement.locations
        assert net.gate(pin.gate).cell is not None
    assert networks_equivalent(reference, net)


def test_buffer_net_skips_small_nets(library):
    net, placement = hub_network(library, sinks=3)
    assert buffer_net(net, placement, library, "hub", cluster_size=6) == 0


def test_optimize_fanout_never_worsens(library):
    net, placement = hub_network(library, sinks=30)
    reference = net.copy()
    result = optimize_fanout(net, placement, library, min_fanout=6)
    assert result.final_delay <= result.initial_delay + 1e-9
    assert networks_equivalent(reference, net)
    if result.buffers_added:
        assert result.improvement_percent > 0


def test_optimize_fanout_on_random_logic(library):
    net = random_network(41, num_gates=60, num_outputs=6)
    map_network(net, library)
    placement = place(net, library, seed=1)
    reference = net.copy()
    result = optimize_fanout(net, placement, library, min_fanout=5)
    assert result.final_delay <= result.initial_delay + 1e-9
    assert networks_equivalent(reference, net)


# ----------------------------------------------------------------------
# congestion
# ----------------------------------------------------------------------
def test_congestion_map_shape_and_positivity(library):
    net, placement = hub_network(library)
    grid = congestion_map(net, placement, bins=8)
    assert len(grid) == 8 and all(len(row) == 8 for row in grid)
    assert sum(sum(row) for row in grid) > 0


def test_congestion_stats(library):
    net, placement = hub_network(library)
    stats = congestion_stats(net, placement, bins=8)
    assert stats.peak >= stats.average > 0
    assert 0 <= stats.overflow_fraction <= 1
    assert stats.total_bins == 64


def test_shorter_wires_reduce_congestion(library):
    """Section 5's congestion claim, tested via wirelength rewiring."""
    from repro.rapids.wirelength import reduce_wirelength

    improved = 0
    for seed in (42, 43, 44):
        net = random_network(seed, num_gates=60, num_outputs=6)
        map_network(net, library)
        placement = place(net, library, seed=seed)
        before = congestion_stats(net, placement)
        result = reduce_wirelength(net, placement)
        after = congestion_stats(net, placement)
        if result.swaps_applied and after.average < before.average:
            improved += 1
    # at least one instance must show the congestion relief
    assert improved >= 1
