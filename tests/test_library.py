"""Standard-cell library: structure, delay model, scaling laws."""

import pytest

from repro.library.cells import (
    Library,
    UNIT_WIRE_CAP_PER_UM,
    UNIT_WIRE_RES_PER_UM,
    default_library,
    wire_capacitance,
    wire_resistance,
)
from repro.network.gatetype import GateType


def test_paper_cell_set_present(library):
    # INV, BUF, NAND, NOR, XOR, XNOR with 2..4 inputs, 4 sizes each
    assert len(library.implementations(GateType.INV, 1)) == 4
    assert len(library.implementations(GateType.BUF, 1)) == 4
    for arity in (2, 3, 4):
        assert len(library.implementations(GateType.NAND, arity)) == 4
        assert len(library.implementations(GateType.NOR, arity)) == 4
    assert len(library.implementations(GateType.XOR, 2)) == 4
    assert len(library.implementations(GateType.XNOR, 2)) == 4


def test_paper_wire_constants():
    # Section 6: 2 pF/cm and 2.4 kOhm/cm
    assert UNIT_WIRE_CAP_PER_UM == pytest.approx(2.0e-4)
    assert UNIT_WIRE_RES_PER_UM == pytest.approx(2.4e-4)
    assert wire_capacitance(10_000) == pytest.approx(2.0)   # 1 cm
    assert wire_resistance(10_000) == pytest.approx(2.4)


def test_sizes_sorted_and_scaling_monotone(library):
    for function, arity in library.functions():
        cells = library.implementations(function, arity)
        sizes = [cell.size for cell in cells]
        assert sizes == sorted(sizes)
        for small, big in zip(cells, cells[1:]):
            assert big.rise_resistance < small.rise_resistance
            assert big.fall_resistance < small.fall_resistance
            assert big.input_cap > small.input_cap
            assert big.area > small.area


def test_logical_effort_roughly_constant(library):
    """R * Cin should not collapse with size (upsizing is not free)."""
    for function, arity in library.functions():
        cells = library.implementations(function, arity)
        efforts = [
            cell.rise_resistance * cell.input_cap for cell in cells
        ]
        assert max(efforts) / min(efforts) < 2.5


def test_delay_model_load_dependence(library):
    cell = library.cell("NAND2_X2")
    assert cell.delay(0.1, "rise") > cell.delay(0.01, "rise")
    assert cell.delay(0.1, "rise") == pytest.approx(
        cell.rise_intrinsic + cell.rise_resistance * 0.1
    )
    assert cell.worst_delay(0.1) == max(
        cell.delay(0.1, "rise"), cell.delay(0.1, "fall")
    )


def test_cell_lookup_and_errors(library):
    assert library.cell("INV_X1").function is GateType.INV
    with pytest.raises(KeyError):
        library.cell("FROB_X9")
    with pytest.raises(KeyError):
        library.default_cell(GateType.XOR, 4)
    assert library.implementations(GateType.XOR, 4) == []
    assert library.has(GateType.NAND, 3)
    assert not library.has(GateType.NAND, 5)


def test_max_arity(library):
    assert library.max_arity(GateType.NAND) == 4
    assert library.max_arity(GateType.XOR) == 2
    assert library.max_arity(GateType.AND) == 0


def test_sizes_of(library):
    cell = library.cell("NOR3_X2")
    siblings = library.sizes_of(cell)
    assert cell in siblings and len(siblings) == 4


def test_width_positive(library):
    for cell in library.cells.values():
        assert cell.width > 0


def test_duplicate_cells_rejected():
    cell = default_library().cell("INV_X1")
    with pytest.raises(ValueError):
        Library("dup", [cell, cell])
