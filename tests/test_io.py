"""BLIF and .bench readers/writers: round trips and SIS-style corners."""

import pytest

from repro.logic.simulate import truth_tables
from repro.network.bench_io import bench_text, parse_bench
from repro.network.blif import blif_text, parse_blif
from repro.network.netlist import NetworkError

from helpers import random_network


def test_blif_round_trip_random_networks():
    for seed in range(12):
        net = random_network(seed, num_gates=16)
        back = parse_blif(blif_text(net))
        assert back.inputs == net.inputs
        tables_a = truth_tables(net)
        tables_b = truth_tables(back, support=list(net.inputs))
        for out_a, out_b in zip(net.outputs, back.outputs):
            assert tables_a[out_a] == tables_b[out_b], seed


def test_bench_round_trip_random_networks():
    for seed in range(12):
        net = random_network(seed, num_gates=16)
        back = parse_bench(bench_text(net))
        tables_a = truth_tables(net)
        tables_b = truth_tables(back, support=list(net.inputs))
        for out_a, out_b in zip(net.outputs, back.outputs):
            assert tables_a[out_a] == tables_b[out_b], seed


def test_blif_sop_cover_synthesis():
    text = """
.model sop
.inputs a b c
.outputs f
.names a b c f
11- 1
--1 1
.end
"""
    net = parse_blif(text)
    tables = truth_tables(net)
    from repro.logic.simulate import variable_word

    a = variable_word(0, 3)
    b = variable_word(1, 3)
    c = variable_word(2, 3)
    assert tables[net.outputs[0]] == ((a & b) | c) & 0xFF


def test_blif_offset_cover():
    text = """
.model off
.inputs a b
.outputs f
.names a b f
10 0
01 0
.end
"""
    net = parse_blif(text)
    tables = truth_tables(net)
    from repro.logic.simulate import variable_word

    a = variable_word(0, 2)
    b = variable_word(1, 2)
    assert tables[net.outputs[0]] == (~(a ^ b)) & 0xF


def test_blif_constants():
    text = """
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
"""
    net = parse_blif(text)
    tables = truth_tables(net)
    assert tables["one"] == 0b11
    assert tables["zero"] == 0


def test_blif_latch_becomes_pseudo_input():
    text = """
.model seq
.inputs a
.outputs f
.latch f q 0
.names a q f
11 1
.end
"""
    net = parse_blif(text)
    assert "q" in net.inputs


def test_blif_continuation_lines():
    text = ".model c\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
    net = parse_blif(text)
    assert net.inputs == ["a", "b"]


def test_bench_dff_stripped():
    text = """
INPUT(a)
OUTPUT(f)
g = DFF(d)
d = AND(a, g)
f = NOT(d)
"""
    net = parse_bench(text)
    # DFF output becomes a pseudo input, its data input a pseudo output
    assert "g" in net.inputs
    assert "d" in net.outputs


def test_bench_rejects_garbage():
    with pytest.raises(NetworkError):
        parse_bench("f = FROB(a, b)\n")
    with pytest.raises(NetworkError):
        parse_bench("this is not bench\n")


def test_bench_undefined_output_rejected():
    with pytest.raises(NetworkError):
        parse_bench("INPUT(a)\nOUTPUT(f)\n")


def test_bench_constant_expansion():
    from repro.network.builder import NetworkBuilder

    builder = NetworkBuilder("c")
    builder.input("a")
    one = builder.const1()
    builder.output(one)
    net = builder.build()
    back = parse_bench(bench_text(net))
    tables = truth_tables(back, support=["a"])
    assert tables[back.outputs[0]] == 0b11
