"""Partitioned rewiring: parity, frozen boundaries, worker invariance.

The pipeline's contracts, each pinned by a property test:

* **one-region parity** — with a region bound above the gate count the
  partitioned path must reproduce the monolithic batched path
  bit-for-bit (same selection, same commits, same HPWL), both
  timing-blind and timing-aware, and the whole-flow fingerprint must
  match the unpartitioned flow for every worker count;
* **frozen boundaries** — no boundary net's driver or sink-pin
  bindings ever change, region commits never collide on a net
  (``boundary_conflicts == 0``), and the rewired network stays
  functionally equivalent;
* **worker invariance** — the trajectory is identical for 1, 2 and 4
  workers (selection reads a round-frozen snapshot; commits are
  serial in region order).
"""

from __future__ import annotations

import pytest
from helpers import random_network

from repro.library.cells import default_library
from repro.parallel import faults, shm
from repro.place.placer import place
from repro.place.regions import carve_regions
from repro.rapids.partition import reduce_wirelength_partitioned
from repro.rapids.wirelength import reduce_wirelength
from repro.suite.flow import FlowConfig, trajectory_fingerprint
from repro.synth.mapper import map_network
from repro.timing.sta import TimingEngine
from repro.verify.equiv import networks_equivalent

HUGE = 10**9  # region bound above any test netlist: exactly one region


def _prepared(seed: int, num_gates: int = 150, place_seed: int = 3):
    library = default_library()
    network = random_network(seed, num_gates=num_gates, num_outputs=8)
    map_network(network, library)
    placement = place(network, library, seed=place_seed)
    return network, placement, library


def _fanins(network) -> dict[str, tuple[str, ...]]:
    return {g.name: tuple(g.fanins) for g in network.gates()}


# ----------------------------------------------------------------------
# one-region parity with the monolithic batched path
# ----------------------------------------------------------------------
def test_one_region_matches_monolithic_timing_blind():
    network, placement, _ = _prepared(11)
    net_a, net_b = network.copy(), network.copy()
    base = reduce_wirelength(
        net_a, placement.copy(), max_passes=3, timing_engine=None
    )
    part = reduce_wirelength_partitioned(
        net_b, placement.copy(), max_gates=HUGE, max_passes=3,
        timing_engine=None,
    )
    assert part.regions == 1
    assert part.boundary_nets == 0
    assert _fanins(net_a) == _fanins(net_b)
    assert part.swaps_applied == base.swaps_applied
    assert part.cross_swaps_applied == base.cross_swaps_applied
    assert part.final_hpwl == pytest.approx(base.final_hpwl, abs=1e-9)
    assert part.candidates_scored == base.candidates_scored


def test_one_region_matches_monolithic_timing_aware():
    network, placement, library = _prepared(12)
    net_a, pl_a = network.copy(), placement.copy()
    net_b, pl_b = network.copy(), placement.copy()
    eng_a = TimingEngine(net_a, pl_a, library)
    eng_a.analyze()
    base = reduce_wirelength(
        net_a, pl_a, max_passes=3, timing_engine=eng_a, slack_margin=0.0
    )
    eng_b = TimingEngine(net_b, pl_b, library)
    eng_b.analyze()
    part = reduce_wirelength_partitioned(
        net_b, pl_b, max_gates=HUGE, max_passes=3,
        timing_engine=eng_b, slack_margin=0.0,
    )
    assert part.regions == 1
    assert _fanins(net_a) == _fanins(net_b)
    assert part.swaps_applied == base.swaps_applied
    assert part.cross_swaps_applied == base.cross_swaps_applied
    assert part.timing_rejected == base.timing_rejected
    assert part.final_hpwl == pytest.approx(base.final_hpwl, abs=1e-9)


def test_flow_fingerprint_matches_unpartitioned_for_all_worker_counts():
    # the whole-flow contract: partition=True with one region is the
    # same experiment, for every worker count (satellite of the
    # stacked-determinism story — same comparator as the hash-seed
    # matrix in test_determinism.py)
    base_config = FlowConfig(
        scale=0.08, max_rounds=2, anneal_moves=1500, modes=("gsg",),
    )
    expected = trajectory_fingerprint("alu2", base_config)
    for workers in (1, 2, 4):
        config = FlowConfig(
            scale=0.08, max_rounds=2, anneal_moves=1500, modes=("gsg",),
            partition=True, partition_max_gates=HUGE, workers=workers,
        )
        assert trajectory_fingerprint("alu2", config) == expected, (
            f"partitioned flow diverged with workers={workers}"
        )


# ----------------------------------------------------------------------
# frozen boundaries + functional equivalence
# ----------------------------------------------------------------------
def _boundary_bindings(network, boundary_nets):
    """(driver gate?, sorted sink pins) per boundary net."""
    snapshot = {}
    for net in boundary_nets:
        driver = None if network.is_input(net) else net
        sinks = sorted(
            (pin.gate, pin.index) for pin in network.fanout(net)
        )
        snapshot[net] = (driver, tuple(sinks))
    return snapshot


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_boundary_nets_frozen_and_function_preserved(seed):
    network, placement, _ = _prepared(seed, num_gates=180)
    reference = network.copy()
    regions = carve_regions(network, placement, max_gates=40)
    assert len(regions.regions) >= 2
    before = _boundary_bindings(network, regions.boundary_nets)
    result = reduce_wirelength_partitioned(
        network, placement, max_gates=40, max_passes=2,
        timing_engine=None,
    )
    assert result.regions == len(regions.regions)
    assert result.boundary_conflicts == 0
    assert result.final_hpwl <= result.initial_hpwl + 1e-9
    after = _boundary_bindings(network, regions.boundary_nets)
    assert after == before, "a frozen boundary net was rebound"
    assert networks_equivalent(reference, network)


def test_timing_aware_partitioned_never_degrades_delay():
    network, placement, library = _prepared(31, num_gates=200)
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    before = engine.max_delay
    result = reduce_wirelength_partitioned(
        network, placement, max_gates=50, max_passes=2,
        timing_engine=engine, slack_margin=0.0, workers=2,
        library=library,
    )
    assert result.boundary_conflicts == 0
    check = TimingEngine(network, placement, library)
    check.analyze()
    assert check.max_delay <= before + 1e-9
    # cross-region timing overlaps must defer, not collide
    assert result.deferred_timing_conflicts >= 0


# ----------------------------------------------------------------------
# worker-count invariance
# ----------------------------------------------------------------------
def test_trajectory_invariant_across_worker_counts():
    network, placement, library = _prepared(41, num_gates=220)
    outcomes = {}
    for workers in (1, 2, 4):
        net, pl = network.copy(), placement.copy()
        result = reduce_wirelength_partitioned(
            net, pl, max_gates=50, max_passes=2, timing_engine=None,
            workers=workers, library=library,
        )
        assert result.fallback_reason is None
        assert result.boundary_conflicts == 0
        outcomes[workers] = (
            _fanins(net),
            result.swaps_applied,
            result.cross_swaps_applied,
            result.final_hpwl,
            result.candidates_scored,
        )
    assert outcomes[1] == outcomes[2] == outcomes[4]


def test_remote_selection_actually_runs():
    # parallel_rounds > 0 proves the worker path executed (not a
    # silent inline fallback masquerading as parity)
    network, placement, library = _prepared(42, num_gates=220)
    result = reduce_wirelength_partitioned(
        network, placement, max_gates=50, max_passes=2,
        timing_engine=None, workers=2, library=library,
    )
    assert result.workers == 2
    assert result.parallel_rounds > 0
    assert result.fallback_reason is None


# ----------------------------------------------------------------------
# chaos: injected worker faults never change the trajectory
# ----------------------------------------------------------------------
_CHAOS_REFERENCE: dict = {}


def _chaos_reference():
    """Serial partitioned run on the chaos design (computed once)."""
    if not _CHAOS_REFERENCE:
        network, placement, library = _prepared(51, num_gates=220)
        net, pl = network.copy(), placement.copy()
        result = reduce_wirelength_partitioned(
            net, pl, max_gates=50, max_passes=2, timing_engine=None,
            workers=1, library=library,
        )
        _CHAOS_REFERENCE.update(
            inputs=(network, placement, library),
            fanins=_fanins(net),
            stats=(
                result.swaps_applied,
                result.cross_swaps_applied,
                result.final_hpwl,
                result.candidates_scored,
            ),
        )
    return _CHAOS_REFERENCE


@pytest.mark.parametrize("workers,action", [
    (2, "kill"), (4, "kill"), (2, "stale"), (4, "stale"),
])
def test_partitioned_trajectory_survives_injected_faults(workers, action):
    """Fault plans (a worker killed mid-shard, a stale delta forcing a
    full-baseline resend) may only show up in the recovery counters —
    the rewiring trajectory stays bit-identical to the serial run."""
    reference = _chaos_reference()
    network, placement, library = reference["inputs"]
    net, pl = network.copy(), placement.copy()
    with faults.active({"worker": {0: {"action": action}}}):
        result = reduce_wirelength_partitioned(
            net, pl, max_gates=50, max_passes=2, timing_engine=None,
            workers=workers, library=library,
        )
    assert result.fallback_reason is None
    recovered = (
        result.health["pool_rebuilds"] if action == "kill"
        else result.health["stale_recoveries"]
    )
    assert recovered >= 1, "the fault never fired"
    assert _fanins(net) == reference["fanins"]
    assert (
        result.swaps_applied,
        result.cross_swaps_applied,
        result.final_hpwl,
        result.candidates_scored,
    ) == reference["stats"]
    assert shm.registered_names() == []


def test_inline_without_snapshot_carrier_records_reason():
    # no timing engine and no library: snapshots cannot be encoded, so
    # the session must degrade to inline selection and say why
    network, placement, _ = _prepared(43, num_gates=150)
    result = reduce_wirelength_partitioned(
        network, placement, max_gates=40, max_passes=1,
        timing_engine=None, workers=2, library=None,
    )
    assert result.parallel_rounds == 0
    assert result.fallback_reason is not None
