"""Incremental STA must match a fresh full analysis, always.

Property: after an arbitrary sequence of committed moves (pin swaps,
inverting swaps, gate resizes, dead-gate sweeps), the incrementally
maintained engine reports every net's arrival, required time and slack
within 1e-9 of a freshly constructed full ``analyze()`` — while doing
its work through ``apply_and_update`` only (exactly one full analysis
for the initial state).
"""

from __future__ import annotations

import random

import pytest

from repro.network.transform import sweep
from repro.place.placer import place
from repro.rapids.moves import bind_new_inverters
from repro.symmetry.supergate import extract_supergates
from repro.symmetry.swap import apply_swap, enumerate_swaps
from repro.synth.mapper import map_network
from repro.timing.sta import TimingEngine

from helpers import random_network

TOL = 1e-9


def prepared(seed, library, gates=35):
    net = random_network(seed, num_gates=gates, num_outputs=4)
    map_network(net, library)
    placement = place(net, library, seed=seed)
    return net, placement


def assert_matches_fresh(engine, network, placement, library, context=""):
    """Every cached timing quantity equals a from-scratch analysis."""
    fresh = TimingEngine(network, placement, library, period=engine.period)
    fresh.analyze()
    assert engine.max_delay == pytest.approx(
        fresh.max_delay, abs=TOL
    ), context
    assert set(engine.arrival) == set(fresh.arrival), context
    for net, (rise, fall) in fresh.arrival.items():
        got_rise, got_fall = engine.arrival[net]
        assert got_rise == pytest.approx(rise, abs=TOL), (context, net)
        assert got_fall == pytest.approx(fall, abs=TOL), (context, net)
    assert set(engine.required) == set(fresh.required), context
    for net, req in fresh.required.items():
        assert engine.required[net] == pytest.approx(
            req, abs=TOL
        ), (context, net)
    assert set(engine.slack) == set(fresh.slack), context
    for net, slk in fresh.slack.items():
        assert engine.slack[net] == pytest.approx(slk, abs=TOL), (context, net)


def random_move(network, library, rng):
    """Commit one random resize or (possibly inverting) pin swap."""
    if rng.random() < 0.5:
        sized = [
            gate for gate in network.gates()
            if gate.cell is not None
            and len(library.sizes_of(library.cell(gate.cell))) > 1
        ]
        if sized:
            gate = rng.choice(sized)
            alt = rng.choice([
                cell for cell in library.sizes_of(library.cell(gate.cell))
                if cell.name != gate.cell
            ])
            network.set_cell(gate.name, alt.name)
            return f"resize {gate.name} -> {alt.name}"
    swaps = [
        swap
        for sg in extract_supergates(network).nontrivial()
        for swap in enumerate_swaps(sg, leaves_only=True)
    ]
    if not swaps:
        return None
    swap = rng.choice(swaps)
    before = len(network)
    apply_swap(network, swap)
    added = len(network) - before
    if added > 0:
        bind_new_inverters(network, library, network.recent_gates(added))
    return f"swap {swap.pin_a}<->{swap.pin_b} inv={swap.inverting}"


@pytest.mark.parametrize("seed", [1, 2, 5, 9, 12])
def test_incremental_matches_full_after_random_moves(seed, library):
    net, placement = prepared(seed, library)
    engine = TimingEngine(net, placement, library)
    engine.analyze()
    rng = random.Random(1000 + seed)
    moves = 0
    for step in range(20):
        label = random_move(net, library, rng)
        if label is None:
            break
        moves += 1
        engine.apply_and_update()
        assert_matches_fresh(
            engine, net, placement, library, context=f"step {step}: {label}"
        )
    assert moves, "property test never exercised a move"
    # the whole sequence must have been served incrementally
    assert engine.stats.full_analyses == 1
    assert engine.stats.incremental_updates == moves


def test_incremental_handles_gate_removal(library):
    net, placement = prepared(21, library)
    engine = TimingEngine(net, placement, library)
    engine.analyze()
    rng = random.Random(77)
    # inverting swaps leave cancelled inverters dangling; sweep removes
    # them through remove_gate events the engine must absorb
    for _ in range(8):
        random_move(net, library, rng)
    swept = sweep(net)
    engine.apply_and_update()
    assert_matches_fresh(
        engine, net, placement, library, context=f"after sweep ({swept})"
    )
    assert engine.stats.full_analyses == 1


def test_incremental_with_explicit_period(library):
    net, placement = prepared(33, library)
    probe = TimingEngine(net, placement, library)
    probe.analyze()
    engine = TimingEngine(
        net, placement, library, period=probe.max_delay + 0.5
    )
    engine.analyze()
    rng = random.Random(5)
    for _ in range(6):
        random_move(net, library, rng)
        engine.apply_and_update()
    assert_matches_fresh(engine, net, placement, library, context="period")


def test_footprint_argument_invalidates(library):
    """apply_and_update(footprint) re-models the named nets."""
    net, placement = prepared(41, library)
    engine = TimingEngine(net, placement, library)
    engine.analyze()
    victim = next(iter(net.gate_names()))
    x, y = placement.locations[victim]
    placement.locations[victim] = (x + 150.0, y + 75.0)
    # the engine cannot see placement edits; the caller names the nets
    touched = {victim, *net.gate(victim).fanins}
    engine.apply_and_update(footprint=touched)
    assert_matches_fresh(engine, net, placement, library, context="move cell")


def test_refresh_full_fallback_on_untracked_mutation(library):
    net, placement = prepared(55, library)
    engine = TimingEngine(net, placement, library)
    engine.analyze()
    net._touch()  # untracked mutation: engine must fall back to full STA
    engine.refresh()
    assert engine.stats.full_analyses == 2
    assert_matches_fresh(engine, net, placement, library, context="fallback")
