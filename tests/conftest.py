"""Shared fixtures for the test suite.

Plain helper functions (``random_network`` and friends) live in
``tests/helpers.py`` — import them from there, never from ``conftest``:
conftest modules share one ``sys.modules`` slot across directories, so
``from conftest import ...`` silently binds to whichever conftest
pytest imported first.
"""

from __future__ import annotations

import pytest

from repro.library.cells import default_library


@pytest.fixture(scope="session")
def library():
    """The default 0.35 um stand-in library (session-shared, read-only)."""
    return default_library()
