"""ROBDD package: canonicity, operations, network construction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.bdd import (
    BddManager,
    ONE,
    ZERO,
    bdd_es,
    bdd_nes,
    network_bdds,
)
from repro.logic.simulate import table_mask, truth_tables
from repro.logic.truthtable import is_es, is_nes

from helpers import random_network


def bdd_from_table(manager: BddManager, table: int, names: list[str]) -> int:
    """Shannon-expand a truth table into a BDD (test helper)."""
    num_vars = len(names)

    def build(prefix: int, depth: int) -> int:
        if depth == num_vars:
            return ONE if (table >> prefix) & 1 else ZERO
        low = build(prefix, depth + 1)
        high = build(prefix | (1 << depth), depth + 1)
        return manager.ite(manager.var(names[depth]), high, low)

    return build(0, 0)


def test_terminals_and_literals():
    manager = BddManager(["a"])
    a = manager.var("a")
    na = manager.nvar("a")
    assert manager.not_(a) == na
    assert manager.and_(a, na) == ZERO
    assert manager.or_(a, na) == ONE
    assert manager.xor(a, a) == ZERO


def test_canonicity_same_function_same_node():
    manager = BddManager(["a", "b", "c"])
    a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
    lhs = manager.or_(manager.and_(a, b), manager.and_(a, c))
    rhs = manager.and_(a, manager.or_(b, c))
    assert lhs == rhs


@given(
    st.integers(min_value=0, max_value=table_mask(3)),
    st.integers(min_value=0, max_value=table_mask(3)),
)
@settings(max_examples=100)
def test_operations_match_table_algebra(table_f, table_g):
    names = ["a", "b", "c"]
    manager = BddManager(names)
    f = bdd_from_table(manager, table_f, names)
    g = bdd_from_table(manager, table_g, names)
    mask = table_mask(3)
    assert manager.and_(f, g) == bdd_from_table(
        manager, table_f & table_g, names
    )
    assert manager.or_(f, g) == bdd_from_table(
        manager, table_f | table_g, names
    )
    assert manager.xor(f, g) == bdd_from_table(
        manager, table_f ^ table_g, names
    )
    assert manager.not_(f) == bdd_from_table(
        manager, ~table_f & mask, names
    )


@given(st.integers(min_value=0, max_value=table_mask(4)))
@settings(max_examples=80)
def test_sat_count_matches_popcount(table):
    names = ["a", "b", "c", "d"]
    manager = BddManager(names)
    f = bdd_from_table(manager, table, names)
    assert manager.sat_count(f) == bin(table).count("1")


@given(st.integers(min_value=1, max_value=table_mask(4)))
@settings(max_examples=60)
def test_any_sat_satisfies(table):
    names = ["a", "b", "c", "d"]
    manager = BddManager(names)
    f = bdd_from_table(manager, table, names)
    model = manager.any_sat(f)
    assert model is not None
    minterm = sum(
        (model.get(name, 0) << index) for index, name in enumerate(names)
    )
    assert (table >> minterm) & 1


def test_any_sat_of_zero_is_none():
    manager = BddManager(["a"])
    assert manager.any_sat(ZERO) is None


def test_restrict_and_compose():
    manager = BddManager(["a", "b"])
    a, b = manager.var("a"), manager.var("b")
    f = manager.xor(a, b)
    assert manager.restrict(f, "a", 1) == manager.not_(b)
    assert manager.restrict(f, "a", 0) == b
    # compose a := b gives xor(b, b) = 0
    assert manager.compose(f, "a", b) == ZERO


def test_support():
    manager = BddManager(["a", "b", "c"])
    a, c = manager.var("a"), manager.var("c")
    f = manager.and_(a, c)
    assert manager.support(f) == {"a", "c"}


def test_network_bdds_agree_with_truth_tables():
    for seed in range(10):
        net = random_network(seed, num_gates=15)
        manager, funcs = network_bdds(net)
        tables = truth_tables(net)
        for out in net.outputs:
            rebuilt = bdd_from_table(
                manager, tables[out], list(net.inputs)
            )
            assert funcs[out] == rebuilt, seed


def test_bdd_symmetry_checks_match_tables():
    for seed in range(8):
        net = random_network(seed, num_gates=12, num_outputs=1)
        out = net.outputs[0]
        manager, funcs = network_bdds(net)
        tables = truth_tables(net)
        num_vars = len(net.inputs)
        for i in range(num_vars):
            for j in range(i + 1, num_vars):
                name_i, name_j = net.inputs[i], net.inputs[j]
                assert bdd_nes(manager, funcs[out], name_i, name_j) == (
                    is_nes(tables[out], num_vars, i, j)
                ), (seed, i, j)
                assert bdd_es(manager, funcs[out], name_i, name_j) == (
                    is_es(tables[out], num_vars, i, j)
                ), (seed, i, j)


def test_cone_scoped_construction():
    net = random_network(2, num_gates=20, num_outputs=2)
    out = net.outputs[0]
    manager, funcs = network_bdds(net, nets=[out])
    assert out in funcs
