"""Swappable pins (Lemmas 6-8): legality, kinds, function preservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.netlist import Pin
from repro.symmetry.supergate import SgClass, extract_supergates
from repro.symmetry.swap import (
    apply_swap,
    count_swappable_pairs,
    enumerate_swaps,
    is_swappable,
    swap_kinds,
    swapped_copy,
)
from repro.symmetry.verify import (
    pin_pair_symmetry,
    swap_preserves_outputs,
)

from helpers import fig2_network, random_network


def test_fig2_swap_kinds():
    net = fig2_network()
    sg = extract_supergates(net).supergates["f"]
    # equal implied values -> non-inverting (Lemma 7)
    assert swap_kinds(sg, Pin("inner", 0), Pin("inner", 1)) == {
        "non-inverting"
    }
    # different implied values -> inverting
    assert swap_kinds(sg, Pin("f", 1), Pin("inner", 0)) == {"inverting"}
    # containment -> nothing (Lemma 6's constraint)
    assert swap_kinds(sg, Pin("f", 0), Pin("inner", 0)) == set()
    assert not is_swappable(sg, Pin("f", 0), Pin("f", 0))


def test_xor_supergates_allow_both_kinds():
    from repro.network.builder import NetworkBuilder

    builder = NetworkBuilder()
    a, b, c = builder.inputs(3)
    x1 = builder.xor(a, b, name="x1")
    f = builder.xnor(x1, c, name="f")
    builder.output(f)
    net = builder.build()
    sg = extract_supergates(net).supergates["f"]
    assert sg.sg_class is SgClass.XOR
    kinds = swap_kinds(sg, Pin("x1", 0), Pin("f", 1))
    assert kinds == {"non-inverting", "inverting"}


def test_every_enumerated_swap_preserves_function():
    """The headline safety property, over many random networks."""
    total = 0
    for seed in range(30):
        net = random_network(seed, num_gates=14)
        sgn = extract_supergates(net)
        for sg in sgn.supergates.values():
            for swap in enumerate_swaps(sg, leaves_only=False):
                trial = swapped_copy(net, swap)
                assert swap_preserves_outputs(net, trial), (
                    seed, swap.describe(net),
                )
                total += 1
    assert total > 300


def test_swap_kinds_match_ground_truth_symmetry():
    """Lemma 7/8 against NES/ES tables: structural implies functional."""
    for seed in range(15):
        net = random_network(seed, num_gates=12)
        sgn = extract_supergates(net)
        for sg in sgn.supergates.values():
            for swap in enumerate_swaps(sg, leaves_only=False):
                truth = pin_pair_symmetry(
                    net, sg.root, swap.pin_a, swap.pin_b
                )
                expected = "es" if swap.inverting else "nes"
                assert expected in truth, (seed, swap.describe(net))


def test_leaves_only_excludes_internal_pins():
    net = fig2_network()
    sg = extract_supergates(net).supergates["f"]
    leaf_swaps = list(enumerate_swaps(sg, leaves_only=True))
    all_swaps = list(enumerate_swaps(sg, leaves_only=False))
    leaf_pins = {leaf.pin for leaf in sg.leaves}
    for swap in leaf_swaps:
        assert swap.pin_a in leaf_pins and swap.pin_b in leaf_pins
    assert len(all_swaps) >= len(leaf_swaps)


def test_include_inverting_flag():
    net = fig2_network()
    sg = extract_supergates(net).supergates["f"]
    without = list(enumerate_swaps(sg, include_inverting=False))
    assert all(not swap.inverting for swap in without)


def test_apply_swap_noninverting_keeps_gate_count():
    net = fig2_network()
    sg = extract_supergates(net).supergates["f"]
    swap = next(
        s for s in enumerate_swaps(sg) if not s.inverting
    )
    before = len(net)
    apply_swap(net, swap)
    assert len(net) == before


def test_apply_swap_inverting_adds_at_most_two_gates():
    net = fig2_network()
    sg = extract_supergates(net).supergates["f"]
    swap = next(
        s for s in enumerate_swaps(sg, leaves_only=False) if s.inverting
    )
    before = len(net)
    reference = net.copy()
    apply_swap(net, swap)
    assert len(net) <= before + 2
    assert swap_preserves_outputs(reference, net)


def test_count_swappable_pairs_census():
    net = fig2_network()
    sgn = extract_supergates(net)
    census = count_swappable_pairs(sgn)
    assert census["non-inverting"] == 1  # the two NOR pins
    assert census["inverting"] == 2      # x against each NOR pin
    assert census["supergates_with_swaps"] == 1


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=25, deadline=None)
def test_swap_safety_property(seed):
    net = random_network(seed, num_inputs=4, num_gates=10)
    sgn = extract_supergates(net)
    for sg in sgn.supergates.values():
        for swap in enumerate_swaps(sg, leaves_only=False):
            trial = swapped_copy(net, swap)
            assert swap_preserves_outputs(net, trial)
