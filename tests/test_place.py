"""Placement substrate: FM partitioning, placer, wirelength metrics."""

import random


from repro.network.builder import NetworkBuilder
from repro.place.fm import bipartition
from repro.place.placement import (
    Placement,
    die_for,
    manhattan,
    net_hpwl,
    net_terminals,
    perturbation,
    total_hpwl,
)
from repro.place.placer import place
from repro.synth.mapper import map_network

from helpers import random_network


# ----------------------------------------------------------------------
# FM bipartitioning
# ----------------------------------------------------------------------
def test_fm_finds_obvious_clusters():
    # two 6-cliques joined by a single net: optimal cut = 1
    nets = []
    for base in (0, 6):
        for i in range(6):
            for j in range(i + 1, 6):
                nets.append([base + i, base + j])
    nets.append([0, 6])
    result = bipartition(12, nets, seed=1)
    assert result.cut <= 2
    side_of_first = result.side[0]
    assert all(result.side[i] == side_of_first for i in range(6))


def test_fm_respects_balance():
    rng = random.Random(0)
    nets = [[rng.randrange(30), rng.randrange(30)] for _ in range(60)]
    weights = [1.0] * 30
    result = bipartition(30, nets, weights, balance=0.55, seed=0)
    left = sum(w for w, s in zip(weights, result.side) if s == 0)
    assert 30 * 0.45 <= left <= 30 * 0.55 + 1


def test_fm_improves_over_random():
    rng = random.Random(3)
    # ring topology: random cut ~ n/2, optimal = 2
    nets = [[i, (i + 1) % 40] for i in range(40)]
    initial = [rng.randint(0, 1) for _ in range(40)]
    initial_cut = sum(
        1 for a, b in nets if initial[a] != initial[b]
    )
    result = bipartition(40, nets, initial=initial, seed=3)
    assert result.cut < initial_cut


def test_fm_handles_degenerate_inputs():
    assert bipartition(1, [], seed=0).cut == 0
    assert bipartition(3, [[0, 1, 2]], seed=0).cut <= 1


# ----------------------------------------------------------------------
# placement model
# ----------------------------------------------------------------------
def test_manhattan():
    assert manhattan((0, 0), (3, 4)) == 7


def test_placement_accessors():
    pl = Placement(die_width=100, die_height=100)
    pl.set_location("g", 10, 20)
    assert pl.location("g") == (10, 20)
    dup = pl.copy()
    dup.set_location("g", 0, 0)
    assert pl.location("g") == (10, 20)


def test_hpwl_of_simple_net():
    builder = NetworkBuilder()
    a = builder.input("a")
    f = builder.buf(a, name="f")
    builder.output(f)
    net = builder.build()
    pl = Placement(die_width=100, die_height=100)
    pl.input_pads["a"] = (0.0, 0.0)
    pl.output_pads[0] = (100.0, 0.0)
    pl.set_location("f", 40.0, 30.0)
    assert net_terminals(net, pl, "a") == [(0.0, 0.0), (40.0, 30.0)]
    assert net_hpwl(net, pl, "a") == 70.0
    assert net_hpwl(net, pl, "f") == 90.0  # f -> output pad
    assert total_hpwl(net, pl) == 160.0


def test_ensure_covered_places_new_gates():
    builder = NetworkBuilder()
    a = builder.input("a")
    f = builder.buf(a, name="f")
    builder.output(f)
    net = builder.build()
    pl = Placement(die_width=100, die_height=100)
    pl.input_pads["a"] = (0.0, 0.0)
    pl.output_pads[0] = (100.0, 0.0)
    pl.set_location("f", 40.0, 30.0)
    inv = net.fresh_name("new_inv")
    from repro.network.gatetype import GateType

    net.add_gate(inv, GateType.INV, ["a"])
    net.replace_fanin(__import__("repro.network.netlist",
                                 fromlist=["Pin"]).Pin("f", 0), inv)
    pl.ensure_covered(net)
    assert pl.location(inv) == (40.0, 30.0)  # its sink's location


def test_perturbation_audit():
    before = Placement(die_width=10, die_height=10)
    before.set_location("a", 1, 1)
    before.set_location("b", 2, 2)
    after = before.copy()
    after.set_location("a", 3, 1)
    after.set_location("new", 0, 0)
    audit = perturbation(before, after)
    assert audit["moved_cells"] == 1
    assert audit["added_cells"] == 1
    assert audit["total_displacement"] == 2


# ----------------------------------------------------------------------
# the placer
# ----------------------------------------------------------------------
def test_place_produces_legal_locations(library):
    net = random_network(5, num_gates=40)
    map_network(net, library)
    pl = place(net, library, seed=0)
    assert set(pl.locations) == set(net.gate_names())
    for name, (x, y) in pl.locations.items():
        assert 0 <= x <= pl.die_width
        assert 0 <= y <= pl.die_height
    assert len(pl.input_pads) == len(net.inputs)
    assert len(pl.output_pads) == len(net.outputs)


def test_annealing_does_not_hurt(library):
    net = random_network(7, num_gates=60, num_outputs=4)
    map_network(net, library)
    base = place(net, library, seed=0, anneal_moves=0)
    polished = place(net, library, seed=0, anneal_moves=4000)
    assert total_hpwl(net, polished) <= total_hpwl(net, base) * 1.02


def test_die_sizing(library):
    net = random_network(2, num_gates=30)
    map_network(net, library)
    width, height = die_for(net, library, utilization=0.6)
    from repro.synth.mapper import network_area

    assert width * height >= network_area(net, library)


def test_placement_deterministic(library):
    net = random_network(9, num_gates=30)
    map_network(net, library)
    one = place(net, library, seed=4, anneal_moves=500)
    two = place(net, library, seed=4, anneal_moves=500)
    assert one.locations == two.locations
