"""Wirelength-driven rewiring (Section 5, use (1))."""

import pytest

from repro.place.placement import total_hpwl
from repro.place.placer import place
from repro.rapids.wirelength import (
    reduce_wirelength,
    swap_hpwl_delta,
)
from repro.symmetry.supergate import extract_supergates
from repro.symmetry.swap import enumerate_swaps
from repro.synth.mapper import map_network
from repro.verify.equiv import networks_equivalent

from helpers import random_network


def prepared(seed, library, gates=50):
    net = random_network(seed, num_gates=gates, num_outputs=4)
    map_network(net, library)
    placement = place(net, library, seed=seed)
    return net, placement


def test_swap_delta_is_reversible(library):
    net, placement = prepared(21, library)
    sgn = extract_supergates(net)
    checked = 0
    for sg in sgn.nontrivial():
        for swap in enumerate_swaps(sg, include_inverting=False):
            fanins = {g.name: list(g.fanins) for g in net.gates()}
            swap_hpwl_delta(net, placement, swap)
            # probing must leave the network untouched
            assert all(
                net.gate(name).fanins == value
                for name, value in fanins.items()
            )
            checked += 1
            if checked > 20:
                return


def test_reduce_wirelength_monotone_and_safe(library):
    improved_any = False
    for seed in (22, 23, 24):
        net, placement = prepared(seed, library)
        reference = net.copy()
        before = total_hpwl(net, placement)
        result = reduce_wirelength(net, placement)
        after = total_hpwl(net, placement)
        assert after <= before + 1e-6
        assert result.final_hpwl == pytest.approx(after)
        assert result.initial_hpwl == pytest.approx(before)
        assert networks_equivalent(reference, net), seed
        if result.swaps_applied:
            improved_any = True
            assert result.improvement_percent > 0
    assert improved_any, "no seed produced a single wirelength swap"


def test_reduce_wirelength_is_idempotent(library):
    net, placement = prepared(25, library)
    reduce_wirelength(net, placement)
    again = reduce_wirelength(net, placement)
    assert again.swaps_applied == 0
    assert again.improvement_percent == pytest.approx(0.0, abs=1e-6)


def test_placement_untouched(library):
    net, placement = prepared(26, library)
    locations = dict(placement.locations)
    reduce_wirelength(net, placement)
    assert placement.locations == locations
