"""Benchmark suite: generators, registry, redundancy injection, flow."""

import pytest

from repro.logic.simulate import simulate_outputs
from repro.suite import circuits
from repro.suite.flow import FlowConfig, prepare_benchmark, run_benchmark
from repro.suite.redundant import inject_redundant_wires
from repro.suite.registry import (
    PAPER_AVERAGES,
    REGISTRY,
    UnknownBenchmarkError,
    benchmark_names,
    build_benchmark,
    configured_scale,
    synthetic_names,
)
from repro.network.validate import check_network
from repro.verify.equiv import networks_equivalent


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def test_alu_adds_correctly():
    net = circuits.alu(bits=4)
    # op1=0 -> arithmetic; op0=0 -> sum
    for a_val, b_val in ((3, 5), (9, 8), (15, 1), (0, 0)):
        inputs = {"op0": 0, "op1": 0, "sub": 0}
        for i in range(4):
            inputs[f"a{i}"] = (a_val >> i) & 1
            inputs[f"b{i}"] = (b_val >> i) & 1
        outs = dict(zip(net.outputs, simulate_outputs(net, inputs)))
        total = sum(outs[f"y{i}"] << i for i in range(4))
        assert total == (a_val + b_val) % 16, (a_val, b_val)


def test_alu_subtracts():
    net = circuits.alu(bits=4)
    inputs = {"op0": 0, "op1": 0, "sub": 1}
    a_val, b_val = 9, 3
    for i in range(4):
        inputs[f"a{i}"] = (a_val >> i) & 1
        inputs[f"b{i}"] = (b_val >> i) & 1
    outs = dict(zip(net.outputs, simulate_outputs(net, inputs)))
    total = sum(outs[f"y{i}"] << i for i in range(4))
    assert total == (a_val - b_val) % 16


def test_multiplier_is_correct():
    net = circuits.multiplier(bits=4)
    for a_val, b_val in ((3, 5), (7, 7), (15, 15), (0, 9), (1, 13)):
        inputs = {}
        for i in range(4):
            inputs[f"a{i}"] = (a_val >> i) & 1
            inputs[f"b{i}"] = (b_val >> i) & 1
        outs = dict(zip(net.outputs, simulate_outputs(net, inputs)))
        product = sum(
            outs[name] << index
            for index, name in enumerate(net.outputs)
        )
        assert product == a_val * b_val, (a_val, b_val)


def test_sec_circuit_shapes():
    net = circuits.sec_circuit(data_bits=16, syndrome_bits=6)
    check_network(net)
    assert len(net.inputs) == 22
    # syndrome outputs + corrected data outputs
    assert len(net.outputs) == 6 + 16


def test_interrupt_controller_priority():
    net = circuits.interrupt_controller(channels=4, buses=2)
    check_network(net)
    # all requests on bus 0 active, all enables on: channel 0 wins
    inputs = {pi: 0 for pi in net.inputs}
    for c in range(4):
        inputs[f"r0_{c}"] = 1
    inputs["e0"] = 1
    outs = dict(zip(net.outputs, simulate_outputs(net, inputs)))
    assert outs["gc0"] == 1
    assert outs["gc1"] == 0 and outs["gc2"] == 0


def test_pla_and_control_are_deterministic():
    one = circuits.pla_control(num_inputs=12, num_terms=20, num_outputs=6)
    two = circuits.pla_control(num_inputs=12, num_terms=20, num_outputs=6)
    assert list(one.gate_names()) == list(two.gate_names())
    ctl_a = circuits.random_control(num_inputs=10, num_gates=40,
                                    num_outputs=5, seed=3)
    ctl_b = circuits.random_control(num_inputs=10, num_gates=40,
                                    num_outputs=5, seed=3)
    assert [g.fanins for g in ctl_a.gates()] == [
        g.fanins for g in ctl_b.gates()
    ]


def test_random_control_depth_bounded():
    net = circuits.random_control(
        num_inputs=20, num_gates=300, num_outputs=10, seed=1, max_depth=12,
    )
    assert net.depth() <= 12


def test_bus_interface_valid():
    net = circuits.bus_interface(width=6, control_gates=60)
    check_network(net)
    assert "eq" in net.outputs and "par" in net.outputs


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_has_all_19_table1_circuits():
    assert len(benchmark_names()) == 19
    for name in ("alu2", "c6288", "k2", "s38417"):
        assert name in REGISTRY


def test_registry_paper_averages_match_paper():
    assert PAPER_AVERAGES["gsg_percent"] == 3.1
    assert PAPER_AVERAGES["gs_percent"] == 5.4
    assert PAPER_AVERAGES["gsg_gs_percent"] == 9.0


def test_build_benchmark_scales():
    small = build_benchmark("alu2", scale=0.2)
    large = build_benchmark("alu2", scale=0.6)
    assert len(large) > len(small)
    with pytest.raises(KeyError):
        build_benchmark("nonesuch")


def test_every_registered_benchmark_builds():
    # registry round-trip: every entry's generator runs at tiny scale
    # and yields a valid non-empty network whose name round-trips —
    # a registry typo (bad parameter, renamed generator) fails here
    # instead of deep inside a Table 1 run
    for name in benchmark_names():
        net = build_benchmark(name, scale=0.05)
        check_network(net)
        assert len(net) > 0, name
        assert net.name == name
    for name in synthetic_names():
        net = build_benchmark(name, scale=0.01)
        check_network(net)
        assert len(net) > 0, name
        assert net.name == name


def test_synthetic_workloads_out_of_table1():
    assert set(synthetic_names()) == {"tiled100k", "tiled1m"}
    for name in synthetic_names():
        assert name not in benchmark_names()
        assert name in REGISTRY


def test_unknown_benchmark_error_is_helpful():
    with pytest.raises(UnknownBenchmarkError) as excinfo:
        build_benchmark("alu3")
    message = str(excinfo.value)
    assert "alu3" in message
    # close-match suggestion plus the full inventory
    assert "alu2" in message and "alu4" in message
    assert "tiled100k" in message
    # the historical contract: still a KeyError
    assert isinstance(excinfo.value, KeyError)


def test_configured_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert configured_scale() == 0.5
    monkeypatch.setenv("REPRO_SCALE", "garbage")
    assert configured_scale() == pytest.approx(0.35)
    monkeypatch.delenv("REPRO_SCALE")
    assert configured_scale() == pytest.approx(0.35)


# ----------------------------------------------------------------------
# redundancy injection
# ----------------------------------------------------------------------
def test_injection_preserves_function():
    for seed in range(8):
        net = build_benchmark("c432", scale=0.2)
        reference = net.copy()
        added = inject_redundant_wires(net, 4, seed=seed)
        assert added > 0
        assert networks_equivalent(reference, net), seed


def test_injection_is_detectable():
    from repro.symmetry.redundancy import find_easy_redundancies

    net = build_benchmark("c432", scale=0.3)
    baseline = len(find_easy_redundancies(net))
    inject_redundant_wires(net, 6, seed=2)
    assert len(find_easy_redundancies(net)) > baseline


# ----------------------------------------------------------------------
# the flow (kept tiny for test runtime)
# ----------------------------------------------------------------------
def test_prepare_benchmark_produces_placed_mapped_design(library):
    config = FlowConfig(scale=0.15, presize=False, anneal_moves=200)
    outcome = prepare_benchmark("alu2", config, library)
    check_network(outcome.network)
    assert outcome.initial_delay > 0
    assert outcome.hpwl > 0
    assert set(outcome.placement.locations) == set(
        outcome.network.gate_names()
    )
    assert outcome.stats["gates"] == len(outcome.network)


def test_run_benchmark_full_row(library):
    config = FlowConfig(
        scale=0.15, presize=False, anneal_moves=200,
        max_rounds=2, check_equivalence=True,
    )
    outcome = run_benchmark("c432", config, library)
    assert outcome.row is not None
    row = outcome.row
    assert row.circuit == "c432"
    assert row.gates == len(outcome.network)
    for mode, result in outcome.results.items():
        assert result.equivalent is True, mode
        assert result.optimize.final_delay <= (
            result.optimize.initial_delay + 1e-9
        )


# ----------------------------------------------------------------------
# tree-builder utilities behind the generators
# ----------------------------------------------------------------------
def test_memo_tree_shares_subtrees():
    from repro.network.builder import NetworkBuilder
    from repro.network.gatetype import GateType
    from repro.suite.circuits import memo_tree

    builder = NetworkBuilder()
    nets = builder.inputs(8)
    memo = {}
    first = memo_tree(builder, GateType.AND, nets, memo)
    gates_after_first = len(builder.network)
    second = memo_tree(builder, GateType.AND, nets, memo)
    # identical operand lists reuse every node
    assert second == first
    assert len(builder.network) == gates_after_first


def test_slotted_tree_shares_aligned_halves():
    from repro.network.builder import NetworkBuilder
    from repro.network.gatetype import GateType
    from repro.suite.circuits import slotted_tree

    builder = NetworkBuilder()
    nets = builder.inputs(8)
    memo = {}
    # two patterns agreeing on the lower half share its product
    slots_a = list(nets)
    slots_b = list(nets[:4]) + [None, nets[5], None, nets[7]]
    slotted_tree(builder, GateType.AND, slots_a, memo)
    gates_mid = len(builder.network)
    slotted_tree(builder, GateType.AND, slots_b, memo)
    added = len(builder.network) - gates_mid
    # the shared lower half costs nothing the second time
    assert added <= 3


def test_slotted_tree_functions():
    from repro.logic.simulate import truth_tables, variable_word
    from repro.network.builder import NetworkBuilder
    from repro.network.gatetype import GateType
    from repro.suite.circuits import slotted_tree

    builder = NetworkBuilder()
    nets = builder.inputs(6)
    slots = [nets[0], None, nets[2], nets[3], None, nets[5]]
    root = slotted_tree(builder, GateType.AND, slots, {})
    builder.output(root)
    net = builder.build()
    tables = truth_tables(net)
    expect = (1 << 64) - 1
    for index in (0, 2, 3, 5):
        expect &= variable_word(index, 6)
    assert tables[root] == expect


def test_slotted_tree_degenerate_cases():
    from repro.network.builder import NetworkBuilder
    from repro.network.gatetype import GateType
    from repro.suite.circuits import slotted_tree

    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    assert slotted_tree(builder, GateType.AND, [None, None], {}) is None
    assert slotted_tree(builder, GateType.AND, [a, None], {}) == a
