"""The SoA kernel must stay consistent with the object API, always.

Three properties, all under randomized mutation sequences mirroring
``tests/test_incremental_sta.py``:

* the kernel's flat form (and its numpy mirrors) equals a from-scratch
  ``compile_network`` after every committed move, whether the kernel
  absorbed the event as an in-place patch or rebuilt;
* a shared-memory ``soa_full`` snapshot round-trips to an ``EvalState``
  bit-identical to the pickled-object-graph payload it replaces;
* the masked vector STA pass (forced on by dropping the seed-count
  gate to zero) matches a fresh full analysis after every move.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.logic.simcore.compiled import compile_network
from repro.network.netlist import Pin
from repro.network.soa import get_soa, sta_levels
from repro.parallel import snapshot as snapshot_codec
from repro.timing.sta import TimingEngine

from test_incremental_sta import assert_matches_fresh, prepared, random_move

np = pytest.importorskip("numpy")


def _flat_view(compiled):
    """Per-gate (opcode, invert, fanin names) by name — order-free."""
    names = list(compiled.inputs) + list(compiled.gate_names)
    view = {}
    for position, gate in enumerate(compiled.gate_names):
        fanins = tuple(
            names[compiled.fanin_flat[slot]]
            for slot in range(
                compiled.fanin_offset[position],
                compiled.fanin_offset[position + 1],
            )
        )
        view[gate] = (
            compiled.opcode[position], compiled.invert[position], fanins,
        )
    return view


def assert_kernel_matches_fresh(kernel, network, context=""):
    """Kernel flat form + numpy mirrors describe the live network.

    A patched kernel legally preserves its historical topological
    order, which need not equal a fresh compile's tie-break — so the
    comparison is semantic (same gates, same edges, same bindings)
    plus the structural invariants every consumer relies on (a valid
    topological order, the level recurrence, a consumer CSR that
    inverts the fanin CSR edge for edge).
    """
    compiled = kernel.sync()
    fresh = compile_network(network)
    assert compiled.inputs == fresh.inputs, context
    assert sorted(compiled.gate_names) == sorted(fresh.gate_names), context
    assert _flat_view(compiled) == _flat_view(fresh), context
    assert compiled.version == network.version, context
    num_inputs = compiled.num_inputs
    # the stored order must be topologically valid: every gate fanin is
    # a PI or a gate at an earlier position
    for position in range(compiled.num_gates):
        for slot in range(
            compiled.fanin_offset[position],
            compiled.fanin_offset[position + 1],
        ):
            index = compiled.fanin_flat[slot]
            assert index < num_inputs + position, context
    cells = {
        name: network.gate(name).cell for name in compiled.gate_names
    }
    assert dict(zip(compiled.gate_names, kernel.cells)) == cells, context
    arrays = kernel.arrays()
    assert arrays["opcode"].tolist() == compiled.opcode, context
    assert arrays["invert"].tolist() == compiled.invert, context
    assert arrays["fanin_offset"].tolist() == compiled.fanin_offset, context
    assert arrays["fanin_flat"].tolist() == compiled.fanin_flat, context
    gate_level, net_level = sta_levels(compiled)
    assert arrays["gate_level"].tolist() == gate_level, context
    assert arrays["net_level"].tolist() == net_level, context
    assert arrays["num_levels"] == max(gate_level, default=0) + 1, context
    # consumer CSR inverts the fanin CSR edge for edge
    offset = arrays["consumer_offset"]
    for net in range(compiled.num_nets):
        for edge in range(int(offset[net]), int(offset[net + 1])):
            gate = int(arrays["consumer_gate"][edge])
            pin = int(arrays["consumer_pin"][edge])
            slot = int(arrays["consumer_slot"][edge])
            assert compiled.fanin_offset[gate] + pin == slot, context
            assert compiled.fanin_flat[slot] == net, context
    assert int(offset[-1]) == len(compiled.fanin_flat), context


@pytest.mark.parametrize("seed", [1, 2, 5, 9, 12])
def test_kernel_matches_fresh_compile_after_random_moves(seed, library):
    net, _placement = prepared(seed, library)
    kernel = get_soa(net)
    assert_kernel_matches_fresh(kernel, net, context="initial")
    rng = random.Random(2000 + seed)
    moves = 0
    for step in range(20):
        label = random_move(net, library, rng)
        if label is None:
            break
        moves += 1
        assert_kernel_matches_fresh(
            kernel, net, context=f"step {step}: {label}"
        )
    assert moves, "property test never exercised a move"


def test_kernel_absorbs_pin_rewires_without_rebuilding(library):
    net, _placement = prepared(7, library)
    kernel = get_soa(net)
    compiled = kernel.sync()
    epoch = kernel.epoch
    # rewiring any pin to a primary input keeps the stored topological
    # order valid, so the kernel must patch in place: same compiled
    # object, same epoch, higher revision
    gate = next(iter(net.gate_names()))
    target = net.inputs[0]
    revision = compiled.revision
    net.replace_fanin(Pin(gate, 0), target)
    assert kernel.sync() is compiled
    assert kernel.epoch == epoch
    assert compiled.revision > revision
    assert kernel.patches >= 1
    assert_kernel_matches_fresh(kernel, net, context="pin rewire")


def _state_fields(state, ordered=True):
    """Comparable capture of every ``EvalState`` field.

    ``ordered=True`` also captures dictionary iteration order — the
    guarantee full payloads make.  Deltas reconstruct on top of the
    baseline's ordering (``dict.update`` keeps existing positions), so
    they only promise value equality.
    """
    items = (lambda d: list(d.items())) if ordered else dict
    return [
        state.network.inputs,
        state.network.outputs,
        items(state.network._gates),
        [
            (g.name, g.gtype, g.fanins, g.cell)
            for g in sorted(
                state.network._gates.values(), key=lambda g: g.name
            )
        ],
        state.network.version,
        state.network.name,
        items(state.placement.locations),
        items(state.placement.input_pads),
        items(state.placement.output_pads),
        (state.placement.die_width, state.placement.die_height),
        items(state.arrival),
        items(state.slack),
        items(state.stars),
        items(state.levels),
        items(state.req0),
        state.period,
        state.po_pad_cap,
        state.max_delay,
        state.version,
    ]


@pytest.mark.parametrize("seed", [3, 11])
def test_shared_memory_snapshot_round_trip(seed, library):
    net, placement = prepared(seed, library)
    engine = TimingEngine(net, placement, library)
    engine.analyze()
    codec = snapshot_codec.EvalSnapshotCodec()
    snapshot_codec.clear_worker_cache()
    try:
        rng = random.Random(3000 + seed)
        for step in range(4):
            payload = codec.encode(engine)
            kind = pickle.loads(payload)[0]
            if step == 0:
                assert kind == "soa_full", (
                    "first batch must ship the shared-memory baseline"
                )
            decoded = snapshot_codec.decode(payload)
            assert decoded is not None, f"step {step}: stale {kind}"
            # the reference path: pickle the object graph and clone it,
            # exactly what the retired protocol shipped
            reference = snapshot_codec._clone_state(
                pickle.loads(pickle.dumps(
                    engine.export_eval_state(),
                    protocol=pickle.HIGHEST_PROTOCOL,
                ))
            )
            ordered = kind != "delta"
            assert (
                _state_fields(decoded, ordered)
                == _state_fields(reference, ordered)
            ), f"step {step}: {kind} payload diverged"
            label = random_move(net, library, rng)
            assert label is not None
            engine.apply_and_update()
    finally:
        codec.close()
        snapshot_codec.clear_worker_cache()


@pytest.mark.parametrize("seed", [1, 9])
def test_masked_vector_sta_matches_fresh(seed, library, monkeypatch):
    # force every re-propagation through the vector pass regardless of
    # how few seeds a move dirties
    monkeypatch.setattr("repro.timing.sta.VECTOR_MIN_SEEDS", 0)
    net, placement = prepared(seed, library)
    engine = TimingEngine(net, placement, library)
    engine.analyze()
    rng = random.Random(4000 + seed)
    moves = 0
    for step in range(12):
        label = random_move(net, library, rng)
        if label is None:
            break
        moves += 1
        engine.apply_and_update()
        assert_matches_fresh(
            engine, net, placement, library, context=f"step {step}: {label}"
        )
    assert moves, "property test never exercised a move"
    assert engine.stats.vector_dispatches > 0
    assert engine.stats.full_analyses == 1
