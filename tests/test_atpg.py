"""ATPG engine: five-valued simulation, PODEM search, Lemma 1."""

import pytest

from repro.atpg.faults import Fault, all_faults, fault_site_support
from repro.atpg.podem import evaluate_gate, find_test, is_testable, simulate5
from repro.atpg.symmetry import es_by_atpg, nes_by_atpg, pin_symmetry_by_atpg
from repro.logic.simulate import truth_tables
from repro.logic.truthtable import is_es, is_nes
from repro.logic.values import Value
from repro.network.builder import NetworkBuilder
from repro.network.gatetype import GateType
from repro.network.netlist import Pin
from repro.symmetry.supergate import extract_supergates
from repro.symmetry.swap import enumerate_swaps

from helpers import random_network


def simple_and():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    builder.output(builder.and_(a, b, name="f"))
    return builder.build()


def test_evaluate_gate_five_valued():
    assert evaluate_gate(GateType.AND, [Value.D, Value.ONE]) is Value.D
    assert evaluate_gate(GateType.AND, [Value.D, Value.ZERO]) is Value.ZERO
    assert evaluate_gate(GateType.OR, [Value.D, Value.ZERO]) is Value.D
    assert evaluate_gate(GateType.NAND, [Value.D, Value.ONE]) is Value.DBAR
    assert evaluate_gate(GateType.XOR, [Value.D, Value.DBAR]) is Value.ONE
    assert evaluate_gate(GateType.INV, [Value.D]) is Value.DBAR
    assert evaluate_gate(GateType.CONST1, []) is Value.ONE


def test_simulate5_with_stem_fault():
    net = simple_and()
    values = simulate5(
        net,
        {"i0": Value.ONE, "i1": Value.ONE},
        fault=Fault(net="i0", stuck_at=0),
    )
    assert values["i0"] is Value.D
    assert values["f"] is Value.D


def test_simulate5_with_branch_fault():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    g = builder.and_(a, b, name="g")
    h = builder.or_(a, g, name="h")
    builder.output(h)
    net = builder.build()
    # branch a->g stuck at 1; a=0, b=1: g sees a=1 faulty
    values = simulate5(
        net,
        {"i0": Value.ZERO, "i1": Value.ONE},
        fault=Fault(net="i0", stuck_at=1, pin=Pin("g", 0)),
    )
    assert values["i0"] is Value.ZERO       # the stem itself is healthy
    assert values["g"] is Value.DBAR        # the branch view is faulty
    assert values["h"] is Value.DBAR


def test_find_test_for_testable_fault():
    net = simple_and()
    result = find_test(net, fault=Fault(net="i0", stuck_at=0))
    assert result.test is not None
    assert result.test["i0"] == 1 and result.test["i1"] == 1


def test_find_test_proves_untestable():
    # f = OR(a, AND(a, b)): the AND output s-a-0 is untestable
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    g = builder.and_(a, b, name="g")
    f = builder.or_(a, g, name="f")
    builder.output(f)
    net = builder.build()
    assert is_testable(net, Fault(net="g", stuck_at=0)) is False
    assert is_testable(net, Fault(net="g", stuck_at=1)) is True


def test_every_testable_test_actually_detects():
    """Returned tests must produce different good/faulty outputs."""
    from repro.logic.simulate import simulate_outputs

    for seed in range(6):
        net = random_network(seed, num_gates=10, num_outputs=2)
        for fault in list(all_faults(net, include_branches=False))[:20]:
            result = find_test(net, fault=fault, max_backtracks=3000)
            if result.test is None:
                continue
            good = simulate_outputs(net, result.test)
            faulty_net = _with_stuck_net(net, fault)
            faulty = simulate_outputs(faulty_net, result.test)
            assert good != faulty, (seed, str(fault))


def _with_stuck_net(net, fault):
    trial = net.copy()
    if trial.is_input(fault.net):
        # replace the PI by a constant via a rename dance
        const = trial.fresh_name("stuck")
        trial.add_gate(
            const,
            GateType.CONST1 if fault.stuck_at else GateType.CONST0,
            [],
        )
        for pin in list(trial.fanout(fault.net)):
            trial.replace_fanin(pin, const)
        trial.outputs = [
            const if net_name == fault.net else net_name
            for net_name in trial.outputs
        ]
        return trial
    gate = trial.gate(fault.net)
    gate.fanins = []
    trial.set_gate_type(
        fault.net,
        GateType.CONST1 if fault.stuck_at else GateType.CONST0,
    )
    return trial


def test_find_test_requires_some_target():
    net = simple_and()
    with pytest.raises(ValueError):
        find_test(net)


def test_fault_site_support_subset_of_inputs():
    net = random_network(1, num_gates=12)
    for fault in list(all_faults(net, include_branches=False))[:10]:
        support = fault_site_support(net, fault)
        assert set(support) <= set(net.inputs)


def test_lemma1_nes_es_match_truth_tables():
    for seed in range(12):
        net = random_network(
            seed, num_inputs=4, num_gates=10, num_outputs=1
        )
        tables = truth_tables(net)
        out = net.outputs[0]
        n = len(net.inputs)
        for i in range(n):
            for j in range(i + 1, n):
                gt_nes = is_nes(tables[out], n, i, j)
                gt_es = is_es(tables[out], n, i, j)
                assert nes_by_atpg(
                    net, net.inputs[i], net.inputs[j]
                ) == gt_nes, (seed, i, j)
                assert es_by_atpg(
                    net, net.inputs[i], net.inputs[j]
                ) == gt_es, (seed, i, j)


def test_pin_symmetry_by_atpg_agrees_with_swap_kinds():
    """Lemma 1 baseline against the linear-time detector."""
    for seed in range(8):
        net = random_network(seed, num_gates=10, num_outputs=1)
        sgn = extract_supergates(net)
        for sg in sgn.supergates.values():
            for swap in enumerate_swaps(sg, leaves_only=False):
                kinds = pin_symmetry_by_atpg(
                    net, sg.root, swap.pin_a, swap.pin_b
                )
                expected = "es" if swap.inverting else "nes"
                assert expected in kinds, (seed, swap)
