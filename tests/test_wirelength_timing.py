"""Timing-aware wirelength rewiring: slack projections and guard bands.

Covers the cross-layer contract between
:meth:`repro.timing.sta.TimingEngine.project_swap_slacks` and the
batched committer in :mod:`repro.rapids.wirelength`:

* exact projections realize bit-near-identically (1e-9) once the swap
  batch is committed and the engine re-folds incrementally;
* the guard band rejects wire-motivated swaps that would eat critical
  slack at margin 0 and admits them again at a negative margin;
* a larger guard band always admits a subset of the moves a smaller
  one admits (monotonicity);
* the Table-1 flow runs the slack-guarded polish by default.
"""

import pytest

from repro.network.builder import NetworkBuilder
from repro.place.placement import Placement
from repro.place.placer import place
from repro.rapids.engine import run_rapids
from repro.rapids.wirelength import reduce_wirelength, swap_bindings
from repro.suite.flow import FlowConfig
from repro.symmetry.supergate import extract_supergates
from repro.symmetry.swap import enumerate_swaps
from repro.synth.mapper import map_network
from repro.timing.sta import TimingEngine
from repro.verify.equiv import networks_equivalent

from helpers import random_network


def _prepared(seed, library, gates=60):
    net = random_network(seed, num_gates=gates, num_outputs=4)
    map_network(net, library)
    placement = place(net, library, seed=seed, anneal_moves=2000)
    return net, placement


def _pinned_engine(network, placement, library) -> TimingEngine:
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    engine.period = engine.max_delay
    return engine


def _leaf_swap_bindings(network):
    """All non-inverting leaf-swap candidates as rebinding tuples."""
    sgn = extract_supergates(network)
    bindings = []
    for sg in sgn.nontrivial():
        for swap in enumerate_swaps(
            sg, leaves_only=True, include_inverting=False, network=network
        ):
            bindings.append(
                swap_bindings(network, swap.pin_a, swap.pin_b)
            )
    return bindings


# ----------------------------------------------------------------------
# a hand-built circuit where the best wirelength swap eats critical slack
# ----------------------------------------------------------------------
def _critical_tradeoff_case():
    """Wire-improving swap on the critical path: HPWL -30 um, delay up.

    ``root = AND(inner, c)`` with ``inner = AND(a, b)`` makes pins
    ``a`` (on inner) and ``c`` (on root) non-inverting swappable.  Net
    ``a`` also feeds ``tap`` whose output pad sits far away — the
    critical path.  Swapping moves net a's other sink from ``inner``
    (y=50) to ``root`` (y=80): net a's bounding box is unchanged (the
    sink is interior) but its star center drifts from the source, so
    the Elmore delay to the critical ``tap`` sink grows; net c
    meanwhile shrinks from 35 um to 5 um.  Total HPWL improves while
    the critical path slows — exactly what the margin-0 guard must
    reject and a sufficiently negative margin must re-admit.
    """
    builder = NetworkBuilder("tradeoff")
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    inner = builder.and_(a, b, name="inner")
    root = builder.and_(inner, c, name="root")
    tap = builder.buf(a, name="tap")
    builder.output(root)
    builder.output(tap)
    network = builder.build()
    placement = Placement(
        die_width=200.0,
        die_height=600.0,
        locations={
            "inner": (0.0, 50.0),
            "root": (0.0, 80.0),
            "tap": (0.0, 100.0),
        },
        input_pads={
            "a": (0.0, 0.0),
            "b": (0.0, 50.0),
            "c": (0.0, 45.0),
        },
        output_pads={
            0: (0.0, 80.0),     # root's pad, right at the gate
            1: (0.0, 500.0),    # tap's pad, far: the critical path
        },
    )
    return network, placement


def test_critical_path_swap_rejected_at_margin_zero(library):
    network, placement = _critical_tradeoff_case()
    engine = _pinned_engine(network, placement, library)
    # precondition: the projection itself sees the trade-off
    bindings = _leaf_swap_bindings(network)
    improving = [
        binding for binding in bindings
        if _hpwl_delta(network, placement, binding) < -1e-9
    ]
    assert improving, "construction lost its wirelength-improving swap"
    projection = engine.project_swap_slacks(improving, exact=True)[0]
    assert projection.projected_min < -1e-12, (
        "construction lost its critical-path degradation"
    )

    reference = network.copy()
    result = reduce_wirelength(
        network, placement, timing_engine=engine, slack_margin=0.0,
    )
    assert result.timing_aware
    assert result.swaps_applied == 0 and result.cross_swaps_applied == 0
    assert result.timing_rejected >= 1
    assert result.final_hpwl == pytest.approx(result.initial_hpwl)
    assert networks_equivalent(reference, network)


def test_critical_path_swap_accepted_at_negative_margin(library):
    network, placement = _critical_tradeoff_case()
    reference = network.copy()
    engine = _pinned_engine(network, placement, library)
    baseline_delay = engine.max_delay
    result = reduce_wirelength(
        network, placement, timing_engine=engine, slack_margin=-1.0,
    )
    assert result.swaps_applied >= 1
    assert result.final_hpwl < result.initial_hpwl - 1e-9
    assert networks_equivalent(reference, network)
    # the admitted swap really did spend delay for wire
    retimed = TimingEngine(network, placement, library)
    retimed.analyze()
    assert retimed.max_delay > baseline_delay + 1e-12
    assert retimed.max_delay <= baseline_delay + 1.0 + 1e-9


def _hpwl_delta(network, placement, binding):
    from repro.rapids.wirelength import swap_hpwl_delta
    from repro.symmetry.swap import PinSwap

    (pin_a, _), (pin_b, _) = binding
    return swap_hpwl_delta(
        network, placement,
        PinSwap(root="", pin_a=pin_a, pin_b=pin_b, inverting=False),
    )


# ----------------------------------------------------------------------
# projected == applied under random swap batches
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [3, 7, 11, 19])
def test_projected_slacks_agree_with_applied(seed, library):
    """Exact batch projections realize to 1e-9 after the re-fold.

    Builds random conflict-free batches (pairwise-disjoint ``touched``
    sets — the committer's rule), applies them, lets the engine update
    incrementally, and compares every projected slack with the
    engine's realized value.
    """
    network, placement = _prepared(seed, library)
    engine = _pinned_engine(network, placement, library)
    bindings = _leaf_swap_bindings(network)
    if not bindings:
        pytest.skip("no leaf-swap candidates on this seed")
    checked = 0
    while bindings and checked < 3:
        projections = engine.project_swap_slacks(bindings, exact=True)
        touched: set[str] = set()
        batch = []
        for binding, projection in zip(bindings, projections):
            if projection.touched & touched:
                continue
            touched |= projection.touched
            batch.append((binding, projection))
        for (pin_a, _), (pin_b, _) in (b for b, _ in batch):
            network.swap_fanins(pin_a, pin_b)
        engine.refresh()
        for _binding, projection in batch:
            for net, projected in projection.projected.items():
                assert engine.slack[net] == pytest.approx(
                    projected, abs=1e-9
                ), (seed, net)
        checked += 1
        # recompute candidates against the new wiring for the next round
        bindings = _leaf_swap_bindings(network)


def test_fast_projection_matches_scalar_fallback(library, monkeypatch):
    """The one-numpy-pass star rebinding equals the build_star fallback."""
    import repro.timing.sta as sta

    network, placement = _prepared(5, library)
    engine = _pinned_engine(network, placement, library)
    bindings = _leaf_swap_bindings(network)
    assert bindings
    vectorized = engine.project_swap_slacks(bindings)
    monkeypatch.setattr(sta, "_np", None)
    scalar = engine.project_swap_slacks(bindings)
    for fast, slow in zip(vectorized, scalar):
        assert set(fast.projected) == set(slow.projected)
        for net in fast.projected:
            assert fast.projected[net] == pytest.approx(
                slow.projected[net], abs=1e-12
            )


# ----------------------------------------------------------------------
# guard-band monotonicity
# ----------------------------------------------------------------------
def test_guard_band_monotone(library):
    """A larger margin admits a subset of what a smaller margin admits."""
    network, placement = _prepared(13, library)
    engine = _pinned_engine(network, placement, library)
    bindings = _leaf_swap_bindings(network)
    assert bindings
    projections = engine.project_swap_slacks(bindings, exact=True)
    margins = [-0.5, -0.1, 0.0, 0.05, 0.2]
    admitted = [
        {index for index, p in enumerate(projections) if p.admissible(m)}
        for m in margins
    ]
    for smaller, larger in zip(admitted, admitted[1:]):
        assert larger <= smaller
    assert admitted[0]  # a deeply negative margin admits everything left


def test_timing_aware_polish_never_degrades_delay(library):
    for seed in (22, 23, 24, 31):
        network, placement = _prepared(seed, library, gates=80)
        reference = network.copy()
        engine = _pinned_engine(network, placement, library)
        baseline_delay = engine.max_delay
        result = reduce_wirelength(
            network, placement, timing_engine=engine,
        )
        assert networks_equivalent(reference, network), seed
        assert result.projection_drift <= 1e-9, seed
        retimed = TimingEngine(network, placement, library)
        retimed.analyze()
        assert retimed.max_delay <= baseline_delay + 1e-9, seed


def test_greedy_path_honors_the_guard(library):
    network, placement = _critical_tradeoff_case()
    engine = _pinned_engine(network, placement, library)
    result = reduce_wirelength(
        network, placement, batched=False, timing_engine=engine,
    )
    assert result.mode == "greedy"
    assert result.timing_aware
    assert result.swaps_applied == 0
    assert result.timing_rejected >= 1


# ----------------------------------------------------------------------
# flow plumbing
# ----------------------------------------------------------------------
def test_table1_flow_defaults_to_guarded_polish():
    config = FlowConfig()
    assert config.wl_passes == 1
    assert config.wl_timing_aware is True
    assert config.wl_slack_margin == 0.0


def test_run_rapids_reports_guarded_wirelength(library):
    net, placement = _prepared(17, library, gates=45)
    reference = net.copy()
    result = run_rapids(
        net, placement, library, mode="gsg", wl_passes=1,
        check_equivalence=True,
    )
    assert result.equivalent is True
    assert result.wirelength is not None
    assert result.wirelength.timing_aware is True
    assert result.wirelength.projection_drift <= 1e-9
    assert networks_equivalent(reference, net)
    # the reported delay describes the polished netlist
    retimed = TimingEngine(net, placement, library)
    retimed.analyze()
    assert result.optimize.final_delay == pytest.approx(
        retimed.max_delay, abs=1e-9
    )
