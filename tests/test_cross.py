"""Cross-supergate swapping (Definition 4 / Theorem 2)."""

from repro.network.builder import NetworkBuilder
from repro.logic.simulate import truth_tables, variable_word
from repro.symmetry.cross import (
    apply_cross_swap,
    demorgan_box,
    find_cross_swaps,
)
from repro.symmetry.supergate import extract_supergates
from repro.symmetry.verify import swap_preserves_outputs

from helpers import fig3_network, random_network


def test_fig3_cross_swap_found_and_preserves():
    net = fig3_network()
    sgn = extract_supergates(net)
    crosses = find_cross_swaps(sgn)
    assert len(crosses) == 1
    cross = crosses[0]
    assert {cross.sg1_root, cross.sg2_root} == {"sg1", "sg2"}
    assert not cross.needs_output_inverters
    reference = net.copy()
    apply_cross_swap(net, sgn, cross)
    assert swap_preserves_outputs(reference, net)
    # the fanin groups really moved
    assert set(net.gate("sg1").fanins) == {"i3", "i4", "i5"}
    assert set(net.gate("sg2").fanins) == {"i0", "i1", "i2"}


def test_mixed_polarity_cross_swap():
    # AND parent over an OR-rooted and a NAND-rooted supergate: their
    # root polarities agree (both forced at 0), so no output inverters
    builder = NetworkBuilder()
    a, b, c, d = builder.inputs(4)
    s1 = builder.or_(a, b, name="s1")
    s2 = builder.nand(c, d, name="s2")
    f = builder.and_(s1, s2, name="f")
    builder.output(f)
    net = builder.build()
    sgn = extract_supergates(net)
    crosses = find_cross_swaps(sgn)
    assert crosses
    reference = net.copy()
    apply_cross_swap(net, sgn, crosses[0])
    assert swap_preserves_outputs(reference, net)


def test_opposite_polarity_requires_output_inverters():
    # XOR parent accepts both kinds, children AND vs OR have opposite
    # root polarities: the polarity-preserving variant applies via the
    # parent's inverting swappability, so no output inverters needed
    builder = NetworkBuilder()
    a, b, c, d = builder.inputs(4)
    s1 = builder.and_(a, b, name="s1")
    s2 = builder.or_(c, d, name="s2")
    f = builder.xor(s1, s2, name="f")
    builder.output(f)
    net = builder.build()
    sgn = extract_supergates(net)
    crosses = find_cross_swaps(sgn)
    assert crosses
    for cross in crosses:
        trial = net.copy()
        apply_cross_swap(trial, extract_supergates(trial), cross)
        assert swap_preserves_outputs(net, trial)


def test_unequal_fanin_counts_rejected():
    builder = NetworkBuilder()
    a, b, c, d, e = builder.inputs(5)
    s1 = builder.and_(a, b, name="s1")
    s2 = builder.and_(c, d, e, name="s2")
    f = builder.or_(s1, s2, name="f")
    builder.output(f)
    net = builder.build()
    assert find_cross_swaps(extract_supergates(net)) == []


def test_multifanout_roots_rejected():
    net = fig3_network()
    net.add_output("sg1")  # sg1 now observed: rebinding would corrupt it
    sgn = extract_supergates(net)
    assert find_cross_swaps(sgn) == []


def test_cross_swaps_on_random_networks_preserve_function():
    found = 0
    for seed in range(60):
        net = random_network(seed, num_inputs=4, num_gates=10)
        sgn = extract_supergates(net)
        for cross in find_cross_swaps(sgn):
            trial = net.copy()
            apply_cross_swap(trial, extract_supergates(trial), cross)
            assert swap_preserves_outputs(net, trial), (seed, cross)
            found += 1
    # the pattern is rare in random logic but must occur somewhere
    assert found >= 1


def test_demorgan_box_computes_dual():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    s1 = builder.and_(a, b, name="s1")
    f = builder.buf(s1, name="f")
    builder.output(f)
    net = builder.build()
    sgn = extract_supergates(net)
    sg = sgn.supergate_of("s1")
    cap = demorgan_box(net, sg)
    # consumers (here: the primary output) were retargeted to the cap
    assert net.outputs == [cap]
    tables = truth_tables(net)
    w_a, w_b = variable_word(0, 2), variable_word(1, 2)
    # the boxed region now computes the dual: OR instead of AND
    assert tables[cap] == (w_a | w_b) & 0xF
