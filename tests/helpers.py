"""Importable test helpers (network generators shared by the suite).

These used to live in ``tests/conftest.py`` and were imported with
``from conftest import ...`` — which breaks the moment any *other*
conftest (``benchmarks/conftest.py``) lands earlier on ``sys.path``:
pytest inserts every rootdir-relative conftest directory, and the
first ``conftest`` module wins.  Helpers therefore live in a plain
module with an unambiguous name; ``conftest.py`` keeps only fixtures.
"""

from __future__ import annotations

import random

from repro.network.builder import NetworkBuilder
from repro.network.gatetype import GateType
from repro.network.netlist import Network

ALL_LOGIC_TYPES = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.INV,
    GateType.BUF,
]


def random_network(
    seed: int,
    num_inputs: int = 5,
    num_gates: int = 14,
    num_outputs: int = 2,
    max_arity: int = 3,
    types: list[GateType] | None = None,
    reuse: float = 0.5,
) -> Network:
    """Deterministic random logic network for property tests.

    Mixes recent-net and global sampling so the result has both depth
    and reconvergent fanout.
    """
    rng = random.Random(seed)
    builder = NetworkBuilder(f"rand{seed}")
    nets = builder.inputs(num_inputs)
    choices = types or ALL_LOGIC_TYPES
    for _ in range(num_gates):
        gtype = rng.choice(choices)
        if gtype in (GateType.INV, GateType.BUF):
            arity = 1
        else:
            arity = rng.randint(2, max_arity)
        pool = nets if rng.random() < reuse else nets[-12:]
        fanins: list[str] = []
        while len(fanins) < min(arity, len(set(pool))):
            candidate = rng.choice(pool)
            if candidate not in fanins:
                fanins.append(candidate)
        nets.append(builder.gate(gtype, *fanins))
    internal = nets[num_inputs:]
    for net in rng.sample(internal, min(num_outputs, len(internal))):
        builder.output(net)
    return builder.build()


def fig2_network() -> Network:
    """The paper's Fig. 2 circuit: f = AND(NOR(h, k), x)."""
    builder = NetworkBuilder("fig2")
    h, k, x = builder.inputs(3, prefix="p")
    inner = builder.nor(h, k, name="inner")
    builder.output(builder.and_(inner, x, name="f"))
    return builder.build()


def fig3_network() -> Network:
    """The paper's Fig. 3 flavour: f = OR(AND(a,b,c), AND(d,e,g))."""
    builder = NetworkBuilder("fig3")
    a, b, c, d, e, g = builder.inputs(6)
    sg1 = builder.and_(a, b, c, name="sg1")
    sg2 = builder.and_(d, e, g, name="sg2")
    builder.output(builder.or_(sg1, sg2, name="f"))
    return builder.build()
