"""NetworkBuilder conveniences: folding, trees, arithmetic blocks."""

import pytest

from repro.logic.simulate import truth_tables, variable_word
from repro.network.builder import NetworkBuilder
from repro.network.gatetype import GateType
from repro.network.validate import check_network


def test_single_input_gates_fold_to_wires():
    builder = NetworkBuilder()
    a = builder.input()
    assert builder.network.gate(builder.and_(a)).gtype is GateType.BUF
    assert builder.network.gate(builder.nand(a)).gtype is GateType.INV
    assert builder.network.gate(builder.xor(a)).gtype is GateType.BUF
    assert builder.network.gate(builder.xnor(a)).gtype is GateType.INV


def test_auto_names_are_unique():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    names = {builder.and_(a, b) for _ in range(10)}
    assert len(names) == 10


def test_balanced_tree_function_and_depth():
    builder = NetworkBuilder()
    nets = builder.inputs(9)
    root = builder.tree(GateType.AND, nets, fanin_limit=3)
    builder.output(root)
    net = builder.build()
    check_network(net)
    tables = truth_tables(net)
    expect = (1 << (1 << 9)) - 1
    for index in range(9):
        expect &= variable_word(index, 9)
    assert tables[root] == expect
    assert net.depth() == 2  # 9 -> 3 -> 1 with fanin 3


def test_chain_tree_function():
    builder = NetworkBuilder()
    nets = builder.inputs(5)
    root = builder.tree(GateType.XOR, nets, style="chain")
    builder.output(root)
    net = builder.build()
    tables = truth_tables(net)
    expect = 0
    for index in range(5):
        expect ^= variable_word(index, 5)
    assert tables[root] == expect


def test_inverted_tree_types():
    builder = NetworkBuilder()
    nets = builder.inputs(6)
    root = builder.tree(GateType.NAND, nets, fanin_limit=2)
    builder.output(root)
    net = builder.build()
    tables = truth_tables(net)
    conj = (1 << (1 << 6)) - 1
    for index in range(6):
        conj &= variable_word(index, 6)
    assert tables[root] == ~conj & ((1 << (1 << 6)) - 1)


def test_tree_rejects_empty():
    builder = NetworkBuilder()
    with pytest.raises(ValueError):
        builder.tree(GateType.AND, [])


def test_mux_function():
    builder = NetworkBuilder()
    s, a, b = builder.inputs(3)
    out = builder.mux(s, a, b, name="m")
    builder.output(out)
    tables = truth_tables(builder.build())
    sel = variable_word(0, 3)
    w_a = variable_word(1, 3)
    w_b = variable_word(2, 3)
    mask = (1 << 8) - 1
    assert tables["m"] == ((~sel & w_a) | (sel & w_b)) & mask


def test_full_adder_function():
    builder = NetworkBuilder()
    a, b, cin = builder.inputs(3)
    total, carry = builder.full_adder(a, b, cin)
    builder.output(total)
    builder.output(carry)
    tables = truth_tables(builder.build())
    for minterm in range(8):
        bits = [(minterm >> i) & 1 for i in range(3)]
        expect = sum(bits)
        got = ((tables[total] >> minterm) & 1) + 2 * (
            (tables[carry] >> minterm) & 1
        )
        assert got == expect, minterm


def test_constants():
    builder = NetworkBuilder()
    builder.input()
    one = builder.const1()
    zero = builder.const0()
    builder.output(one)
    builder.output(zero)
    net = builder.build()
    tables = truth_tables(net)
    assert tables[one] == 0b11
    assert tables[zero] == 0
