"""Incremental recoloring must match a fresh full coloring, always.

Property (the shape of ``test_incremental_sta.py``): after an
arbitrary sequence of committed pin rewires, the event-driven
:class:`~repro.symmetry.coloring.NetlistColoring` reports cone colors,
shape colors and leaf symmetry classes identical to a from-scratch
:func:`~repro.symmetry.coloring.color_network` — while performing
exactly one full coloring for the initial state (rewire-only
sequences are absorbed by the repair worklist).  Structural mutations
and untracked ``_touch()`` calls must fall back to a full recoloring
and still agree.
"""

from __future__ import annotations

import random

import pytest

from repro.network.gatetype import GateType
from repro.symmetry.coloring import NetlistColoring, color_network
from repro.symmetry.supergate import extract_supergates
from repro.symmetry.swap import enumerate_swaps

from helpers import random_network


def prepared(seed):
    return random_network(
        seed, num_inputs=8, num_gates=40, num_outputs=4, reuse=0.7
    )


def assert_matches_fresh(tracker, network, context=""):
    """Every maintained partition equals a from-scratch coloring."""
    fresh = color_network(network)
    got = tracker.get()
    assert got.cone == fresh.cone, context
    assert got.shape == fresh.shape, context
    assert got.leaf_class == fresh.leaf_class, context


def random_rewire(network, rng):
    """Commit one random pin rewire (swap_fanins or replace_fanin)."""
    if rng.random() < 0.5:
        swaps = [
            swap
            for sg in extract_supergates(network).nontrivial()
            for swap in enumerate_swaps(
                sg, leaves_only=True, include_inverting=False,
                network=network,
            )
        ]
        if swaps:
            swap = rng.choice(swaps)
            network.swap_fanins(swap.pin_a, swap.pin_b)
            return f"swap {swap.pin_a}<->{swap.pin_b}"
    # rewiring a pin to a primary input is always acyclic; the
    # coloring tracks structure, not function, so any rewire is fair
    pins = sorted(
        pin
        for gate in network.gates()
        for pin in (network.fanout(net)
                    for net in gate.fanins)
        for pin in pin
        if pin.gate == gate.name
    )
    pin = rng.choice(pins)
    target = rng.choice(sorted(network.inputs))
    if network.fanin_net(pin) == target:
        return None
    network.replace_fanin(pin, target)
    return f"rewire {pin} -> {target}"


@pytest.mark.parametrize("seed", [1, 2, 5, 9, 12])
def test_incremental_matches_full_after_random_rewires(seed):
    net = prepared(seed)
    tracker = NetlistColoring(net)
    tracker.get()
    rng = random.Random(1000 + seed)
    moves = 0
    for step in range(14):
        label = random_rewire(net, rng)
        if label is None:
            continue
        moves += 1
        assert_matches_fresh(tracker, net, context=f"step {step}: {label}")
    assert moves, "property test never exercised a rewire"
    # the whole sequence must have been served incrementally
    assert tracker.full_colorings == 1
    assert tracker.cone_repairs == moves
    assert tracker.nodes_recolored > 0


@pytest.mark.parametrize("seed", [3, 8])
def test_batched_rewires_before_one_get(seed):
    """Several rewires between reads collapse into one repair."""
    net = prepared(seed)
    tracker = NetlistColoring(net)
    tracker.get()
    rng = random.Random(seed)
    applied = 0
    for _ in range(6):
        if random_rewire(net, rng) is not None:
            applied += 1
    assert applied >= 2
    assert_matches_fresh(tracker, net, context="batched")
    assert tracker.full_colorings == 1
    assert tracker.cone_repairs == 1


def test_structural_mutation_falls_back_to_full():
    net = prepared(21)
    tracker = NetlistColoring(net)
    tracker.get()
    first = sorted(net.gate_names())[0]
    stem = net.gate(first).fanins[0]
    net.add_gate("t_extra", GateType.AND, [stem, sorted(net.inputs)[0]])
    assert_matches_fresh(tracker, net, context="add_gate")
    assert tracker.full_colorings == 2

    victim = sorted(
        name for name in net.gate_names()
        if net.gate(name).gtype in (GateType.AND, GateType.OR)
    )[0]
    net.set_gate_type(victim, GateType.NAND)
    assert_matches_fresh(tracker, net, context="set_gate_type")
    assert tracker.full_colorings == 3


def test_untracked_touch_falls_back_to_full():
    net = prepared(33)
    tracker = NetlistColoring(net)
    tracker.get()
    net._touch()  # untracked mutation: must trigger a full recoloring
    assert_matches_fresh(tracker, net, context="touch")
    assert tracker.full_colorings == 2


def test_rewire_updates_region_membership():
    """Leaf classes are rebuilt, not just colors: a rewire that
    changes which gates a region absorbs must be reflected."""
    net = prepared(42)
    tracker = NetlistColoring(net)
    before = dict(tracker.get().leaf_class)
    rng = random.Random(7)
    changed = False
    for _ in range(20):
        if random_rewire(net, rng) is None:
            continue
        after = tracker.get().leaf_class
        assert after == color_network(net).leaf_class
        if after != before:
            changed = True
            break
    assert changed, "no rewire ever moved a region boundary"
    assert tracker.region_rebuilds > 0
    assert tracker.full_colorings == 1
