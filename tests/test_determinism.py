"""The flow must not depend on PYTHONHASHSEED (ROADMAP item).

Hash randomization perturbs set/dict iteration order between
processes; any float accumulation or tie-break that follows such an
order makes the generate/place/optimize trajectory differ per process
(all trajectories individually valid — just not reproducible).  CI
used to pin ``PYTHONHASHSEED=0`` to paper over this; the sorted
iterations in ``placer._anneal``, ``TimingEngine.resize_gain`` and
``rapids.moves._bounded_swaps`` removed the dependence, and this test
locks it in by running the full flow in two subprocesses with
*different* hash seeds and comparing whole-trajectory fingerprints.
"""

from __future__ import annotations

import os
import subprocess
import sys

_FINGERPRINT_SCRIPT = """
from repro.suite.flow import FlowConfig, trajectory_fingerprint

config = FlowConfig(scale=0.08, max_rounds=2, anneal_moves=1500)
print(trajectory_fingerprint("alu2", config))
"""


def _run_flow(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    result = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=300,
    )
    return result.stdout.strip()


def test_flow_fingerprint_independent_of_hash_seed():
    fingerprints = {seed: _run_flow(seed) for seed in ("1", "4242", "random")}
    assert len(set(fingerprints.values())) == 1, (
        "flow trajectory depends on PYTHONHASHSEED: "
        + ", ".join(f"{s}->{f}" for s, f in fingerprints.items())
    )
