"""Properties of the placement-coherent region carve.

The partitioned rewiring pipeline trusts :func:`carve_regions` for
three things — complete disjoint coverage, the region size bound, and
a truthful internal/boundary net classification — and the whole
stacked-determinism story additionally needs the carve itself to be a
pure function of (network, placement, knobs).  Each property gets a
direct test on mapped random networks.
"""

from __future__ import annotations

import pytest
from helpers import random_network

from repro.library.cells import default_library
from repro.place.placement import grid_placement
from repro.place.placer import place
from repro.place.regions import carve_regions
from repro.synth.mapper import map_network


def _placed(seed: int, num_gates: int = 120):
    library = default_library()
    network = random_network(seed, num_gates=num_gates, num_outputs=6)
    map_network(network, library)
    placement = place(network, library, seed=seed)
    return network, placement


def test_max_gates_validated():
    network, placement = _placed(1, num_gates=20)
    with pytest.raises(ValueError):
        carve_regions(network, placement, max_gates=0)


def test_coverage_disjoint_and_bounded():
    network, placement = _placed(2)
    regions = carve_regions(network, placement, max_gates=30)
    assert len(regions.regions) >= 2
    assert regions.max_region_gates <= 30
    seen: set[str] = set()
    for region in regions.regions:
        assert len(region) >= 1
        assert not (seen & set(region.gates)), "regions overlap"
        seen.update(region.gates)
    assert seen == set(network.gate_names())
    # region_of agrees with the region list
    for region in regions.regions:
        for gate in region.gates:
            assert regions.region_of[gate] == region.index


def test_net_classification_truthful():
    network, placement = _placed(3)
    regions = carve_regions(network, placement, max_gates=30)
    for net in network.nets():
        terminals = set()
        if not network.is_input(net):
            terminals.add(net)
        terminals.update(pin.gate for pin in network.fanout(net))
        if not terminals:
            assert net not in regions.net_region
            assert net not in regions.boundary_nets
            continue
        owners = {regions.region_of[g] for g in terminals}
        if len(owners) == 1:
            assert regions.net_region[net] == owners.pop()
            assert net not in regions.boundary_nets
        else:
            assert net not in regions.net_region
            assert net in regions.boundary_nets


def test_single_region_when_bound_exceeds_size():
    network, placement = _placed(4, num_gates=40)
    regions = carve_regions(network, placement, max_gates=10**9)
    assert len(regions.regions) == 1
    assert regions.boundary_nets == frozenset()
    assert regions.fm_passes == 0
    # every net with a terminal is internal to region 0
    for net in network.nets():
        if network.fanout(net) or not network.is_input(net):
            assert regions.net_region[net] == 0


def test_carve_deterministic_across_calls():
    network, placement = _placed(5)
    a = carve_regions(network, placement, max_gates=25)
    b = carve_regions(network, placement, max_gates=25)
    assert [r.gates for r in a.regions] == [r.gates for r in b.regions]
    assert a.boundary_nets == b.boundary_nets
    assert a.net_region == b.net_region


def test_geometric_seed_carve_is_spatially_coherent():
    # with refinement off the carve is pure recursive median splitting,
    # so on a grid placement every region's bounding box must be a
    # fraction of the die — the compactness that keeps the frozen
    # boundary fraction low at scale (FM passes then only *refine* a
    # coherent seed instead of discovering a cut from randomness)
    library = default_library()
    network = random_network(6, num_gates=200, num_outputs=8)
    map_network(network, library)
    placement = grid_placement(network)
    regions = carve_regions(
        network, placement, max_gates=50, refine_passes=0
    )
    assert len(regions.regions) >= 4
    die_area = placement.die_width * placement.die_height
    for region in regions.regions:
        xs = [placement.locations[g][0] for g in region.gates]
        ys = [placement.locations[g][1] for g in region.gates]
        box = (max(xs) - min(xs)) * (max(ys) - min(ys))
        assert box <= 0.5 * die_area


def test_stats_shape():
    network, placement = _placed(7, num_gates=60)
    regions = carve_regions(network, placement, max_gates=20)
    stats = regions.stats()
    assert stats["regions"] == float(len(regions.regions))
    assert stats["max_region_gates"] <= 20.0
    assert stats["boundary_nets"] == float(len(regions.boundary_nets))
