"""Crash-safe shared-memory lifecycle: registry, hooks, stale sweeper.

``repro.parallel.shm`` owns every ``soa_full`` baseline segment: names
embed the creating pid, live blocks are registered until released, and
segments of dead processes are reaped by the sweeper.  The invariant
the whole PR rests on — no segment remains registered after any run —
is asserted here directly and re-asserted after every chaos test.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.parallel import shm

pytestmark = pytest.mark.skipif(
    shm.shared_memory is None, reason="shared_memory unavailable"
)


def test_create_registers_and_release_unregisters():
    block = shm.create_segment(64)
    try:
        assert block.name.startswith(f"{shm.PREFIX}{os.getpid()}_")
        assert block.size >= 64
        assert block.name in shm.registered_names()
    finally:
        shm.release_segment(block)
    assert block.name not in shm.registered_names()
    # idempotent: releasing again (or None) never raises
    shm.release_segment(block)
    shm.release_segment(None)


def test_release_all_clears_every_registered_segment():
    blocks = [shm.create_segment(32) for _ in range(3)]
    names = [block.name for block in blocks]
    assert set(names) <= set(shm.registered_names())
    shm.release_all()
    assert not set(names) & set(shm.registered_names())
    for name in names:
        with pytest.raises(FileNotFoundError):
            shm.shared_memory.SharedMemory(name=name)


def test_sweeper_reaps_dead_pids_and_spares_live_ones(tmp_path):
    # the sweeper only needs the naming scheme, so point it at a
    # scratch directory instead of touching the real /dev/shm
    probe = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True, text=True, check=True,
    )
    dead_pid = int(probe.stdout)
    dead = tmp_path / f"{shm.PREFIX}{dead_pid}_1"
    live = tmp_path / f"{shm.PREFIX}{os.getpid()}_999"
    foreign = tmp_path / "unrelated_file"
    for path in (dead, live, foreign):
        path.write_bytes(b"x")
    removed = shm.sweep_stale_segments(str(tmp_path))
    assert removed == [dead.name]
    assert not dead.exists()
    assert live.exists()       # our own pid: never reaped
    assert foreign.exists()    # wrong prefix: never considered


def test_sweeper_tolerates_missing_directory():
    assert shm.sweep_stale_segments("/nonexistent/directory") == []


def test_abnormal_exit_leaves_no_segment_behind(tmp_path):
    """A child that creates a segment and dies (atexit path for normal
    exit; the sweeper covers SIGKILL) must leak nothing visible to the
    next run."""
    script = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "from repro.parallel import shm\n"
        "block = shm.create_segment(128)\n"
        "print(block.name)\n"
        "raise SystemExit(1)\n"   # atexit hooks still run
    )
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )
    result = subprocess.run(
        [sys.executable, "-c", script, src],
        capture_output=True, text=True, timeout=60,
    )
    name = result.stdout.strip()
    assert name.startswith(shm.PREFIX)
    with pytest.raises(FileNotFoundError):
        shm.shared_memory.SharedMemory(name=name)


def test_sigkilled_owner_is_reaped_by_the_next_sweep():
    """SIGKILL of the whole process group skips every hook *and* the
    stdlib resource tracker (which is a forked sibling in the same
    group): the segment genuinely leaks, and survives until a later
    process's sweep attributes it to a dead pid and unlinks it."""
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    script = (
        "import os, signal, sys; sys.path.insert(0, sys.argv[1])\n"
        "from repro.parallel import shm\n"
        "block = shm.create_segment(128)\n"
        "print(block.name, flush=True)\n"
        "os.killpg(os.getpid(), signal.SIGKILL)\n"
    )
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )
    result = subprocess.run(
        [sys.executable, "-c", script, src],
        capture_output=True, text=True, timeout=60,
        start_new_session=True,   # own group: killpg spares pytest
    )
    name = result.stdout.strip()
    assert name.startswith(shm.PREFIX)
    assert os.path.exists(f"/dev/shm/{name}"), "expected a real leak"
    removed = shm.sweep_stale_segments()
    assert name in removed
    assert not os.path.exists(f"/dev/shm/{name}")
