"""The contract linter: each rule catches its seeded fixture
violations, blesses the fixed idioms, honors pragmas — and the repo
itself lints clean (the CI static-analysis gate, asserted here too so
a plain pytest run catches contract breaks without the CI job).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path


REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures_lint"

sys.path.insert(0, str(REPO))

from tools.lint import docs_sync, run_lint  # noqa: E402
from tools.lint.cli import main as lint_main  # noqa: E402


def lint(*names: str, rules: list[str] | None = None):
    return run_lint(
        [FIXTURES / name for name in names], rules, include_docs=False
    )


def rules_of(findings) -> set[str]:
    return {f.rule for f in findings}


def lines_of(findings, rule: str) -> set[int]:
    return {f.line for f in findings if f.rule == rule}


# ---------------------------------------------------------------- events


class TestEventsRule:
    def test_bad_fixture_caught(self):
        findings = lint("events_bad.py")
        assert rules_of(findings) == {"events"}
        messages = "\n".join(f.message for f in findings)
        # unregistered kind at the emission site
        assert "unregistered event kind 'add_widget'" in messages
        # schema mismatch: missing + smuggled operands
        assert "missing operands ['fanins']" in messages
        assert "unregistered operands ['extra']" in messages
        # bare strings flagged at both emission and dispatch sites
        assert "bare string event kind" in messages
        # partial listener: no catch-all, kinds silently dropped
        assert "no catch-all branch" in messages
        assert "neither handles nor explicitly ignores" in messages
        # operand misuse inside a kind-guarded branch
        assert "data['old'] is not an operand" in messages

    def test_clean_fixture_passes(self):
        assert lint("events_clean.py") == []

    def test_listener_coverage_counts_every_other_kind(self):
        findings = lint("events_bad.py")
        uncovered = {
            f.message.rsplit("'", 2)[-2]
            for f in findings
            if "neither handles" in f.message
        }
        # 12 registered - replace_fanin - swap_fanins (mentioned) -
        # unknown (catch-all's job, reported separately) = 9
        assert len(uncovered) == 9
        assert "replace_fanin" not in uncovered
        assert "unknown" not in uncovered


# ---------------------------------------------------------------- purity


class TestPurityRule:
    def test_bad_fixture_caught(self):
        findings = lint("purity_bad.py")
        assert rules_of(findings) == {"purity"}
        messages = "\n".join(f.message for f in findings)
        assert "'direct_mutation' reaches mutating call .set_cell()" in messages
        # transitive reach through the module-local call graph
        assert "'transitive_mutation' reaches mutating call" in messages
        assert "reached via" in messages
        # emission is impurity too
        assert "'gains' reaches mutating call ._touch()" in messages

    def test_clean_fixture_passes(self):
        assert lint("purity_clean.py") == []


# ----------------------------------------------------------- determinism


class TestDeterminismRule:
    """Regression net for the PR-2 PYTHONHASHSEED bug class."""

    def test_pr2_patterns_caught(self):
        findings = lint("det_bad.py")
        assert rules_of(findings) == {"determinism"}
        messages = [f.message for f in findings]
        # placer._anneal + resize_gain shapes: float sums in set order
        assert (
            sum("accumulation inside iteration over a set" in m for m in messages)
            == 2
        )
        # _bounded_swaps shape: min() whose key cannot break ties
        assert any("cannot break ties" in m for m in messages)
        # first-wins selection in hash order
        assert any("first-wins selection" in m for m in messages)

    def test_fixed_idioms_pass(self):
        # sorted() iteration, element-in-key-tuple, bare min, pragma
        assert lint("det_clean.py") == []

    def test_unmarked_module_is_out_of_scope(self):
        # same bad code without __deterministic__ = True: no findings
        bad = (FIXTURES / "det_bad.py").read_text()
        unmarked = bad.replace("__deterministic__ = True", "")
        scratch = FIXTURES.parent / "det_scratch_unmarked.py"
        scratch.write_text(unmarked)
        try:
            findings = run_lint([scratch], None, include_docs=False)
            assert findings == []
        finally:
            scratch.unlink()


# --------------------------------------------------------- worker-global


class TestWorkerGlobalRule:
    def test_bad_fixture_caught(self):
        findings = lint("worker_bad.py")
        assert rules_of(findings) == {"worker-global"}
        messages = "\n".join(f.message for f in findings)
        # direct write in the entry, plus both transitive classes
        assert "writes into module global 'RESULT_CACHE'" in messages
        assert "rebinds module global 'COUNTER'" in messages
        assert "mutates module global 'SEEN' via .add()" in messages

    def test_clean_fixture_passes(self):
        # locals/params are fine; the waiver pragma silences BASELINES
        assert lint("worker_clean.py") == []

    def test_fault_hook_body_exempt_but_callees_walked(self):
        # @fault_hook covers the hook body (its plan cache is keyed on
        # the immutable env payload) — not the functions it calls
        findings = lint("worker_fault_hook.py")
        assert rules_of(findings) == {"worker-global"}
        messages = [f.message for f in findings]
        assert all("_plan_for" not in m for m in messages)
        assert any(
            "writes into module global 'TALLY'" in m for m in messages
        )
        assert len(findings) == 1


# ------------------------------------------------------------ rule scope


def test_rules_flag_restricts_families():
    findings = lint("det_bad.py", "worker_bad.py", rules=["determinism"])
    assert findings and rules_of(findings) == {"determinism"}


# ------------------------------------------------- the repo lints clean


def test_repo_lints_clean():
    """`python -m tools.lint` exits 0 — the acceptance gate itself."""
    result = subprocess.run(
        [sys.executable, "-m", "tools.lint"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr + result.stdout
    assert "0 findings" in result.stdout


def test_cli_exits_nonzero_on_findings(capsys):
    rc = lint_main([str(FIXTURES / "worker_bad.py")])
    assert rc == 1
    captured = capsys.readouterr()
    assert "[worker-global]" in captured.err


# --------------------------------------------------------- docs in sync


def test_generated_docs_match_registry():
    """docs/architecture.md tables byte-identical to regeneration."""
    assert docs_sync.check() == []


def test_docs_drift_detected(tmp_path):
    target = tmp_path / "architecture.md"
    target.write_text(
        (REPO / "docs" / "architecture.md")
        .read_text()
        .replace("| `replace_fanin` |", "| `replace_pin` |", 1)
    )
    findings = docs_sync.check(target)
    assert len(findings) == 1
    assert "drifted" in findings[0].message
    # and --fix-docs repairs exactly that
    assert docs_sync.fix(target) is True
    assert docs_sync.check(target) == []


def test_missing_markers_is_an_error(tmp_path):
    target = tmp_path / "architecture.md"
    target.write_text("# no markers here\n")
    findings = docs_sync.check(target)
    assert len(findings) == 1
    assert "missing generated-block markers" in findings[0].message


# ------------------------------------------- repo contract spot checks


def test_repo_projection_only_surfaces_are_marked():
    """The pricing surfaces named by the contract carry the marker."""
    from repro.place.hpwl import WirelengthEngine
    from repro.rapids.moves import SwapMove
    from repro.rapids.wirelength import swap_hpwl_delta
    from repro.sizing.moves import ResizeMove
    from repro.timing.sta import TimingEngine

    for fn in (
        swap_hpwl_delta,
        SwapMove.gains,
        ResizeMove.gains,
        TimingEngine.swap_gain,
        TimingEngine.resize_gain,
        TimingEngine.project_swap_slacks,
        WirelengthEngine.swap_delta,
        WirelengthEngine.score_swaps,
        WirelengthEngine.rebind_delta,
    ):
        assert getattr(fn, "__projection_only__", False), fn.__qualname__


def test_repo_worker_entry_is_marked():
    from repro.parallel.pool import _evaluate_in_worker

    assert getattr(_evaluate_in_worker, "__worker_entry__", False)


def test_event_constants_keep_historical_wire_values():
    """Fingerprint safety: constants are the exact historical strings."""
    from repro.network import events

    assert events.ADD_GATE == "add_gate"
    assert events.REPLACE_FANIN == "replace_fanin"
    assert events.SWAP_FANINS == "swap_fanins"
    assert events.RESTORE == "restore"
    assert events.UNKNOWN == "unknown"
    assert set(events.KINDS) == set(events.REGISTRY)
    assert len(events.KINDS) == 12
