"""The RAPIDS engine: three modes, equivalence, placement discipline."""

import pytest

from repro.place.placer import place
from repro.rapids.engine import MODES, run_rapids
from repro.rapids.moves import MAX_MOVES_PER_SITE, SwapMove, swap_sites
from repro.rapids.report import (
    Table1Row,
    averages,
    build_row,
    fanout_profile,
)
from repro.symmetry.supergate import extract_supergates
from repro.synth.mapper import map_network
from repro.timing.sta import TimingEngine
from repro.verify.equiv import networks_equivalent

from helpers import random_network


def prepared(seed, library, gates=45):
    net = random_network(seed, num_gates=gates, num_outputs=4)
    map_network(net, library)
    placement = place(net, library, seed=seed, anneal_moves=2000)
    return net, placement


@pytest.mark.parametrize("mode", MODES)
def test_modes_preserve_function_and_never_worsen(mode, library):
    net, placement = prepared(11, library)
    reference = net.copy()
    result = run_rapids(
        net, placement, library, mode=mode, check_equivalence=True,
    )
    assert result.equivalent is True
    assert networks_equivalent(reference, net)
    assert result.optimize.final_delay <= (
        result.optimize.initial_delay + 1e-9
    )
    assert result.mode == mode
    assert result.coverage_percent >= 0
    assert result.max_supergate_inputs >= 1


def test_unknown_mode_rejected(library):
    net, placement = prepared(12, library)
    with pytest.raises(ValueError):
        run_rapids(net, placement, library, mode="frobnicate")


def test_rewiring_moves_no_cells(library):
    """The paper's headline: gsg leaves every placed cell in place."""
    net, placement = prepared(13, library)
    result = run_rapids(net, placement, library, mode="gsg")
    assert result.perturbation["moved_cells"] == 0
    # only inverters may appear or disappear
    assert result.perturbation["added_cells"] >= 0


def test_gs_mode_does_not_touch_topology(library):
    net, placement = prepared(14, library)
    fanins_before = {g.name: list(g.fanins) for g in net.gates()}
    run_rapids(net, placement, library, mode="gs")
    for gate in net.gates():
        assert gate.fanins == fanins_before[gate.name]


def test_swap_sites_cap(library):
    net, placement = prepared(15, library, gates=60)
    engine = TimingEngine(net, placement, library)
    engine.analyze()
    sgn = extract_supergates(net)
    for site in swap_sites(net, engine, sgn):
        assert len(site.moves) <= 2 * MAX_MOVES_PER_SITE


def test_swap_move_footprint_and_area(library):
    net, placement = prepared(16, library)
    engine = TimingEngine(net, placement, library)
    engine.analyze()
    sgn = extract_supergates(net)
    sites = swap_sites(net, engine, sgn)
    if not sites:
        pytest.skip("no swap sites on this seed")
    move = sites[0].moves[0]
    assert isinstance(move, SwapMove)
    footprint = move.footprint(net)
    assert move.swap.pin_a.gate in footprint
    if move.swap.inverting:
        assert move.area_delta(library) > 0
    else:
        assert move.area_delta(library) == 0


def test_table1_row_assembly(library):
    net, placement = prepared(17, library, gates=30)
    results = {}
    for mode in MODES:
        trial_net, trial_place = net.copy(), placement.copy()
        results[mode] = run_rapids(trial_net, trial_place, library, mode=mode)
    row = build_row("toy", len(net), results["gsg"].optimize.initial_delay,
                    results)
    text = row.format()
    assert "toy" in text
    assert len(text.split()) >= 13
    avg = averages([row])
    assert avg["gsg_gs_percent"] == pytest.approx(row.gsg_gs_percent)
    assert Table1Row.HEADER.split()[0] == "ckt"


def test_fanout_profile(library):
    net, _ = prepared(18, library)
    profile = fanout_profile(net)
    assert profile["max_fanout"] >= 1
    assert profile["nets_over_100"] >= 0


def test_supergate_cache_matches_fresh_extraction(library):
    """Partial invalidation yields the same partition as re-extraction."""
    import random

    from repro.network.transform import sweep
    from repro.rapids.engine import SupergateCache
    from repro.rapids.moves import bind_new_inverters
    from repro.symmetry.swap import apply_swap, enumerate_swaps

    def partition_signature(sgn):
        return {
            root: (
                sg.sg_class,
                sg.root_value,
                frozenset(sg.covered),
                tuple(sorted(
                    (leaf.pin, leaf.net, leaf.imp_value, leaf.depth)
                    for leaf in sg.leaves
                )),
            )
            for root, sg in sgn.supergates.items()
        }

    for seed in (23, 29, 31):
        net, _ = prepared(seed, library)
        cache = SupergateCache(net)
        rng = random.Random(seed)
        for step in range(12):
            sgn = cache.get()
            fresh = extract_supergates(net)
            assert sgn.owner == fresh.owner, (seed, step)
            assert partition_signature(sgn) == partition_signature(fresh)
            swaps = [
                swap
                for sg in sgn.nontrivial()
                for swap in enumerate_swaps(sg, leaves_only=True)
            ]
            if not swaps:
                break
            swap = rng.choice(swaps)
            before = len(net)
            apply_swap(net, swap)
            added = len(net) - before
            if added > 0:
                bind_new_inverters(net, library, net.recent_gates(added))
            if step % 4 == 3:
                sweep(net)
        # the whole walk must have been served by partial refreshes
        # (the initial partition may come from the shared store)
        assert cache.full_extractions + cache.store_fetches == 1
        assert cache.partial_refreshes >= 1


def test_supergate_cache_sees_class_changing_folds(library):
    """A gate whose class changes must re-open its consumers' growth.

    Constant folding turns XOR(a, CONST1) into INV(a) via
    set_fanins + set_gate_type; the inverter is now absorbable by the
    downstream AND supergate, so the cached partition must re-grow
    the consumer — not just the folded gate's own supergate.
    """
    from repro.network.builder import NetworkBuilder
    from repro.network.gatetype import GateType
    from repro.network.transform import propagate_constants
    from repro.rapids.engine import SupergateCache

    builder = NetworkBuilder("fold")
    a, x = builder.inputs(2)
    net = builder.build()
    net.add_gate("one", GateType.CONST1)
    net.add_gate("g", GateType.XOR, [a, "one"])
    net.add_gate("r", GateType.AND, ["g", x])
    net.add_output("r")
    cache = SupergateCache(net)
    cache.get()
    propagate_constants(net)
    sgn = cache.get()
    fresh = extract_supergates(net)
    assert sgn.owner == fresh.owner
    assert sgn.owner["g"] == "r"  # the inverter was absorbed downstream


def test_combined_mode_superset_of_sites(library):
    """gsg+GS must expose sizing for trivially-covered gates."""
    from repro.rapids.engine import _gsg_gs_factory

    net, placement = prepared(19, library)
    engine = TimingEngine(net, placement, library)
    engine.analyze()
    sites = _gsg_gs_factory(library)(net, engine)
    kinds = {site.key.split(":")[0] for site in sites}
    assert "gate" in kinds  # sizing sites exist
    sgn = extract_supergates(net)
    nontrivial_gates = {
        name for sg in sgn.nontrivial() for name in sg.covered
    }
    for site in sites:
        prefix, name = site.key.split(":", 1)
        if prefix == "gate":
            assert name not in nontrivial_gates


def test_persistent_supergate_store_shares_across_copies(library):
    """Copies with identical logic reuse one extraction (Table-1 modes)."""
    from repro.rapids.engine import (
        PersistentSupergateStore,
        network_content_hash,
    )

    net, _ = prepared(17, library)
    store = PersistentSupergateStore()
    first = store.get_or_extract(net)
    assert store.misses == 1 and store.hits == 0
    clone = net.copy()
    second = store.get_or_extract(clone)
    assert store.hits == 1
    assert second.network is clone
    assert second.supergates.keys() == first.supergates.keys()
    assert second.owner == first.owner
    # cell rebinding (pure sizing) keeps the structural hash stable...
    resized = net.copy()
    name = next(resized.gate_names())
    resized.set_cell(name, None)
    assert network_content_hash(resized) == network_content_hash(net)
    # ...while rewiring changes it and forces a fresh extraction
    rewired = net.copy()
    gate = next(g for g in rewired.gates() if g.arity() >= 2)
    from repro.network.netlist import Pin

    rewired.swap_fanins(Pin(gate.name, 0), Pin(gate.name, 1))
    assert network_content_hash(rewired) != network_content_hash(net)
    store.get_or_extract(rewired)
    assert store.misses == 2


def test_store_partitions_independent_after_attach(library):
    """A partial refresh on one attached copy must not corrupt others."""
    from repro.rapids.engine import PersistentSupergateStore

    net, _ = prepared(18, library)
    store = PersistentSupergateStore()
    original = store.get_or_extract(net)
    snapshot_roots = set(original.supergates.keys())
    attached = store.fetch(net.copy())
    attached.supergates.pop(next(iter(attached.supergates)))
    # mutating the attached copy's dicts leaves the store intact
    again = store.fetch(net.copy())
    assert set(again.supergates.keys()) == snapshot_roots
