"""Structural Verilog I/O: round trips, cell instances, escapes."""

import pytest

from repro.logic.simulate import truth_tables
from repro.network.netlist import NetworkError
from repro.network.verilog import parse_verilog, verilog_text
from repro.network.validate import check_network

from helpers import random_network


def test_round_trip_random_networks():
    for seed in range(10):
        net = random_network(seed, num_gates=16)
        back = parse_verilog(verilog_text(net))
        check_network(back)
        assert back.inputs == net.inputs
        tables_a = truth_tables(net)
        tables_b = truth_tables(back, support=list(net.inputs))
        for out_a, out_b in zip(net.outputs, back.outputs):
            assert tables_a[out_a] == tables_b[out_b], seed


def test_round_trip_with_constants():
    from repro.network.builder import NetworkBuilder

    builder = NetworkBuilder("consts")
    a = builder.input()
    one = builder.const1()
    builder.output(builder.and_(a, one, name="f"))
    net = builder.build()
    back = parse_verilog(verilog_text(net))
    tables = truth_tables(back, support=[a])
    assert tables[back.outputs[0]] == 0b10


def test_primitive_gate_parsing():
    text = """
    module toy (a, b, y);
      input a, b;
      output y;
      wire n1;
      nand u1 (n1, a, b);
      not (y, n1);
    endmodule
    """
    net = parse_verilog(text)
    assert net.name == "toy"
    assert net.gate("n1").gtype.name == "NAND"
    assert net.gate("y").gtype.name == "INV"
    tables = truth_tables(net)
    assert tables["y"] == (tables["a"] & tables["b"])


def test_library_cell_instances():
    text = """
    module mapped (a, b, y);
      input a, b; output y;
      wire n;
      NAND2_X2 u0 (.A(a), .B(b), .Y(n));
      INV_X1 u1 (.A(n), .Y(y));
    endmodule
    """
    net = parse_verilog(text)
    assert net.gate("n").cell == "NAND2_X2"
    assert net.gate("y").cell == "INV_X1"
    tables = truth_tables(net)
    assert tables["y"] == (tables["a"] & tables["b"])


def test_comments_stripped():
    text = """
    // a comment
    module t (a, y); /* block
    comment */ input a; output y;
    buf (y, a);
    endmodule
    """
    net = parse_verilog(text)
    assert net.outputs == ["y"]


def test_bad_constructs_rejected():
    with pytest.raises(NetworkError):
        parse_verilog("module t (y); output y; assign y = 1; endmodule")
    with pytest.raises(NetworkError):
        parse_verilog(
            "module t (a, y); input a; output y; endmodule"
        )  # y never driven


def test_escaped_identifiers_written():
    from repro.network.builder import NetworkBuilder

    builder = NetworkBuilder("esc")
    a = builder.input("a.b[0]")
    builder.output(builder.inv(a, name="weird$name"))
    text = verilog_text(builder.build())
    assert "\\a.b[0] " in text
