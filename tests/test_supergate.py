"""GISG extraction: partition invariants, classes, paths, statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.builder import NetworkBuilder
from repro.network.netlist import Pin
from repro.symmetry.reachability import (
    and_or_implied_value,
    xor_reachable,
)
from repro.symmetry.supergate import (
    SgClass,
    extract_supergates,
    grow_supergate,
)

from helpers import fig2_network, random_network


def test_fig2_supergate():
    net = fig2_network()
    sgn = extract_supergates(net)
    sg = sgn.supergates["f"]
    assert sg.sg_class is SgClass.ANDOR
    assert sg.root_value == 1
    assert set(sg.covered) == {"f", "inner"}
    leaves = {leaf.pin: leaf.imp_value for leaf in sg.leaves}
    assert leaves == {
        Pin("f", 1): 1,
        Pin("inner", 0): 0,
        Pin("inner", 1): 0,
    }


def test_partition_covers_every_gate_exactly_once():
    for seed in range(25):
        net = random_network(seed, num_gates=20)
        sgn = extract_supergates(net)
        assert set(sgn.owner) == set(net.gate_names()), seed
        seen: set[str] = set()
        for sg in sgn.supergates.values():
            for name in sg.covered:
                assert name not in seen, (seed, name)
                seen.add(name)
        assert seen == set(net.gate_names())


def test_roots_are_stems_or_outputs():
    """Coverage never crosses a multi-fanout net or a PO net."""
    for seed in range(15):
        net = random_network(seed, num_gates=18)
        sgn = extract_supergates(net)
        for sg in sgn.supergates.values():
            for name in sg.covered:
                if name == sg.root:
                    continue
                # interior gates drive exactly one pin and are not POs
                assert net.fanout_degree(name) == 1, (seed, name)
                assert name not in net.outputs


def test_interior_values_match_reachability():
    """pin_values of and-or supergates equal Definition 1 imp values."""
    for seed in range(12):
        net = random_network(seed, num_gates=15)
        sgn = extract_supergates(net)
        for sg in sgn.supergates.values():
            if sg.sg_class is not SgClass.ANDOR:
                continue
            for pin, value in sg.pin_values.items():
                definition = and_or_implied_value(net, pin, sg.root)
                assert definition == value, (seed, sg.root, pin)


def test_xor_supergate_pins_are_xor_reachable():
    for seed in range(12):
        net = random_network(seed, num_gates=15)
        sgn = extract_supergates(net)
        for sg in sgn.supergates.values():
            if sg.sg_class is not SgClass.XOR:
                continue
            for pin in sg.pins():
                assert xor_reachable(net, pin, sg.root), (seed, pin)


def test_wire_chain_supergate():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    stem = builder.and_(a, b, name="stem")
    n1 = builder.inv(stem, name="n1")
    n2 = builder.inv(n1, name="n2")
    builder.output(n2)
    builder.output(stem)  # make the AND a stem
    net = builder.build()
    sgn = extract_supergates(net)
    sg = sgn.supergates["n2"]
    assert sg.sg_class is SgClass.WIRE
    assert set(sg.covered) == {"n1", "n2"}
    assert len(sg.leaves) == 1
    assert sg.leaves[0].net == "stem"


def test_inv_rooted_andor_supergate():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    inner = builder.nand(a, b, name="inner")
    root = builder.inv(inner, name="root")
    builder.output(root)
    net = builder.build()
    sg = grow_supergate(net, "root")
    assert sg.sg_class is SgClass.ANDOR
    assert set(sg.covered) == {"root", "inner"}
    # NAND forcing output is 0; INV(0) = 1 at the root
    assert sg.root_value == 1
    assert {leaf.imp_value for leaf in sg.leaves} == {1}


def test_const_supergate():
    builder = NetworkBuilder()
    builder.input()
    one = builder.const1(name="one")
    builder.output(one)
    net = builder.build()
    sg = grow_supergate(net, "one")
    assert sg.sg_class is SgClass.CONST
    assert sg.is_trivial


def test_root_paths_and_containment():
    net = fig2_network()
    sg = extract_supergates(net).supergates["f"]
    path = sg.root_path(Pin("inner", 0))
    assert path == [Pin("inner", 0), Pin("f", 0)]
    assert sg.properly_contains(Pin("inner", 0), Pin("f", 0))
    assert not sg.properly_contains(Pin("inner", 0), Pin("inner", 1))
    assert not sg.properly_contains(Pin("inner", 0), Pin("f", 1))
    assert sg.depth_of(Pin("inner", 0)) == 2
    assert sg.depth_of(Pin("f", 1)) == 1
    with pytest.raises(KeyError):
        sg.root_path(Pin("nope", 0))


def test_stats_and_coverage():
    net = fig2_network()
    sgn = extract_supergates(net)
    stats = sgn.stats()
    assert stats["supergates"] == 1
    assert stats["nontrivial"] == 1
    assert sgn.coverage() == 1.0
    assert sgn.max_supergate_inputs() == 3
    assert not sgn.is_stale()
    net.add_input("zzz")
    assert sgn.is_stale()


def test_supergate_of_lookup():
    net = fig2_network()
    sgn = extract_supergates(net)
    assert sgn.supergate_of("inner").root == "f"
    assert sgn.supergate_of("f").root == "f"


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=40, deadline=None)
def test_extraction_never_crashes_and_partitions(seed):
    net = random_network(
        seed, num_inputs=4, num_gates=seed % 17 + 3, num_outputs=2
    )
    sgn = extract_supergates(net)
    covered = sum(len(sg.covered) for sg in sgn.supergates.values())
    assert covered == len(net)


def test_supergate_truth_table_canonical_forms():
    """The extracted local function matches the supergate algebra.

    An and-or supergate computes "root equals ``root_value`` iff every
    leaf equals its ``imp_value``" — an AND of leaf literals,
    complemented when ``root_value`` is 0; an xor supergate computes a
    parity (up to polarity) over its leaves.
    """
    from repro.logic.simulate import table_mask, variable_word
    from repro.symmetry.supergate import supergate_truth_table

    checked_andor = checked_xor = 0
    for seed in range(12):
        net = random_network(seed, num_gates=14, num_outputs=2)
        sgn = extract_supergates(net)
        for sg in sgn.supergates.values():
            if sg.num_inputs == 0 or sg.num_inputs > 10:
                continue
            pins, table = supergate_truth_table(net, sg)
            assert pins == [leaf.pin for leaf in sg.leaves]
            num_vars = len(pins)
            mask = table_mask(num_vars)
            if sg.sg_class is SgClass.ANDOR:
                product = mask
                for index, leaf in enumerate(sg.leaves):
                    literal = variable_word(index, num_vars)
                    if leaf.imp_value == 0:
                        literal ^= mask
                    product &= literal
                expected = product if sg.root_value == 1 else product ^ mask
                assert table == expected, (seed, sg.root)
                checked_andor += 1
            elif sg.sg_class is SgClass.XOR:
                parity = 0
                for index in range(num_vars):
                    parity ^= variable_word(index, num_vars)
                assert table in (parity, parity ^ mask), (seed, sg.root)
                checked_xor += 1
            elif sg.sg_class is SgClass.WIRE:
                literal = variable_word(0, 1)
                assert table in (literal, literal ^ table_mask(1)), (
                    seed, sg.root,
                )
    assert checked_andor > 5 and checked_xor > 0
