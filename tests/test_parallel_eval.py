"""Serial ≡ parallel: sharded gain evaluation must change nothing.

The contract of ``repro.parallel``: ``optimize(..., workers=N)`` walks
the bit-identical applied-move trajectory for every N — same move log,
same final delay, same final area — because workers score sites with
the same policy (:func:`repro.parallel.best_phase_move`) against exact
snapshots of the parent engine's cached analysis, and the parent merges
selections back in site-enumeration order.  These tests pin that
contract from the bottom (snapshot round-trip projects identical
gains) to the top (whole-flow fingerprints are worker-count- and
hash-seed-invariant across subprocesses).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import subprocess
import sys

import pytest

from repro.library.cells import default_library
from repro.parallel import (
    EvalPool,
    best_phase_move,
    merge_selections,
    shard_sites,
)
from repro.parallel import faults, shm
from repro.rapids.engine import run_rapids
from repro.sizing.moves import resize_sites
from repro.synth.mapper import map_network
from repro.place.placer import place
from repro.timing.sta import TimingEngine

from helpers import random_network

WORKER_COUNTS = [1, 2, 4]

_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def _placed_design(seed: int, num_gates: int = 50):
    library = default_library()
    network = random_network(
        seed, num_inputs=8, num_gates=num_gates, num_outputs=4
    )
    map_network(network, library)
    placement = place(network, library, seed=seed, anneal_moves=1500)
    return network, placement, library


def _trajectory(seed: int, workers: int):
    network, placement, library = _placed_design(seed)
    result = run_rapids(
        network, placement, library, mode="gsg_gs",
        collect_log=True, workers=workers,
    )
    opt = result.optimize
    return (
        tuple(opt.move_log),
        opt.final_delay,
        opt.final_area,
        opt.moves_applied,
        opt.rounds,
    )


# ----------------------------------------------------------------------
# the headline property: identical trajectories for every worker count
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [3, 11])
def test_optimize_trajectory_worker_count_invariant(seed):
    trajectories = {n: _trajectory(seed, n) for n in WORKER_COUNTS}
    reference = trajectories[1]
    assert reference[0], f"seed {seed}: serial run applied no moves"
    for workers, trajectory in trajectories.items():
        assert trajectory == reference, (
            f"seed {seed}: workers={workers} diverged from serial"
        )


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="no fork start method")
def test_parallel_batches_actually_run_in_the_pool():
    """The equivalence above must not hold vacuously: with a pool the
    sharded path has to execute (no silent fallback to inline)."""
    network, placement, library = _placed_design(7)
    from repro.rapids.engine import _gsg_gs_factory
    from repro.sizing.coudert import optimize

    with EvalPool(2, min_sites=1) as pool:
        optimize(
            network, placement, library, _gsg_gs_factory(library),
            eval_pool=pool,
        )
        assert pool.fallback_reason is None
        assert pool.parallel_batches > 0
        assert pool.sites_evaluated > 0


# ----------------------------------------------------------------------
# snapshot round-trip: a worker's engine projects identical gains
# ----------------------------------------------------------------------
def test_eval_state_pickle_roundtrip_projects_identical_gains():
    network, placement, library = _placed_design(5, num_gates=40)
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    state = pickle.loads(pickle.dumps(engine.export_eval_state()))
    replica = TimingEngine.from_eval_state(state)
    sites = resize_sites(network, library)
    assert sites
    for site in sites:
        for move in site.moves:
            assert move.gains(engine) == move.gains(replica), site.key
    # the policy on top of the gains agrees too, bit for bit
    for metric in ("min", "sum"):
        for site in sites:
            assert best_phase_move(
                site, engine, library, metric, 1e-9
            ) == best_phase_move(site, replica, state.library, metric, 1e-9)


def test_replica_engine_survives_committing_moves():
    """The snapshot carries the backward-pass cache (req0) too, so a
    replica is a full engine: committing a move through it must update
    incrementally to the same answer as the parent."""
    network, placement, library = _placed_design(23, num_gates=30)
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    state = pickle.loads(pickle.dumps(engine.export_eval_state()))
    replica = TimingEngine.from_eval_state(state)
    site = resize_sites(network, library)[0]
    move = site.moves[0]
    move.apply(network, library)
    engine.refresh()
    move.apply(state.network, state.library)
    replica.refresh()
    assert replica.max_delay == engine.max_delay
    assert replica.slack == engine.slack
    assert replica.arrival == engine.arrival


def test_pickled_network_arrives_unobserved():
    """Listeners (engines, caches) must not travel with the snapshot."""
    network, placement, library = _placed_design(9, num_gates=30)
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    clone = pickle.loads(pickle.dumps(network))
    assert len(clone._listeners) == 0
    assert list(clone.gate_names()) == list(network.gate_names())
    assert clone.topo_order() == network.topo_order()


# ----------------------------------------------------------------------
# cross-batch snapshot diffing: deltas rebuild bit-identical engines
# ----------------------------------------------------------------------
def test_snapshot_delta_rebuilds_bit_identical_engine():
    """Full baseline, then committed moves, then a delta: the decoded
    state must match a fresh full export entry for entry — including
    the slacks the worker refolds locally instead of receiving."""
    from repro.parallel import snapshot as snap

    network, placement, library = _placed_design(29, num_gates=45)
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    codec = snap.EvalSnapshotCodec()
    snap.clear_worker_cache()
    first = snap.decode(codec.encode(engine))
    assert first is not None
    assert codec.stats.full_batches == 1
    # commit a few real moves between "batches"
    sites = resize_sites(network, library)
    for site in sites[:5]:
        site.moves[0].apply(network, library)
    engine.refresh()
    payload = codec.encode(engine)
    assert codec.stats.delta_batches == 1
    assert len(payload) < codec.stats.full_bytes
    rebuilt = snap.decode(payload)
    assert rebuilt is not None
    reference = engine.export_eval_state()
    assert rebuilt.arrival == reference.arrival
    assert rebuilt.slack == reference.slack
    assert rebuilt.req0 == reference.req0
    assert rebuilt.levels == reference.levels
    assert rebuilt.max_delay == reference.max_delay
    assert rebuilt.version == reference.version
    assert {
        name: (g.gtype, tuple(g.fanins), g.cell)
        for name, g in rebuilt.network._gates.items()
    } == {
        name: (g.gtype, tuple(g.fanins), g.cell)
        for name, g in reference.network._gates.items()
    }
    # and the engine built from the delta selects identical moves
    replica = TimingEngine.from_eval_state(rebuilt)
    for metric in ("min", "sum"):
        for site in resize_sites(network, library):
            assert best_phase_move(
                site, engine, library, metric, 1e-9
            ) == best_phase_move(site, replica, library, metric, 1e-9)


def test_snapshot_delta_is_cumulative_against_the_baseline():
    """A worker that skipped intermediate batches must still decode the
    latest delta correctly (deltas diff against the baseline, not the
    previous batch)."""
    from repro.parallel import snapshot as snap

    network, placement, library = _placed_design(31, num_gates=40)
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    codec = snap.EvalSnapshotCodec()
    snap.clear_worker_cache()
    assert snap.decode(codec.encode(engine)) is not None
    sites = resize_sites(network, library)
    sites[0].moves[0].apply(network, library)
    engine.refresh()
    codec.encode(engine)  # delta 1: never delivered to this "worker"
    sites[1].moves[0].apply(network, library)
    engine.refresh()
    rebuilt = snap.decode(codec.encode(engine))  # delta 2, direct
    assert rebuilt is not None
    reference = engine.export_eval_state()
    assert rebuilt.slack == reference.slack
    assert rebuilt.arrival == reference.arrival


def test_snapshot_stale_without_baseline():
    """Deltas referencing an uncached baseline must report stale, and a
    rebase must invalidate stale workers' old baselines."""
    from repro.parallel import snapshot as snap

    network, placement, library = _placed_design(37, num_gates=30)
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    codec = snap.EvalSnapshotCodec()
    snap.clear_worker_cache()
    codec.encode(engine)  # baseline shipped, but this worker missed it
    sites = resize_sites(network, library)
    sites[0].moves[0].apply(network, library)
    engine.refresh()
    payload = codec.encode(engine)
    assert pickle.loads(payload)[0] == "delta"
    assert snap.decode(payload) is None  # baseline never cached here


def test_optimize_with_pool_ships_deltas_and_matches_serial():
    """The integrated path: a pooled optimize run must walk the serial
    trajectory while shipping mostly deltas after the first batch."""
    if not _FORK_AVAILABLE:
        pytest.skip("no fork start method")
    from repro.rapids.engine import _gsg_gs_factory
    from repro.sizing.coudert import optimize

    network_s, placement_s, library = _placed_design(19, num_gates=60)
    network_p, placement_p = network_s.copy(), placement_s.copy()
    serial = optimize(
        network_s, placement_s, library, _gsg_gs_factory(library),
        collect_log=True,
    )
    with EvalPool(2, min_sites=1) as pool:
        pooled = optimize(
            network_p, placement_p, library, _gsg_gs_factory(library),
            collect_log=True, eval_pool=pool,
        )
        stats = pool.snapshot.stats
        assert pool.fallback_reason is None
        assert stats.full_batches >= 1
        if stats.delta_batches:
            assert stats.mean_delta_bytes() < stats.mean_full_bytes()
    assert pooled.move_log == serial.move_log
    assert pooled.final_delay == serial.final_delay


# ----------------------------------------------------------------------
# merge determinism: shard boundaries and completion order are invisible
# ----------------------------------------------------------------------
def test_shard_sites_is_a_balanced_contiguous_partition():
    sites = [object() for _ in range(11)]
    for num_shards in (1, 2, 3, 4, 11, 50):
        shards = shard_sites(sites, num_shards)
        flat = [tag for shard in shards for tag in shard]
        assert [order for order, _ in flat] == list(range(len(sites)))
        assert [site for _, site in flat] == sites
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1  # balanced
        assert len(shards) <= max(1, min(num_shards, len(sites)))


def test_merge_selections_ignores_shard_boundaries_and_order():
    selections = [(float(i), -float(i), i % 3) for i in range(9)]
    tagged = list(enumerate(selections))
    splits = [
        [tagged],                                  # one shard
        [tagged[:4], tagged[4:]],                  # two shards
        [tagged[6:], tagged[:3], tagged[3:6]],     # shuffled completion
        [[pair] for pair in reversed(tagged)],     # one site per shard
    ]
    for shard_results in splits:
        assert merge_selections(len(selections), shard_results) == selections


# ----------------------------------------------------------------------
# degradation: a broken pool falls back inline with identical results
# ----------------------------------------------------------------------
def test_pool_degrades_to_inline_on_executor_failure(monkeypatch):
    network, placement, library = _placed_design(13, num_gates=35)
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    sites = resize_sites(network, library)
    serial = [
        best_phase_move(site, engine, library, "min", 1e-9)
        for site in sites
    ]
    pool = EvalPool(2, min_sites=1)

    def boom(*_args, **_kwargs):
        raise OSError("no processes in this sandbox")

    monkeypatch.setattr(pool, "_evaluate_sharded", boom)
    got = pool.evaluate(engine, library, sites, "min", 1e-9)
    assert got == serial
    assert pool.fallback_reason is not None
    assert not pool.active
    # later batches stay inline, no retry storm
    again = pool.evaluate(engine, library, sites, "min", 1e-9)
    assert again == serial
    assert pool.inline_batches == 2
    pool.close()


def test_thread_backend_matches_serial_exactly():
    """The sharded code path itself (minus processes) changes nothing."""
    network, placement, library = _placed_design(17, num_gates=35)
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    sites = resize_sites(network, library)
    serial = [
        best_phase_move(site, engine, library, "sum", 1e-9)
        for site in sites
    ]
    with EvalPool(3, backend="thread", min_sites=1) as pool:
        assert pool.evaluate(engine, library, sites, "sum", 1e-9) == serial
        assert pool.parallel_batches == 1


# ----------------------------------------------------------------------
# chaos: injected faults cost retries and rebuilds, never correctness
# ----------------------------------------------------------------------
def _chaos_reference(seed: int, num_gates: int = 35):
    network, placement, library = _placed_design(seed, num_gates=num_gates)
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    sites = resize_sites(network, library)
    serial = [
        best_phase_move(site, engine, library, "min", 1e-9)
        for site in sites
    ]
    return network, engine, library, sites, serial


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="no fork start method")
def test_killed_worker_is_recovered_by_a_pool_rebuild():
    _, engine, library, sites, serial = _chaos_reference(43)
    with EvalPool(2, min_sites=1) as pool:
        with faults.active({"worker": {0: {"action": "kill"}}}):
            got = pool.evaluate(engine, library, sites, "min", 1e-9)
        assert got == serial
        assert pool.fallback_reason is None and pool.active
        assert pool.health.pool_rebuilds >= 1
    assert shm.registered_names() == []


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="no fork start method")
def test_worker_exception_is_retried_with_backoff():
    _, engine, library, sites, serial = _chaos_reference(44)
    with EvalPool(2, min_sites=1) as pool:
        with faults.active({"worker": {0: {"action": "exception"}}}):
            got = pool.evaluate(engine, library, sites, "min", 1e-9)
        assert got == serial
        assert pool.fallback_reason is None
        assert pool.health.worker_exceptions >= 1
        assert pool.health.shard_retries >= 1
        assert pool.health.pool_rebuilds == 0  # rung 1 was enough
    assert shm.registered_names() == []


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="no fork start method")
def test_stale_shard_gets_one_full_resend_before_inline():
    _, engine, library, sites, serial = _chaos_reference(45)
    with EvalPool(2, min_sites=1) as pool:
        with faults.active({"worker": {0: {"action": "stale"}}}):
            got = pool.evaluate(engine, library, sites, "min", 1e-9)
        assert got == serial
        assert pool.fallback_reason is None
        assert pool.health.stale_recoveries == 1
        assert pool.health.inline_fallbacks == 0
    assert shm.registered_names() == []


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="no fork start method")
def test_hung_shard_times_out_and_escalates_to_rebuild():
    _, engine, library, sites, serial = _chaos_reference(46)
    with EvalPool(2, min_sites=1, shard_timeout=0.5) as pool:
        with faults.active(
            {"worker": {0: {"action": "delay", "seconds": 5.0}}}
        ):
            got = pool.evaluate(engine, library, sites, "min", 1e-9)
        assert got == serial
        assert pool.fallback_reason is None
        assert pool.health.shard_timeouts >= 1
        assert pool.health.pool_rebuilds >= 1
    assert shm.registered_names() == []


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="no fork start method")
def test_corrupt_delta_forces_full_resend_not_wrong_answers():
    network, engine, library, sites, serial = _chaos_reference(47, 40)
    # fail every delta decode; full payloads never consult this point,
    # so batch 1 and the recovery resends sail through untouched
    plan = {"corrupt_delta": {i: {"action": "fail"} for i in range(16)}}
    with EvalPool(2, min_sites=1) as pool:
        with faults.active(plan):
            assert pool.evaluate(
                engine, library, sites, "min", 1e-9
            ) == serial
            sites[0].moves[0].apply(network, library)
            engine.refresh()
            fresh = resize_sites(network, library)
            serial2 = [
                best_phase_move(site, engine, library, "min", 1e-9)
                for site in fresh
            ]
            assert pool.evaluate(
                engine, library, fresh, "min", 1e-9
            ) == serial2
        assert pool.fallback_reason is None
        assert pool.health.stale_recoveries >= 1
    assert shm.registered_names() == []


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="no fork start method")
def test_relentless_kills_exhaust_the_ladder_and_degrade_inline():
    """Rung 3: when every process dies on every attempt, the rebuild
    budget runs out, the pool degrades, and the batch still completes
    inline with serial-identical results."""
    _, engine, library, sites, serial = _chaos_reference(48)
    plan = {"worker": {i: {"action": "kill"} for i in range(64)}}
    with EvalPool(2, min_sites=1) as pool:
        with faults.active(plan):
            got = pool.evaluate(engine, library, sites, "min", 1e-9)
        assert got == serial
        assert not pool.active
        assert pool.health.degraded_reason is not None
        assert pool.health.pool_rebuilds == pool.max_pool_rebuilds
        assert pool.health.inline_fallbacks >= 1
    assert shm.registered_names() == []


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="no fork start method")
@pytest.mark.parametrize("workers,action", [(2, "kill"), (4, "stale")])
def test_optimize_trajectory_survives_injected_faults(workers, action):
    """The whole-run chaos property: a fault plan may change how often
    the pool retries and rebuilds, never which moves get applied."""
    from repro.rapids.engine import _gs_factory
    from repro.sizing.coudert import optimize

    network, placement, library = _placed_design(53, num_gates=45)
    net_s, pl_s = network.copy(), placement.copy()
    serial = optimize(
        net_s, pl_s, library, _gs_factory(library), collect_log=True
    )
    assert serial.moves_applied > 0
    net_c, pl_c = network.copy(), placement.copy()
    with EvalPool(workers, min_sites=1) as pool:
        with faults.active({"worker": {0: {"action": action}}}):
            chaotic = optimize(
                net_c, pl_c, library, _gs_factory(library),
                collect_log=True, eval_pool=pool,
            )
        assert pool.fallback_reason is None
        recovered = (
            pool.health.pool_rebuilds if action == "kill"
            else pool.health.stale_recoveries
        )
        assert recovered >= 1, "the fault never fired"
    assert chaotic.move_log == serial.move_log
    assert chaotic.final_delay == serial.final_delay
    assert chaotic.final_area == serial.final_area
    assert {
        g.name: (g.cell, tuple(g.fanins)) for g in net_c.gates()
    } == {
        g.name: (g.cell, tuple(g.fanins)) for g in net_s.gates()
    }
    assert shm.registered_names() == []


# ----------------------------------------------------------------------
# whole-flow fingerprint: worker-count- and hash-seed-invariant
# ----------------------------------------------------------------------
_FINGERPRINT_SCRIPT = """
from repro.suite.flow import FlowConfig, trajectory_fingerprint

config = FlowConfig(
    scale=0.08, max_rounds=2, anneal_moves=1500, workers={workers},
)
print(trajectory_fingerprint("alu2", config))
"""


def _flow_fingerprint(workers: int, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    result = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT.format(workers=workers)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=300,
    )
    return result.stdout.strip()


def test_flow_fingerprint_worker_count_invariant():
    """test_determinism's contract, extended over the workers axis: the
    fingerprint must survive worker count and hash seed changing at
    once (each subprocess varies both)."""
    fingerprints = {
        (workers, hashseed): _flow_fingerprint(workers, hashseed)
        for workers, hashseed in ((1, "1"), (2, "4242"), (4, "random"))
    }
    assert len(set(fingerprints.values())) == 1, (
        "flow trajectory depends on worker count or hash seed: "
        + ", ".join(f"{key}->{fp}" for key, fp in fingerprints.items())
    )
