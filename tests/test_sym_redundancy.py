"""Fig. 1 redundancy events: detection, ATPG confirmation, removal."""

from repro.atpg.redundancy import prove_branch_redundant
from repro.network.builder import NetworkBuilder
from repro.network.netlist import Pin
from repro.symmetry.redundancy import (
    find_easy_redundancies,
    redundancy_counts,
    remove_redundancy,
    unique_stems,
)
from repro.verify.equiv import networks_equivalent

from helpers import random_network


def fig1a_network():
    """Conflict (Fig. 1a): forcing f reaches stem x with both values."""
    builder = NetworkBuilder("fig1a")
    x, y = builder.inputs(2)
    inv = builder.inv(x, name="n")
    f = builder.and_(x, inv, name="f")   # constant 0
    out = builder.or_(f, y, name="out")
    builder.output(out)
    return builder.build()


def fig1b_network():
    """Agreement (Fig. 1b): stem x implied 1 along two branches."""
    builder = NetworkBuilder("fig1b")
    x, y, z = builder.inputs(3)
    g = builder.and_(x, y, name="g")
    h = builder.and_(g, x, name="h")
    out = builder.or_(h, z, name="out")
    builder.output(out)
    return builder.build()


def test_conflict_detected():
    net = fig1a_network()
    events = find_easy_redundancies(net)
    kinds = {(e.root, e.kind) for e in events}
    assert ("f", "conflict") in kinds


def test_agreement_detected():
    net = fig1b_network()
    events = find_easy_redundancies(net)
    agreements = [e for e in events if e.kind == "agreement"]
    assert agreements
    assert agreements[0].stem == "i0"
    assert agreements[0].implied_value == 1


def test_agreement_confirmed_by_atpg():
    """The paper's claim: the duplicated branch is s-a-1 untestable."""
    net = fig1b_network()
    assert prove_branch_redundant(net, Pin("h", 1), stuck_at=1) is True
    # the other x branch (into g) is ALSO untestable here by symmetry
    assert prove_branch_redundant(net, Pin("g", 0), stuck_at=1) is True
    # but y's branch is testable
    assert prove_branch_redundant(net, Pin("g", 1), stuck_at=1) is False


def test_removal_preserves_function():
    net = fig1b_network()
    reference = net.copy()
    events = find_easy_redundancies(net)
    agreement = next(e for e in events if e.kind == "agreement")
    assert remove_redundancy(net, agreement) is True
    assert networks_equivalent(reference, net)


def test_conflict_removal_makes_root_constant():
    net = fig1a_network()
    reference = net.copy()
    events = find_easy_redundancies(net)
    conflict = next(e for e in events if e.kind == "conflict")
    assert remove_redundancy(net, conflict) is True
    assert networks_equivalent(reference, net)
    from repro.network.gatetype import CONST_TYPES

    assert net.gate("f").gtype in CONST_TYPES


def test_counts_helper():
    net = fig1b_network()
    events = find_easy_redundancies(net)
    counts = redundancy_counts(events)
    assert counts["events"] == len(events)
    assert counts["agreements"] >= 1
    assert counts["stems"] == len(unique_stems(events))


def test_irredundant_networks_report_nothing():
    builder = NetworkBuilder()
    a, b, c = builder.inputs(3)
    builder.output(builder.and_(a, b, c, name="f"))
    net = builder.build()
    assert find_easy_redundancies(net) == []


def test_removal_never_breaks_random_networks():
    removed = 0
    for seed in range(12):
        net = random_network(seed, num_gates=16)
        reference = net.copy()
        for event in find_easy_redundancies(net):
            if remove_redundancy(net, event):
                removed += 1
                assert networks_equivalent(reference, net), seed
    # some random networks do contain easy redundancies
    assert removed >= 0  # smoke: the loop itself must be safe
