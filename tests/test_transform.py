"""Primitive transforms: all must preserve primary-output functions."""

import pytest

from repro.logic.simulate import truth_tables
from repro.network.builder import NetworkBuilder
from repro.network.gatetype import GateType
from repro.network.netlist import Pin
from repro.network.transform import (
    cleanup,
    collapse_wire_pairs,
    complement_net,
    demorgan_gate,
    insert_inverter,
    propagate_constants,
    swap_inverting,
    swap_noninverting,
    sweep,
)
from repro.verify.equiv import networks_equivalent

from helpers import random_network


def test_insert_inverter_flips_pin_function():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    f = builder.and_(a, b, name="f")
    builder.output(f)
    net = builder.build()
    inv = insert_inverter(net, Pin("f", 0))
    assert net.gate(inv).gtype is GateType.INV
    tables = truth_tables(net)
    # f is now (not a) and b
    assert tables["f"] == (~tables["i0"] & tables["i1"]) & 0b1111


def test_complement_net_taps_driving_inverter():
    builder = NetworkBuilder()
    a = builder.input()
    n = builder.inv(a, name="n")
    f = builder.buf(n, name="f")
    builder.output(f)
    net = builder.build()
    # complement of n is just a - no new gate
    before = len(net)
    assert complement_net(net, "n") == a
    assert len(net) == before


def test_complement_net_respects_unstable_pins():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    inv = builder.inv(a, name="inv_a")
    f = builder.and_(inv, b, name="f")
    builder.output(f)
    net = builder.build()
    # the only existing inverter of a is inv_a; if its in-pin is
    # unstable we must create a fresh one
    fresh = complement_net(
        net, a, unstable_pins=frozenset({Pin("inv_a", 0)})
    )
    assert fresh != "inv_a"
    assert net.gate(fresh).gtype is GateType.INV


def test_demorgan_gate_preserves_function():
    for seed in range(8):
        net = random_network(seed, types=[
            GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
            GateType.INV,
        ])
        reference = net.copy()
        for name in list(net.gate_names()):
            if net.gate(name).gtype in (
                GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
            ):
                demorgan_gate(net, name)
        assert networks_equivalent(reference, net), seed


def test_demorgan_gate_rejects_xor():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    builder.output(builder.xor(a, b, name="f"))
    net = builder.build()
    with pytest.raises(ValueError):
        demorgan_gate(net, "f")


def test_swap_noninverting_exchanges_nets():
    builder = NetworkBuilder()
    a, b, c = builder.inputs(3)
    f = builder.and_(a, b, name="f")
    g = builder.and_(c, c, name="g") if False else builder.buf(c, name="g")
    builder.output(f)
    builder.output(g)
    net = builder.build()
    swap_noninverting(net, Pin("f", 0), Pin("g", 0))
    assert net.gate("f").fanins == [c, b]
    assert net.gate("g").fanins == [a]


def test_swap_inverting_cancels_against_inverter_drivers():
    builder = NetworkBuilder()
    a, b = builder.inputs(2)
    na = builder.inv(a, name="na")
    f = builder.and_(na, b, name="f")
    builder.output(f)
    net = builder.build()
    # inverting swap of the two pins of f: na's complement is a itself
    swap_inverting(net, Pin("f", 0), Pin("f", 1))
    tables = truth_tables(net)
    # f was (not a) and b == after swap (not b) and a
    i0, i1 = tables["i0"], tables["i1"]
    assert tables["f"] == (~i1 & i0) & 0b1111


def test_propagate_constants_fold():
    builder = NetworkBuilder()
    a = builder.input()
    one = builder.const1()
    zero = builder.const0()
    f = builder.and_(a, one, name="f")       # -> BUF(a)
    g = builder.and_(a, zero, name="g")      # -> CONST0
    h = builder.xor(a, one, name="h")        # -> INV(a)
    builder.output(f)
    builder.output(g)
    builder.output(h)
    net = builder.build()
    reference = net.copy()
    folded = propagate_constants(net)
    assert folded >= 3
    assert net.gate("f").gtype is GateType.BUF
    assert net.gate("g").gtype is GateType.CONST0
    assert net.gate("h").gtype is GateType.INV
    assert networks_equivalent(reference, net)


def test_collapse_wire_pairs_and_sweep():
    builder = NetworkBuilder()
    a = builder.input()
    n1 = builder.inv(a)
    n2 = builder.inv(n1)
    f = builder.buf(n2, name="f")
    builder.output(f)
    net = builder.build()
    reference = net.copy()
    collapse_wire_pairs(net)
    swept = sweep(net)
    assert swept >= 1
    assert networks_equivalent(reference, net)


def test_cleanup_runs_to_fixpoint_on_random_networks():
    for seed in range(10):
        net = random_network(seed, num_gates=20)
        reference = net.copy()
        cleanup(net)
        assert networks_equivalent(reference, net), seed
        # idempotent
        again = cleanup(net)
        assert again == {"folded": 0, "retargeted": 0, "swept": 0}
