"""Checkpoint/resume: crash-durable runs with bit-identical results.

The contract of :mod:`repro.checkpoint`: a run interrupted by SIGTERM
saves its cursor at the next deterministic boundary and exits cleanly;
rerunning with ``resume`` grafts the saved state back and finishes
with a trajectory — and final fingerprint — bit-identical to a run
that was never interrupted.  Tested bottom-up: the manager's save /
cadence / signal machinery, the state packers' exact round-trips, the
optimizer and whole-``run_rapids`` resume equivalence at every
boundary, and a real SIGTERMed CLI process resumed to the same flow
fingerprint.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import pytest
from helpers import random_network

from repro.checkpoint import (
    CHECKPOINT_EXIT_CODE,
    CheckpointManager,
    RunInterrupted,
    engine_from_state,
    graft_state,
    pack_eval_state,
    pack_network,
    unpack_eval_state,
)
from repro.library.cells import default_library
from repro.parallel import faults
from repro.place.placer import place
from repro.rapids.engine import _gs_factory, run_rapids
from repro.sizing.coudert import optimize
from repro.synth.mapper import map_network
from repro.timing.sta import TimingEngine

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src")
)


def _placed_design(seed: int, num_gates: int = 50):
    library = default_library()
    network = random_network(
        seed, num_inputs=8, num_gates=num_gates, num_outputs=4
    )
    map_network(network, library)
    placement = place(network, library, seed=seed, anneal_moves=1500)
    return network, placement, library


def _result_fingerprint(network, result) -> tuple:
    opt = result.optimize
    wl = result.wirelength
    return (
        tuple(
            (g.name, g.gtype.value, tuple(g.fanins), g.cell)
            for g in sorted(network.gates(), key=lambda g: g.name)
        ),
        opt.moves_applied, opt.rounds, opt.final_delay, opt.final_area,
        None if wl is None else (
            wl.swaps_applied, wl.cross_swaps_applied, wl.final_hpwl,
            wl.rounds, wl.passes, wl.candidates_scored,
        ),
    )


# ----------------------------------------------------------------------
# the manager: persistence, cadence, signals
# ----------------------------------------------------------------------
def test_save_is_atomic_and_load_tolerates_garbage(tmp_path):
    path = tmp_path / "run.ckpt"
    manager = CheckpointManager(str(path))
    assert manager.load() is None           # missing file: fresh run
    manager.save({"stage": "x", "value": 7})
    assert manager.load() == {"stage": "x", "value": 7}
    assert manager.saves == 1
    assert manager.save_seconds > 0.0
    assert not list(tmp_path.glob("*.tmp.*"))   # temp replaced, not left
    path.write_bytes(b"\x80garbage")
    assert manager.load() is None           # corrupt file: fresh run


def test_boundary_cadence_context_and_stage(tmp_path):
    manager = CheckpointManager(str(tmp_path / "run.ckpt"), every=2)
    manager.context = {"benchmark": "alu2"}
    built = []

    def builder():
        built.append(True)
        return {"round": len(built)}

    manager.boundary("optimize", builder)
    assert built == []                      # boundary 1: off cadence
    manager.boundary("optimize", builder)
    assert len(built) == 1                  # boundary 2: saved
    payload = manager.load()
    assert payload["stage"] == "optimize"
    assert payload["benchmark"] == "alu2"
    manager.boundary("wl", builder, force=True)
    assert len(built) == 2                  # force overrides cadence


def test_sigterm_defers_to_the_next_boundary_then_unwinds(tmp_path):
    manager = CheckpointManager(str(tmp_path / "run.ckpt"), every=10**9)
    previous = signal.getsignal(signal.SIGTERM)
    manager.install()
    try:
        os.kill(os.getpid(), signal.SIGTERM)
        assert manager.interrupted          # flag only — no save yet
        assert manager.load() is None
        with pytest.raises(RunInterrupted) as excinfo:
            manager.boundary("optimize", lambda: {"round": 3})
        assert excinfo.value.stage == "optimize"
        assert manager.load()["round"] == 3  # saved despite the cadence
    finally:
        manager.uninstall()
    assert signal.getsignal(signal.SIGTERM) is previous


def test_injected_sigterm_fault_interrupts_deterministically(tmp_path):
    manager = CheckpointManager(str(tmp_path / "run.ckpt"))
    manager.install()
    try:
        with faults.active({"checkpoint_round": {2: {"action": "sigterm"}}}):
            manager.boundary("optimize", lambda: {"round": 1})
            with pytest.raises(RunInterrupted):
                manager.boundary("optimize", lambda: {"round": 2})
    finally:
        manager.uninstall()
    assert manager.load()["round"] == 2


# ----------------------------------------------------------------------
# state packing: exact round-trips
# ----------------------------------------------------------------------
def test_pack_eval_state_round_trips_the_engine_caches():
    network, placement, library = _placed_design(5, num_gates=40)
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    state = unpack_eval_state(pack_eval_state(engine.export_eval_state()))
    reference = engine.export_eval_state()
    assert state.arrival == reference.arrival
    assert state.slack == reference.slack
    assert state.req0 == reference.req0
    assert state.max_delay == reference.max_delay
    assert state.version == reference.version
    assert list(state.network._gates) == list(network._gates)


def test_graft_state_restores_content_into_live_objects():
    network, placement, library = _placed_design(7, num_gates=30)
    packed = pack_network(network, placement)
    target, target_pl = _placed_design(8, num_gates=25)[:2]
    graft_state(unpack_eval_state(packed), target, target_pl)
    assert list(target._gates) == list(network._gates)
    assert {
        n: (g.gtype, tuple(g.fanins), g.cell)
        for n, g in target._gates.items()
    } == {
        n: (g.gtype, tuple(g.fanins), g.cell)
        for n, g in network._gates.items()
    }
    assert target.inputs == network.inputs
    assert target.outputs == network.outputs
    assert target_pl.locations == placement.locations
    assert target.topo_order() == network.topo_order()


def test_engine_from_state_prices_identically_without_reanalysis():
    network, placement, library = _placed_design(9, num_gates=40)
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    packed = pack_eval_state(engine.export_eval_state())
    net2, pl2 = network.copy(), placement.copy()
    replica = engine_from_state(unpack_eval_state(packed), net2, pl2, library)
    assert replica.arrival == engine.arrival
    assert replica.slack == engine.slack
    assert replica.max_delay == engine.max_delay
    # and it keeps agreeing after an identical incremental commit
    from repro.sizing.moves import resize_sites

    site = resize_sites(network, library)[0]
    site.moves[0].apply(network, library)
    engine.refresh()
    resize_sites(net2, library)[0].moves[0].apply(net2, library)
    replica.refresh()
    assert replica.slack == engine.slack
    assert replica.max_delay == engine.max_delay


# ----------------------------------------------------------------------
# optimizer resume: bit-identical trajectories
# ----------------------------------------------------------------------
def test_optimize_interrupted_and_resumed_matches_uninterrupted(tmp_path):
    network, placement, library = _placed_design(13, num_gates=60)
    factory = _gs_factory(library)
    plain_net, plain_pl = network.copy(), placement.copy()
    plain = optimize(
        plain_net, plain_pl, library, factory, collect_log=True
    )
    assert plain.moves_applied > 0

    manager = CheckpointManager(str(tmp_path / "run.ckpt"))
    manager.install()
    int_net, int_pl = network.copy(), placement.copy()
    try:
        with faults.active({"checkpoint_round": {1: {"action": "sigterm"}}}):
            with pytest.raises(RunInterrupted):
                optimize(
                    int_net, int_pl, library, factory,
                    collect_log=True, checkpoint=manager,
                )
    finally:
        manager.uninstall()
    payload = manager.load()
    assert payload["stage"] == "optimize"

    res_net, res_pl = network.copy(), placement.copy()
    resumed = optimize(
        res_net, res_pl, library, factory,
        collect_log=True, resume_data=payload,
    )
    assert resumed.move_log == plain.move_log
    assert resumed.final_delay == plain.final_delay
    assert resumed.final_area == plain.final_area
    assert resumed.rounds == plain.rounds
    assert {
        g.name: (g.cell, tuple(g.fanins)) for g in res_net.gates()
    } == {
        g.name: (g.cell, tuple(g.fanins)) for g in plain_net.gates()
    }


# ----------------------------------------------------------------------
# whole-run resume: every boundary, identical fingerprint
# ----------------------------------------------------------------------
def test_run_rapids_resumes_identically_from_every_boundary(tmp_path):
    network, placement, library = _placed_design(17, num_gates=80)
    path = str(tmp_path / "run.ckpt")
    kwargs = dict(
        mode="gs", max_rounds=3, wl_passes=2,
        partition=True, partition_max_gates=30,
    )
    plain_net = network.copy()
    plain = run_rapids(plain_net, placement.copy(), library, **kwargs)
    reference = _result_fingerprint(plain_net, plain)
    stages = []
    index = 1
    while index <= 20:
        if os.path.exists(path):
            os.unlink(path)
        plan = {"checkpoint_round": {index: {"action": "sigterm"}}}
        int_net = network.copy()
        with faults.active(plan):
            try:
                run_rapids(
                    int_net, placement.copy(), library,
                    checkpoint=path, **kwargs,
                )
                break       # past the last boundary: run completed
            except RunInterrupted as interrupt:
                stages.append(interrupt.stage)
        res_net = network.copy()
        resumed = run_rapids(
            res_net, placement.copy(), library,
            checkpoint=path, resume=True, **kwargs,
        )
        assert _result_fingerprint(res_net, resumed) == reference, (
            f"resume from boundary {index} ({stages[-1]}) diverged"
        )
        index += 1
    assert "optimize" in stages
    assert "wl" in stages
    # resuming an already-finished checkpoint replays nothing and
    # returns the recorded result
    done_net = network.copy()
    done = run_rapids(
        done_net, placement.copy(), library,
        checkpoint=path, resume=True, **kwargs,
    )
    assert _result_fingerprint(done_net, done) == reference


def test_missing_checkpoint_with_resume_just_runs_fresh(tmp_path):
    network, placement, library = _placed_design(19, num_gates=40)
    plain_net = network.copy()
    plain = run_rapids(plain_net, placement.copy(), library, mode="gs")
    res_net = network.copy()
    resumed = run_rapids(
        res_net, placement.copy(), library, mode="gs",
        checkpoint=str(tmp_path / "never-written.ckpt"), resume=True,
    )
    assert _result_fingerprint(res_net, resumed) == \
        _result_fingerprint(plain_net, plain)


# ----------------------------------------------------------------------
# the real thing: a SIGTERMed CLI process, resumed
# ----------------------------------------------------------------------
_FINGERPRINT_SCRIPT = """
import sys
from repro.suite.flow import FlowConfig, trajectory_fingerprint

config = FlowConfig(scale=0.05, checkpoint={checkpoint!r}, resume={resume})
print(trajectory_fingerprint("alu2", config))
"""


def _run(argv, env):
    return subprocess.run(
        argv, capture_output=True, text=True, env=env, timeout=300,
    )


def test_sigtermed_cli_run_resumes_to_identical_fingerprint(tmp_path):
    """End to end: ``rapids bench --checkpoint`` receives a (plan-
    injected, genuinely delivered) SIGTERM, exits with the documented
    status after a clean save, and a ``--resume`` rerun reproduces the
    uninterrupted flow fingerprint."""
    path = str(tmp_path / "cli.ckpt")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop(faults.ENV_VAR, None)

    plain = _run(
        [sys.executable, "-c",
         _FINGERPRINT_SCRIPT.format(checkpoint=None, resume=False)],
        env,
    )
    assert plain.returncode == 0, plain.stderr

    interrupted_env = dict(env)
    interrupted_env[faults.ENV_VAR] = faults.FaultPlan(
        {"checkpoint_round": {1: {"action": "sigterm"}}}
    ).to_env()
    interrupted = _run(
        [sys.executable, "-m", "repro.cli", "bench", "alu2",
         "--scale", "0.05", "--checkpoint", path],
        interrupted_env,
    )
    assert interrupted.returncode == CHECKPOINT_EXIT_CODE, (
        interrupted.returncode, interrupted.stderr
    )
    assert "--resume" in interrupted.stderr
    saved = [f for f in os.listdir(tmp_path) if f.startswith("cli.ckpt")]
    assert saved, "interrupt did not leave a checkpoint file"

    resumed = _run(
        [sys.executable, "-c",
         _FINGERPRINT_SCRIPT.format(checkpoint=path, resume=True)],
        env,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout.strip() == plain.stdout.strip(), (
        "resumed flow fingerprint diverged from the uninterrupted run"
    )
