"""Serial vs. sharded candidate-gain evaluation — same answer, less wall.

Each quick-set circuit is prepared once (generate → map → place); its
gsg+GS site list and analyzed timing engine then feed the exact
evaluation unit the optimizer parallelized: score every site's moves
against the frozen timing snapshot, pick each site's best candidate.
That unit runs twice per circuit — inline (the serial ``_phase`` path)
and sharded over one shared :class:`repro.parallel.EvalPool` — and
must produce *identical* selections; the pool is reused across
circuits exactly as ``optimize()`` reuses it across phases, so worker
startup amortizes the way it does in production.

Checked properties:

* **agreement** — sharded selections equal the serial ones, element
  for element (scores are floats: equality is bit-for-bit);
* **speed** — at ``REPRO_BENCH_WORKERS`` workers (default 4) the
  sharded path must be at least ``1.3x`` faster in aggregate over the
  set (``1.1x`` at 2 workers; the assertion is skipped on single-core
  machines where no start method can buy parallelism);
* **payload** — after the first batch of a session the parent ships
  cross-batch snapshot *deltas* instead of the full eval state
  (:mod:`repro.parallel.snapshot`); steady-state delta payloads must
  be under half the full-snapshot size (in practice ~100x smaller
  when the engine is idle between batches, and still several times
  smaller mid-optimization — ``tests/test_parallel_eval.py`` covers
  the mutating case);
* **baseline transport** — full baselines ship their SoA buffers
  through ``multiprocessing.shared_memory``; the pickled pipe payload
  of an ``soa_full`` batch must come in below the pickled object
  graph it replaced.

``REPRO_BENCH_SET=quick`` trims the circuit list for CI smoke runs.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.library.cells import default_library
from repro.parallel import EvalPool, best_phase_move, faults
from repro.parallel.snapshot import EvalSnapshotCodec
from repro.rapids.engine import _gsg_gs_factory
from repro.suite.flow import FlowConfig, prepare_benchmark
from repro.timing.sta import TimingEngine

from bench_helpers import QUICK_SET, quick_mode, record_result

def _usable_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host; containers and CI runners are
    often pinned to fewer via affinity masks or cgroup quotas, and a
    speedup floor must be judged against what the scheduler grants.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


#: Worker count under test (the acceptance criterion names 4).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
#: What the hardware can actually parallelize (the pool counts the
#: parent as one of its *workers*).
EFFECTIVE = min(WORKERS, _usable_cpus())
#: Aggregate speedup floor by effective parallelism: 1.3x is the
#: acceptance criterion at 4-way; a 2-way machine can honestly be
#: asked for 1.1x; below that there is nothing to assert.
MIN_AGGREGATE_SPEEDUP = 1.3 if EFFECTIVE >= 4 else 1.1
#: Evaluation repetitions per circuit (median-free total, like the
#: optimizer which evaluates every batch exactly once per phase).
ROUNDS = 3

#: name -> (serial seconds, sharded seconds, sites)
_TIMES: dict[str, tuple[float, float, int]] = {}

#: One pool for the whole module, like one pool per ``optimize`` run.
_POOL = EvalPool(WORKERS, min_sites=1)

_HEADER = (
    f"{'ckt':<8}{'gates':>6}{'sites':>6}{'moves':>7}"
    f"{'serial-s':>10}{'shard-s':>9}{'speedup':>9}"
)


def bench_names() -> list[str]:
    """Three circuits for the CI smoke run, the full quick set otherwise."""
    return QUICK_SET[:3] if quick_mode() else QUICK_SET


def _multicore() -> bool:
    return _usable_cpus() >= 2


@pytest.mark.parametrize("name", bench_names())
def test_sharded_evaluation_agrees_and_speeds_up(name, library):
    outcome = prepare_benchmark(name, FlowConfig(), library)
    network, placement = outcome.network, outcome.placement
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    sites = _gsg_gs_factory(library)(network, engine)
    num_moves = sum(len(site.moves) for site in sites)

    serial_seconds = 0.0
    sharded_seconds = 0.0
    serial = sharded = None
    for round_index in range(ROUNDS):
        metric = "min" if round_index % 2 == 0 else "sum"
        start = time.perf_counter()
        serial = [
            best_phase_move(site, engine, library, metric, 1e-9)
            for site in sites
        ]
        serial_seconds += time.perf_counter() - start
        start = time.perf_counter()
        sharded = _POOL.evaluate(engine, library, sites, metric, 1e-9)
        sharded_seconds += time.perf_counter() - start
        # agreement: bit-identical selections, so the optimizer commits
        # the same batch whichever path scored it
        assert sharded == serial, (name, metric)
    assert _POOL.fallback_reason is None, _POOL.fallback_reason
    assert _POOL.parallel_batches > 0

    speedup = serial_seconds / sharded_seconds if sharded_seconds else 0.0
    print()
    print(_HEADER)
    print(
        f"{name:<8}{len(network):>6d}{len(sites):>6d}{num_moves:>7d}"
        f"{serial_seconds:>10.3f}{sharded_seconds:>9.3f}{speedup:>8.2f}x"
    )
    _TIMES[name] = (serial_seconds, sharded_seconds, len(sites))
    record_result(
        "parallel_eval", name,
        gates=len(network),
        sites=len(sites),
        moves=num_moves,
        serial_seconds=round(serial_seconds, 4),
        sharded_seconds=round(sharded_seconds, 4),
        speedup=round(speedup, 3),
        workers=WORKERS,
    )


def test_stale_recovery_upgrades_to_full_resend(library):
    """A stale shard upgrades to one full-baseline resend (never a
    silent inline downgrade): the ``stale_recoveries`` health counter
    must tick exactly once and the selections still match the serial
    reference bit for bit.  Workers inherit the fault plan from the
    environment when they fork, so this uses its own pool spun up
    under the plan (``_POOL``'s workers predate it)."""
    outcome = prepare_benchmark(bench_names()[0], FlowConfig(), library)
    engine = TimingEngine(outcome.network, outcome.placement, library)
    engine.analyze()
    sites = _gsg_gs_factory(library)(outcome.network, engine)
    serial = [
        best_phase_move(site, engine, library, "min", 1e-9)
        for site in sites
    ]
    plan = {"worker": {0: {"action": "stale"}}}
    with EvalPool(WORKERS, min_sites=1) as pool, faults.active(plan):
        sharded = pool.evaluate(engine, library, sites, "min", 1e-9)
        assert sharded == serial
        assert pool.fallback_reason is None, pool.fallback_reason
        assert pool.health.stale_recoveries == 1, (
            "the stale shard was not recovered by a full-baseline resend"
        )
        assert pool.health.inline_fallbacks == 0
        record_result(
            "parallel_eval", "stale_recovery",
            stale_recoveries=pool.health.stale_recoveries,
            inline_fallbacks=pool.health.inline_fallbacks,
        )


def test_aggregate_speedup_floor():
    """The acceptance criterion: >= 1.3x over the set at 4 workers."""
    if not _TIMES:
        pytest.skip("per-circuit benches were deselected")
    serial_total = sum(serial for serial, _, _ in _TIMES.values())
    sharded_total = sum(sharded for _, sharded, _ in _TIMES.values())
    speedup = serial_total / sharded_total
    print(
        f"\naggregate over {sorted(_TIMES)} at {WORKERS} workers "
        f"({EFFECTIVE} effective): serial={serial_total:.3f}s "
        f"sharded={sharded_total:.3f}s -> {speedup:.2f}x"
    )
    _POOL.close()
    if not _multicore():
        pytest.skip(
            f"single-core machine: measured {speedup:.2f}x, no "
            f"parallel speedup is physically available"
        )
    assert speedup >= MIN_AGGREGATE_SPEEDUP, (
        f"sharded evaluation at {WORKERS} workers is only {speedup:.2f}x "
        f"faster in aggregate (floor {MIN_AGGREGATE_SPEEDUP}x at "
        f"{EFFECTIVE}-way effective parallelism)"
    )


def test_snapshot_payload_shrinkage():
    """Cross-batch diffing must shrink the steady-state payload.

    Each circuit above ran three evaluation rounds on one engine: the
    first ships a full baseline (and every engine change rebases), the
    later rounds ship deltas.  The mean delta must come in far below
    the mean full snapshot — the ROADMAP open item this closes."""
    stats = _POOL.snapshot.stats
    if stats.full_batches == 0:
        pytest.skip("pool never shipped a snapshot (inline fallback)")
    print(
        f"\nsnapshot payloads: {stats.full_batches} full "
        f"({stats.mean_full_bytes():.0f} B avg), {stats.delta_batches} "
        f"delta ({stats.mean_delta_bytes():.0f} B avg), "
        f"{stats.stale_shards} stale retries -> "
        f"{stats.mean_full_bytes() / max(stats.mean_delta_bytes(), 1):.0f}x "
        f"smaller steady-state"
    )
    record_result(
        "parallel_eval", "snapshot_payloads",
        full_batches=stats.full_batches,
        delta_batches=stats.delta_batches,
        mean_full_bytes=round(stats.mean_full_bytes(), 1),
        mean_full_pipe_bytes=round(stats.mean_full_pipe_bytes(), 1),
        mean_delta_bytes=round(stats.mean_delta_bytes(), 1),
        stale_shards=stats.stale_shards,
    )
    assert stats.delta_batches > 0, "no batch ever rode the delta path"
    assert stats.mean_delta_bytes() < 0.5 * stats.mean_full_bytes(), (
        f"deltas average {stats.mean_delta_bytes():.0f} B against "
        f"{stats.mean_full_bytes():.0f} B full snapshots — diffing is "
        f"not paying for itself"
    )


def test_soa_baseline_beats_pickled_baseline(library):
    """Shared-memory SoA baselines must undercut the pickled protocol.

    Encodes one full baseline for a quick-set circuit and compares the
    bytes that actually cross the executor pipe against the payload
    the retired protocol would have shipped: the complete pickled
    ``EvalState`` object graph."""
    outcome = prepare_benchmark(bench_names()[0], FlowConfig(), library)
    engine = TimingEngine(outcome.network, outcome.placement, library)
    engine.analyze()
    codec = EvalSnapshotCodec()
    try:
        payload = codec.encode(engine)
        kind = pickle.loads(payload)[0]
        if kind != "soa_full":
            pytest.skip("shared-memory snapshots unavailable on this host")
        pickled_reference = len(pickle.dumps(
            ("full", codec.token, 1, engine.export_eval_state()),
            protocol=pickle.HIGHEST_PROTOCOL,
        ))
        pipe_bytes = codec.stats.full_pipe_bytes
        shared_bytes = codec.stats.full_bytes - pipe_bytes
        print(
            f"\nsoa_full baseline: {pipe_bytes} B pipe + "
            f"{shared_bytes} B shared memory vs "
            f"{pickled_reference} B pickled object graph "
            f"({pickled_reference / pipe_bytes:.1f}x pipe shrinkage)"
        )
        record_result(
            "parallel_eval", "soa_baseline",
            pipe_bytes=pipe_bytes,
            shared_memory_bytes=shared_bytes,
            pickled_reference_bytes=pickled_reference,
            pipe_shrinkage=round(pickled_reference / pipe_bytes, 3),
        )
        assert pipe_bytes < pickled_reference, (
            f"soa_full pipe payload ({pipe_bytes} B) is not smaller "
            f"than the pickled baseline ({pickled_reference} B)"
        )
    finally:
        codec.close()
