"""Fig. 3 — cross-supergate swapping under DeMorgan transformation.

Benchmarks the figure's fanin-group exchange and reports how many
cross-swappable supergate pairs exist in the flow's circuits (the
feature the paper leaves out of its timing formulation; here it is a
library feature exercised by the wirelength example).
"""

from __future__ import annotations

import pytest

from repro.network.builder import NetworkBuilder
from repro.symmetry.cross import apply_cross_swap, find_cross_swaps
from repro.symmetry.supergate import extract_supergates
from repro.symmetry.verify import swap_preserves_outputs

from bench_helpers import table1_names


def _fig3():
    builder = NetworkBuilder("fig3")
    a, b, c, d, e, g = builder.inputs(6)
    sg1 = builder.and_(a, b, c, name="sg1")
    sg2 = builder.and_(d, e, g, name="sg2")
    builder.output(builder.or_(sg1, sg2, name="f"))
    return builder.build()


def test_fig3_exchange(benchmark):
    reference = _fig3()

    def exchange():
        net = reference.copy()
        sgn = extract_supergates(net)
        cross = find_cross_swaps(sgn)[0]
        apply_cross_swap(net, sgn, cross)
        return net

    net = benchmark(exchange)
    assert swap_preserves_outputs(reference, net)
    assert set(net.gate("sg1").fanins) == {"i3", "i4", "i5"}
    print("\nFig.3: fanin groups exchanged, function preserved")


@pytest.mark.parametrize("name", table1_names()[:6])
def test_cross_swap_census(benchmark, name, library, outcome_cache):
    outcome = outcome_cache.get(name, library)
    network = outcome.network

    def census():
        sgn = extract_supergates(network)
        return find_cross_swaps(sgn)

    crosses = benchmark.pedantic(census, rounds=1, iterations=1)
    print(f"\n{name}: {len(crosses)} cross-swappable supergate pairs")
    # validate a sample end-to-end
    for cross in crosses[:3]:
        trial = network.copy()
        apply_cross_swap(trial, extract_supergates(trial), cross)
        assert swap_preserves_outputs(network, trial)
