"""Table 1 — the paper's experimental results, regenerated.

One bench per circuit runs the full Section 6 flow (generate,
script.rugged, inject ISCAS-style redundancy, map, presize, place) and
then the three optimizers; the measured row is printed next to the
paper's.  A final summary prints suite averages against the paper's
bottom line (gsg 3.1 %, GS 5.4 %, gsg+GS 9.0 %, areas −2.2/−2.3 %,
coverage 27.6 %) and checks the qualitative shape:

* the combined gsg+GS beats either technique alone on average,
* rewiring alone leaves every placed cell where it was,
* area stays roughly flat (single-digit percent) under GS and gsg+GS.

Absolute numbers differ from the paper (generated circuits, Python
substrate); the *shape* is the reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.rapids.report import Table1Row, averages
from repro.suite.registry import PAPER_AVERAGES, REGISTRY

from bench_helpers import table1_names

_ROWS: dict[str, Table1Row] = {}


@pytest.mark.parametrize("name", table1_names())
def test_table1_row(benchmark, name, library, outcome_cache):
    """Run the full flow for one circuit and record its row."""
    outcome = benchmark.pedantic(
        outcome_cache.get, args=(name, library), rounds=1, iterations=1,
    )
    row = outcome.row
    assert row is not None
    _ROWS[name] = row
    paper = REGISTRY[name].paper
    print()
    print(Table1Row.HEADER)
    print(row.format() + "   <- measured")
    print(
        f"{name:<10}{paper.gates:>7d}{paper.init_ns:>7.2f}"
        f"{paper.gsg_percent:>7.1f}{paper.gs_percent:>7.1f}"
        f"{paper.gsg_gs_percent:>7.1f}"
        f"{paper.gsg_cpu:>7.1f}{paper.gs_cpu:>7.1f}"
        f"{paper.gsg_gs_cpu:>8.1f}"
        f"{paper.gs_area_percent:>7.1f}{paper.gsg_gs_area_percent:>8.1f}"
        f"{paper.coverage_percent:>7.1f}"
        f"{paper.max_supergate_inputs:>5d}{paper.redundancies:>6d}"
        "   <- paper"
    )
    # per-row sanity: optimizers never regress and report real data
    for mode, result in outcome.results.items():
        assert result.optimize.final_delay <= (
            result.optimize.initial_delay + 1e-9
        ), mode
    assert outcome.results["gsg"].perturbation["moved_cells"] == 0


def test_table1_summary(benchmark, library, outcome_cache):
    """Suite averages and the paper's qualitative shape checks."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    names = table1_names()
    for name in names:
        if name not in _ROWS:
            _ROWS[name] = outcome_cache.get(name, library).row
    rows = [_ROWS[name] for name in names]
    print()
    print(Table1Row.HEADER)
    for row in rows:
        print(row.format())
    avg = averages(rows)
    print(
        f"{'ave.':<10}{'':14}"
        f"{avg['gsg_percent']:>7.1f}{avg['gs_percent']:>7.1f}"
        f"{avg['gsg_gs_percent']:>7.1f}{'':22}"
        f"{avg['gs_area_percent']:>7.1f}{avg['gsg_gs_area_percent']:>8.1f}"
        f"{avg['coverage_percent']:>7.1f}"
    )
    print(
        f"{'paper ave.':<10}{'':14}"
        f"{PAPER_AVERAGES['gsg_percent']:>7.1f}"
        f"{PAPER_AVERAGES['gs_percent']:>7.1f}"
        f"{PAPER_AVERAGES['gsg_gs_percent']:>7.1f}{'':22}"
        f"{PAPER_AVERAGES['gs_area_percent']:>7.1f}"
        f"{PAPER_AVERAGES['gsg_gs_area_percent']:>8.1f}"
        f"{PAPER_AVERAGES['coverage_percent']:>7.1f}"
    )
    # shape check 1: techniques help, and the combination helps most
    assert avg["gsg_gs_percent"] > 0
    assert avg["gsg_gs_percent"] >= avg["gsg_percent"] - 0.5
    # shape check 2: area stays in the single digits on average
    assert abs(avg["gs_area_percent"]) < 10
    assert abs(avg["gsg_gs_area_percent"]) < 10
    # shape check 3 (superadditivity, Section 6's observation): on a
    # meaningful fraction of circuits gsg+GS beats the max of the parts
    wins = sum(
        1 for row in rows
        if row.gsg_gs_percent >= max(row.gsg_percent, row.gs_percent) - 0.3
    )
    assert wins >= len(rows) // 3, (wins, len(rows))
