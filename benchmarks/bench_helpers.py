"""Importable benchmark helpers (kept out of conftest on purpose).

``benchmarks/conftest.py`` once exported ``table1_names`` for
``from conftest import ...`` — the pattern that let it shadow
``tests/conftest.py`` and break the whole test suite.  Helpers now
live in this uniquely named module; the conftest keeps only fixtures.
"""

from __future__ import annotations

import json
import os
import time

from repro.suite.registry import benchmark_names, configured_scale

QUICK_SET = ["alu2", "c432", "c499", "k2", "s5378"]


def quick_mode() -> bool:
    """True when ``REPRO_BENCH_SET=quick`` restricts the circuit set."""
    return os.environ.get("REPRO_BENCH_SET", "").lower() == "quick"


def table1_names() -> list[str]:
    """Benchmarks included in the Table 1 run."""
    if quick_mode():
        return QUICK_SET
    return benchmark_names()


# ----------------------------------------------------------------------
# machine-readable results (REPRO_BENCH_JSON)
# ----------------------------------------------------------------------

#: bench name -> row name -> {metric: value}; flushed to the path in
#: ``REPRO_BENCH_JSON`` when the benchmark session finishes.
_RESULTS: dict[str, dict[str, dict]] = {}


def record_result(bench: str, name: str, **values) -> None:
    """Record one benchmark row (per-circuit timings, ratios, sizes).

    Values must be JSON-serializable scalars; rows recorded twice keep
    the last measurement.
    """
    _RESULTS.setdefault(bench, {})[name] = values


def bench_results() -> dict[str, dict[str, dict]]:
    """Everything recorded so far (the session hook reads this)."""
    return _RESULTS


def write_results(path: str) -> None:
    """Write the recorded rows plus run metadata to *path* as JSON."""
    report = {
        "meta": {
            "date": time.strftime("%Y-%m-%d"),
            "scale": configured_scale(),
            "quick": quick_mode(),
        },
        "benchmarks": _RESULTS,
    }
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
