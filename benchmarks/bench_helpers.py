"""Importable benchmark helpers (kept out of conftest on purpose).

``benchmarks/conftest.py`` once exported ``table1_names`` for
``from conftest import ...`` — the pattern that let it shadow
``tests/conftest.py`` and break the whole test suite.  Helpers now
live in this uniquely named module; the conftest keeps only fixtures.
"""

from __future__ import annotations

import os

from repro.suite.registry import benchmark_names

QUICK_SET = ["alu2", "c432", "c499", "k2", "s5378"]


def quick_mode() -> bool:
    """True when ``REPRO_BENCH_SET=quick`` restricts the circuit set."""
    return os.environ.get("REPRO_BENCH_SET", "").lower() == "quick"


def table1_names() -> list[str]:
    """Benchmarks included in the Table 1 run."""
    if quick_mode():
        return QUICK_SET
    return benchmark_names()
