"""Interpreted vs engine-batched wirelength rewiring — Section 5 at speed.

Each quick-set circuit is prepared once (generate → map → place); its
first-pass leaf-swap candidate set then feeds the exact unit PR 4
vectorized: price every candidate's HPWL delta.  That unit runs twice —

* **interpreted** — the historical loop replicated verbatim: trial
  apply on the live network, two ``net_hpwl`` terminal walks, revert
  (each trial bumps the version, so every subscribed engine sees two
  mutation events and the fanout map rebuilds on the next walk);
* **engine** — one :class:`repro.place.hpwl.WirelengthEngine` batch:
  extrema gathered once, deltas computed arithmetically, zero
  mutation, zero events.

Checked properties:

* **agreement** — engine deltas equal the interpreted ones bit for bit
  (both are pure extrema selections over the same multisets);
* **speed** — engine-batched scoring is at least **5x** faster in
  aggregate over the set (the PR-4 acceptance floor);
* **quality** — a full batched ``reduce_wirelength`` run ends at a
  final HPWL no worse than the greedy reference on *every* circuit,
  and both paths leave the network functionally equivalent to the
  input (``networks_equivalent``);
* **timing safety** — the *timing-aware* batched polish (the Table-1
  default) ends, on every circuit, at a re-timed critical delay no
  worse than the wirelength-off baseline (epsilon 1e-9: the slack
  guard at margin 0 by construction never eats delay) while the
  aggregate HPWL win over the set retains at least **80%** of the
  timing-blind batched win, with zero measurable projected-vs-applied
  slack drift.

``REPRO_BENCH_SET=quick`` trims the circuit list for CI smoke runs.
"""

from __future__ import annotations

import time

import pytest

from repro.place.hpwl import WirelengthEngine
from repro.place.placement import net_hpwl, total_hpwl
from repro.rapids.wirelength import reduce_wirelength
from repro.suite.flow import FlowConfig, prepare_benchmark
from repro.symmetry.supergate import extract_supergates
from repro.symmetry.swap import enumerate_swaps
from repro.timing.sta import TimingEngine

from bench_helpers import QUICK_SET, quick_mode

#: The acceptance criterion: engine-batched candidate scoring must be
#: at least this much faster than the interpreted loop in aggregate.
MIN_SCORING_SPEEDUP = 5.0
#: Timing-aware acceptance criterion: the slack-guarded polish must
#: keep at least this fraction of the timing-blind aggregate HPWL win.
MIN_HPWL_RETENTION = 0.80
#: Scoring repetitions per circuit (the batched path re-scores the
#: candidate set once per commit iteration, so repetition is realistic).
ROUNDS = 3

#: name -> (interpreted s, engine s, candidates)
_TIMES: dict[str, tuple[float, float, int]] = {}
#: name -> (greedy final hpwl, batched final hpwl)
_QUALITY: dict[str, tuple[float, float]] = {}
#: name -> (blind hpwl win, timing-aware hpwl win)
_RETENTION: dict[str, tuple[float, float]] = {}

_HEADER = (
    f"{'ckt':<8}{'gates':>6}{'cands':>7}"
    f"{'interp-s':>10}{'engine-s':>10}{'speedup':>9}"
)


def bench_names() -> list[str]:
    """Three circuits for the CI smoke run, the full quick set otherwise."""
    return QUICK_SET[:3] if quick_mode() else QUICK_SET


def _leaf_candidates(network):
    sgn = extract_supergates(network)
    pairs = []
    for sg in sgn.nontrivial():
        for swap in enumerate_swaps(
            sg, leaves_only=True, include_inverting=False, network=network
        ):
            pairs.append((swap.pin_a, swap.pin_b))
    return pairs


def _interpreted_delta(network, placement, pin_a, pin_b) -> float:
    """The pre-PR-4 pricing loop, verbatim: trial apply, walk, revert."""
    net_a = network.fanin_net(pin_a)
    net_b = network.fanin_net(pin_b)
    if net_a == net_b:
        return 0.0
    before = net_hpwl(network, placement, net_a) + net_hpwl(
        network, placement, net_b
    )
    network.swap_fanins(pin_a, pin_b)
    after = net_hpwl(network, placement, net_a) + net_hpwl(
        network, placement, net_b
    )
    network.swap_fanins(pin_a, pin_b)
    return after - before


@pytest.mark.parametrize("name", bench_names())
def test_engine_scoring_agrees_and_speeds_up(name, library):
    outcome = prepare_benchmark(name, FlowConfig(), library)
    network, placement = outcome.network, outcome.placement
    pairs = _leaf_candidates(network)
    assert pairs, f"{name}: no swap candidates"

    # time the interpreted loop first, before any WirelengthEngine
    # subscribes: its trial mutations must not be charged the event
    # handling of the very engine it is being compared against
    interpreted_seconds = 0.0
    interpreted = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        interpreted = [
            _interpreted_delta(network, placement, pin_a, pin_b)
            for pin_a, pin_b in pairs
        ]
        interpreted_seconds += time.perf_counter() - start

    # the engine side pays for its own flattening: construction +
    # first refresh are inside the timed region
    start = time.perf_counter()
    engine = WirelengthEngine(network, placement)
    engine_deltas = engine.score_swaps(pairs)
    engine_seconds = time.perf_counter() - start
    for _ in range(ROUNDS - 1):
        start = time.perf_counter()
        engine_deltas = engine.score_swaps(pairs)
        engine_seconds += time.perf_counter() - start
    # agreement: pure extrema selection — bit-for-bit, not approx
    assert engine_deltas == interpreted, name

    speedup = (
        interpreted_seconds / engine_seconds if engine_seconds else 0.0
    )
    print()
    print(_HEADER)
    print(
        f"{name:<8}{len(network):>6d}{len(pairs):>7d}"
        f"{interpreted_seconds:>10.3f}{engine_seconds:>10.3f}"
        f"{speedup:>8.1f}x"
    )
    _TIMES[name] = (interpreted_seconds, engine_seconds, len(pairs))


@pytest.mark.parametrize("name", bench_names())
def test_batched_final_hpwl_no_worse_than_greedy(name, library):
    from repro.verify.equiv import networks_equivalent

    outcome = prepare_benchmark(name, FlowConfig(), library)
    reference = outcome.network

    greedy_net = reference.copy()
    greedy_pl = outcome.placement.copy()
    greedy = reduce_wirelength(greedy_net, greedy_pl, batched=False)
    assert networks_equivalent(reference, greedy_net), name

    batched_net = reference.copy()
    batched_pl = outcome.placement.copy()
    batched = reduce_wirelength(batched_net, batched_pl, batched=True)
    assert networks_equivalent(reference, batched_net), name
    assert batched.final_hpwl == pytest.approx(
        total_hpwl(batched_net, batched_pl), abs=1e-6
    )

    print(
        f"\n{name}: hpwl {greedy.initial_hpwl:.0f} -> "
        f"greedy {greedy.final_hpwl:.0f} "
        f"({greedy.swaps_applied} swaps/{greedy.passes}p) | "
        f"batched {batched.final_hpwl:.0f} "
        f"({batched.swaps_applied}+{batched.cross_swaps_applied}x/"
        f"{batched.passes}p)"
    )
    _QUALITY[name] = (greedy.final_hpwl, batched.final_hpwl)
    assert batched.final_hpwl <= greedy.final_hpwl + 1e-6, (
        f"{name}: batched ended at {batched.final_hpwl:.1f} um, worse "
        f"than greedy's {greedy.final_hpwl:.1f} um"
    )


@pytest.mark.parametrize("name", bench_names())
def test_timing_aware_polish_never_degrades_delay(name, library):
    """The Table-1 default: slack-guarded passes are delay-free.

    Runs the timing-blind and the timing-aware batched polish from the
    same prepared design and asserts the timing-aware result (a) ends
    at a re-timed critical delay no worse than the wirelength-off
    baseline (epsilon 1e-9), (b) realizes its slack projections
    exactly (drift below 1e-9, so the re-pricing fallback never had to
    fire), and (c) stays functionally equivalent to the input.  The
    per-circuit HPWL wins feed the aggregate retention floor below.
    """
    from repro.verify.equiv import networks_equivalent

    outcome = prepare_benchmark(name, FlowConfig(), library)
    reference = outcome.network

    baseline = TimingEngine(reference, outcome.placement, library)
    baseline.analyze()
    baseline_delay = baseline.max_delay

    blind_net = reference.copy()
    blind_pl = outcome.placement.copy()
    blind = reduce_wirelength(blind_net, blind_pl, batched=True)
    assert networks_equivalent(reference, blind_net), name

    aware_net = reference.copy()
    aware_pl = outcome.placement.copy()
    guard = TimingEngine(aware_net, aware_pl, library)
    guard.analyze()
    aware = reduce_wirelength(
        aware_net, aware_pl, batched=True, timing_engine=guard,
    )
    assert networks_equivalent(reference, aware_net), name
    assert aware.timing_aware

    retimed = TimingEngine(aware_net, aware_pl, library)
    retimed.analyze()

    blind_win = blind.initial_hpwl - blind.final_hpwl
    aware_win = aware.initial_hpwl - aware.final_hpwl
    _RETENTION[name] = (blind_win, aware_win)
    print(
        f"\n{name}: delay base {baseline_delay:.4f} -> "
        f"aware {retimed.max_delay:.4f} ns | hpwl win "
        f"blind {blind_win:.0f} aware {aware_win:.0f} um "
        f"({aware.swaps_applied}+{aware.cross_swaps_applied}x applied, "
        f"{aware.timing_rejected} slack-rejected, "
        f"drift {aware.projection_drift:.2e})"
    )
    assert retimed.max_delay <= baseline_delay + 1e-9, (
        f"{name}: timing-aware polish degraded the re-timed delay "
        f"{baseline_delay:.6f} -> {retimed.max_delay:.6f} ns"
    )
    assert aware.projection_drift <= 1e-9, (
        f"{name}: slack projections drifted by "
        f"{aware.projection_drift:.3e} ns against the applied update"
    )
    assert aware.drift_repricings == 0, name


def test_aggregate_hpwl_retention_floor():
    """Timing safety must not cost the polish its point: >=80% retained."""
    if not _RETENTION:
        pytest.skip("per-circuit timing-aware benches were deselected")
    blind_total = sum(b for b, _ in _RETENTION.values())
    aware_total = sum(a for _, a in _RETENTION.values())
    retention = aware_total / blind_total if blind_total else 1.0
    print(
        f"\naggregate over {sorted(_RETENTION)}: blind win "
        f"{blind_total:.0f} um, timing-aware win {aware_total:.0f} um "
        f"-> {100 * retention:.1f}% retained"
    )
    assert retention >= MIN_HPWL_RETENTION, (
        f"timing-aware polish retains only {100 * retention:.1f}% of "
        f"the timing-blind HPWL win "
        f"(floor {100 * MIN_HPWL_RETENTION:.0f}%)"
    )


def test_aggregate_scoring_speedup_floor():
    """The acceptance criterion: >= 5x candidate scoring over the set."""
    if not _TIMES:
        pytest.skip("per-circuit benches were deselected")
    interpreted_total = sum(t for t, _, _ in _TIMES.values())
    engine_total = sum(t for _, t, _ in _TIMES.values())
    candidates = sum(c for _, _, c in _TIMES.values())
    speedup = interpreted_total / engine_total
    print(
        f"\naggregate over {sorted(_TIMES)}: {candidates} candidates x "
        f"{ROUNDS} rounds, interpreted={interpreted_total:.3f}s "
        f"engine={engine_total:.3f}s -> {speedup:.1f}x"
    )
    assert speedup >= MIN_SCORING_SPEEDUP, (
        f"engine-batched scoring is only {speedup:.1f}x faster than the "
        f"interpreted loop (floor {MIN_SCORING_SPEEDUP}x)"
    )
