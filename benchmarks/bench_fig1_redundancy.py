"""Fig. 1 — redundancy found during supergate extraction.

The two situations of the paper's figure (conflicting and agreeing
backward implication at a fanout stem) are reproduced on constructed
circuits and benchmarked; then the detector runs over flow-prepared
benchmark circuits and its counts are compared with the injected
redundancy and the paper's column 14.
"""

from __future__ import annotations

import pytest

from repro.atpg.redundancy import prove_branch_redundant
from repro.network.builder import NetworkBuilder
from repro.network.netlist import Pin
from repro.suite.registry import REGISTRY
from repro.symmetry.redundancy import (
    find_easy_redundancies,
    redundancy_counts,
)

from bench_helpers import table1_names


def _fig1a():
    builder = NetworkBuilder("fig1a")
    x, y = builder.inputs(2)
    inv = builder.inv(x, name="n")
    f = builder.and_(x, inv, name="f")
    builder.output(builder.or_(f, y, name="out"))
    return builder.build()


def _fig1b():
    builder = NetworkBuilder("fig1b")
    x, y, z = builder.inputs(3)
    g = builder.and_(x, y, name="g")
    h = builder.and_(g, x, name="h")
    builder.output(builder.or_(h, z, name="out"))
    return builder.build()


def test_fig1a_conflict_case(benchmark):
    net = _fig1a()
    events = benchmark(find_easy_redundancies, net)
    assert any(e.kind == "conflict" for e in events)
    print("\nFig.1a events:", [(e.root, e.stem, e.kind) for e in events])


def test_fig1b_agreement_case(benchmark):
    net = _fig1b()
    events = benchmark(find_easy_redundancies, net)
    agreement = next(e for e in events if e.kind == "agreement")
    assert agreement.stem == "i0"
    # the paper's justification, verified exactly:
    assert prove_branch_redundant(net, Pin("h", 1), stuck_at=1) is True
    print("\nFig.1b agreement at stem", agreement.stem,
          "(ATPG-confirmed untestable)")


@pytest.mark.parametrize("name", table1_names()[:6])
def test_suite_redundancy_census(benchmark, name, library, outcome_cache):
    """Detection counts on prepared circuits vs paper column 14."""
    outcome = outcome_cache.get(name, library)
    events = benchmark.pedantic(
        find_easy_redundancies, args=(outcome.network,),
        rounds=1, iterations=1,
    )
    counts = redundancy_counts(events)
    paper = REGISTRY[name].paper.redundancies
    print(f"\n{name}: detected {counts} (paper reported {paper})")
    assert counts["events"] >= 0
