"""Compiled simulation core vs. the interpreted reference walker.

Three evaluators sweep identical pattern blocks over the quick-set
circuits:

* **legacy** — ``repro.logic.simulate.simulate``: the historical
  per-call interpreted walker (dict lookups, per-gate list building,
  64-bit words per pass), the hot path everything used before the
  simcore refactor;
* **bigint** — the simcore reference backend: the same arbitrary-
  precision word algebra, but running over the compiled topo-ordered
  index arrays with whole multi-word blocks per sweep;
* **numpy** — the vectorized backend: ``uint64``-packed blocks with
  level-packed evaluation (all same-op gates of a level in one ufunc
  call).

Acceptance floor (ISSUE 2): the numpy backend must deliver >= 5x the
aggregate throughput (net-patterns evaluated per second) of the
interpreted bigint reference on the quick circuit set.  Both compiled
backends clear it by an order of magnitude at the 4096-pattern block
size fault simulation and equivalence filtering use; the printout also
records the honest fine print — on deep, narrow control logic the
compiled *bigint* backend beats numpy (CPython's big-int bitwise ops
are C loops over limbs with less dispatch overhead than small-row
ufuncs), while numpy wins on wide shallow XOR circuits like c499.

The second table times the end-to-end consumer: a full
``networks_equivalent`` verification pass against the pre-refactor
implementation (four sequential 64-bit random rounds + truth-table
walks through the interpreted simulator).
"""

from __future__ import annotations

import time

import pytest

from repro.library.cells import default_library
from repro.logic.simcore import SimEngine, numpy_available
from repro.logic.simulate import (
    random_simulate_outputs,
    random_words,
    simulate,
    truth_tables,
)
from repro.suite.registry import REGISTRY
from repro.synth.mapper import map_network
from repro.synth.strash import script_rugged
from repro.verify.equiv import networks_equivalent

from bench_helpers import QUICK_SET

#: Patterns per sweep for the throughput comparison (64 words).
BLOCK = 4096
#: ISSUE 2 acceptance floor: numpy aggregate vs. interpreted reference.
MIN_NUMPY_SPEEDUP = 5.0

#: circuit -> {evaluator: net-patterns per second}
_THROUGHPUT: dict[str, dict[str, float]] = {}

_HEADER = (
    f"{'ckt':<8}{'gates':>6}{'legacy':>12}{'bigint':>12}{'numpy':>12}"
    f"{'np/legacy':>11}{'np/bigint':>11}"
)


def _mapped(name):
    library = default_library()
    network = REGISTRY[name].build(0.35)
    script_rugged(network)
    map_network(network, library)
    return network


def _time(fn, min_seconds=0.2):
    fn()  # warm caches (compiled form, numpy plan)
    reps = 0
    start = time.perf_counter()
    while True:
        fn()
        reps += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds and reps >= 3:
            return elapsed / reps


@pytest.mark.parametrize("name", QUICK_SET)
def test_throughput_and_agreement(name):
    network = _mapped(name)
    gates = len(network)
    assignments = random_words(network.inputs, width=BLOCK, seed=0)
    mask = (1 << BLOCK) - 1
    words64 = random_words(network.inputs, width=64, seed=0)

    rounds = BLOCK // 64
    legacy_sweep = lambda: [
        simulate(network, words64, mask=(1 << 64) - 1) for _ in range(rounds)
    ]
    rates = {"legacy": gates * BLOCK / _time(legacy_sweep)}
    reference = simulate(network, assignments, mask)

    backends = ["bigint"] + (["numpy"] if numpy_available() else [])
    for backend in backends:
        engine = SimEngine(network, backend)
        rates[backend] = gates * BLOCK / _time(
            lambda: engine.set_patterns(assignments, BLOCK)
        )
        # identical results across evaluators, bit for bit
        assert engine.words() == reference, (name, backend)
        engine.detach()

    _THROUGHPUT[name] = rates
    print()
    print(_HEADER)
    numpy_rate = rates.get("numpy", 0.0)
    print(
        f"{name:<8}{gates:>6d}"
        f"{rates['legacy'] / 1e6:>10.1f}Mp{rates['bigint'] / 1e6:>10.1f}Mp"
        f"{numpy_rate / 1e6:>10.1f}Mp"
        f"{numpy_rate / rates['legacy']:>10.1f}x"
        f"{numpy_rate / rates['bigint']:>10.2f}x"
    )


def test_numpy_aggregate_speedup():
    """The acceptance criterion: >= 5x net-patterns/s over the reference."""
    if not numpy_available():
        pytest.skip("numpy not installed")
    if not _THROUGHPUT:
        pytest.skip("per-circuit benches were deselected")
    # aggregate = total work / total time, i.e. harmonic weighting
    legacy_time = sum(1.0 / r["legacy"] for r in _THROUGHPUT.values())
    numpy_time = sum(1.0 / r["numpy"] for r in _THROUGHPUT.values())
    bigint_time = sum(1.0 / r["bigint"] for r in _THROUGHPUT.values())
    speedup = legacy_time / numpy_time
    print(
        f"\naggregate over {sorted(_THROUGHPUT)}: "
        f"numpy {speedup:.1f}x vs interpreted reference "
        f"(compiled bigint: {legacy_time / bigint_time:.1f}x)"
    )
    assert speedup >= MIN_NUMPY_SPEEDUP, (
        f"numpy backend delivered only {speedup:.2f}x aggregate throughput"
    )


def _sim_filter_legacy(before, after, exhaustive_limit=14):
    """The simulation stages of the pre-simcore ``networks_equivalent``.

    Four sequential 64-bit random rounds through the interpreted
    walker, then exhaustive truth tables for narrow designs.  The BDD
    fallback for wide designs is byte-identical in both
    implementations, so the A/B timing deliberately excludes it.
    """
    for seed in range(4):
        if random_simulate_outputs(before, seed=seed) != (
            random_simulate_outputs(after, seed=seed)
        ):
            return False
    if len(before.inputs) <= exhaustive_limit:
        tables_before = truth_tables(before)
        tables_after = truth_tables(after, support=list(before.inputs))
        return all(
            tables_before[old] == tables_after[new]
            for old, new in zip(before.outputs, after.outputs)
        )
    return True


def _sim_filter_simcore(before, after, exhaustive_limit=14):
    """The same stages as run by today's ``networks_equivalent``."""
    engine_before = SimEngine(before)
    engine_after = SimEngine(after)
    try:
        if engine_before.random_output_words(rounds=4) != (
            engine_after.random_output_words(rounds=4)
        ):
            return False
        if len(before.inputs) <= exhaustive_limit:
            engine_before.set_exhaustive_patterns()
            engine_after.set_exhaustive_patterns(list(before.inputs))
            return (
                engine_before.output_words() == engine_after.output_words()
            )
    finally:
        engine_before.detach()
        engine_after.detach()
    return True


def test_equivalence_check_speedup():
    """End-to-end consumer: the optimizer's verification filter pass."""
    total_legacy = total_new = 0.0
    print()
    print(f"{'ckt':<8}{'legacy-eq':>11}{'simcore-eq':>12}{'speedup':>9}")
    for name in QUICK_SET:
        network = _mapped(name)
        copy = network.copy()
        # sanity: the production check (including BDD fallback) passes
        assert networks_equivalent(network, copy) is True
        assert _sim_filter_legacy(network, copy) is True
        legacy = _time(
            lambda: _sim_filter_legacy(network, copy), min_seconds=0.1
        )
        current = _time(
            lambda: _sim_filter_simcore(network, copy), min_seconds=0.1
        )
        total_legacy += legacy
        total_new += current
        print(
            f"{name:<8}{legacy * 1e3:>9.1f}ms{current * 1e3:>10.1f}ms"
            f"{legacy / current:>8.1f}x"
        )
    speedup = total_legacy / total_new
    print(f"aggregate equivalence-check speedup: {speedup:.1f}x")
    assert speedup >= 1.5, (
        f"simcore equivalence checking is only {speedup:.2f}x faster"
    )
