"""Ablations of the design choices DESIGN.md calls out.

Three knobs with a story in the paper:

* **pre-placement sizing** (our stand-in for SIS's timing-driven
  mapping): without it, post-placement GS mostly repairs a badly sized
  netlist and its gains are inflated far beyond the paper's 5.4 %;
  with it, GS only harvests the wire-load-estimate gap.
* **inverting swaps**: Definition 3's ES-based swaps add inverters;
  disabling them restricts gsg to NES swaps.
* **internal-pin swaps**: the logic-level-reduction move; leaves-only
  rewiring exchanges external signals but never restructures trees.
"""

from __future__ import annotations

import pytest

from repro.library.cells import default_library
from repro.rapids.engine import run_rapids
from repro.rapids.moves import swap_sites
from repro.sizing.coudert import optimize
from repro.suite.flow import FlowConfig, prepare_benchmark
from repro.symmetry.supergate import extract_supergates

CIRCUIT = "s5378"


@pytest.fixture(scope="module")
def ablation_library():
    return default_library()


def _prepare(presize: bool, ablation_library):
    config = FlowConfig(presize=presize)
    return prepare_benchmark(CIRCUIT, config, ablation_library)


def test_presize_ablation(benchmark, ablation_library):
    """GS gain with vs without pre-placement sizing."""

    def run():
        results = {}
        for presize in (True, False):
            outcome = _prepare(presize, ablation_library)
            result = run_rapids(
                outcome.network.copy(), outcome.placement.copy(),
                ablation_library, mode="gs",
            )
            results[presize] = result.improvement_percent
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nGS improvement with presize: {results[True]:.1f}%  "
          f"without: {results[False]:.1f}%")
    # without timing-driven pre-sizing the post-placement sizer is
    # repairing the netlist, not exploiting placement knowledge
    assert results[False] >= results[True] - 0.5


@pytest.mark.parametrize(
    "label,include_inverting,include_internal",
    [
        ("full", True, True),
        ("no-inverting", False, True),
        ("leaves-only", True, False),
    ],
)
def test_swap_flavour_ablation(
    benchmark, label, include_inverting, include_internal,
    ablation_library,
):
    """gsg gain under restricted swap vocabularies."""
    outcome = _prepare(True, ablation_library)
    network = outcome.network.copy()
    placement = outcome.placement.copy()

    def factory(net, engine):
        sgn = extract_supergates(net)
        return swap_sites(
            net, engine, sgn,
            include_internal=include_internal,
            include_inverting=include_inverting,
        )

    result = benchmark.pedantic(
        optimize,
        args=(network, placement, ablation_library),
        kwargs={"site_factory": factory, "mode": f"gsg-{label}"},
        rounds=1, iterations=1,
    )
    print(f"\ngsg[{label}]: {result.improvement_percent:.2f}% "
          f"({result.moves_applied} moves)")
    assert result.final_delay <= result.initial_delay + 1e-9
