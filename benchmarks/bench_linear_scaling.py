"""Section 3's headline claim: symmetry detection in linear time.

Runs supergate extraction over a size sweep of generated control logic
and fits the runtime growth exponent — for a linear algorithm it must
stay close to 1 (quadratic detection, the naive pairwise approach,
would show ~2).  Also benchmarks one representative extraction so the
per-gate cost is tracked by pytest-benchmark.

A second workload exercises the SoA netlist kernel at 1e5-gate scale
(scaled by ``REPRO_SCALE`` like everything else): a full flatten must
sustain at least 10k gates/s, revalidating after one absorbed pin
patch must beat a full flatten by 20x, and handing out the cached
view must beat it by 50x.
"""

from __future__ import annotations

import math
import time

from repro.network.netlist import Pin
from repro.network.soa import get_soa
from repro.suite.circuits import random_control
from repro.suite.registry import build_benchmark, configured_scale
from repro.symmetry.supergate import extract_supergates
from repro.synth.strash import script_rugged

from bench_helpers import record_result

#: Floors for the SoA kernel workload (see module docstring).  The
#: patch+arrays figure additionally rebuilds every numpy mirror, so
#: its floor is lower than the pure-revalidation one.
SOA_FLATTEN_GATES_PER_S = 10_000
SOA_PATCH_REVALIDATE_SPEEDUP = 20.0
SOA_PATCH_ARRAYS_SPEEDUP = 4.0
SOA_CACHED_VIEW_SPEEDUP = 50.0

#: End-to-end throughput floor for one partitioned rewiring pass
#: (carve + per-region selection + serial commit, timing-blind) over
#: the ``tiled100k`` workload — CI asserts the 1e5-gate path never
#: regresses below a third of the measured steady-state rate.
PARTITION_GATES_PER_S = 1_500


def _prepared(num_gates: int):
    net = random_control(
        num_inputs=max(16, num_gates // 12),
        num_gates=num_gates,
        num_outputs=max(8, num_gates // 14),
        seed=num_gates,
        max_depth=30,
    )
    script_rugged(net)
    return net


def test_extraction_scales_linearly(benchmark):
    benchmark.pedantic(_scaling_sweep, rounds=1, iterations=1)


def _scaling_sweep():
    sizes = [600, 1200, 2400, 4800, 9600]
    measurements: list[tuple[int, float]] = []
    for size in sizes:
        net = _prepared(size)
        # min over repetitions: the robust wall-clock estimator (mean
        # absorbs GC pauses and scheduler noise, inflating the exponent)
        best = min(
            _timed(extract_supergates, net) for _ in range(5)
        )
        measurements.append((len(net), best))
    print("\nextraction runtime sweep:")
    for gates, seconds in measurements:
        print(f"  {gates:6d} gates: {seconds * 1000:8.2f} ms "
              f"({seconds / gates * 1e6:.2f} us/gate)")
    # least-squares slope of log(time) vs log(size)
    logs = [
        (math.log(gates), math.log(seconds))
        for gates, seconds in measurements
    ]
    n = len(logs)
    mean_x = sum(x for x, _ in logs) / n
    mean_y = sum(y for _, y in logs) / n
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in logs
    ) / sum((x - mean_x) ** 2 for x, _ in logs)
    print(f"  growth exponent: {slope:.2f} (1.0 = linear)")
    record_result(
        "linear_scaling", "extraction_sweep",
        growth_exponent=round(slope, 3),
        sizes=[gates for gates, _ in measurements],
        seconds=[round(seconds, 5) for _, seconds in measurements],
    )
    # linear with noise headroom; the naive pairwise detector sits at ~2
    assert slope < 1.5, slope


def _timed(func, *args) -> float:
    start = time.perf_counter()
    func(*args)
    return time.perf_counter() - start


def test_extraction_throughput(benchmark):
    net = _prepared(2400)
    sgn = benchmark(extract_supergates, net)
    assert sum(len(sg.covered) for sg in sgn.supergates.values()) == len(net)


def test_soa_flatten_and_revalidate_floors():
    """SoA kernel cost structure at 1e5-gate scale.

    The full flatten (python recompile + numpy mirrors) is the price
    of a structural mutation; absorbing a pin rewiring as an in-place
    patch must leave only the numpy mirror rebuild, and an untouched
    kernel must hand out its cached view at near-zero cost — the
    contract every per-move consumer (vector STA, HPWL rebuild,
    snapshot packing) is built on.
    """
    target = max(2000, int(100_000 * configured_scale()))
    net = random_control(
        num_inputs=max(16, target // 12),
        num_gates=target,
        num_outputs=max(8, target // 14),
        seed=target,
        max_depth=40,
    )
    kernel = get_soa(net)

    def full_flatten():
        net._touch()  # untracked mutation: forces a stale rebuild
        kernel.sync()
        kernel.arrays()

    flatten_s = min(_timed(full_flatten) for _ in range(3))
    gates_per_s = len(net) / flatten_s

    # alternate one pin of one gate between two primary inputs: every
    # call is a genuine absorbed patch plus a numpy mirror rebuild
    gate = next(iter(net.gate_names()))
    targets = net.inputs[:2]
    toggle = [0]

    def patch_and_arrays():
        toggle[0] ^= 1
        net.replace_fanin(Pin(gate, 0), targets[toggle[0]])
        kernel.sync()
        kernel.arrays()

    patch_arrays_s = min(_timed(patch_and_arrays) for _ in range(5))

    def patch_and_sync():
        toggle[0] ^= 1
        net.replace_fanin(Pin(gate, 0), targets[toggle[0]])
        kernel.sync()

    patch_sync_s = min(_timed(patch_and_sync) for _ in range(5))
    kernel.arrays()  # leave the mirrors current for the cached probe

    def cached_view():
        kernel.sync()
        kernel.arrays()

    cached_s = min(_timed(cached_view) for _ in range(5))

    arrays_speedup = flatten_s / patch_arrays_s
    sync_speedup = flatten_s / patch_sync_s
    cached_speedup = flatten_s / cached_s
    print(
        f"\nSoA kernel at {len(net)} gates:"
        f"\n  full flatten:        {flatten_s * 1000:9.2f} ms "
        f"({gates_per_s:.0f} gates/s)"
        f"\n  patch + arrays:      {patch_arrays_s * 1000:9.2f} ms "
        f"({arrays_speedup:.0f}x)"
        f"\n  patch + revalidate:  {patch_sync_s * 1000:9.4f} ms "
        f"({sync_speedup:.0f}x)"
        f"\n  cached view:         {cached_s * 1000:9.4f} ms "
        f"({cached_speedup:.0f}x)"
    )
    record_result(
        "linear_scaling", "soa_kernel",
        gates=len(net),
        flatten_gates_per_s=round(gates_per_s, 1),
        patch_arrays_speedup=round(arrays_speedup, 1),
        patch_revalidate_speedup=round(sync_speedup, 1),
        cached_view_speedup=round(cached_speedup, 1),
    )
    assert gates_per_s >= SOA_FLATTEN_GATES_PER_S, (
        f"full flatten sustains only {gates_per_s:.0f} gates/s"
    )
    assert arrays_speedup >= SOA_PATCH_ARRAYS_SPEEDUP, (
        f"patch + mirror rebuild is only {arrays_speedup:.1f}x faster "
        f"than a full flatten"
    )
    assert sync_speedup >= SOA_PATCH_REVALIDATE_SPEEDUP, (
        f"patched revalidation is only {sync_speedup:.1f}x faster "
        f"than a full flatten"
    )
    assert cached_speedup >= SOA_CACHED_VIEW_SPEEDUP, (
        f"cached view reuse is only {cached_speedup:.1f}x faster "
        f"than a full flatten"
    )


def test_partitioned_rewiring_scales():
    """The 1e5-gate rewiring path: carve, select, commit, verify.

    Builds the ``tiled100k`` workload at the configured scale (the
    full 1e5 gates at ``REPRO_SCALE=1.0``), grid-places it, and runs
    one timing-blind partitioned wirelength pass.  Asserts the
    structural contract (multiple regions under the bound, zero
    boundary conflicts, HPWL monotone, function preserved) and a
    throughput floor over the whole carve+rewire step.
    """
    from repro.library.cells import default_library
    from repro.place.placement import grid_placement
    from repro.rapids.partition import reduce_wirelength_partitioned
    from repro.synth.mapper import map_network
    from repro.verify.equiv import networks_equivalent

    target = max(4000, int(100_000 * configured_scale()))
    net = build_benchmark("tiled100k", scale=target / 100_000)
    map_network(net, default_library())
    placement = grid_placement(net)
    reference = net.copy()

    start = time.perf_counter()
    result = reduce_wirelength_partitioned(
        net, placement, max_gates=2048, max_passes=1,
        timing_engine=None,
    )
    elapsed = time.perf_counter() - start
    gates_per_s = len(net) / elapsed
    print(
        f"\npartitioned rewiring at {len(net)} gates:"
        f"\n  regions: {result.regions} "
        f"(max {result.max_region_gates} gates, "
        f"{result.boundary_nets} boundary nets)"
        f"\n  swaps: {result.swaps_applied} + "
        f"{result.cross_swaps_applied} cross in {result.rounds} rounds"
        f"\n  hpwl: {result.initial_hpwl:.0f} -> {result.final_hpwl:.0f} "
        f"({result.improvement_percent:+.1f}%)"
        f"\n  wall: {elapsed:.2f} s ({gates_per_s:.0f} gates/s)"
    )
    record_result(
        "linear_scaling", "partitioned_rewiring",
        gates=len(net),
        regions=result.regions,
        max_region_gates=result.max_region_gates,
        boundary_nets=result.boundary_nets,
        swaps_applied=result.swaps_applied + result.cross_swaps_applied,
        hpwl_improvement_percent=round(result.improvement_percent, 2),
        gates_per_s=round(gates_per_s, 1),
    )
    assert result.regions > 1
    assert result.max_region_gates <= 2048
    assert result.boundary_conflicts == 0
    assert result.swaps_applied + result.cross_swaps_applied > 0
    assert result.final_hpwl <= result.initial_hpwl
    assert networks_equivalent(reference, net)
    assert gates_per_s >= PARTITION_GATES_PER_S, (
        f"partitioned rewiring sustains only {gates_per_s:.0f} gates/s"
    )
