"""Section 3's headline claim: symmetry detection in linear time.

Runs supergate extraction over a size sweep of generated control logic
and fits the runtime growth exponent — for a linear algorithm it must
stay close to 1 (quadratic detection, the naive pairwise approach,
would show ~2).  Also benchmarks one representative extraction so the
per-gate cost is tracked by pytest-benchmark.
"""

from __future__ import annotations

import math
import time

from repro.suite.circuits import random_control
from repro.symmetry.supergate import extract_supergates
from repro.synth.strash import script_rugged


def _prepared(num_gates: int):
    net = random_control(
        num_inputs=max(16, num_gates // 12),
        num_gates=num_gates,
        num_outputs=max(8, num_gates // 14),
        seed=num_gates,
        max_depth=30,
    )
    script_rugged(net)
    return net


def test_extraction_scales_linearly(benchmark):
    benchmark.pedantic(_scaling_sweep, rounds=1, iterations=1)


def _scaling_sweep():
    sizes = [600, 1200, 2400, 4800, 9600]
    measurements: list[tuple[int, float]] = []
    for size in sizes:
        net = _prepared(size)
        # min over repetitions: the robust wall-clock estimator (mean
        # absorbs GC pauses and scheduler noise, inflating the exponent)
        best = min(
            _timed(extract_supergates, net) for _ in range(5)
        )
        measurements.append((len(net), best))
    print("\nextraction runtime sweep:")
    for gates, seconds in measurements:
        print(f"  {gates:6d} gates: {seconds * 1000:8.2f} ms "
              f"({seconds / gates * 1e6:.2f} us/gate)")
    # least-squares slope of log(time) vs log(size)
    logs = [
        (math.log(gates), math.log(seconds))
        for gates, seconds in measurements
    ]
    n = len(logs)
    mean_x = sum(x for x, _ in logs) / n
    mean_y = sum(y for _, y in logs) / n
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in logs
    ) / sum((x - mean_x) ** 2 for x, _ in logs)
    print(f"  growth exponent: {slope:.2f} (1.0 = linear)")
    # linear with noise headroom; the naive pairwise detector sits at ~2
    assert slope < 1.5, slope


def _timed(func, *args) -> float:
    start = time.perf_counter()
    func(*args)
    return time.perf_counter() - start


def test_extraction_throughput(benchmark):
    net = _prepared(2400)
    sgn = benchmark(extract_supergates, net)
    assert sum(len(sg.covered) for sg in sgn.supergates.values()) == len(net)
