"""Whole-netlist coloring at 1e5-gate scale (ISSUE 10 acceptance).

Three contracts over the ``tiled100k`` workload (scaled by
``REPRO_SCALE`` like everything else):

* **throughput** — one full color-refinement pass (cone colors, shape
  colors, leaf symmetry classes — all three partitions in one sweep
  over the SoA arrays) must sustain a gates/s floor set at roughly a
  third of the measured steady-state rate;
* **extraction dedup** — shape-color-deduplicated supergate
  extraction must graft most regions from replayed templates instead
  of re-growing them (tiled control logic is template-heavy by
  construction, so the hit-rate floor is high) while producing the
  exact same partition as plain extraction;
* **cross-supergate candidates** — the cone-color classes must yield
  swap candidates beyond the per-supergate enumeration (the strict-
  superset acceptance), every one of which survives the simulation
  filter (zero false positives).

Results land in ``REPRO_BENCH_JSON`` (CI writes ``BENCH_10.json``).
"""

from __future__ import annotations

import time

from repro.suite.registry import build_benchmark, configured_scale
from repro.symmetry.coloring import (
    DedupStats,
    class_swap_candidates,
    color_network,
    extract_supergates_colored,
)
from repro.symmetry.supergate import extract_supergates
from repro.symmetry.swap import enumerate_swaps
from repro.symmetry.verify import nets_functionally_equal

from bench_helpers import record_result

#: One-third of the measured steady-state coloring rate (~52k gates/s
#: at scale 0.35 on the reference container).
COLORING_GATES_PER_S = 15_000
#: Tiled control logic repeats a handful of region shapes, so the
#: colored extraction must graft the vast majority of supergates.
MIN_DEDUP_HIT_RATE = 0.5
#: The candidate generator caps at 32; at 1e5-gate scale at least a
#: quarter of the cap must be genuinely cross-supergate and verified.
MIN_VERIFIED_CROSS_CANDIDATES = 8

_STATE: dict = {}


def _workload():
    if "net" not in _STATE:
        target = max(4000, int(100_000 * configured_scale()))
        _STATE["net"] = build_benchmark(
            "tiled100k", scale=target / 100_000
        )
    return _STATE["net"]


def test_coloring_throughput():
    net = _workload()
    start = time.perf_counter()
    coloring = color_network(net)
    elapsed = time.perf_counter() - start
    gates_per_s = len(net) / elapsed
    print(
        f"\ncoloring at {len(net)} gates: {elapsed:.3f} s "
        f"({gates_per_s:.0f} gates/s), "
        f"{len(coloring.net_classes())} cone classes, "
        f"{len(coloring.symmetry_classes())} symmetry classes"
    )
    record_result(
        "coloring", "throughput",
        gates=len(net),
        seconds=round(elapsed, 4),
        gates_per_s=round(gates_per_s, 1),
        cone_classes=len(coloring.net_classes()),
        symmetry_classes=len(coloring.symmetry_classes()),
    )
    _STATE["coloring"] = coloring
    assert gates_per_s >= COLORING_GATES_PER_S, (
        f"coloring sustains only {gates_per_s:.0f} gates/s "
        f"(floor {COLORING_GATES_PER_S})"
    )


def test_extraction_dedup_hit_rate():
    net = _workload()
    coloring = _STATE.get("coloring") or color_network(net)
    stats = DedupStats()
    start = time.perf_counter()
    colored = extract_supergates_colored(net, coloring, stats=stats)
    elapsed = time.perf_counter() - start
    print(
        f"\ncolored extraction: {elapsed:.3f} s, "
        f"{stats.grown} grown + {stats.grafted} grafted + "
        f"{stats.fallbacks} fallbacks (hit rate {stats.hit_rate:.1%})"
    )
    record_result(
        "coloring", "extraction_dedup",
        supergates=len(colored.supergates),
        grown=stats.grown,
        grafted=stats.grafted,
        fallbacks=stats.fallbacks,
        hit_rate=round(stats.hit_rate, 4),
        seconds=round(elapsed, 4),
    )
    assert stats.grown + stats.grafted + stats.fallbacks == len(
        colored.supergates
    )
    assert stats.hit_rate >= MIN_DEDUP_HIT_RATE, (
        f"dedup hit rate {stats.hit_rate:.1%} below floor "
        f"{MIN_DEDUP_HIT_RATE:.0%}"
    )


def test_cross_supergate_candidates_verified():
    net = _workload()
    coloring = _STATE.get("coloring") or color_network(net)
    candidates = class_swap_candidates(net, coloring)
    per_supergate = {
        frozenset((swap.pin_a, swap.pin_b))
        for sg in extract_supergates(net).nontrivial()
        for swap in enumerate_swaps(sg, leaves_only=True)
    }
    beyond = [
        cand for cand in candidates
        if frozenset((cand.pin_a, cand.pin_b)) not in per_supergate
    ]
    verified = [
        cand for cand in beyond
        if nets_functionally_equal(net, cand.net_a, cand.net_b)
    ]
    print(
        f"\nclass-swap candidates: {len(candidates)} total, "
        f"{len(beyond)} beyond the per-supergate enumeration, "
        f"{len(verified)} verified by simulation"
    )
    record_result(
        "coloring", "cross_candidates",
        candidates=len(candidates),
        beyond_per_supergate=len(beyond),
        verified=len(verified),
    )
    assert len(verified) == len(beyond), (
        "cone-color candidate refuted by simulation — false positive"
    )
    assert len(verified) >= MIN_VERIFIED_CROSS_CANDIDATES, (
        f"only {len(verified)} verified cross-supergate candidates "
        f"(floor {MIN_VERIFIED_CROSS_CANDIDATES})"
    )
