"""Fig. 2 — swappable-pin identification inside supergates.

Benchmarks the paper's figure circuit (h and k non-inverting swappable
under an AND-over-NOR supergate), then reports the swap-freedom census
and the supergate statistics (Table 1 columns 12-13) over the flow's
circuits.
"""

from __future__ import annotations

import pytest

from repro.network.builder import NetworkBuilder
from repro.network.netlist import Pin
from repro.suite.registry import REGISTRY
from repro.symmetry.supergate import extract_supergates
from repro.symmetry.swap import count_swappable_pairs, swap_kinds

from bench_helpers import table1_names


def _fig2():
    builder = NetworkBuilder("fig2")
    h, k, x = builder.inputs(3, prefix="p")
    inner = builder.nor(h, k, name="inner")
    builder.output(builder.and_(inner, x, name="f"))
    return builder.build()


def test_fig2_pins_swappable(benchmark):
    net = _fig2()
    sgn = benchmark(extract_supergates, net)
    sg = sgn.supergates["f"]
    # the paper's claim: h and k are non-inverting swappable
    assert swap_kinds(sg, Pin("inner", 0), Pin("inner", 1)) == {
        "non-inverting"
    }
    print("\nFig.2: imp values",
          {str(leaf.pin): leaf.imp_value for leaf in sg.leaves})


@pytest.mark.parametrize("name", table1_names()[:6])
def test_swap_census(benchmark, name, library, outcome_cache):
    """Swap-pair counts + coverage/L against the paper's columns."""
    outcome = outcome_cache.get(name, library)
    network = outcome.network

    def census():
        sgn = extract_supergates(network)
        return sgn, count_swappable_pairs(sgn)

    sgn, counts = benchmark.pedantic(census, rounds=1, iterations=1)
    paper = REGISTRY[name].paper
    print(
        f"\n{name}: coverage {sgn.coverage() * 100:.1f}% "
        f"(paper {paper.coverage_percent}), "
        f"L {sgn.max_supergate_inputs()} "
        f"(paper {paper.max_supergate_inputs}), swap pairs {counts}"
    )
    assert counts["non-inverting"] + counts["inverting"] > 0
