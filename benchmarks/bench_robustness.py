"""Robustness under injected faults: recovery cost, checkpoint overhead.

The fault-tolerance PR's quantitative story.  The property tests
(``tests/test_parallel_eval.py``, ``tests/test_checkpoint.py``) lock
*correctness* — trajectories stay serial-identical under any injected
failure pattern and a SIGTERMed checkpointed run resumes to the same
fingerprint.  This bench records what that safety *costs*:

* **recovery counters** — one shared :class:`repro.parallel.EvalPool`
  is driven through the whole recovery ladder (a killed worker, a
  stale delta, a worker exception) on a real quick-set circuit; every
  batch must still match the serial selections, and the
  :class:`~repro.parallel.pool.PoolHealth` counters show which rung
  paid for it;
* **checkpoint overhead** — an optimization run saving resume state at
  every round boundary is timed against the serializing it does:
  ``save_seconds / runtime`` must stay a small fraction (floor: under
  half the run), and the checkpointed trajectory is asserted identical
  to the unguarded one.

Rows land in ``REPRO_BENCH_JSON`` (``BENCH_9.json`` in CI) under the
``robustness`` key.
"""

from __future__ import annotations

import pytest

from repro.checkpoint import CheckpointManager
from repro.parallel import EvalPool, best_phase_move, faults, shm
from repro.rapids.engine import _gs_factory, _gsg_gs_factory
from repro.sizing.coudert import optimize
from repro.suite.flow import FlowConfig, prepare_benchmark
from repro.timing.sta import TimingEngine

from bench_helpers import QUICK_SET, record_result

#: One circuit is enough: the ladder is exercised per batch, not per
#: circuit, and the chaos property tests already sweep seeds.
CIRCUIT = QUICK_SET[0]


def test_recovery_ladder_counters(library):
    """Each rung recovers its fault; the counters name the rung."""
    outcome = prepare_benchmark(CIRCUIT, FlowConfig(), library)
    engine = TimingEngine(outcome.network, outcome.placement, library)
    engine.analyze()
    sites = _gsg_gs_factory(library)(outcome.network, engine)
    serial = [
        best_phase_move(site, engine, library, "min", 1e-9)
        for site in sites
    ]
    # one plan covering the whole session: workers inherit the fault
    # plan from the environment when they fork, so the plan must be
    # active before the pool spins up.  Submission tokens are the
    # parent's monotonic counter; with 4 workers each batch submits 3
    # remote shards (the parent keeps one), a rebuild resubmits all 3,
    # a stale resend and an exception retry take one token each:
    #   batch 1: 0,1,2  kill@0 -> rebuild resubmits as 3,4,5
    #   batch 2: 6,7,8  stale@6 -> full resend as 9
    #   batch 3: 10,11,12  exception@10 -> backoff retry as 13
    plan = {"worker": {
        0: {"action": "kill"},
        6: {"action": "stale"},
        10: {"action": "exception"},
    }}
    with EvalPool(4, min_sites=1) as pool, faults.active(plan):
        for action in ("kill", "stale", "exception"):
            got = pool.evaluate(engine, library, sites, "min", 1e-9)
            assert got == serial, f"selections diverged under {action!r}"
        assert pool.fallback_reason is None, pool.fallback_reason
        health = pool.health.as_dict()
    assert shm.registered_names() == []
    assert health["pool_rebuilds"] >= 1       # the kill
    assert health["stale_recoveries"] >= 1    # the stale delta
    assert health["shard_retries"] >= 1       # the exception
    print(
        f"\nrecovery ladder on {CIRCUIT} ({len(sites)} sites/batch): "
        + ", ".join(f"{key}={value}" for key, value in health.items())
    )
    record_result(
        "robustness", "recovery_ladder",
        circuit=CIRCUIT,
        sites_per_batch=len(sites),
        pool_recoveries=health["pool_rebuilds"],
        stale_recoveries=health["stale_recoveries"],
        shard_retries=health["shard_retries"],
        worker_exceptions=health["worker_exceptions"],
        inline_fallbacks=health["inline_fallbacks"],
    )


def test_checkpoint_overhead(library, tmp_path):
    """Round-boundary checkpointing must cost a fraction of the run."""
    outcome = prepare_benchmark(CIRCUIT, FlowConfig(), library)
    network, placement = outcome.network, outcome.placement

    net_plain, pl_plain = network.copy(), placement.copy()
    plain = optimize(
        net_plain, pl_plain, library, _gs_factory(library),
        collect_log=True,
    )

    manager = CheckpointManager(str(tmp_path / "bench.ckpt"))
    net_ckpt, pl_ckpt = network.copy(), placement.copy()
    guarded = optimize(
        net_ckpt, pl_ckpt, library, _gs_factory(library),
        collect_log=True, checkpoint=manager,
    )
    # safety must be free of trajectory changes before it can be cheap
    assert guarded.move_log == plain.move_log
    assert guarded.final_delay == plain.final_delay
    assert manager.saves >= 1

    overhead = manager.save_seconds / max(guarded.runtime_seconds, 1e-9)
    size = (tmp_path / "bench.ckpt").stat().st_size
    print(
        f"\ncheckpoint overhead on {CIRCUIT}: {manager.saves} saves, "
        f"{manager.save_seconds:.3f}s of {guarded.runtime_seconds:.3f}s "
        f"({100 * overhead:.1f}%), {size} B on disk"
    )
    record_result(
        "robustness", "checkpoint_overhead",
        circuit=CIRCUIT,
        saves=manager.saves,
        save_seconds=round(manager.save_seconds, 4),
        runtime_seconds=round(guarded.runtime_seconds, 4),
        checkpoint_overhead=round(overhead, 4),
        checkpoint_bytes=size,
    )
    assert overhead < 0.5, (
        f"checkpointing every round costs {100 * overhead:.0f}% of the "
        f"run — the save path has regressed"
    )


def test_degraded_pool_still_finishes(library):
    """The last rung as a bench row: rebuild budget exhausted, the run
    completes inline with serial-identical selections."""
    outcome = prepare_benchmark(CIRCUIT, FlowConfig(), library)
    engine = TimingEngine(outcome.network, outcome.placement, library)
    engine.analyze()
    sites = _gsg_gs_factory(library)(outcome.network, engine)
    serial = [
        best_phase_move(site, engine, library, "min", 1e-9)
        for site in sites
    ]
    plan = {"worker": {i: {"action": "kill"} for i in range(64)}}
    with EvalPool(2, min_sites=1) as pool:
        with faults.active(plan):
            got = pool.evaluate(engine, library, sites, "min", 1e-9)
        assert got == serial
        assert not pool.active
        health = pool.health.as_dict()
    assert shm.registered_names() == []
    record_result(
        "robustness", "degraded_inline",
        circuit=CIRCUIT,
        pool_recoveries=health["pool_rebuilds"],
        inline_fallbacks=health["inline_fallbacks"],
        degraded=True,
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
