"""Section 5's discipline: the existing placement is left intact.

Audits what each optimization mode did to the placement: gsg must move
zero cells (only inverters may appear/disappear), GS moves zero cells
by construction, and the combination inherits both properties.  Also
reports the paper's closing observation about large-fanout nets.
"""

from __future__ import annotations

import pytest

from repro.rapids.report import fanout_profile

from bench_helpers import table1_names


@pytest.mark.parametrize("name", table1_names()[:4])
def test_placement_perturbation_audit(benchmark, name, library,
                                      outcome_cache):
    outcome = benchmark.pedantic(
        outcome_cache.get, args=(name, library), rounds=1, iterations=1,
    )
    print(f"\n{name}:")
    for mode, result in outcome.results.items():
        audit = result.perturbation
        print(
            f"  {mode:7s} moved={audit['moved_cells']:.0f} "
            f"added={audit['added_cells']:.0f} "
            f"removed={audit['removed_cells']:.0f} "
            f"displacement={audit['total_displacement']:.1f} um"
        )
        assert audit["moved_cells"] == 0, mode
        if mode == "gs":
            assert audit["added_cells"] == 0


def test_fanout_profile_observation(benchmark, library, outcome_cache):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Section 6: 'the SIS mapper often generates very large fanout
    nets ... in such a case gsg+GS has a hard time improving'."""
    name = table1_names()[0]
    outcome = outcome_cache.get(name, library)
    profile = fanout_profile(outcome.network)
    print(f"\n{name} fanout profile: {profile}")
    assert profile["max_fanout"] >= 1
