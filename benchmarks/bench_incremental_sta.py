"""Incremental vs. full-STA optimizer loop — same answer, less work.

Each quick-set circuit runs the combined gsg+GS optimizer twice from
the same placed design: once with the historical rebuild-everything
flow (a fresh ``TimingEngine`` plus full ``analyze()`` after every
committed batch) and once with the incremental engine
(``apply_and_update`` re-propagates only through the affected region).

Checked properties, per circuit:

* **agreement** — both flows commit the same number of moves and land
  on the same final delay to 1e-9 (the incremental engine is bit-exact
  against full analysis, so the optimizer walks the same trajectory);
* **work** — the incremental flow performs measurably fewer timing
  node updates (star rebuilds + arrival evaluations + required-time
  evaluations, the unit both flows are made of): at least 1.4x less
  per circuit, at least 2x less over the whole set (XOR-heavy
  circuits like c499 propagate every batch almost everywhere, so the
  2x acceptance floor is held in aggregate).

``REPRO_BENCH_SET=quick`` trims the circuit list for CI smoke runs.
"""

from __future__ import annotations

import time

import pytest

from repro.rapids.engine import run_rapids
from repro.suite.flow import FlowConfig, prepare_benchmark

from bench_helpers import QUICK_SET, quick_mode

#: Acceptance floor over the whole circuit set.
MIN_AGGREGATE_REDUCTION = 2.0
#: Per-circuit sanity floor (worst case: XOR-dominated netlists).
MIN_CIRCUIT_REDUCTION = 1.4

#: name -> (full node updates, incremental node updates)
_WORK: dict[str, tuple[int, int]] = {}

_HEADER = (
    f"{'ckt':<8}{'gates':>6}{'moves':>6}{'full-updates':>14}"
    f"{'incr-updates':>14}{'reduction':>10}{'full-s':>8}{'incr-s':>8}"
)


def bench_names() -> list[str]:
    """Three circuits for the CI smoke run, the full quick set otherwise."""
    return QUICK_SET[:3] if quick_mode() else QUICK_SET


@pytest.mark.parametrize("name", bench_names())
def test_incremental_sta_agrees_and_saves_work(name, library):
    outcome = prepare_benchmark(name, FlowConfig(), library)
    runs = {}
    for flavor, incremental in (("full", False), ("incremental", True)):
        net = outcome.network.copy()
        placement = outcome.placement.copy()
        start = time.perf_counter()
        result = run_rapids(
            net, placement, library, mode="gsg_gs", incremental=incremental,
        )
        runs[flavor] = {
            "result": result,
            "seconds": time.perf_counter() - start,
        }
    full = runs["full"]["result"].optimize
    incr = runs["incremental"]["result"].optimize
    # agreement: incremental timing is exact, so the greedy loop makes
    # identical decisions and reaches an identical design
    assert incr.moves_applied == full.moves_applied, name
    assert incr.final_delay == pytest.approx(full.final_delay, abs=1e-9), name
    assert incr.final_area == pytest.approx(full.final_area, abs=1e-9), name
    # work: measurably fewer timing propagations
    full_work = full.timing_stats["node_updates"]
    incr_work = incr.timing_stats["node_updates"]
    assert incr_work > 0, name
    reduction = full_work / incr_work
    print()
    print(_HEADER)
    print(
        f"{name:<8}{len(outcome.network):>6d}{full.moves_applied:>6d}"
        f"{full_work:>14d}{incr_work:>14d}{reduction:>9.1f}x"
        f"{runs['full']['seconds']:>8.2f}"
        f"{runs['incremental']['seconds']:>8.2f}"
    )
    _WORK[name] = (full_work, incr_work)
    assert reduction >= MIN_CIRCUIT_REDUCTION, (
        f"{name}: incremental STA saved only {reduction:.2f}x "
        f"(full={full_work}, incremental={incr_work})"
    )
    # the incremental run must actually have run incrementally
    assert incr.timing_stats["incremental_updates"] > 0, name
    assert incr.timing_stats["full_analyses"] <= 1 + full.rounds, name


def test_incremental_sta_aggregate_reduction():
    """The acceptance criterion: >= 2x less work over the whole set."""
    if not _WORK:
        pytest.skip("per-circuit benches were deselected")
    full_total = sum(full for full, _ in _WORK.values())
    incr_total = sum(incr for _, incr in _WORK.values())
    reduction = full_total / incr_total
    print(
        f"\naggregate over {sorted(_WORK)}: "
        f"full={full_total} incremental={incr_total} -> {reduction:.2f}x"
    )
    assert reduction >= MIN_AGGREGATE_REDUCTION, (
        f"incremental STA saved only {reduction:.2f}x in aggregate "
        f"(full={full_total}, incremental={incr_total})"
    )
