"""Incremental vs. full-STA optimizer loop — same answer, less work.

Each quick-set circuit runs the combined gsg+GS optimizer twice from
the same placed design: once with the historical rebuild-everything
flow (a fresh ``TimingEngine`` plus full ``analyze()`` after every
committed batch) and once with the incremental engine
(``apply_and_update`` re-propagates only through the affected region).

Checked properties, per circuit:

* **agreement** — both flows commit the same number of moves and land
  on the same final delay to 1e-9 (the incremental engine is bit-exact
  against full analysis, so the optimizer walks the same trajectory);
* **work** — the incremental flow performs measurably fewer timing
  node updates (star rebuilds + arrival evaluations + required-time
  evaluations, the unit both flows are made of): at least 1.4x less
  per circuit, at least 2x less over the whole set (XOR-heavy
  circuits like c499 propagate every batch almost everywhere, so the
  2x acceptance floor is held in aggregate);
* **cost-model work** — ``work_units`` prices each vector-lane
  evaluation at a fraction of a scalar heap visit (the masked vector
  pass touches a node for one fused numpy gather instead of a dict
  walk), so it tracks actual re-propagation cost: the floor is 3x on
  the XOR-dominated c499 (the circuit the node-updates metric could
  only hold at ~2x) and 3x in aggregate.

``REPRO_BENCH_SET=quick`` trims the circuit list for CI smoke runs.
"""

from __future__ import annotations

import time

import pytest

from repro.rapids.engine import run_rapids
from repro.suite.flow import FlowConfig, prepare_benchmark

from bench_helpers import QUICK_SET, quick_mode, record_result

#: Acceptance floor over the whole circuit set.
MIN_AGGREGATE_REDUCTION = 2.0
#: Per-circuit sanity floor (worst case: XOR-dominated netlists).
MIN_CIRCUIT_REDUCTION = 1.4
#: Cost-model (work_units) floors: the masked vector pass must lift
#: the XOR-dominated worst case from ~2x to >= 3x.
MIN_AGGREGATE_UNITS_REDUCTION = 3.0
MIN_CIRCUIT_UNITS_REDUCTION = 2.0
MIN_C499_UNITS_REDUCTION = 3.0

#: name -> (full node updates, incr node updates,
#:          full work units, incr work units)
_WORK: dict[str, tuple[int, int, float, float]] = {}

_HEADER = (
    f"{'ckt':<8}{'gates':>6}{'moves':>6}{'full-updates':>14}"
    f"{'incr-updates':>14}{'reduction':>10}{'units-red':>10}"
    f"{'full-s':>8}{'incr-s':>8}"
)


def bench_names() -> list[str]:
    """Three circuits for the CI smoke run, the full quick set otherwise."""
    return QUICK_SET[:3] if quick_mode() else QUICK_SET


@pytest.mark.parametrize("name", bench_names())
def test_incremental_sta_agrees_and_saves_work(name, library):
    outcome = prepare_benchmark(name, FlowConfig(), library)
    runs = {}
    for flavor, incremental in (("full", False), ("incremental", True)):
        net = outcome.network.copy()
        placement = outcome.placement.copy()
        start = time.perf_counter()
        result = run_rapids(
            net, placement, library, mode="gsg_gs", incremental=incremental,
        )
        runs[flavor] = {
            "result": result,
            "seconds": time.perf_counter() - start,
        }
    full = runs["full"]["result"].optimize
    incr = runs["incremental"]["result"].optimize
    # agreement: incremental timing is exact, so the greedy loop makes
    # identical decisions and reaches an identical design
    assert incr.moves_applied == full.moves_applied, name
    assert incr.final_delay == pytest.approx(full.final_delay, abs=1e-9), name
    assert incr.final_area == pytest.approx(full.final_area, abs=1e-9), name
    # work: measurably fewer timing propagations
    full_work = full.timing_stats["node_updates"]
    incr_work = incr.timing_stats["node_updates"]
    assert incr_work > 0, name
    reduction = full_work / incr_work
    # cost-model work: the full flavor runs all-scalar analyze(), so
    # its work_units equal its node_updates — an honest baseline for
    # the vector-discounted incremental figure
    full_units = full.timing_stats["work_units"]
    incr_units = incr.timing_stats["work_units"]
    units_reduction = full_units / incr_units
    print()
    print(_HEADER)
    print(
        f"{name:<8}{len(outcome.network):>6d}{full.moves_applied:>6d}"
        f"{full_work:>14d}{incr_work:>14d}{reduction:>9.1f}x"
        f"{units_reduction:>9.1f}x"
        f"{runs['full']['seconds']:>8.2f}"
        f"{runs['incremental']['seconds']:>8.2f}"
    )
    _WORK[name] = (full_work, incr_work, full_units, incr_units)
    record_result(
        "incremental_sta", name,
        gates=len(outcome.network),
        moves=full.moves_applied,
        full_node_updates=full_work,
        incr_node_updates=incr_work,
        node_update_reduction=round(reduction, 3),
        full_work_units=round(full_units, 1),
        incr_work_units=round(incr_units, 1),
        work_unit_reduction=round(units_reduction, 3),
        full_seconds=round(runs["full"]["seconds"], 3),
        incr_seconds=round(runs["incremental"]["seconds"], 3),
    )
    assert reduction >= MIN_CIRCUIT_REDUCTION, (
        f"{name}: incremental STA saved only {reduction:.2f}x "
        f"(full={full_work}, incremental={incr_work})"
    )
    floor = (
        MIN_C499_UNITS_REDUCTION if name == "c499"
        else MIN_CIRCUIT_UNITS_REDUCTION
    )
    assert units_reduction >= floor, (
        f"{name}: masked vector pass saved only {units_reduction:.2f}x "
        f"work units (full={full_units:.0f}, incremental={incr_units:.0f}, "
        f"floor {floor}x)"
    )
    # the incremental run must actually have run incrementally
    assert incr.timing_stats["incremental_updates"] > 0, name
    assert incr.timing_stats["full_analyses"] <= 1 + full.rounds, name


def test_incremental_sta_aggregate_reduction():
    """The acceptance criterion: >= 2x less work over the whole set."""
    if not _WORK:
        pytest.skip("per-circuit benches were deselected")
    full_total = sum(full for full, _, _, _ in _WORK.values())
    incr_total = sum(incr for _, incr, _, _ in _WORK.values())
    full_units = sum(units for _, _, units, _ in _WORK.values())
    incr_units = sum(units for _, _, _, units in _WORK.values())
    reduction = full_total / incr_total
    units_reduction = full_units / incr_units
    print(
        f"\naggregate over {sorted(_WORK)}: "
        f"full={full_total} incremental={incr_total} -> {reduction:.2f}x "
        f"node updates, {units_reduction:.2f}x work units"
    )
    record_result(
        "incremental_sta", "aggregate",
        node_update_reduction=round(reduction, 3),
        work_unit_reduction=round(units_reduction, 3),
    )
    assert reduction >= MIN_AGGREGATE_REDUCTION, (
        f"incremental STA saved only {reduction:.2f}x in aggregate "
        f"(full={full_total}, incremental={incr_total})"
    )
    assert units_reduction >= MIN_AGGREGATE_UNITS_REDUCTION, (
        f"masked vector pass saved only {units_reduction:.2f}x work "
        f"units in aggregate (full={full_units:.0f}, "
        f"incremental={incr_units:.0f})"
    )


def test_auto_batch_limit_agrees(library):
    """``batch_limit="auto"`` must not change the optimizer's answer.

    The adaptive policy resizes commit batches from the measured
    dirtied fraction — inputs both flavors compute identically — so
    the trajectory must match the fixed-64 default move for move.
    """
    outcome = prepare_benchmark("c432", FlowConfig(), library)
    runs = {}
    for flavor, limit in (("fixed", 64), ("auto", "auto")):
        net = outcome.network.copy()
        placement = outcome.placement.copy()
        result = run_rapids(
            net, placement, library, mode="gsg_gs",
            incremental=True, batch_limit=limit,
        )
        runs[flavor] = result.optimize
    fixed, auto = runs["fixed"], runs["auto"]
    assert auto.moves_applied == fixed.moves_applied
    assert auto.final_delay == pytest.approx(fixed.final_delay, abs=1e-12)
    assert auto.final_area == pytest.approx(fixed.final_area, abs=1e-12)
