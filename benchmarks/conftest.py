"""Shared infrastructure for the benchmark harness.

Scale: benchmarks honour ``REPRO_SCALE`` (default 0.35, like the test
suite).  ``REPRO_BENCH_SET=quick`` restricts Table 1 to a five-circuit
subset for fast iterations; the default runs all 19 rows.
"""

from __future__ import annotations

import os

import pytest

from repro.library.cells import default_library
from repro.suite.flow import FlowConfig, run_benchmark
from repro.suite.registry import benchmark_names

QUICK_SET = ["alu2", "c432", "c499", "k2", "s5378"]


def table1_names() -> list[str]:
    """Benchmarks included in the Table 1 run."""
    if os.environ.get("REPRO_BENCH_SET", "").lower() == "quick":
        return QUICK_SET
    return benchmark_names()


@pytest.fixture(scope="session")
def library():
    return default_library()


class _OutcomeCache:
    """Session cache so the figure benches reuse Table 1's flows."""

    def __init__(self) -> None:
        self.outcomes = {}

    def get(self, name: str, library):
        if name not in self.outcomes:
            self.outcomes[name] = run_benchmark(
                name, FlowConfig(), library
            )
        return self.outcomes[name]


@pytest.fixture(scope="session")
def outcome_cache():
    return _OutcomeCache()
