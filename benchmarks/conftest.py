"""Shared fixtures for the benchmark harness.

Scale: benchmarks honour ``REPRO_SCALE`` (default 0.35, like the test
suite).  ``REPRO_BENCH_SET=quick`` restricts Table 1 to a five-circuit
subset for fast iterations; the default runs all 19 rows.

Helper *functions* live in ``bench_helpers.py`` — this module keeps
only fixtures so it can never shadow another conftest's exports (the
bug that used to break every test module).
"""

from __future__ import annotations

import os

import pytest

from repro.library.cells import default_library
from repro.suite.flow import FlowConfig, run_benchmark

from bench_helpers import bench_results, write_results


def pytest_sessionfinish(session, exitstatus):
    """Flush recorded rows to ``REPRO_BENCH_JSON`` when set."""
    path = os.environ.get("REPRO_BENCH_JSON")
    if path and bench_results():
        write_results(path)


@pytest.fixture(scope="session")
def library():
    return default_library()


class _OutcomeCache:
    """Session cache so the figure benches reuse Table 1's flows."""

    def __init__(self) -> None:
        self.outcomes = {}

    def get(self, name: str, library):
        if name not in self.outcomes:
            self.outcomes[name] = run_benchmark(
                name, FlowConfig(), library
            )
        return self.outcomes[name]


@pytest.fixture(scope="session")
def outcome_cache():
    return _OutcomeCache()
