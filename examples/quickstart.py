#!/usr/bin/env python3
"""Quickstart: symmetry detection and rewiring on the paper's Fig. 2.

Builds the supergate of Fig. 2 — an AND root over a NOR, where the
paper shows pins h and k are non-inverting swappable — extracts the
generalized implication supergate, enumerates every legal swap, applies
one, and verifies the circuit function never changed.

Run:  python examples/quickstart.py
"""

from repro import NetworkBuilder, extract_supergates, networks_equivalent
from repro.symmetry import enumerate_swaps, pin_pair_symmetry, swapped_copy


def main() -> None:
    # Fig. 2: f = AND(NOR(h, k), x).  Forcing f=1 implies NOR=1 and
    # x=1; NOR=1 implies h=0, k=0 — so h, k, x are all covered by the
    # supergate rooted at f with implied values 0, 0, 1.
    builder = NetworkBuilder("fig2")
    h, k, x = builder.inputs(3, prefix="pin_")
    inner = builder.nor(h, k, name="inner")
    f = builder.and_(inner, x, name="f")
    builder.output(f)
    network = builder.build()

    sgn = extract_supergates(network)
    supergate = sgn.supergates["f"]
    print(f"supergate at {supergate.root}: class={supergate.sg_class.value},"
          f" root_value={supergate.root_value}")
    print(f"  covers gates: {supergate.covered}")
    for leaf in supergate.leaves:
        print(f"  leaf {leaf.pin} <- {leaf.net}  imp_value={leaf.imp_value}"
              f"  depth={leaf.depth}")

    print("\nlegal swaps (Lemmas 6-8):")
    for swap in enumerate_swaps(supergate, leaves_only=False):
        kind = "inverting" if swap.inverting else "non-inverting"
        # cross-check against ground truth: NES <-> non-inverting,
        # ES <-> inverting (Definition 3)
        truth = pin_pair_symmetry(network, "f", swap.pin_a, swap.pin_b)
        print(f"  {swap.pin_a} <-> {swap.pin_b}  {kind:15s}"
              f"  ground truth: {sorted(truth)}")
        rewired = swapped_copy(network, swap)
        assert networks_equivalent(network, rewired), "swap broke the circuit!"
    print("\nevery swap verified function-preserving")


if __name__ == "__main__":
    main()
