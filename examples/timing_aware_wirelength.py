#!/usr/bin/env python3
"""Timing-aware wirelength recovery: shorter wires, delay guaranteed.

The timing-blind Section-5 polish accepts any symmetric swap that
shortens estimated wiring — including swaps that stretch a wire on the
critical path.  The timing-aware polish (the Table-1 default since
``wl_passes=1``) prices every candidate twice: its HPWL delta against
the vectorized wirelength engine *and* its projected slack
neighborhood against the incremental STA engine
(``TimingEngine.project_swap_slacks``).  A swap is committed only when
the wiring improves and every projected slack stays inside the guard
band — so at the default margin of 0.0 the re-timed delay can never
get worse than the netlist the polish started from.

This demo runs both variants from the same placed k2-style control
benchmark and prints before/after HPWL and critical delay.

Run:  python examples/timing_aware_wirelength.py
"""

from repro import (
    build_benchmark,
    default_library,
    map_network,
    networks_equivalent,
    place,
    script_rugged,
)
from repro.rapids import reduce_wirelength
from repro.timing.sta import TimingEngine


def polish(reference, placement, library, timing_aware, slack_margin=0.0):
    network = reference.copy()
    trial = placement.copy()
    timing_engine = None
    if timing_aware:
        timing_engine = TimingEngine(network, trial, library)
        timing_engine.analyze()
    result = reduce_wirelength(
        network, trial,
        timing_engine=timing_engine, slack_margin=slack_margin,
    )
    retimed = TimingEngine(network, trial, library)
    retimed.analyze()
    assert networks_equivalent(reference, network)
    return result, retimed.max_delay


def main() -> None:
    library = default_library()
    network = build_benchmark("k2", scale=0.6)
    script_rugged(network)
    map_network(network, library)
    placement = place(network, library, seed=0, anneal_moves=4000)

    baseline = TimingEngine(network, placement, library)
    baseline.analyze()
    print(f"k2-style control logic: {len(network)} gates, "
          f"critical delay {baseline.max_delay:.4f} ns")

    blind, blind_delay = polish(network, placement, library,
                                timing_aware=False)
    aware, aware_delay = polish(network, placement, library,
                                timing_aware=True)

    print("\n                 HPWL (um)          delay (ns)")
    print(f"  before      {blind.initial_hpwl:>10.0f}      "
          f"{baseline.max_delay:>12.4f}")
    print(f"  blind       {blind.final_hpwl:>10.0f}      "
          f"{blind_delay:>12.4f}   "
          f"({blind.swaps_applied}+{blind.cross_swaps_applied} cross)")
    print(f"  timing-aware{aware.final_hpwl:>10.0f}      "
          f"{aware_delay:>12.4f}   "
          f"({aware.swaps_applied}+{aware.cross_swaps_applied} cross, "
          f"{aware.timing_rejected} slack-rejected)")

    assert aware_delay <= baseline.max_delay + 1e-9, (
        "the margin-0 guard band guarantees this"
    )
    print("\nthe timing-aware polish recovered "
          f"{aware.improvement_percent:.1f}% of wirelength without "
          "giving back a picosecond of delay "
          f"(projection drift {aware.projection_drift:.2e} ns)")
    if blind_delay > baseline.max_delay + 1e-9:
        print(f"the blind polish spent "
              f"{1000 * (blind_delay - baseline.max_delay):.1f} ps of "
              "delay for its extra "
              f"{blind.final_hpwl - aware.final_hpwl:+.0f} um")


if __name__ == "__main__":
    main()
