#!/usr/bin/env python3
"""Easy redundancy detection during supergate extraction (Fig. 1).

Constructs both Fig. 1 situations — conflicting and agreeing backward
implication at a fanout stem — shows that extraction flags them, proves
them untestable with the ATPG engine (the paper's theoretical
justification), and removes one with a verified rewrite.  Then runs the
detector over a generated benchmark with injected ISCAS-style
redundancies.

Run:  python examples/redundancy_removal.py
"""

from repro import NetworkBuilder, build_benchmark, networks_equivalent
from repro.atpg import prove_branch_redundant
from repro.network import Pin
from repro.symmetry import find_easy_redundancies, remove_redundancy
from repro.symmetry.redundancy import redundancy_counts
from repro.synth import script_rugged
from repro.suite.redundant import inject_redundant_wires


def agreement_case() -> None:
    # Fig. 1b flavour: h = AND(g, x) with g = AND(x, y): forcing h=1
    # implies g=1 and x=1, and g=1 implies x=1 again - the stem x is
    # reached twice with the same value, so one branch is s-a-1
    # untestable and the wire x -> h is redundant.
    builder = NetworkBuilder("fig1b")
    x, y, z = builder.inputs(3)
    g = builder.and_(x, y, name="g")
    h = builder.and_(g, x, name="h")
    out = builder.or_(h, z, name="out")
    builder.output(out)
    network = builder.build()

    events = find_easy_redundancies(network)
    print("Fig. 1b events:", [(e.root, e.stem, e.kind) for e in events])
    agreement = next(e for e in events if e.kind == "agreement")
    assert agreement.stem == x

    # paper's justification: the branch is untestable (ATPG proof)
    proof = prove_branch_redundant(network, Pin("h", 1), stuck_at=1)
    print(f"ATPG proves branch {Pin('h', 1)} s-a-1 untestable: {proof}")

    reference = network.copy()
    removed = remove_redundancy(network, agreement)
    print(f"verified removal applied: {removed}")
    assert networks_equivalent(reference, network)
    print("function preserved after removal\n")


def benchmark_census() -> None:
    network = build_benchmark("c2670", scale=0.3)
    script_rugged(network)
    injected = inject_redundant_wires(network, count=8, seed=1)
    events = find_easy_redundancies(network)
    counts = redundancy_counts(events)
    print(f"c2670-style interface: injected {injected} redundant wires")
    print(f"extraction found: {counts}")
    # try verified removal on the first few agreements
    removed = 0
    for event in events:
        if event.kind != "agreement":
            continue
        reference = network.copy()
        if remove_redundancy(network, event):
            assert networks_equivalent(reference, network)
            removed += 1
        if removed >= 3:
            break
    print(f"verified removals committed: {removed}")


if __name__ == "__main__":
    agreement_case()
    benchmark_census()
