#!/usr/bin/env python3
"""Post-placement wirelength reduction (Section 5, use (1)).

Generates the k2-like PLA control benchmark, maps and places it, then
lets the rewiring engine exchange symmetric signals so wires get
shorter — without moving a single placed cell.  Also demonstrates a
cross-supergate fanin-group swap (Theorem 2) on a constructed example.

This demo runs the polish on its own, timing-blind.  In the Table-1
flow the polish now runs *by default* (``wl_passes=1``) in its
timing-aware form: every swap is additionally gated on its projected
slack neighborhood, so wirelength recovery never degrades the
re-timed delay — see ``examples/timing_aware_wirelength.py``.

Run:  python examples/wirelength_rewiring.py
"""

from repro import (
    NetworkBuilder,
    build_benchmark,
    default_library,
    extract_supergates,
    map_network,
    networks_equivalent,
    place,
    script_rugged,
    total_hpwl,
)
from repro.rapids import reduce_wirelength
from repro.place import perturbation
from repro.symmetry import apply_cross_swap, find_cross_swaps


def wirelength_demo() -> None:
    library = default_library()
    network = build_benchmark("k2", scale=0.6)
    script_rugged(network)
    map_network(network, library)
    placement = place(network, library, seed=0, anneal_moves=4000)
    reference = network.copy()
    placement_before = placement.copy()

    result = reduce_wirelength(network, placement)  # batched engine path
    print(f"k2-style control logic: {len(network)} gates")
    print(f"  HPWL {result.initial_hpwl:.0f} -> {result.final_hpwl:.0f} um "
          f"({result.improvement_percent:+.1f}%) with "
          f"{result.swaps_applied} swaps + "
          f"{result.cross_swaps_applied} cross exchanges in "
          f"{result.passes} passes "
          f"({result.candidates_scored} candidates priced, "
          f"zero trial mutations)")
    audit = perturbation(placement_before, placement)
    print(f"  cells moved: {audit['moved_cells']:.0f}, "
          f"added: {audit['added_cells']:.0f} (placement untouched)")
    assert networks_equivalent(reference, network)
    print("  function preserved")


def cross_supergate_demo() -> None:
    # Fig. 3 flavour: f = OR(AND(a,b,c), AND(d,e,g)) — the two AND
    # supergates have symmetric outputs, so their fanin groups are
    # exchangeable while both gates stay put.
    builder = NetworkBuilder("fig3")
    a, b, c, d, e, g = builder.inputs(6)
    sg1 = builder.and_(a, b, c, name="sg1")
    sg2 = builder.and_(d, e, g, name="sg2")
    f = builder.or_(sg1, sg2, name="f")
    builder.output(f)
    network = builder.build()
    reference = network.copy()

    sgn = extract_supergates(network)
    crosses = find_cross_swaps(sgn)
    print(f"\ncross-supergate candidates: {len(crosses)}")
    cross = crosses[0]
    print(f"  exchanging fanins of {cross.sg1_root} and {cross.sg2_root}"
          f" (output inverters needed: {cross.needs_output_inverters})")
    apply_cross_swap(network, sgn, cross)
    print(f"  sg1 fanins now: {network.gate('sg1').fanins}")
    print(f"  sg2 fanins now: {network.gate('sg2').fanins}")
    assert networks_equivalent(reference, network)
    print("  function preserved")


if __name__ == "__main__":
    wirelength_demo()
    cross_supergate_demo()
