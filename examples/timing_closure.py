#!/usr/bin/env python3
"""Timing closure after placement: the full RAPIDS story (Section 5-6).

Runs the complete flow on the alu4 benchmark — synthesize, map, size
against wire-load estimates, place — then compares the three
post-placement optimizers of Table 1 (gsg rewiring, GS sizing, the
gsg+GS combination) on identical starting points, reporting delay,
area, runtime and placement perturbation, and printing the critical
path before and after.

Run:  python examples/timing_closure.py
"""

from repro import FlowConfig, TimingEngine, default_library, run_rapids
from repro.suite import prepare_benchmark


def main() -> None:
    library = default_library()
    config = FlowConfig(scale=0.4, check_equivalence=True)
    outcome = prepare_benchmark("alu4", config, library)
    network, placement = outcome.network, outcome.placement

    print(f"alu4 (scale {outcome.scale}): {len(network)} gates, "
          f"depth {network.depth()}, HPWL {outcome.hpwl:.0f} um")
    print(f"initial critical path delay: {outcome.initial_delay:.3f} ns")

    engine = TimingEngine(network, placement, library)
    engine.analyze()
    path = engine.critical_path()
    print(f"critical path ({len(path)} stages), last five:")
    for point in path[-5:]:
        print(f"  {point.net:24s} arrival {point.arrival:.3f} ns")

    for mode in ("gsg", "gs", "gsg_gs"):
        trial_net = network.copy()
        trial_place = placement.copy()
        result = run_rapids(
            trial_net, trial_place, library, mode=mode,
            check_equivalence=True,
        )
        audit = result.perturbation
        print(
            f"\n{mode}: {result.optimize.initial_delay:.3f} -> "
            f"{result.optimize.final_delay:.3f} ns "
            f"({result.improvement_percent:+.1f}%)"
        )
        print(f"  area {result.area_delta_percent:+.1f}%, "
              f"{result.optimize.moves_applied} moves, "
              f"{result.runtime_seconds:.1f} s")
        print(f"  placement: {audit['moved_cells']:.0f} cells moved, "
              f"{audit['added_cells']:.0f} inverters added, "
              f"{audit['removed_cells']:.0f} removed")
        print(f"  functionally equivalent: {result.equivalent}")
        assert result.equivalent


if __name__ == "__main__":
    main()
