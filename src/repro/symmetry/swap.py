"""Swappable-pin identification and application (Section 4 of the paper).

Two in-pins covered by the same generalized implication supergate whose
root paths do not properly contain each other are swappable (Lemma 6):

* both and-or-reachable: *non-inverting* swappable when their implied
  values agree, *inverting* swappable when they differ (Lemma 7);
* both xor-reachable: both kinds at once (Lemma 8).

Non-inverting swaps exchange the two driving nets; inverting swaps
route each driver through an inverter (Definition 3), reusing existing
inverters where possible so inverter pairs cancel.  Either way the
placement is untouched — the paper's central selling point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..network.gatetype import GateType
from ..network.netlist import Network, Pin
from ..network.transform import swap_inverting, swap_noninverting
from .supergate import SgClass, Supergate, SupergateNetwork


@dataclass(frozen=True)
class PinSwap:
    """A candidate rewiring move: exchange the drivers of two pins."""

    root: str
    pin_a: Pin
    pin_b: Pin
    inverting: bool

    def describe(self, network: Network) -> str:
        """Human-readable one-liner for logs and reports."""
        kind = "inverting" if self.inverting else "non-inverting"
        net_a = network.fanin_net(self.pin_a)
        net_b = network.fanin_net(self.pin_b)
        return (
            f"{kind} swap {self.pin_a}({net_a}) <-> {self.pin_b}({net_b}) "
            f"in supergate {self.root}"
        )

    def footprint(self, network: Network) -> set[str]:
        """Every net whose timing applying this swap can change.

        Non-inverting swaps touch the two driving nets and the two
        swapped gates' output nets.  Inverting swaps additionally
        involve the inverter-reuse candidates of
        :func:`~repro.network.transform.complement_net`: an existing
        inverter of either driver (its load grows) or, when the driver
        itself is an inverter, the net it taps.  Batch independence in
        the optimizer relies on this set being complete — two moves
        with disjoint footprints must not interact.
        """
        net_a = network.fanin_net(self.pin_a)
        net_b = network.fanin_net(self.pin_b)
        nets = {net_a, net_b, self.pin_a.gate, self.pin_b.gate}
        if self.inverting:
            for net in (net_a, net_b):
                driver = network.driver(net)
                if driver is not None and driver.gtype is GateType.INV:
                    nets.add(driver.fanins[0])
                for sink in network.fanout(net):
                    gate = network.gate(sink.gate)
                    if gate.gtype is GateType.INV:
                        nets.add(gate.name)
        return nets


def swap_kinds(sg: Supergate, pin_a: Pin, pin_b: Pin) -> set[str]:
    """Legal swap kinds for a pin pair: subset of {"non-inverting", "inverting"}.

    Empty when the pins are not swappable (identical pins, containment,
    or a class without swap freedom).
    """
    if pin_a == pin_b:
        return set()
    if pin_a not in sg.pin_values or pin_b not in sg.pin_values:
        return set()
    if sg.sg_class in (SgClass.CONST, SgClass.WIRE):
        return set()
    if sg.properly_contains(pin_a, pin_b):
        return set()
    if sg.sg_class is SgClass.XOR:
        return {"non-inverting", "inverting"}
    value_a = sg.pin_values[pin_a]
    value_b = sg.pin_values[pin_b]
    if value_a == value_b:
        return {"non-inverting"}
    return {"inverting"}


def is_swappable(sg: Supergate, pin_a: Pin, pin_b: Pin) -> bool:
    """True when the pins admit at least one swap kind."""
    return bool(swap_kinds(sg, pin_a, pin_b))


def enumerate_swaps(
    sg: Supergate,
    leaves_only: bool = True,
    include_inverting: bool = True,
    network: Network | None = None,
) -> Iterator[PinSwap]:
    """Yield all legal pin swaps within a supergate.

    With ``leaves_only`` (the default, what the timing optimizer uses)
    only fanin-leaf pins are paired: leaf swaps exchange *external*
    signals and leave the supergate's internal structure intact.
    Setting it ``False`` additionally yields internal-pin swaps, which
    restructure the fanout-free tree (the paper's logic-level-reduction
    move).

    With *network* given, pairs whose pins are currently driven by the
    same net are skipped: exchanging them is a no-op that callers would
    otherwise price and discard at delta 0.0.  The check reads the live
    fanins at yield time, so interleaved applies are respected.

    Ordering is deterministic and ``PYTHONHASHSEED``-independent: pins
    come from the supergate's leaf/pin lists (extraction order), never
    from set or dict-hash iteration — batched appliers rely on this.
    """
    if sg.sg_class in (SgClass.CONST, SgClass.WIRE):
        return
    if leaves_only:
        pins = [leaf.pin for leaf in sg.leaves]
    else:
        pins = sg.pins()
    for index_a in range(len(pins)):
        for index_b in range(index_a + 1, len(pins)):
            pin_a, pin_b = pins[index_a], pins[index_b]
            if network is not None and (
                network.fanin_net(pin_a) == network.fanin_net(pin_b)
            ):
                continue
            kinds = swap_kinds(sg, pin_a, pin_b)
            for kind in sorted(kinds):
                if kind == "inverting" and not include_inverting:
                    continue
                yield PinSwap(
                    root=sg.root,
                    pin_a=pin_a,
                    pin_b=pin_b,
                    inverting=(kind == "inverting"),
                )


def count_swappable_pairs(sgn: SupergateNetwork) -> dict[str, int]:
    """Census of swap freedom over a supergate network (Fig. 2 bench)."""
    counts = {"non-inverting": 0, "inverting": 0, "supergates_with_swaps": 0}
    for sg in sgn.supergates.values():
        found = False
        for swap in enumerate_swaps(sg, leaves_only=True):
            found = True
            if swap.inverting:
                counts["inverting"] += 1
            else:
                counts["non-inverting"] += 1
        if found:
            counts["supergates_with_swaps"] += 1
    return counts


def apply_swap(network: Network, swap: PinSwap) -> None:
    """Execute a swap on the network.

    The caller is responsible for re-extracting supergates afterwards
    (the move may insert inverters or restructure the covered tree).
    """
    if swap.inverting:
        swap_inverting(network, swap.pin_a, swap.pin_b)
    else:
        swap_noninverting(network, swap.pin_a, swap.pin_b)


def swapped_copy(network: Network, swap: PinSwap) -> Network:
    """Return a copy of the network with the swap applied (for what-if)."""
    trial = network.copy()
    apply_swap(trial, swap)
    return trial
