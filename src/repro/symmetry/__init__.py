"""The paper's core contribution: symmetry detection via supergates."""

from .reachability import (
    and_or_implied_value,
    and_or_reachable,
    reachability_class,
    xor_reachable,
)
from .supergate import (
    SgClass,
    SgLeaf,
    Supergate,
    SupergateNetwork,
    extract_supergates,
    grow_supergate,
    supergate_truth_table,
)
from .swap import (
    PinSwap,
    apply_swap,
    count_swappable_pairs,
    enumerate_swaps,
    is_swappable,
    swap_kinds,
    swapped_copy,
)
from .cross import (
    CrossSwap,
    apply_cross_swap,
    cross_swap_bindings,
    demorgan_box,
    find_cross_swaps,
)
from .redundancy import (
    Redundancy,
    find_easy_redundancies,
    redundancy_counts,
    remove_redundancy,
    unique_stems,
)
from .verify import (
    claimed_swaps_hold,
    cut_pin_function,
    pin_pair_symmetry,
    swap_preserves_outputs,
)

__all__ = [
    "CrossSwap",
    "PinSwap",
    "Redundancy",
    "SgClass",
    "SgLeaf",
    "Supergate",
    "SupergateNetwork",
    "and_or_implied_value",
    "and_or_reachable",
    "apply_cross_swap",
    "apply_swap",
    "claimed_swaps_hold",
    "count_swappable_pairs",
    "cross_swap_bindings",
    "cut_pin_function",
    "demorgan_box",
    "enumerate_swaps",
    "extract_supergates",
    "find_cross_swaps",
    "find_easy_redundancies",
    "grow_supergate",
    "is_swappable",
    "pin_pair_symmetry",
    "reachability_class",
    "redundancy_counts",
    "remove_redundancy",
    "supergate_truth_table",
    "swap_kinds",
    "swap_preserves_outputs",
    "swapped_copy",
    "unique_stems",
    "xor_reachable",
]
