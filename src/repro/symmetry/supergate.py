"""Generalized implication supergate (GISG) extraction — Definition 2.

The network is processed in reverse topological order.  Every gate not
yet covered becomes the root of a new supergate, which is grown by
direct backward implication (and-or class) or xor propagation (xor
class) through *fanout-free* gates.  Growth stops at multi-fanout nets,
primary inputs, constants and gates whose output value is not forcing;
the stopping pins are the supergate's fanin *leaves*.  The result is
the unique partition of the netlist into AND, OR and XOR supergates
with inverters and buffers absorbed at their pins that the paper calls
the *supergate network*.

The extraction is linear in network size: every gate is covered exactly
once and every pin visited a constant number of times — this is the
paper's Section 3 headline claim, benchmarked in
``benchmarks/bench_linear_scaling.py``.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from ..network.gatetype import (
    CONST_TYPES,
    GateType,
    WIRE_TYPES,
    base_type,
    eval_gate,
    forced_input_value,
    forcing_output_value,
)
from ..network.netlist import Network, Pin
from ..logic.implication import implies_inputs


class SgClass(enum.Enum):
    """Functional class of a supergate."""

    ANDOR = "and-or"
    XOR = "xor"
    WIRE = "wire"
    CONST = "const"


@dataclass(frozen=True)
class SgLeaf:
    """A fanin leaf of a supergate.

    ``pin`` is the in-pin where growth stopped, ``net`` the external net
    driving it, ``imp_value`` the value implied at the pin during
    backward implication (``None`` for xor-class supergates, which have
    no implied values), and ``depth`` the number of covered gates on the
    path from the pin to the root (1 = pin of the root itself).
    """

    pin: Pin
    net: str
    imp_value: int | None
    depth: int


@dataclass
class Supergate:
    """One generalized implication supergate.

    ``covered`` lists the covered gate names, root first.  ``root_value``
    is the out-pin value of the root under the forcing assignment
    (and-or class only): when the root net carries ``root_value``, every
    covered pin carries its ``imp_value``.  ``pin_values`` maps *every*
    in-pin of every covered gate to its implied value; ``leaves`` is the
    boundary subset.  ``parent_pin`` records, for each covered non-root
    gate, the in-pin its output feeds — the tree edge used to compute
    root paths for the proper-containment test of Lemma 6.
    """

    root: str
    sg_class: SgClass
    root_value: int | None
    covered: list[str]
    leaves: list[SgLeaf]
    pin_values: dict[Pin, int | None]
    parent_pin: dict[str, Pin] = field(default_factory=dict)

    @property
    def is_trivial(self) -> bool:
        """True when the supergate covers a single gate (paper Section 3.2)."""
        return len(self.covered) <= 1

    @property
    def num_inputs(self) -> int:
        """Number of fanin leaves (column ``L`` reports the maximum)."""
        return len(self.leaves)

    def pins(self) -> list[Pin]:
        """All covered in-pins, usable as swap endpoints."""
        return list(self.pin_values.keys())

    def root_path(self, pin: Pin) -> list[Pin]:
        """Pins on the path from *pin* up to (a pin of) the root.

        The first element is *pin* itself; subsequent elements are the
        in-pins each intermediate covered gate drives.  ``(a -> p)`` of
        the paper.
        """
        if pin not in self.pin_values:
            raise KeyError(f"{pin} is not covered by supergate {self.root}")
        path = [pin]
        current_gate = pin.gate
        while current_gate != self.root:
            parent = self.parent_pin[current_gate]
            path.append(parent)
            current_gate = parent.gate
        return path

    def properly_contains(self, pin_a: Pin, pin_b: Pin) -> bool:
        """True when one pin's root path properly contains the other's."""
        if pin_a == pin_b:
            return False
        return pin_b in self.root_path(pin_a) or pin_a in self.root_path(pin_b)

    def depth_of(self, pin: Pin) -> int:
        """Number of covered gates between *pin* and the root (>= 1)."""
        return len(self.root_path(pin))


@dataclass
class SupergateNetwork:
    """The supergate partition of a network (Definition 2's by-product)."""

    network: Network
    supergates: dict[str, Supergate]
    owner: dict[str, str]
    network_version: int

    def supergate_of(self, gate_name: str) -> Supergate:
        """Supergate covering the given gate."""
        return self.supergates[self.owner[gate_name]]

    def nontrivial(self) -> list[Supergate]:
        """Supergates covering more than one gate, in root-name order.

        The order is canonical on purpose: dict insertion order differs
        between a fresh extraction and an incrementally refreshed cache
        (regrown supergates append at the end), and downstream site
        enumeration derives trajectory-relevant ordering from this
        list.  Sorting by root makes the trajectory a function of the
        netlist alone — a requirement for checkpoint resume, which
        re-extracts from scratch.
        """
        return sorted(
            (sg for sg in self.supergates.values() if not sg.is_trivial),
            key=lambda sg: sg.root,
        )

    def coverage(self) -> float:
        """Fraction of gates covered by non-trivial supergates (column 12)."""
        total = len(self.network)
        if total == 0:
            return 0.0
        covered = sum(
            len(sg.covered) for sg in self.supergates.values()
            if not sg.is_trivial
        )
        return covered / total

    def max_supergate_inputs(self) -> int:
        """Largest number of leaves over all supergates (column ``L``)."""
        return max(
            (sg.num_inputs for sg in self.supergates.values()), default=0
        )

    def stats(self) -> dict[str, float]:
        """Summary statistics for reports and Table 1."""
        by_class: dict[str, int] = {}
        for sg in self.supergates.values():
            by_class[sg.sg_class.value] = by_class.get(sg.sg_class.value, 0) + 1
        return {
            "supergates": len(self.supergates),
            "nontrivial": len(self.nontrivial()),
            "coverage": self.coverage(),
            "max_inputs": self.max_supergate_inputs(),
            **{f"class_{key}": val for key, val in sorted(by_class.items())},
        }

    def is_stale(self) -> bool:
        """True when the network changed since extraction."""
        return self.network.version != self.network_version


def extract_supergates(network: Network) -> SupergateNetwork:
    """Partition *network* into generalized implication supergates.

    Gates are processed in reverse topological order; every gate not
    covered by an earlier supergate roots a new one (primary outputs and
    multi-fanout stems always end up as roots because coverage never
    crosses them).
    """
    owner: dict[str, str] = {}
    supergates: dict[str, Supergate] = {}
    for name in reversed(network.topo_order()):
        if name in owner:
            continue
        sg = grow_supergate(network, name)
        for covered_name in sg.covered:
            owner[covered_name] = name
        supergates[name] = sg
    return SupergateNetwork(
        network=network,
        supergates=supergates,
        owner=owner,
        network_version=network.version,
    )


def supergate_content_hash(network: Network, sg: Supergate) -> str:
    """Name-free structural digest of a supergate.

    Two supergates hash equal exactly when they are pin-for-pin
    isomorphic: gate names are replaced by their position in
    ``covered`` (root = 0), and the class, root value, per-gate types,
    tree edges, leaves and pin-value assignment are folded in covered /
    recorded order.  Functional derivations — in particular
    :func:`supergate_truth_table`, whose result depends only on this
    structure — can therefore be memoized against the digest
    (:class:`repro.symmetry.verify.TruthTableMemo`) and shared across
    every structurally equivalent region coloring discovers.
    ``PYTHONHASHSEED``-independent by construction.
    """
    index = {name: rel for rel, name in enumerate(sg.covered)}
    h = hashlib.blake2b(digest_size=16)

    def put(*parts: object) -> None:
        for part in parts:
            h.update(str(part).encode())
            h.update(b"\x00")

    put("sg", sg.sg_class.value, sg.root_value)
    for name in sg.covered:
        parent = sg.parent_pin.get(name)
        put(
            network.gate(name).gtype.name,
            "-" if parent is None else index[parent.gate],
            "-" if parent is None else parent.index,
        )
    put("leaves")
    for leaf in sg.leaves:
        put(index[leaf.pin.gate], leaf.pin.index, leaf.imp_value, leaf.depth)
    put("pins")
    for pin, value in sg.pin_values.items():
        put(index[pin.gate], pin.index, value)
    return h.hexdigest()


def supergate_truth_table(
    network: Network, sg: Supergate, backend: str = "auto"
) -> tuple[list[Pin], int]:
    """Truth table of a supergate's root over its own fanin leaves.

    Every leaf pin is cut and driven by a fresh variable (in leaf
    order); the returned word is the root function over those
    variables, computed by one exhaustive sweep of the compiled
    simulation engine.  For an and-or supergate this is the canonical
    "root equals ``root_value`` iff every leaf equals its ``imp_value``"
    form, which the test suite asserts; supergate libraries and the
    cross-swap machinery use it as a functional fingerprint.

    Returns ``(leaf_pins, table)``; variable ``k`` of the table is the
    ``k``-th leaf.  Raises :class:`ValueError` for supergates too wide
    to enumerate exhaustively.
    """
    from ..logic.simcore import SimEngine
    from ..logic.simulate import extract_cone

    if len(sg.leaves) > 20:
        raise ValueError(
            f"supergate {sg.root} has {len(sg.leaves)} leaves; too wide "
            "for exhaustive truth-table extraction"
        )
    trial = network.copy()
    fresh: list[str] = []
    for number, leaf in enumerate(sg.leaves):
        var = trial.fresh_name(f"__leaf{number}")
        trial.add_input(var)
        trial.replace_fanin(leaf.pin, var)
        fresh.append(var)
    cone = extract_cone(trial, [sg.root])
    tables = SimEngine(cone, backend).truth_tables(
        support=fresh, nets=[sg.root]
    )
    return [leaf.pin for leaf in sg.leaves], tables[sg.root]


def grow_supergate(network: Network, root: str) -> Supergate:
    """Grow the maximal supergate rooted at gate *root*."""
    root_gate = network.gate(root)
    if root_gate.gtype in CONST_TYPES:
        return Supergate(
            root=root,
            sg_class=SgClass.CONST,
            root_value=1 if root_gate.gtype is GateType.CONST1 else 0,
            covered=[root],
            leaves=[],
            pin_values={},
        )
    covered = [root]
    parent_pin: dict[str, Pin] = {}
    # Phase A: absorb the fanout-free wire chain hanging off the root and
    # locate the first logic gate ("core") that fixes the class.
    chain: list[str] = []
    current = root
    core: str | None = None
    while True:
        gate = network.gate(current)
        if gate.gtype not in WIRE_TYPES:
            core = current
            break
        chain.append(current)
        net = gate.fanins[0]
        driver = network.driver(net)
        if (
            driver is None
            or driver.gtype in CONST_TYPES
            or network.fanout_degree(net) > 1
        ):
            break  # wire-only supergate
        covered.append(driver.name)
        parent_pin[driver.name] = Pin(current, 0)
        current = driver.name
    if core is None:
        return _wire_supergate(network, root, chain, parent_pin)
    core_gate = network.gate(core)
    if base_type(core_gate.gtype) is GateType.XOR:
        return _grow_xor(network, root, covered, parent_pin, core)
    return _grow_andor(network, root, covered, parent_pin, chain, core)


def _wire_supergate(
    network: Network,
    root: str,
    chain: list[str],
    parent_pin: dict[str, Pin],
) -> Supergate:
    """A chain of INV/BUF gates ending at a stem, constant or PI."""
    # Convention: root_value = 1; pin values follow the chain polarity.
    pin_values: dict[Pin, int | None] = {}
    value = 1
    for name in chain:
        gate = network.gate(name)
        if gate.gtype is GateType.INV:
            value = 1 - value
        pin_values[Pin(name, 0)] = value
    last = chain[-1]
    leaf_pin = Pin(last, 0)
    leaf = SgLeaf(
        pin=leaf_pin,
        net=network.gate(last).fanins[0],
        imp_value=pin_values[leaf_pin],
        depth=len(chain),
    )
    return Supergate(
        root=root,
        sg_class=SgClass.WIRE,
        root_value=1,
        covered=list(chain),
        leaves=[leaf],
        pin_values=pin_values,
        parent_pin=parent_pin,
    )


def _grow_andor(
    network: Network,
    root: str,
    covered: list[str],
    parent_pin: dict[str, Pin],
    chain: list[str],
    core: str,
) -> Supergate:
    core_gate = network.gate(core)
    core_out = forcing_output_value(core_gate.gtype)
    # Pin values along the wire chain: the core's out-pin value seen
    # through each wire gate (walk the chain bottom-up).
    pin_values: dict[Pin, int | None] = {}
    value = core_out
    for name in reversed(chain):
        pin_values[Pin(name, 0)] = value
        gate = network.gate(name)
        value = eval_gate(gate.gtype, [value], mask=1)
    root_value = value  # out-pin value at the root under the forcing assignment
    leaves: list[SgLeaf] = []
    seed = forced_input_value(core_gate.gtype)
    depth0 = len(chain) + 1
    stack: list[tuple[Pin, int, int]] = [
        (Pin(core, index), seed, depth0)
        for index in range(core_gate.arity())
    ]
    while stack:
        pin, pin_value, depth = stack.pop()
        pin_values[pin] = pin_value
        net = network.fanin_net(pin)
        driver = network.driver(net)
        stop = (
            driver is None
            or driver.gtype in CONST_TYPES
            or network.fanout_degree(net) > 1
        )
        forced = None if stop else implies_inputs(driver.gtype, pin_value)
        if stop or forced is None:
            leaves.append(
                SgLeaf(pin=pin, net=net, imp_value=pin_value, depth=depth)
            )
            continue
        covered.append(driver.name)
        parent_pin[driver.name] = pin
        for index in range(driver.arity()):
            stack.append((Pin(driver.name, index), forced, depth + 1))
    return Supergate(
        root=root,
        sg_class=SgClass.ANDOR,
        root_value=root_value,
        covered=covered,
        leaves=leaves,
        pin_values=pin_values,
        parent_pin=parent_pin,
    )


def _grow_xor(
    network: Network,
    root: str,
    covered: list[str],
    parent_pin: dict[str, Pin],
    core: str,
) -> Supergate:
    from ..network.gatetype import XOR_TYPES

    pin_values: dict[Pin, int | None] = {}
    for name in covered:
        if name == core:
            continue
        gate = network.gate(name)
        for index in range(gate.arity()):
            pin_values[Pin(name, index)] = None
    leaves: list[SgLeaf] = []
    allowed = XOR_TYPES | WIRE_TYPES
    core_gate = network.gate(core)
    depth0 = len(covered)  # root + wire chain gates traversed so far
    stack: list[tuple[Pin, int]] = [
        (Pin(core, index), depth0) for index in range(core_gate.arity())
    ]
    while stack:
        pin, depth = stack.pop()
        pin_values[pin] = None
        net = network.fanin_net(pin)
        driver = network.driver(net)
        stop = (
            driver is None
            or driver.gtype in CONST_TYPES
            or network.fanout_degree(net) > 1
            or driver.gtype not in allowed
        )
        if stop:
            leaves.append(
                SgLeaf(pin=pin, net=net, imp_value=None, depth=depth)
            )
            continue
        covered.append(driver.name)
        parent_pin[driver.name] = pin
        for index in range(driver.arity()):
            stack.append((Pin(driver.name, index), depth + 1))
    return Supergate(
        root=root,
        sg_class=SgClass.XOR,
        root_value=None,
        covered=covered,
        leaves=leaves,
        pin_values=pin_values,
        parent_pin=parent_pin,
    )
