"""Definition-level reachability predicates (Definition 1 of the paper).

``pi`` is *and-or-reachable* from gate ``gj`` if ``pi`` can be inferred
a logic value by direct backward implication when ``gj``'s out-pin is
set to the value produced with every input non-controlling (``ncv`` in
the paper's AND/OR/XOR/INV/BUF type system; generalized here to the
inverted types via :func:`forcing_output_value`).  ``pi`` is
*xor-reachable* from ``gj`` if every gate on the path from ``gj`` down
to ``pi`` — including ``gj`` — is XOR, XNOR, INV or BUF.

Both predicates are evaluated over *fanout-free* paths: descent stops
at multi-fanout nets, exactly like supergate growth.  These standalone
implementations deliberately mirror the definitions rather than the
extraction code so the two can cross-validate each other in tests
(Theorem 1).
"""

from __future__ import annotations

from ..network.gatetype import (
    CONST_TYPES,
    GateType,
    WIRE_TYPES,
    XOR_TYPES,
    base_type,
    forcing_output_value,
)
from ..network.netlist import Network, Pin
from ..logic.implication import implies_inputs


def _root_forcing_value(network: Network, root: str) -> int | None:
    """Out-pin value at *root* under the forcing assignment.

    Descends the fanout-free wire chain below *root* to the first
    logic gate (the core); when the core is and-or class, its forcing
    output value is propagated back up through the wire chain to the
    root.  ``None`` when the core is XOR-class or the chain dead-ends
    before reaching logic.
    """
    from ..network.gatetype import eval_gate

    chain: list[GateType] = []
    current = root
    while True:
        gate = network.gate(current)
        if gate.gtype not in WIRE_TYPES:
            if base_type(gate.gtype) is GateType.XOR:
                return None
            value = forcing_output_value(gate.gtype)
            if value is None:
                return None
            for wire_type in reversed(chain):
                value = eval_gate(wire_type, [value], mask=1)
            return value
        chain.append(gate.gtype)
        net = gate.fanins[0]
        driver = network.driver(net)
        if (
            driver is None
            or driver.gtype in CONST_TYPES
            or network.fanout_degree(net) > 1
        ):
            return None
        current = driver.name


def and_or_implied_value(
    network: Network, pin: Pin, root: str
) -> int | None:
    """Implied value at *pin* when *root* takes its forcing value.

    Returns ``None`` when *pin* is not and-or-reachable from *root*
    along fanout-free paths.  This is ``imp_value(p)`` of the paper.
    """
    value = _root_forcing_value(network, root)
    if value is None:
        return None
    frontier: list[tuple[str, int]] = [(root, value)]
    while frontier:
        name, out_value = frontier.pop()
        gate = network.gate(name)
        forced = implies_inputs(gate.gtype, out_value)
        if forced is None:
            continue
        for index, fanin in enumerate(gate.fanins):
            if Pin(name, index) == pin:
                return forced
            driver = network.driver(fanin)
            if (
                driver is None
                or driver.gtype in CONST_TYPES
                or network.fanout_degree(fanin) > 1
            ):
                continue
            frontier.append((driver.name, forced))
    return None


def and_or_reachable(network: Network, pin: Pin, root: str) -> bool:
    """True when *pin* is and-or-reachable from *root* (Definition 1)."""
    return and_or_implied_value(network, pin, root) is not None


def xor_reachable(network: Network, pin: Pin, root: str) -> bool:
    """True when *pin* sits in *root*'s xor-class region.

    Every gate on the path from *root* down to *pin* must be XOR, XNOR,
    INV or BUF (Definition 1) *and* the region must actually contain an
    XOR-class gate: a pure INV/BUF chain has no class of its own — it
    adopts the class of the first logic gate below it, exactly as
    supergate growth does.  This keeps the two reachability kinds
    mutually exclusive.
    """
    allowed = XOR_TYPES | WIRE_TYPES
    # descend the wire chain; pins on it belong to the core's class
    chain_pins: list[Pin] = []
    current = root
    while True:
        gate = network.gate(current)
        if gate.gtype not in WIRE_TYPES:
            core = current
            break
        chain_pins.append(Pin(current, 0))
        net = gate.fanins[0]
        driver = network.driver(net)
        if (
            driver is None
            or driver.gtype in CONST_TYPES
            or network.fanout_degree(net) > 1
        ):
            return False  # wire-only region: neither class
        current = driver.name
    if base_type(network.gate(core).gtype) is not GateType.XOR:
        return False
    if pin in chain_pins:
        return True
    frontier = [core]
    while frontier:
        name = frontier.pop()
        gate = network.gate(name)
        if gate.gtype not in allowed:
            continue
        for index, fanin in enumerate(gate.fanins):
            if Pin(name, index) == pin:
                return True
            driver = network.driver(fanin)
            if (
                driver is None
                or driver.gtype in CONST_TYPES
                or network.fanout_degree(fanin) > 1
            ):
                continue
            frontier.append(driver.name)
    return False


def reachability_class(
    network: Network, pin: Pin, root: str
) -> str:
    """Classify *pin* against *root*: ``"and-or"``, ``"xor"`` or ``"none"``.

    The two reachability kinds are mutually exclusive (the paper notes
    this follows from XOR having no controlling value); the test suite
    asserts the exclusivity on random networks.
    """
    if and_or_reachable(network, pin, root):
        return "and-or"
    if xor_reachable(network, pin, root):
        return "xor"
    return "none"
