"""Cross-supergate swapping (Section 4.2: Definition 4 and Theorem 2).

When the outputs of two and-or supergates ``SG1`` and ``SG2`` with the
same number of fanins are symmetric — i.e. they feed swappable pins of
a common parent supergate — the *fanin groups* of the two supergates
can be exchanged under DeMorgan transformation.  The physical gates of
both supergates stay exactly where the placer put them; only input
wires (and possibly polarity inverters) move.

Implementation note: the canonical form of an and-or supergate is
"root equals ``root_value`` iff every leaf equals its ``imp_value``",
i.e. an AND of leaf literals, complemented when ``root_value`` is 0.
Re-binding the leaves of ``SG1`` to the nets that fed ``SG2`` (with an
inverter wherever the two leaf polarities disagree) therefore makes
``SG1`` compute exactly ``SG2``'s old function when the two root
polarities agree — the inverter-cancelled residue of applying
Definition 4 to both supergates.  When the polarities disagree, output
inverters restore the balance; which combination is legal follows from
whether the parent pins are non-inverting or inverting swappable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.gatetype import GateType
from ..network.netlist import Network, NetworkError, Pin
from .supergate import SgClass, Supergate, SupergateNetwork
from .swap import swap_kinds


@dataclass(frozen=True)
class CrossSwap:
    """A candidate fanin-group exchange between two supergates."""

    parent_root: str
    parent_pin_a: Pin
    parent_pin_b: Pin
    sg1_root: str
    sg2_root: str
    needs_output_inverters: bool


def demorgan_box(network: Network, sg: Supergate) -> str:
    """Apply Definition 4 literally: invert all inputs and the output.

    Inverters are inserted at every fanin leaf of the supergate and an
    inverter is capped on the root; all former consumers of the root are
    retargeted to the new inverter, whose net name is returned.  The
    boxed region then computes the *dual* of its old function — this
    operator deliberately changes functionality; Theorem 2 composes two
    of them with a fanin-group exchange into a function-preserving
    whole.
    """
    if sg.sg_class is not SgClass.ANDOR:
        raise NetworkError("DeMorgan transform requires an and-or supergate")
    for leaf in sg.leaves:
        inv = network.fresh_name(f"{leaf.net}_dm")
        network.add_gate(inv, GateType.INV, [leaf.net])
        network.replace_fanin(leaf.pin, inv)
    cap = network.fresh_name(f"{sg.root}_dm")
    consumers = list(network.fanout(sg.root))
    network.add_gate(cap, GateType.INV, [sg.root])
    for pin in consumers:
        network.replace_fanin(pin, cap)
    if sg.root in network.outputs:
        network.replace_output(sg.root, cap)
    return cap


def find_cross_swaps(sgn: SupergateNetwork) -> list[CrossSwap]:
    """Enumerate legal cross-supergate fanin-group exchanges.

    Conditions (Theorem 2 plus implementation safety):

    * both candidate supergates are and-or class with equal leaf counts;
    * their roots each drive exactly one pin (rebinding a root that
      fans out elsewhere would corrupt the other consumers);
    * those pins belong to the same parent supergate and are swappable
      there (the "outputs are symmetric" premise).
    """
    network = sgn.network
    swaps: list[CrossSwap] = []
    # root-name order, not dict insertion order: a refreshed cache and
    # a fresh extraction insert supergates differently, and the swap
    # enumeration order must be a function of the netlist alone so a
    # checkpoint-resumed run enumerates identically (see
    # SupergateNetwork.nontrivial)
    for root in sorted(sgn.supergates):
        parent = sgn.supergates[root]
        if parent.sg_class in (SgClass.CONST, SgClass.WIRE):
            continue
        candidates: list[tuple[Pin, Supergate]] = []
        for leaf in parent.leaves:
            child = sgn.supergates.get(leaf.net)
            if child is None or child.sg_class is not SgClass.ANDOR:
                continue
            if network.fanout_degree(leaf.net) != 1:
                continue
            candidates.append((leaf.pin, child))
        for index_a in range(len(candidates)):
            for index_b in range(index_a + 1, len(candidates)):
                pin_a, sg1 = candidates[index_a]
                pin_b, sg2 = candidates[index_b]
                if sg1.num_inputs != sg2.num_inputs or sg1.num_inputs == 0:
                    continue
                kinds = swap_kinds(parent, pin_a, pin_b)
                if not kinds:
                    continue
                same_polarity = sg1.root_value == sg2.root_value
                if same_polarity and "non-inverting" in kinds:
                    needs_inv = False
                elif not same_polarity and "inverting" in kinds:
                    needs_inv = False
                else:
                    needs_inv = True
                swaps.append(
                    CrossSwap(
                        parent_root=parent.root,
                        parent_pin_a=pin_a,
                        parent_pin_b=pin_b,
                        sg1_root=sg1.root,
                        sg2_root=sg2.root,
                        needs_output_inverters=needs_inv,
                    )
                )
    return swaps


def cross_swap_bindings(
    sgn: SupergateNetwork, cross: CrossSwap
) -> list[tuple[Pin, str]] | None:
    """The exact pin rebinds an *inverter-free* cross swap would apply.

    Returns ``None`` when the exchange needs any polarity or output
    inverter (mismatched leaf pairs, or
    :attr:`CrossSwap.needs_output_inverters`) — those add cells, which
    wirelength-only rewiring never wants.  For the pure case the
    returned ``(pin, new_net)`` list is precisely what
    :func:`apply_cross_swap` will execute, so callers can price the
    move footprint-only (no mutation, no events) and trust the apply
    to match.
    """
    if cross.needs_output_inverters:
        return None
    sg1 = sgn.supergates[cross.sg1_root]
    sg2 = sgn.supergates[cross.sg2_root]
    bindings: list[tuple[Pin, str]] = []
    for leaf1, leaf2 in _pair_leaves(sg1, sg2):
        if leaf1.imp_value != leaf2.imp_value:
            return None
        bindings.append((leaf1.pin, leaf2.net))
        bindings.append((leaf2.pin, leaf1.net))
    return bindings


def apply_cross_swap(
    network: Network, sgn: SupergateNetwork, cross: CrossSwap
) -> None:
    """Exchange the fanin groups of the two supergates of *cross*.

    Leaves are paired so that equal-polarity pairs dominate (minimizing
    inserted inverters); mismatched pairs receive a polarity inverter.
    When :attr:`CrossSwap.needs_output_inverters` is set, an inverter is
    also inserted between each root and its parent pin.  The caller
    must re-extract supergates afterwards.
    """
    sg1 = sgn.supergates[cross.sg1_root]
    sg2 = sgn.supergates[cross.sg2_root]
    pairs = _pair_leaves(sg1, sg2)
    bindings: list[tuple[Pin, str, bool]] = []
    for leaf1, leaf2 in pairs:
        mismatch = leaf1.imp_value != leaf2.imp_value
        bindings.append((leaf1.pin, leaf2.net, mismatch))
        bindings.append((leaf2.pin, leaf1.net, mismatch))
    for pin, net, invert in bindings:
        if invert:
            _bind_inverted(network, pin, net)
        else:
            network.replace_fanin(pin, net)
    if cross.needs_output_inverters:
        for root, parent_pin in (
            (cross.sg1_root, cross.parent_pin_a),
            (cross.sg2_root, cross.parent_pin_b),
        ):
            cap = network.fresh_name(f"{root}_xinv")
            network.add_gate(cap, GateType.INV, [root])
            network.replace_fanin(parent_pin, cap)


def _pair_leaves(sg1: Supergate, sg2: Supergate):
    """Pair leaves of the two supergates, matching polarities greedily."""
    ones1 = [leaf for leaf in sg1.leaves if leaf.imp_value == 1]
    zeros1 = [leaf for leaf in sg1.leaves if leaf.imp_value != 1]
    ones2 = [leaf for leaf in sg2.leaves if leaf.imp_value == 1]
    zeros2 = [leaf for leaf in sg2.leaves if leaf.imp_value != 1]
    pairs = []
    while ones1 and ones2:
        pairs.append((ones1.pop(), ones2.pop()))
    while zeros1 and zeros2:
        pairs.append((zeros1.pop(), zeros2.pop()))
    rest1 = ones1 + zeros1
    rest2 = ones2 + zeros2
    pairs.extend(zip(rest1, rest2))
    return pairs


def _bind_inverted(network: Network, pin: Pin, net: str) -> None:
    """Connect the complement of *net* to *pin* with a fresh inverter.

    Unlike :func:`repro.network.transform.connect_inverted` this never
    reuses a sibling inverter: during a cross swap other pins are being
    rebound concurrently, so sharing could alias a gate whose own input
    is about to change.  Tapping the input of the *driving* inverter is
    safe (drivers are never rebound) and keeps inverter chains short.
    """
    driver = network.driver(net)
    if driver is not None and driver.gtype is GateType.INV:
        network.replace_fanin(pin, driver.fanins[0])
        return
    inv = network.fresh_name(f"{net}_xb")
    network.add_gate(inv, GateType.INV, [net])
    network.replace_fanin(pin, inv)
