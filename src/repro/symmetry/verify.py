"""Ground-truth validation of symmetry claims.

The detector of this package never looks at functions — it reasons
purely structurally (reachability).  These helpers re-derive the same
facts *functionally*, so tests can assert Theorem 1 / Lemmas 6-8 on
arbitrary networks: a claimed symmetric pin pair must be NES/ES of the
root's function when the two pins are cut and driven by fresh
variables, and an applied swap must leave every primary output's
function untouched.
"""

from __future__ import annotations

from ..network.netlist import Network, Pin
from ..logic.simcore import SimEngine
from ..logic.simulate import extract_cone
from ..logic.truthtable import is_es, is_nes
from .supergate import (
    Supergate,
    supergate_content_hash,
    supergate_truth_table,
)


def cut_pin_function(
    network: Network, root: str, pins: list[Pin]
) -> tuple[int, int, list[str]]:
    """Truth table of *root* with *pins* cut and fed by fresh variables.

    Returns ``(table, num_vars, support)``; the fresh variables occupy
    the *last* positions of the support (in the order of *pins*), so
    callers can index them directly.
    """
    trial = network.copy()
    fresh: list[str] = []
    for number, pin in enumerate(pins):
        var = trial.fresh_name(f"__cut{number}")
        trial.add_input(var)
        trial.replace_fanin(pin, var)
        fresh.append(var)
    cone = extract_cone(trial, [root])
    support = [pi for pi in cone.inputs if pi not in fresh] + fresh
    if len(support) > 20:
        raise ValueError(
            f"cut cone of {root} has {len(support)} inputs; too wide for "
            "exhaustive ground truth"
        )
    tables = SimEngine(cone).truth_tables(support=support, nets=[root])
    return tables[root], len(support), support


def pin_pair_symmetry(
    network: Network, root: str, pin_a: Pin, pin_b: Pin
) -> set[str]:
    """Functional symmetry kinds of two pins w.r.t. the *root* net.

    Returns a subset of ``{"nes", "es"}`` — the ground truth that
    structural swappability (Lemmas 7/8) must be a subset of.
    """
    table, num_vars, _ = cut_pin_function(network, root, [pin_a, pin_b])
    var_a, var_b = num_vars - 2, num_vars - 1
    kinds: set[str] = set()
    if is_nes(table, num_vars, var_a, var_b):
        kinds.add("nes")
    if is_es(table, num_vars, var_a, var_b):
        kinds.add("es")
    return kinds


class TruthTableMemo:
    """Per-pass truth-table cache keyed by supergate *structure*.

    :func:`~repro.symmetry.supergate.supergate_truth_table` cuts every
    leaf, extracts a cone and runs an exhaustive sweep — all of it a
    function of the supergate's name-free structure alone, so two
    structurally equivalent supergates (and, trivially, two candidates
    on *one* supergate) share the exact same table.  Verification
    passes previously recomputed it per candidate; routing calls
    through a memo keyed by
    (:func:`~repro.symmetry.supergate.supergate_content_hash`, width)
    computes each distinct structure once.  The memo is scoped to one
    verification pass: entries are only valid while the covered
    regions stay unmodified, so callers create a fresh instance per
    pass rather than sharing one across mutations.
    """

    def __init__(self, backend: str = "auto") -> None:
        self.backend = backend
        self.computed = 0
        self.hits = 0
        self._tables: dict[tuple[str, int], int] = {}

    def table(self, network: Network, sg: Supergate) -> tuple[list[Pin], int]:
        """``supergate_truth_table`` with structure-level memoization.

        Returns *sg*'s own leaf pins (instance-specific) and the cached
        table word (structure-specific): variable ``k`` is leaf ``k``.
        """
        key = (supergate_content_hash(network, sg), len(sg.leaves))
        cached = self._tables.get(key)
        if cached is None:
            _pins, cached = supergate_truth_table(
                network, sg, backend=self.backend
            )
            self._tables[key] = cached
            self.computed += 1
        else:
            self.hits += 1
        return [leaf.pin for leaf in sg.leaves], cached


def leaf_pair_symmetry(
    network: Network,
    sg: Supergate,
    pin_a: Pin,
    pin_b: Pin,
    memo: TruthTableMemo | None = None,
) -> set[str]:
    """Symmetry kinds of two *leaf* pins w.r.t. the supergate root.

    The leaf-variable truth table already is the root's function with
    every leaf cut, so the NES/ES checks reduce to two variable
    positions of one (memoizable) table — the per-supergate analogue
    of :func:`pin_pair_symmetry`, sharing tables across candidates and
    across structurally equivalent supergates through *memo*.
    """
    if memo is None:
        memo = TruthTableMemo()
    pins, table = memo.table(network, sg)
    var_a = pins.index(pin_a)
    var_b = pins.index(pin_b)
    num_vars = len(pins)
    kinds: set[str] = set()
    if is_nes(table, num_vars, var_a, var_b):
        kinds.add("nes")
    if is_es(table, num_vars, var_a, var_b):
        kinds.add("es")
    return kinds


def nets_functionally_equal(
    network: Network,
    net_a: str,
    net_b: str,
    exhaustive_limit: int = 14,
    rounds: int = 4,
    backend: str = "auto",
) -> bool:
    """Simulation check that two nets compute the same function.

    The gate for coloring's cross-supergate candidates
    (:func:`repro.symmetry.coloring.class_swap_candidates`): a shared
    cone of both nets is swept exhaustively when its support allows,
    with wide random rounds otherwise.  Exhaustive verdicts are exact;
    the random path is one-sided (it can only refute), matching the
    filter role — a surviving candidate is still committed under the
    batch-level ``networks_equivalent`` check.
    """
    if net_a == net_b:
        return True
    cone = extract_cone(network, [net_a, net_b])
    engine = SimEngine(cone, backend)
    try:
        if len(cone.inputs) <= exhaustive_limit:
            engine.set_exhaustive_patterns()
        else:
            engine.set_random_patterns(rounds=rounds)
        return engine.word(net_a) == engine.word(net_b)
    finally:
        engine.detach()


def swap_preserves_outputs(
    before: Network, after: Network, exhaustive_limit: int = 14,
    backend: str = "auto",
) -> bool:
    """Check that two networks compute identical primary outputs.

    Uses exhaustive simulation when the input count allows, random
    parallel patterns plus a BDD check otherwise — both swept by the
    compiled :class:`~repro.logic.simcore.SimEngine`.
    """
    if before.inputs != after.inputs or len(before.outputs) != len(
        after.outputs
    ):
        return False
    engine_before = SimEngine(before, backend)
    engine_after = SimEngine(after, backend)
    try:
        if len(before.inputs) <= exhaustive_limit:
            engine_before.set_exhaustive_patterns()
            engine_after.set_exhaustive_patterns(list(before.inputs))
            return (
                engine_before.output_words() == engine_after.output_words()
            )
        if engine_before.random_output_words(rounds=4) != (
            engine_after.random_output_words(rounds=4)
        ):
            return False
    finally:
        engine_before.detach()
        engine_after.detach()
    from ..verify.equiv import networks_equivalent

    return networks_equivalent(before, after, backend=backend)


def claimed_swaps_hold(network: Network, sg: Supergate) -> bool:
    """Exhaustively validate every enumerated swap of one supergate."""
    from .swap import enumerate_swaps, swapped_copy

    for swap in enumerate_swaps(sg, leaves_only=False):
        trial = swapped_copy(network, swap)
        if not swap_preserves_outputs(network, trial):
            return False
    return True
