"""Ground-truth validation of symmetry claims.

The detector of this package never looks at functions — it reasons
purely structurally (reachability).  These helpers re-derive the same
facts *functionally*, so tests can assert Theorem 1 / Lemmas 6-8 on
arbitrary networks: a claimed symmetric pin pair must be NES/ES of the
root's function when the two pins are cut and driven by fresh
variables, and an applied swap must leave every primary output's
function untouched.
"""

from __future__ import annotations

from ..network.netlist import Network, Pin
from ..logic.simcore import SimEngine
from ..logic.simulate import extract_cone
from ..logic.truthtable import is_es, is_nes
from .supergate import Supergate


def cut_pin_function(
    network: Network, root: str, pins: list[Pin]
) -> tuple[int, int, list[str]]:
    """Truth table of *root* with *pins* cut and fed by fresh variables.

    Returns ``(table, num_vars, support)``; the fresh variables occupy
    the *last* positions of the support (in the order of *pins*), so
    callers can index them directly.
    """
    trial = network.copy()
    fresh: list[str] = []
    for number, pin in enumerate(pins):
        var = trial.fresh_name(f"__cut{number}")
        trial.add_input(var)
        trial.replace_fanin(pin, var)
        fresh.append(var)
    cone = extract_cone(trial, [root])
    support = [pi for pi in cone.inputs if pi not in fresh] + fresh
    if len(support) > 20:
        raise ValueError(
            f"cut cone of {root} has {len(support)} inputs; too wide for "
            "exhaustive ground truth"
        )
    tables = SimEngine(cone).truth_tables(support=support, nets=[root])
    return tables[root], len(support), support


def pin_pair_symmetry(
    network: Network, root: str, pin_a: Pin, pin_b: Pin
) -> set[str]:
    """Functional symmetry kinds of two pins w.r.t. the *root* net.

    Returns a subset of ``{"nes", "es"}`` — the ground truth that
    structural swappability (Lemmas 7/8) must be a subset of.
    """
    table, num_vars, _ = cut_pin_function(network, root, [pin_a, pin_b])
    var_a, var_b = num_vars - 2, num_vars - 1
    kinds: set[str] = set()
    if is_nes(table, num_vars, var_a, var_b):
        kinds.add("nes")
    if is_es(table, num_vars, var_a, var_b):
        kinds.add("es")
    return kinds


def swap_preserves_outputs(
    before: Network, after: Network, exhaustive_limit: int = 14,
    backend: str = "auto",
) -> bool:
    """Check that two networks compute identical primary outputs.

    Uses exhaustive simulation when the input count allows, random
    parallel patterns plus a BDD check otherwise — both swept by the
    compiled :class:`~repro.logic.simcore.SimEngine`.
    """
    if before.inputs != after.inputs or len(before.outputs) != len(
        after.outputs
    ):
        return False
    engine_before = SimEngine(before, backend)
    engine_after = SimEngine(after, backend)
    try:
        if len(before.inputs) <= exhaustive_limit:
            engine_before.set_exhaustive_patterns()
            engine_after.set_exhaustive_patterns(list(before.inputs))
            return (
                engine_before.output_words() == engine_after.output_words()
            )
        if engine_before.random_output_words(rounds=4) != (
            engine_after.random_output_words(rounds=4)
        ):
            return False
    finally:
        engine_before.detach()
        engine_after.detach()
    from ..verify.equiv import networks_equivalent

    return networks_equivalent(before, after, backend=backend)


def claimed_swaps_hold(network: Network, sg: Supergate) -> bool:
    """Exhaustively validate every enumerated swap of one supergate."""
    from .swap import enumerate_swaps, swapped_copy

    for swap in enumerate_swaps(sg, leaves_only=False):
        trial = swapped_copy(network, swap)
        if not swap_preserves_outputs(network, trial):
            return False
    return True
