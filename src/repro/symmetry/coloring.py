"""Whole-netlist symmetry detection by iterated color refinement.

The paper finds symmetries one supergate at a time; the fibration-
symmetry literature (arXiv 2305.19367, arXiv 1908.10923) shows the
same input-tree equivalence classes fall out of an iterated coloring
of the whole graph in near-linear time.  This module runs that pass
over the shared SoA kernel arrays (:func:`repro.network.soa.get_soa`
— opcode/invert columns plus the fanin CSR) and produces three
coordinated partitions in one bottom-up sweep:

* **cone colors** — one digest per net, refined bottom-up from the
  fanin CSR: primary inputs seed with their own identity, every gate
  hashes ``(opcode, invert, sorted fanin colors)``.  Equal cone colors
  therefore certify *structurally identical* input trees over the same
  primary inputs — two class-mate nets compute the same function, so
  exchanging their consumers' wires anywhere in the netlist is
  function-preserving.  This is the cross-supergate candidate source
  the per-supergate walk cannot see.
* **shape colors** — one digest per gate, seeded anonymously (primary
  inputs, constants and multi-fanout stems collapse to one boundary
  token) and refined in *pin order* without sorting.  Equal shape
  colors certify that supergate growth from the two gates traverses
  pin-for-pin isomorphic regions, so one extraction can be grafted
  onto every class member (:func:`extract_supergates_colored`).
* **leaf symmetry classes** — the array-native mirror of the paper's
  supergate walk: gates are partitioned into implication regions in
  one reverse-topological sweep over the same arrays, and every
  boundary pin is classed by ``(region root, implied value)``.  Two
  distinct-net class mates are exactly a legal non-inverting swap;
  opposite implied values under one root are the inverting kind — the
  differential harness (``tests/test_coloring.py``) pins both claims
  to the simulation verifiers and asserts the per-supergate
  enumeration is rediscovered class-for-class.

:class:`NetlistColoring` keeps a coloring fresh across mutations: pin
rewires (``replace_fanin`` / ``swap_fanins``) are absorbed by an
incremental recoloring worklist that re-hashes only the touched
transitive fanout with early cutoff (the classic refinement update);
structural kinds fall back to a full recoloring, exactly like the SoA
kernel itself.  Leaf classes depend on region membership — which a
rewire *can* change (a swapped-in net may be absorbable where the old
one was not) — so they are rebuilt lazily from the repaired colors.

Everything here is ``PYTHONHASHSEED``-independent: digests come from
``hashlib`` and every iteration order is derived from array positions
or sorted names, never from set/dict hashing.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass

from ..logic.simcore.compiled import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_OR,
    OP_XOR,
    _OPCODE,
)
from ..network import events
from ..network.gatetype import CONST_TYPES
from ..network.netlist import Network, Pin
from ..network.soa import get_soa
from .supergate import (
    SgLeaf,
    Supergate,
    SupergateNetwork,
    grow_supergate,
)

#: Opt-in to the determinism lint (rule D of ``python -m tools.lint``).
__deterministic__ = True

_CONST_OPS = (OP_CONST0, OP_CONST1)

#: Structural kinds (plus the meta kinds) that invalidate the whole
#: coloring: index spaces shift, gates appear/disappear, IO bindings
#: move region boundaries.  Pin rewires are repaired incrementally.
_FULL_KINDS = frozenset({
    events.SET_FANINS,
    events.SET_GATE_TYPE,
    events.ADD_GATE,
    events.REMOVE_GATE,
    events.ADD_INPUT,
    events.ADD_OUTPUT,
    events.REPLACE_OUTPUT,
    events.RESTORE,
    events.UNKNOWN,
})


def _digest(*parts: str) -> str:
    """PYTHONHASHSEED-independent digest of an ordered token sequence."""
    h = hashlib.blake2b(digest_size=12)
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


@dataclass
class Coloring:
    """One fixpoint of the refinement over a network snapshot.

    All maps are name-keyed (nets and :class:`Pin` objects), so a
    coloring survives the index reshuffling of a later recompile and
    can be repaired in place by :class:`NetlistColoring`.
    """

    network_version: int
    #: net -> cone color (PI-identity-aware; equal = identical function)
    cone: dict[str, str]
    #: gate -> region-shape color (PI-anonymous, boundary-truncated,
    #: pin-order; equal = pin-isomorphic supergate growth)
    shape: dict[str, str]
    #: boundary pin -> (region root, implied value or "x" for xor)
    leaf_class: dict[Pin, "tuple[str, int | str]"]

    def net_classes(self) -> "list[tuple[str, list[str]]]":
        """Gate-driven nets grouped by cone color, classes of size >= 2.

        Deterministic: members sorted by name, classes by first member.
        Primary inputs are excluded — their colors are unique by
        construction, so they never have class mates.
        """
        groups: dict[str, list[str]] = {}
        for net in sorted(self.shape):
            groups.setdefault(self.cone[net], []).append(net)
        return sorted(
            ((digest, nets) for digest, nets in groups.items()
             if len(nets) > 1),
            key=lambda item: item[1][0],
        )

    def symmetry_classes(self) -> "list[tuple[tuple[str, int | str], list[Pin]]]":
        """Leaf pins grouped by ``(region root, tag)``, sorted.

        Every distinct-net pair inside one class is a claimed
        non-inverting symmetry; pairs across the 0/1 tags of one root
        are the inverting kind (xor regions carry the single tag
        ``"x"`` and admit both).  The differential suite verifies each
        claim by simulation.
        """
        groups: dict[tuple, list[Pin]] = {}
        for pin in sorted(self.leaf_class):
            groups.setdefault(self.leaf_class[pin], []).append(pin)
        return sorted(groups.items())


def color_network(network: Network) -> Coloring:
    """Run the full refinement over the network's SoA kernel arrays."""
    kernel = get_soa(network)
    compiled = kernel.sync()
    num_inputs = compiled.num_inputs
    num_gates = compiled.num_gates
    opcode = compiled.opcode
    invert = compiled.invert
    offset = compiled.fanin_offset
    flat = compiled.fanin_flat
    names = compiled.gate_names
    degree = _net_degrees(network, kernel, compiled)

    # cone colors: one topological sweep; position order IS topo order
    cone_ix: list[str] = [
        _digest("pi", name) for name in compiled.inputs
    ] + [""] * num_gates
    # shape colors share the sweep; "B" marks a growth boundary
    shape_ix: list[str] = [""] * num_gates
    for position in range(num_gates):
        op = opcode[position]
        inv = "1" if invert[position] else "0"
        if op in _CONST_OPS:
            cone_ix[num_inputs + position] = _digest("const", str(op))
            shape_ix[position] = _digest("shape", str(op), inv)
            continue
        children = flat[offset[position]:offset[position + 1]]
        cone_ix[num_inputs + position] = _digest(
            "cone", str(op), inv,
            *sorted(cone_ix[child] for child in children),
        )
        tokens = []
        for child in children:
            if (
                child < num_inputs
                or degree[child] > 1
                or opcode[child - num_inputs] in _CONST_OPS
            ):
                tokens.append("B")
            else:
                tokens.append(shape_ix[child - num_inputs])
        shape_ix[position] = _digest("shape", str(op), inv, *tokens)

    leaf_class = _leaf_classes(compiled, degree)
    cone = {name: cone_ix[index] for index, name in enumerate(compiled.inputs)}
    for position, name in enumerate(names):
        cone[name] = cone_ix[num_inputs + position]
    return Coloring(
        network_version=network.version,
        cone=cone,
        shape={
            name: shape_ix[position] for position, name in enumerate(names)
        },
        leaf_class=leaf_class,
    )


def _net_degrees(network: Network, kernel, compiled) -> list[int]:
    """Sink-pin count plus primary-output listings, per net index."""
    arrays = kernel.arrays()
    if arrays is not None:
        return (
            arrays["consumer_counts"] + arrays["po_counts"]
        ).tolist()
    degree = [0] * compiled.num_nets
    for index in compiled.fanin_flat:
        degree[index] += 1
    for index in compiled.po_index:
        degree[index] += 1
    return degree


def _leaf_classes(compiled, degree: list[int]) -> dict[Pin, tuple]:
    """Array-native implication regions: boundary pins -> (root, tag).

    Mirrors the paper's supergate growth (wire-chain resolution, and-or
    backward implication, xor propagation) over the flat arrays in one
    reverse-topological sweep — the structural facts (gate opcodes,
    fanout degrees) fully determine the partition, so the result must
    agree with :func:`~repro.symmetry.supergate.extract_supergates`
    leaf-for-leaf (the differential suite asserts it).
    """
    num_inputs = compiled.num_inputs
    num_gates = compiled.num_gates
    opcode = compiled.opcode
    invert = compiled.invert
    offset = compiled.fanin_offset
    flat = compiled.fanin_flat
    names = compiled.gate_names
    covered = [False] * num_gates
    leaf_class: dict[Pin, tuple] = {}

    def is_boundary(net: int) -> bool:
        return (
            net < num_inputs
            or degree[net] > 1
            or opcode[net - num_inputs] in _CONST_OPS
        )

    for root in range(num_gates - 1, -1, -1):
        if covered[root]:
            continue
        covered[root] = True
        if opcode[root] in _CONST_OPS:
            continue
        # resolve the fanout-free wire chain down to the class core
        core = root
        while opcode[core] == OP_BUF:
            child = flat[offset[core]]
            if is_boundary(child):
                core = -1  # wire-only region: a single leaf, no swaps
                break
            core = child - num_inputs
            covered[core] = True
        if core < 0:
            continue
        root_name = names[root]
        if opcode[core] == OP_XOR:
            stack = [
                (core, pin) for pin in
                range(offset[core + 1] - offset[core])
            ]
            while stack:
                gate, pin = stack.pop()
                child = flat[offset[gate] + pin]
                if is_boundary(child) or opcode[child - num_inputs] not in (
                    OP_XOR, OP_BUF
                ):
                    leaf_class[Pin(names[gate], pin)] = (root_name, "x")
                    continue
                driver = child - num_inputs
                covered[driver] = True
                stack.extend(
                    (driver, index) for index in
                    range(offset[driver + 1] - offset[driver])
                )
        else:
            seed = 1 if opcode[core] == OP_AND else 0
            stack = [
                (core, pin, seed) for pin in
                range(offset[core + 1] - offset[core])
            ]
            while stack:
                gate, pin, value = stack.pop()
                child = flat[offset[gate] + pin]
                if is_boundary(child):
                    leaf_class[Pin(names[gate], pin)] = (root_name, value)
                    continue
                driver = child - num_inputs
                base = value ^ (1 if invert[driver] else 0)
                op = opcode[driver]
                if op == OP_BUF:
                    implied = base
                elif op == OP_AND and base == 1:
                    implied = 1
                elif op == OP_OR and base == 0:
                    implied = 0
                else:
                    leaf_class[Pin(names[gate], pin)] = (root_name, value)
                    continue
                covered[driver] = True
                stack.extend(
                    (driver, index, implied) for index in
                    range(offset[driver + 1] - offset[driver])
                )
    return leaf_class


class NetlistColoring:
    """A coloring kept fresh across the mutation-event stream.

    ``replace_fanin`` / ``swap_fanins`` are absorbed incrementally: the
    rewired gates seed a worklist that re-hashes cone and shape colors
    through the transitive fanout, stopping as soon as a digest stops
    changing.  Leaf classes are invalidated by *any* rewire (the new
    driver may be absorbable where the old one was not) and rebuilt
    lazily from the arrays on the next :meth:`get`.  Structural kinds
    and untracked mutations fall back to a full recoloring.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.full_colorings = 0
        self.cone_repairs = 0
        self.nodes_recolored = 0
        self.region_rebuilds = 0
        self._coloring: Coloring | None = None
        self._stale = True
        self._regions_stale = False
        self._dirty: list[str] = []
        network.subscribe(self)

    def notify_network_event(self, kind: str, data: dict) -> None:
        if kind == events.REPLACE_FANIN:
            if not self._stale:
                self._dirty.append(data["pin"].gate)
                # the rewire changes both nets' fanout degrees, which
                # flips other consumers' boundary ("B") shape tokens —
                # their gates must re-hash too (a pin *swap* preserves
                # both degrees, so SWAP_FANINS needs no such seeding)
                for net in (data["old"], data["new"]):
                    for pin in self.network.fanout(net):
                        self._dirty.append(pin.gate)
                self._regions_stale = True
        elif kind == events.SWAP_FANINS:
            if not self._stale:
                self._dirty.append(data["pin_a"].gate)
                self._dirty.append(data["pin_b"].gate)
                self._regions_stale = True
        elif kind == events.SET_CELL:
            pass  # cell bindings never enter any color
        elif kind in _FULL_KINDS:
            self._stale = True
        else:
            self._stale = True

    def get(self) -> Coloring:
        """Current coloring, repaired or rebuilt as needed."""
        network = self.network
        coloring = self._coloring
        if (
            self._stale
            or coloring is None
            or (not self._dirty and not self._regions_stale
                and coloring.network_version != network.version)
        ):
            self._coloring = color_network(network)
            self.full_colorings += 1
            self._stale = False
            self._regions_stale = False
            self._dirty.clear()
            return self._coloring
        if self._dirty:
            self._repair(coloring)
        if self._regions_stale:
            kernel = get_soa(network)
            compiled = kernel.sync()
            coloring.leaf_class = _leaf_classes(
                compiled, _net_degrees(network, kernel, compiled)
            )
            self.region_rebuilds += 1
            self._regions_stale = False
        coloring.network_version = network.version
        return coloring

    def _repair(self, coloring: Coloring) -> None:
        """Re-hash the touched transitive fanout with early cutoff."""
        network = self.network
        queue = deque(sorted(set(self._dirty)))
        queued = set(queue)
        self._dirty.clear()
        self.cone_repairs += 1
        while queue:
            name = queue.popleft()
            queued.discard(name)
            if name not in network or network.is_input(name):
                continue
            new_cone, new_shape = self._recolor(network, coloring, name)
            if (
                new_cone == coloring.cone.get(name)
                and new_shape == coloring.shape.get(name)
            ):
                continue
            coloring.cone[name] = new_cone
            coloring.shape[name] = new_shape
            self.nodes_recolored += 1
            for pin in network.fanout(name):
                if pin.gate not in queued:
                    queued.add(pin.gate)
                    queue.append(pin.gate)

    @staticmethod
    def _recolor(
        network: Network, coloring: Coloring, name: str
    ) -> tuple[str, str]:
        """One gate's cone and shape digests from current child colors.

        Token-for-token the same formulas as :func:`color_network`, so
        a repaired coloring is digest-identical to a fresh pass.
        """
        gate = network.gate(name)
        op, inv_flag = _OPCODE[gate.gtype]
        inv = "1" if inv_flag else "0"
        if gate.gtype in CONST_TYPES:
            return _digest("const", str(op)), _digest("shape", str(op), inv)
        cone = _digest(
            "cone", str(op), inv,
            *sorted(coloring.cone[net] for net in gate.fanins),
        )
        tokens = []
        for net in gate.fanins:
            driver = network.driver(net)
            if (
                driver is None
                or driver.gtype in CONST_TYPES
                or network.fanout_degree(net) > 1
            ):
                tokens.append("B")
            else:
                tokens.append(coloring.shape[net])
        return cone, _digest("shape", str(op), inv, *tokens)


# ----------------------------------------------------------------------
# shape-color-deduplicated supergate extraction
# ----------------------------------------------------------------------
@dataclass
class _SupergateTemplate:
    """Name-free replay recipe for one grown supergate.

    Covered gates are numbered by their position in ``covered`` (root
    is 0); internal tree edges are recorded as ``(parent id, pin)``
    pairs, so instantiation resolves each gate by reading the live
    fanin wiring — no implication or gate evaluation re-runs.
    """

    sg_class: object
    root_value: int | None
    gtypes: list[object]
    parents: list[tuple[int, int] | None]
    leaves: list[tuple[int, int, int | None, int]]
    pin_values: list[tuple[int, int, int | None]]

    @classmethod
    def of(cls, network: Network, sg: Supergate) -> "_SupergateTemplate":
        index = {name: rel for rel, name in enumerate(sg.covered)}
        parents: list[tuple[int, int] | None] = [None] * len(sg.covered)
        for name, pin in sg.parent_pin.items():
            parents[index[name]] = (index[pin.gate], pin.index)
        return cls(
            sg_class=sg.sg_class,
            root_value=sg.root_value,
            gtypes=[network.gate(name).gtype for name in sg.covered],
            parents=parents,
            leaves=[
                (index[leaf.pin.gate], leaf.pin.index, leaf.imp_value,
                 leaf.depth)
                for leaf in sg.leaves
            ],
            pin_values=[
                (index[pin.gate], pin.index, value)
                for pin, value in sg.pin_values.items()
            ],
        )

    def instantiate(self, network: Network, root: str) -> Supergate | None:
        """Replay onto *root*, or ``None`` when the region differs.

        Validation is structural, not hash-trusting: every resolved
        gate's type must match the recording and every internal edge
        must still be fanout-free, so even a digest collision degrades
        to a fresh :func:`~repro.symmetry.supergate.grow_supergate`.
        """
        if network.gate(root).gtype is not self.gtypes[0]:
            return None
        names: list[str] = [root]
        parent_pin: dict[str, Pin] = {}
        for rel in range(1, len(self.gtypes)):
            parent = self.parents[rel]
            if parent is None:
                return None
            pin = Pin(names[parent[0]], parent[1])
            net = network.fanin_net(pin)
            driver = network.driver(net)
            if (
                driver is None
                or driver.gtype is not self.gtypes[rel]
                or network.fanout_degree(net) != 1
            ):
                return None
            names.append(driver.name)
            parent_pin[driver.name] = pin
        leaves = [
            SgLeaf(
                pin=Pin(names[rel], pin_index),
                net=network.fanin_net(Pin(names[rel], pin_index)),
                imp_value=imp_value,
                depth=depth,
            )
            for rel, pin_index, imp_value, depth in self.leaves
        ]
        return Supergate(
            root=root,
            sg_class=self.sg_class,
            root_value=self.root_value,
            covered=list(names),
            leaves=leaves,
            pin_values={
                Pin(names[rel], pin_index): value
                for rel, pin_index, value in self.pin_values
            },
            parent_pin=parent_pin,
        )


@dataclass
class DedupStats:
    """Extraction-dedup accounting for one colored extraction."""

    grown: int = 0
    grafted: int = 0
    fallbacks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.grown + self.grafted + self.fallbacks
        return self.grafted / total if total else 0.0


def extract_supergates_colored(
    network: Network,
    coloring: Coloring | None = None,
    stats: DedupStats | None = None,
) -> SupergateNetwork:
    """Supergate extraction deduplicated by shape-color classes.

    Identical to :func:`~repro.symmetry.supergate.extract_supergates`
    result-for-result (covered order, leaf order and pin-value
    insertion order included — the differential suite asserts full
    equality), but each region *shape* is grown only once: later roots
    of the same shape class replay the recorded template against the
    live wiring instead of re-running implication growth.
    """
    if coloring is None:
        coloring = color_network(network)
    if stats is None:
        stats = DedupStats()
    templates: dict[str, _SupergateTemplate] = {}
    owner: dict[str, str] = {}
    supergates: dict[str, Supergate] = {}
    for name in reversed(network.topo_order()):
        if name in owner:
            continue
        key = coloring.shape.get(name)
        template = templates.get(key) if key is not None else None
        sg = None
        if template is not None:
            sg = template.instantiate(network, name)
            if sg is None:
                stats.fallbacks += 1
            else:
                stats.grafted += 1
        if sg is None:
            sg = grow_supergate(network, name)
            if template is None and key is not None:
                templates[key] = _SupergateTemplate.of(network, sg)
            if template is None:
                stats.grown += 1
        for covered_name in sg.covered:
            owner[covered_name] = name
        supergates[name] = sg
    return SupergateNetwork(
        network=network,
        supergates=supergates,
        owner=owner,
        network_version=network.version,
    )


# ----------------------------------------------------------------------
# cross-supergate candidate generation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClassSwap:
    """A cross-supergate swap candidate from a cone-color class.

    ``pin_a`` / ``pin_b`` read the two class-mate nets; because the
    nets compute identical functions, exchanging them is function-
    preserving *given the current state of both cones* — so the
    ``footprint`` covers every net of both cones **and every net read
    by a cone gate**: any other batched move rewires some pin, that
    pin's driving nets are in its own footprint, and if the pin sits
    on a cone gate (the only way to change either verified function)
    its driving net is a cone-gate fanin — the net-disjointness rule
    of the conflict-free committer then serializes the two moves.
    """

    pin_a: Pin
    pin_b: Pin
    net_a: str
    net_b: str
    footprint: frozenset[str]


def class_swap_candidates(
    network: Network,
    coloring: Coloring,
    cap: int = 32,
    max_cone_gates: int = 48,
) -> list[ClassSwap]:
    """Swap candidates between cone-color class mates, unverified.

    Deterministic: classes and members iterate in sorted order,
    consecutive members pair, the lexicographically first consumer pin
    represents each net.  Candidates whose joint cone exceeds
    *max_cone_gates* are skipped (the footprint — and the simulation
    filter the caller must run — would be too wide), as are pairs
    where either consumer sits inside the other net's cone (the swap
    would create a combinational cycle).  The caller is responsible
    for the simulation gate — see
    :func:`repro.symmetry.verify.nets_functionally_equal`.
    """
    out: list[ClassSwap] = []
    for _digest_key, nets in coloring.net_classes():
        for net_a, net_b in zip(nets, nets[1:]):
            if len(out) >= cap:
                return out
            pins_a = network.fanout(net_a)
            pins_b = network.fanout(net_b)
            if not pins_a or not pins_b:
                continue
            pin_a = min(pins_a)
            pin_b = min(pins_b)
            cone_a = network.fanin_cone(net_a)
            cone_b = network.fanin_cone(net_b)
            if len(cone_a) + len(cone_b) > max_cone_gates:
                continue
            if pin_a.gate in cone_b or pin_b.gate in cone_a:
                continue
            span = {net_a, net_b}
            for name in cone_a | cone_b:
                span.add(name)
                span.update(network.gate(name).fanins)
            footprint = frozenset(span)
            out.append(
                ClassSwap(
                    pin_a=pin_a,
                    pin_b=pin_b,
                    net_a=net_a,
                    net_b=net_b,
                    footprint=footprint,
                )
            )
    return out
