"""Easy redundancy identification during supergate extraction (Fig. 1).

When direct backward implication from a supergate root is allowed to
push *through* fanout stems, reconvergent paths can reach the same stem
twice:

* **case 1 — conflict** (Fig. 1a): the stem is implied both 0 and 1.
  Then the root can never take its forcing value, i.e. the root is
  constant at the opposite value, and the stuck-at fault at the stem is
  untestable through this cone.
* **case 2 — agreement** (Fig. 1b): the stem is implied the same value
  ``v`` along two branches.  Then one of the stem's fanout branches is
  stuck-at-``v`` untestable through this cone and the branch wire is
  redundant.

``find_easy_redundancies`` only *counts and locates* these events (what
Table 1's last column reports).  ``remove_redundancy`` additionally
applies the rewrite, guarded by an exact functional-equivalence check,
since an event proves untestability only relative to the observing
cone; Table 1 does not require removal, so the guard favours safety
over yield.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.gatetype import GateType
from ..network.netlist import Network, Pin
from ..logic.implication import backward_imply, implies_inputs
from .supergate import SgClass, SupergateNetwork, extract_supergates


@dataclass(frozen=True)
class Redundancy:
    """One Fig. 1 event: *stem* reached redundantly from *root*."""

    root: str
    stem: str
    kind: str  # "conflict" (case 1) or "agreement" (case 2)
    implied_value: int | None  # stem value for agreements


def find_easy_redundancies(
    network: Network, sgn: SupergateNetwork | None = None
) -> list[Redundancy]:
    """Scan every and-or supergate root for Fig. 1 redundancy events.

    Each (root, stem) pair is reported at most once; a stem can appear
    under several roots (each sighting is a separate untestability
    proof, and the paper's per-circuit counts tally sightings during
    one extraction pass).
    """
    if sgn is None:
        sgn = extract_supergates(network)
    events: list[Redundancy] = []
    for sg in sgn.supergates.values():
        if sg.sg_class not in (SgClass.ANDOR, SgClass.WIRE):
            continue
        if sg.root_value is None:
            continue
        result = backward_imply(
            network, sg.root, sg.root_value, cross_fanout=True
        )
        for stem in result.conflicts:
            events.append(
                Redundancy(
                    root=sg.root, stem=stem, kind="conflict",
                    implied_value=None,
                )
            )
        for stem in result.agreements:
            events.append(
                Redundancy(
                    root=sg.root, stem=stem, kind="agreement",
                    implied_value=result.values.get(stem),
                )
            )
    return events


def unique_stems(events: list[Redundancy]) -> set[str]:
    """Distinct stem nets flagged redundant."""
    return {event.stem for event in events}


def remove_redundancy(network: Network, event: Redundancy) -> bool:
    """Try to apply the rewrite implied by a Fig. 1 event.

    * conflict: the root is constant at the complement of its forcing
      value — replace the root gate with that constant;
    * agreement: disconnect one reconvergent branch of the stem by
      tying the corresponding pin to the implied constant value.

    The rewrite is kept only if the network's primary-output functions
    are exactly preserved (checked with BDDs over the affected cones);
    returns ``True`` when a rewrite was committed.  The equivalence
    guard makes removal sound even when the event's untestability only
    holds relative to part of the fanout.
    """
    from ..verify.equiv import networks_equivalent

    if event.kind == "conflict":
        candidates: list[tuple[str, object]] = [("const_root", None)]
    else:
        candidates = [
            ("tie_pin", pin) for pin in _agreement_pins(network, event)
        ]
    for action, payload in candidates:
        trial = network.copy()
        if action == "const_root":
            gate = trial.gate(event.root)
            sg_value = _root_forcing_value(network, event.root)
            if sg_value is None:
                continue
            gate.fanins = []
            trial.set_gate_type(
                event.root,
                GateType.CONST0 if sg_value == 1 else GateType.CONST1,
            )
        else:
            pin = payload
            const_name = trial.fresh_name(f"{event.stem}_tie")
            trial.add_gate(
                const_name,
                GateType.CONST1 if event.implied_value else GateType.CONST0,
                [],
            )
            trial.replace_fanin(pin, const_name)
        if networks_equivalent(network, trial):
            _commit(network, trial)
            return True
    return False


def _root_forcing_value(network: Network, root: str) -> int | None:
    """Forcing output value of the supergate rooted at *root*."""
    from .supergate import grow_supergate

    sg = grow_supergate(network, root)
    return sg.root_value


def _agreement_pins(network: Network, event: Redundancy) -> list[Pin]:
    """Stem fanout pins that lie on the reconvergent implication paths.

    A pin qualifies when its gate's output was part of the implication
    (re-running the sweep recovers the forced values) and forced the
    stem to the recorded value.
    """
    sg_value = _root_forcing_value(network, event.root)
    if sg_value is None:
        return []
    result = backward_imply(network, event.root, sg_value, cross_fanout=True)
    pins: list[Pin] = []
    for pin in network.fanout(event.stem):
        gate = network.gate(pin.gate)
        out_value = result.values.get(pin.gate)
        if out_value is None:
            continue
        if implies_inputs(gate.gtype, out_value) == event.implied_value:
            pins.append(pin)
    return pins


def _commit(network: Network, trial: Network) -> None:
    """Copy the trial network's gate structure back into *network*."""
    network.inputs = list(trial.inputs)
    network._input_set = set(trial._input_set)
    network.outputs = list(trial.outputs)
    network._gates = {
        name: gate for name, gate in trial._gates.items()
    }
    network._touch()


def redundancy_counts(events: list[Redundancy]) -> dict[str, int]:
    """Tally events by kind plus distinct stems (Table 1 column 14)."""
    conflicts = sum(1 for event in events if event.kind == "conflict")
    agreements = len(events) - conflicts
    return {
        "events": len(events),
        "conflicts": conflicts,
        "agreements": agreements,
        "stems": len(unique_stems(events)),
    }
