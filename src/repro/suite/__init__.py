"""Benchmark suite: circuit generators, registry, experimental flow."""

from . import circuits
from .registry import (
    BenchmarkSpec,
    DEFAULT_SCALE,
    PAPER_AVERAGES,
    PaperRow,
    REGISTRY,
    benchmark_names,
    build_benchmark,
    configured_scale,
)
from .flow import (
    FlowConfig,
    FlowOutcome,
    prepare_benchmark,
    run_benchmark,
    run_suite,
)

__all__ = [
    "BenchmarkSpec",
    "DEFAULT_SCALE",
    "FlowConfig",
    "FlowOutcome",
    "PAPER_AVERAGES",
    "PaperRow",
    "REGISTRY",
    "benchmark_names",
    "build_benchmark",
    "circuits",
    "configured_scale",
    "prepare_benchmark",
    "run_benchmark",
    "run_suite",
]
