"""Benchmark registry: the paper's 19 circuits with Table 1 reference data.

Each entry names a generator (``repro.suite.circuits``) with parameters
calibrated so the *mapped* gate count approximates the paper's at
``scale=1.0``.  The default scale for tests and benchmarks is read from
the ``REPRO_SCALE`` environment variable (0.35 when unset) so the whole
suite runs in minutes under pure Python; ``REPRO_SCALE=1.0`` reproduces
paper-sized circuits.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable

from ..network.netlist import Network
from . import circuits

DEFAULT_SCALE = 0.35


def configured_scale() -> float:
    """Scale factor from ``REPRO_SCALE`` (default 0.35)."""
    raw = os.environ.get("REPRO_SCALE", "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_SCALE
    return max(0.05, value) if value > 0 else DEFAULT_SCALE


@dataclass(frozen=True)
class PaperRow:
    """Table 1 of the paper, one circuit (reference for comparisons)."""

    gates: int
    init_ns: float
    gsg_percent: float
    gs_percent: float
    gsg_gs_percent: float
    gsg_cpu: float
    gs_cpu: float
    gsg_gs_cpu: float
    gs_area_percent: float
    gsg_gs_area_percent: float
    coverage_percent: float
    max_supergate_inputs: int
    redundancies: int


@dataclass(frozen=True)
class BenchmarkSpec:
    """A registered benchmark: generator plus the paper's reference row."""

    name: str
    family: str
    build: Callable[[float], Network]
    paper: PaperRow


def _int(base: float, scale: float, minimum: int = 2) -> int:
    return max(minimum, round(base * scale))


def _sqrt_int(base: float, scale: float, minimum: int = 2) -> int:
    return max(minimum, round(base * math.sqrt(scale)))


_SPECS: list[BenchmarkSpec] = [
    BenchmarkSpec(
        "alu2", "alu",
        lambda s: circuits.alu(bits=_int(16, s), name="alu2"),
        PaperRow(516, 7.6, 6.9, 2.7, 9.7, 3.5, 1.6, 6.8,
                 -2.7, -2.1, 23.4, 9, 7),
    ),
    BenchmarkSpec(
        "alu4", "alu",
        lambda s: circuits.alu(bits=_int(31, s), name="alu4"),
        PaperRow(1004, 10.2, 6.8, 8.0, 11.1, 14.2, 4.5, 22.5,
                 -3.1, -3.0, 27.5, 12, 14),
    ),
    BenchmarkSpec(
        "c432", "priority",
        lambda s: circuits.interrupt_controller(
            channels=_sqrt_int(13, s, 3), buses=3, name="c432",
        ),
        PaperRow(291, 8.6, 4.5, 1.4, 6.8, 2.0, 0.3, 2.9,
                 -1.1, -3.1, 49.5, 9, 6),
    ),
    BenchmarkSpec(
        "c499", "ecc",
        lambda s: circuits.sec_circuit(
            data_bits=_int(96, s, 8), syndrome_bits=24, name="c499",
        ),
        PaperRow(625, 6.1, 2.8, 4.9, 10.6, 1.7, 2.0, 5.1,
                 -0.9, 1.2, 20.8, 3, 2),
    ),
    BenchmarkSpec(
        "c1355", "ecc",
        lambda s: circuits.sec_circuit(
            data_bits=_int(42, s, 8), syndrome_bits=12, expanded=True,
            name="c1355",
        ),
        PaperRow(625, 6.0, 2.3, 7.3, 10.3, 1.4, 1.8, 6.8,
                 -0.3, 0.9, 20.8, 3, 2),
    ),
    BenchmarkSpec(
        "c1908", "ecc",
        lambda s: circuits.sec_circuit(
            data_bits=_int(88, s, 8), syndrome_bits=32, name="c1908",
        ),
        PaperRow(730, 9.7, 1.5, 7.1, 7.4, 2.9, 2.2, 11.4,
                 -3.2, -3.4, 32.6, 8, 5),
    ),
    BenchmarkSpec(
        "c2670", "interface",
        lambda s: circuits.bus_interface(
            width=_int(16, s, 4), control_gates=_int(800, s), seed=26,
            name="c2670",
        ),
        PaperRow(911, 7.0, 2.6, 2.8, 8.8, 2.6, 1.9, 4.5,
                 -4.5, -4.5, 21.5, 20, 23),
    ),
    BenchmarkSpec(
        "c3540", "interface",
        lambda s: circuits.bus_interface(
            width=_int(28, s, 4), control_gates=_int(1380, s), seed=35,
            name="c3540",
        ),
        PaperRow(1809, 11.7, 2.9, 4.2, 7.2, 13.5, 11.2, 29.8,
                 -2.4, -2.4, 25.4, 10, 33),
    ),
    BenchmarkSpec(
        "c5315", "interface",
        lambda s: circuits.bus_interface(
            width=_int(34, s, 4), control_gates=_int(1850, s), seed=53,
            name="c5315",
        ),
        PaperRow(2379, 9.8, 2.8, 5.1, 6.5, 5.6, 13.5, 16.3,
                 -2.6, -3.4, 25.7, 9, 103),
    ),
    BenchmarkSpec(
        "c6288", "multiplier",
        lambda s: circuits.multiplier(bits=_sqrt_int(16, s, 4),
                                      name="c6288"),
        PaperRow(5000, 34.4, 1.4, 5.9, 7.6, 16.5, 71.0, 103.2,
                 -5.3, -5.8, 28.7, 3, 52),
    ),
    BenchmarkSpec(
        "c7552", "interface",
        lambda s: circuits.bus_interface(
            width=_int(36, s, 4), control_gates=_int(1900, s), seed=75,
            name="c7552",
        ),
        PaperRow(2565, 9.3, 1.8, 5.1, 7.5, 5.5, 8.5, 13.9,
                 -2.8, -2.7, 18.3, 7, 26),
    ),
    BenchmarkSpec(
        "i10", "control",
        lambda s: circuits.random_control(
            num_inputs=_int(200, s, 16), num_gates=_int(20500, s),
            num_outputs=_int(200, s, 8), seed=10, xor_fraction=0.05,
            max_depth=55, name="i10",
        ),
        PaperRow(3397, 15.3, 0.1, 7.4, 11.0, 11.3, 17.2, 44.4,
                 -0.7, -1.3, 24.6, 11, 40),
    ),
    BenchmarkSpec(
        "x3", "pla",
        lambda s: circuits.pla_control(
            num_inputs=_int(60, s, 8), num_terms=_int(125, s, 8),
            num_outputs=_int(60, s, 4), term_width=5, seed=3, name="x3",
        ),
        PaperRow(1010, 4.8, 5.8, 9.5, 14.2, 2.4, 3.2, 8.6,
                 -2.2, -3.4, 27.1, 10, 46),
    ),
    BenchmarkSpec(
        "i8", "pla",
        lambda s: circuits.pla_control(
            num_inputs=_int(66, s, 8), num_terms=_int(153, s, 8),
            num_outputs=_int(50, s, 4), term_width=6, seed=8, name="i8",
        ),
        PaperRow(1229, 4.8, 3.9, 4.5, 8.0, 10.2, 5.6, 14.6,
                 -2.4, -2.8, 30.5, 7, 229),
    ),
    BenchmarkSpec(
        "k2", "pla",
        lambda s: circuits.pla_control(
            num_inputs=_int(44, s, 12), num_terms=_int(122, s, 8),
            num_outputs=_int(44, s, 4), term_width=14, seed=2, name="k2",
        ),
        PaperRow(1484, 6.7, 8.0, 3.0, 10.1, 91.2, 3.2, 59.9,
                 -0.6, -0.7, 43.6, 43, 16),
    ),
    BenchmarkSpec(
        "s5378", "sequential",
        lambda s: circuits.random_control(
            num_inputs=_int(214, s, 16), num_gates=_int(5200, s),
            num_outputs=_int(228, s, 8), seed=54, max_depth=24, name="s5378",
        ),
        PaperRow(1811, 5.9, 2.0, 4.8, 7.6, 5.1, 3.7, 13.6,
                 -2.9, -2.7, 24.4, 9, 112),
    ),
    BenchmarkSpec(
        "s13207", "sequential",
        lambda s: circuits.random_control(
            num_inputs=_int(700, s, 16), num_gates=_int(3500, s),
            num_outputs=_int(790, s, 8), seed=13, max_depth=38, name="s13207",
        ),
        PaperRow(2900, 9.7, 2.3, 6.2, 10.2, 35.8, 8.0, 76.2,
                 -2.1, -1.9, 27.7, 24, 90),
    ),
    BenchmarkSpec(
        "s15850", "sequential",
        lambda s: circuits.random_control(
            num_inputs=_int(611, s, 16), num_gates=_int(8200, s),
            num_outputs=_int(684, s, 8), seed=15, max_depth=46, name="s15850",
        ),
        PaperRow(4640, 12.4, 0.1, 7.2, 8.2, 54.1, 18.4, 135.2,
                 -2.4, -1.8, 25.8, 20, 366),
    ),
    BenchmarkSpec(
        "s38417", "sequential",
        lambda s: circuits.random_control(
            num_inputs=_int(1664, s, 16), num_gates=_int(16000, s),
            num_outputs=_int(1742, s, 8), seed=38, max_depth=52, name="s38417",
        ),
        PaperRow(10090, 14.7, 0.7, 4.8, 7.7, 81.6, 35.4, 140.6,
                 0.0, -0.4, 25.8, 21, 1474),
    ),
]

def _synthetic_row(gates: int) -> PaperRow:
    """Placeholder reference row: synthetic workloads have no Table 1
    entry, only a target gate count at ``scale=1.0``."""
    return PaperRow(gates, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
                    0.0, 0.0, 0.0, 0, 0)


#: Scale-out workloads for the partitioned flow (ROADMAP item 2):
#: tile-composed control logic sized 1e5-1e6 gates at ``scale=1.0``.
#: Both tile count and tile size grow with sqrt(scale), so the total
#: gate count is linear in scale while the block structure the FM
#: carve exploits is preserved at every size.  Kept out of
#: :func:`benchmark_names` — Table 1 runs and the quick set never
#: build them; ``rapids bench tiled100k --partition`` or the scaling
#: benchmarks opt in explicitly.
_SYNTH_SPECS: list[BenchmarkSpec] = [
    BenchmarkSpec(
        "tiled100k", "synthetic",
        lambda s: circuits.tiled_control(
            tiles=_sqrt_int(16, s), gates_per_tile=_sqrt_int(6250, s, 25),
            inputs_per_tile=_sqrt_int(40, s, 8),
            outputs_per_tile=_sqrt_int(12, s, 4),
            seed=100, name="tiled100k",
        ),
        _synthetic_row(100_000),
    ),
    BenchmarkSpec(
        "tiled1m", "synthetic",
        lambda s: circuits.tiled_control(
            tiles=_sqrt_int(32, s), gates_per_tile=_sqrt_int(31250, s, 25),
            inputs_per_tile=_sqrt_int(56, s, 8),
            outputs_per_tile=_sqrt_int(16, s, 4),
            seed=1000, name="tiled1m",
        ),
        _synthetic_row(1_000_000),
    ),
]

REGISTRY: dict[str, BenchmarkSpec] = {
    spec.name: spec for spec in _SPECS + _SYNTH_SPECS
}

#: The paper's reported averages (bottom row of Table 1).
PAPER_AVERAGES = {
    "gsg_percent": 3.1,
    "gs_percent": 5.4,
    "gsg_gs_percent": 9.0,
    "gs_area_percent": -2.2,
    "gsg_gs_area_percent": -2.3,
    "coverage_percent": 27.6,
}


def benchmark_names() -> list[str]:
    """The paper's benchmark names, in Table 1 order."""
    return [spec.name for spec in _SPECS]


def synthetic_names() -> list[str]:
    """Scale-out synthetic workloads (not part of the Table 1 run)."""
    return [spec.name for spec in _SYNTH_SPECS]


class UnknownBenchmarkError(KeyError):
    """Raised for a benchmark name the registry does not know.

    A ``KeyError`` subclass (the registry's historical contract) whose
    message names the close matches and the full inventory instead of
    just echoing the bad key.
    """

    def __init__(self, name: str) -> None:
        import difflib

        known = benchmark_names() + synthetic_names()
        close = difflib.get_close_matches(name, known, n=3, cutoff=0.5)
        hint = f"; did you mean {close}?" if close else ""
        super().__init__(
            f"unknown benchmark {name!r}{hint} registered: {known}"
        )


def resolve_benchmark(name: str) -> BenchmarkSpec:
    """The registered spec for *name*, validated up front.

    Every lookup path (``build_benchmark``, the flow, the CLI) goes
    through here, so a typo fails immediately with the inventory and
    a close-match suggestion instead of surfacing later as a bare
    ``KeyError``.
    """
    spec = REGISTRY.get(name)
    if spec is None:
        raise UnknownBenchmarkError(name)
    return spec


def build_benchmark(name: str, scale: float | None = None) -> Network:
    """Generate a benchmark's generic (pre-mapping) network."""
    spec = resolve_benchmark(name)
    return spec.build(scale if scale is not None else configured_scale())
