"""Benchmark circuit generators.

The paper evaluates on MCNC'91 and ISCAS'85/'89 netlists, which are not
redistributable here; each benchmark is therefore replaced by a
deterministic generator of the same *documented function and flavour*:
ALUs (alu2/alu4, c3540), single-error-correcting XOR circuits
(c499/c1355, c1908), a priority/interrupt controller (c432), an array
multiplier (c6288), bus/ALU interfaces (c2670, c5315, c7552), PLA-style
two-level control logic (k2, i8, x3) and scan-stripped random control
logic (i10, s5378 ... s38417).  What the rewiring study actually
depends on — gate-type mix, XOR content, reconvergent fanout, supergate
width distribution and depth — is reproduced per family; DESIGN.md
documents the substitution.

All generators build *generic* networks (AND/OR/XOR/INV of any arity);
``repro.synth.map_network`` turns them into library netlists.
"""

from __future__ import annotations

import random

from ..network.builder import NetworkBuilder
from ..network.gatetype import GateType
from ..network.netlist import Network


def memo_tree(
    builder: NetworkBuilder,
    gtype: GateType,
    nets: list[str],
    memo: dict,
) -> str:
    """Balanced tree with build-time structural memoization.

    Operand pairs are combined bottom-up; every (type, pair) is created
    once per circuit and reused afterwards.  Trees over similar operand
    sets therefore share their lower levels through genuine multi-fanout
    nodes — the common-subexpression sharing multi-level synthesis
    produces, which is what keeps supergate coverage at the paper's
    20-50 % instead of the ~100 % of private trees.
    """
    if not nets:
        raise ValueError("memo_tree needs at least one operand")

    def combine(x: str, y: str) -> str:
        key = (gtype, *sorted((x, y)))
        found = memo.get(key)
        if found is None:
            found = builder.gate(gtype, x, y)
            memo[key] = found
        return found

    level = list(nets)
    while len(level) > 1:
        paired = [
            combine(level[i], level[i + 1])
            for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


def slotted_tree(
    builder: NetworkBuilder,
    gtype: GateType,
    slots: list[str | None],
    memo: dict,
    lo: int = 0,
    hi: int | None = None,
) -> str | None:
    """Bisection tree over a fixed slot space with subset memoization.

    ``slots[k]`` is the operand occupying slot ``k`` (``None`` =
    absent).  The tree always splits at the midpoint of the *slot
    range*, so two trees whose operands agree on a whole half share
    that half's product through a single multi-fanout node — the way
    real decoder/PLA logic shares aligned sub-products.  This is the
    main source of the realistic (paper-level) supergate coverage of
    the generated benchmarks.
    """
    if hi is None:
        hi = len(slots)
    present = tuple(
        (index, slots[index])
        for index in range(lo, hi)
        if slots[index] is not None
    )
    if not present:
        return None
    if len(present) == 1:
        return present[0][1]
    key = (gtype, lo, hi, present)
    cached = memo.get(key)
    if cached is not None:
        return cached
    mid = (lo + hi) // 2
    left = slotted_tree(builder, gtype, slots, memo, lo, mid)
    right = slotted_tree(builder, gtype, slots, memo, mid, hi)
    if left is None:
        result = right
    elif right is None:
        result = left
    else:
        pair_key = (gtype, *sorted((left, right)))
        result = memo.get(pair_key)
        if result is None:
            result = builder.gate(gtype, left, right)
            memo[pair_key] = result
    memo[key] = result
    return result


# ----------------------------------------------------------------------
# arithmetic building blocks
# ----------------------------------------------------------------------
def ripple_adder(
    builder: NetworkBuilder, a: list[str], b: list[str], carry_in: str
) -> tuple[list[str], str]:
    """Ripple-carry adder; returns (sum bits, carry out)."""
    sums: list[str] = []
    carry = carry_in
    for bit_a, bit_b in zip(a, b):
        total, carry = builder.full_adder(bit_a, bit_b, carry)
        sums.append(total)
    return sums, carry


def alu(bits: int = 8, name: str = "alu") -> Network:
    """A small ALU: add/sub, AND/OR/XOR, result mux, zero/carry flags.

    Stands in for MCNC ``alu2``/``alu4`` (and contributes to the cXXXX
    interfaces).  Like real ALU netlists, the propagate (``a XOR b``)
    and generate (``a AND b``) terms are *shared* between the carry
    chain, the sum and the logic unit — this reconvergent sharing is
    what keeps supergate coverage at realistic levels.
    """
    builder = NetworkBuilder(name)
    a = [builder.input(f"a{i}") for i in range(bits)]
    b = [builder.input(f"b{i}") for i in range(bits)]
    op0 = builder.input("op0")
    op1 = builder.input("op1")
    sub = builder.input("sub")
    b_eff = [builder.xor(bit, sub) for bit in b]
    carry = sub
    sums: list[str] = []
    for index in range(bits):
        propagate = builder.xor(a[index], b_eff[index])   # shared P
        generate = builder.and_(a[index], b_eff[index])   # shared G
        total = builder.xor(propagate, carry)
        carry = builder.or_(generate, builder.and_(propagate, carry))
        sums.append(total)
        or_bit = builder.or_(a[index], b[index])
        logic = builder.mux(op0, generate, or_bit)
        arith = builder.mux(op0, total, propagate)
        builder.output(builder.mux(op1, arith, logic, name=f"y{index}"))
    zero = builder.tree(GateType.NOR, sums, fanin_limit=4, name="zflag")
    builder.output(zero)
    builder.output(builder.buf(carry, name="cflag"))
    return builder.build()


def multiplier(bits: int = 8, name: str = "mult") -> Network:
    """Array multiplier (the c6288 structure: a grid of adders).

    c6288 is famous for being almost entirely reconvergent XOR/AND
    logic; its supergates are tiny (the paper reports L=3), which this
    grid reproduces.
    """
    builder = NetworkBuilder(name)
    a = [builder.input(f"a{i}") for i in range(bits)]
    b = [builder.input(f"b{i}") for i in range(bits)]
    # partial products bucketed by weight (column)
    columns: list[list[str]] = [[] for _ in range(2 * bits)]
    for i in range(bits):
        for j in range(bits):
            columns[i + j].append(builder.and_(a[i], b[j]))
    # carry-save compression: full adders reduce every column to <= 2
    changed = True
    while changed:
        changed = False
        for weight in range(2 * bits - 1):
            while len(columns[weight]) >= 3:
                x, y, z = (columns[weight].pop() for _ in range(3))
                total, carry = builder.full_adder(x, y, z)
                columns[weight].append(total)
                columns[weight + 1].append(carry)
                changed = True
    # final carry-propagate (ripple) adder over the two remaining rows
    outputs: list[str] = []
    carry: str | None = None
    for weight in range(2 * bits):
        bits_here = list(columns[weight])
        if carry is not None:
            bits_here.append(carry)
        carry = None
        if not bits_here:
            break
        if len(bits_here) == 1:
            total = bits_here[0]
        elif len(bits_here) == 2:
            total, carry = builder.half_adder(*bits_here)
        else:
            total, carry = builder.full_adder(*bits_here)
        outputs.append(total)
    if carry is not None:
        outputs.append(carry)
    for index, net in enumerate(outputs):
        builder.output(builder.buf(net, name=f"p{index}"))
    return builder.build()


# ----------------------------------------------------------------------
# error-correcting circuits (c499 / c1355 / c1908 family)
# ----------------------------------------------------------------------
def sec_circuit(
    data_bits: int = 32,
    syndrome_bits: int = 8,
    expanded: bool = False,
    name: str = "sec",
) -> Network:
    """Single-error-correcting circuit: syndrome XOR trees + correction.

    ``expanded`` mimics c1355, where every XOR is expanded into four
    NANDs before mapping (identical function, different structure — the
    paper reports identical supergate statistics for both, L=3).
    """
    builder = NetworkBuilder(name)
    rng = random.Random(data_bits * 1000 + syndrome_bits)
    data = [builder.input(f"d{i}") for i in range(data_bits)]
    checks = [builder.input(f"c{i}") for i in range(syndrome_bits)]

    def xor2(x: str, y: str) -> str:
        if not expanded:
            return builder.xor(x, y)
        n1 = builder.nand(x, y)
        n2 = builder.nand(x, n1)
        n3 = builder.nand(y, n1)
        return builder.nand(n2, n3)

    def balanced_xor(nets: list[str]) -> str:
        level = list(nets)
        while len(level) > 1:
            paired = [
                xor2(level[i], level[i + 1])
                for i in range(0, len(level) - 1, 2)
            ]
            if len(level) % 2:
                paired.append(level[-1])
            level = paired
        return level[0]

    # Stage 1: chunk parities, shared by every syndrome that needs them
    # (the real c499 computes byte-wise parities once and reuses them;
    # this sharing is why the paper reports tiny L=3 supergates here).
    chunk_size = 4
    chunk_parity: list[str] = []
    for start in range(0, data_bits, chunk_size):
        chunk = data[start:start + chunk_size]
        chunk_parity.append(balanced_xor(chunk))
    num_chunks = len(chunk_parity)

    # Stage 2: each syndrome XORs a subset of chunk parities + its check
    syndromes: list[str] = []
    groups: list[list[int]] = []
    for s in range(syndrome_bits):
        chunk_members = sorted(
            k for k in range(num_chunks)
            if (k >> (s % 4)) & 1 or rng.random() < 0.3
        )
        if not chunk_members:
            chunk_members = [s % num_chunks]
        members = sorted(
            i
            for k in chunk_members
            for i in range(k * chunk_size,
                           min((k + 1) * chunk_size, data_bits))
        )
        groups.append(members)
        body = balanced_xor([chunk_parity[k] for k in chunk_members])
        syndromes.append(xor2(body, checks[s]))
    for index, syndrome in enumerate(syndromes):
        builder.output(builder.buf(syndrome, name=f"s{index}"))
    # correction: data XOR (AND of matching syndrome pattern); memoized
    # decode trees let bits with similar patterns share decode levels
    inverted_syndromes = [builder.inv(s) for s in syndromes]
    decode_memo: dict = {}
    for i in range(data_bits):
        pattern = []
        for s, members in enumerate(groups):
            if i in members:
                pattern.append(syndromes[s])
            else:
                pattern.append(inverted_syndromes[s])
        hit = slotted_tree(builder, GateType.AND, pattern, decode_memo)
        builder.output(xor2(data[i], hit))
    return builder.build()


# ----------------------------------------------------------------------
# priority / interrupt controller (c432 family)
# ----------------------------------------------------------------------
def interrupt_controller(
    channels: int = 9, buses: int = 3, name: str = "intctl"
) -> Network:
    """Priority interrupt controller in the style of ISCAS c432.

    *buses* request groups of *channels* lines each; a priority chain
    (deep and-or cones) grants the highest-priority active line.
    """
    builder = NetworkBuilder(name)
    requests = [
        [builder.input(f"r{b}_{c}") for c in range(channels)]
        for b in range(buses)
    ]
    enables = [builder.input(f"e{b}") for b in range(buses)]
    masked = [
        [builder.and_(requests[b][c], enables[b]) for c in range(channels)]
        for b in range(buses)
    ]
    # bus priority: bus b wins if any line active and no lower bus active
    any_active = [
        builder.tree(GateType.OR, masked[b], fanin_limit=4)
        for b in range(buses)
    ]
    grant_bus: list[str] = []
    for b in range(buses):
        higher = [builder.inv(any_active[j]) for j in range(b)]
        grant_bus.append(
            builder.tree(GateType.AND, higher + [any_active[b]],
                         fanin_limit=4)
        )
        builder.output(builder.buf(grant_bus[b], name=f"gb{b}"))
    # channel priority within the winning bus; the blocker sets of
    # channel c are a subset of channel c+1's, so memoized trees share
    # them across channels (multi-fanout, like the real c432)
    inv_masked = [
        [builder.inv(masked[b][c]) for c in range(channels)]
        for b in range(buses)
    ]
    memo: dict = {}
    for c in range(channels):
        per_bus = []
        for b in range(buses):
            slots: list = [None] * (channels + 2)
            for j in range(c):
                slots[j] = inv_masked[b][j]
            slots[channels] = masked[b][c]
            slots[channels + 1] = grant_bus[b]
            term = slotted_tree(builder, GateType.AND, slots, memo)
            per_bus.append(term)
        builder.output(
            builder.tree(GateType.OR, per_bus, fanin_limit=4,
                         name=f"gc{c}")
        )
    return builder.build()


# ----------------------------------------------------------------------
# PLA-style control logic (k2 / i8 / x3 family)
# ----------------------------------------------------------------------
def pla_control(
    num_inputs: int = 32,
    num_terms: int = 96,
    num_outputs: int = 24,
    term_width: int = 8,
    seed: int = 7,
    name: str = "pla",
) -> Network:
    """Two-level PLA-like control logic.

    Wide AND product terms feeding wide ORs create the very large
    implication supergates of MCNC ``k2`` (the paper's L = 43 record).
    """
    builder = NetworkBuilder(name)
    rng = random.Random(seed)
    inputs = [builder.input(f"x{i}") for i in range(num_inputs)]
    literal_cache: dict[tuple[int, bool], str] = {}

    def literal(index: int, positive: bool) -> str:
        key = (index, positive)
        if key not in literal_cache:
            literal_cache[key] = (
                inputs[index] if positive else builder.inv(inputs[index])
            )
        return literal_cache[key]

    memo: dict = {}
    terms: list[str] = []
    for _ in range(num_terms):
        width = rng.randint(max(2, term_width - 3), term_width + 3)
        chosen = sorted(rng.sample(range(num_inputs), min(width, num_inputs)))
        # polarity keyed by input index so overlapping terms reuse the
        # same literals; slot-aligned trees then share their product
        # sub-terms — the multi-level sharing SIS extracts from PLAs
        slots: list = [None] * num_inputs
        for i in chosen:
            slots[i] = literal(i, (i * 2654435761) % 3 != 0)
        terms.append(slotted_tree(builder, GateType.AND, slots, memo))
    for out_index in range(num_outputs):
        count = rng.randint(3, max(4, num_terms // 6))
        chosen = set(rng.sample(terms, min(count, len(terms))))
        slots = [term if term in chosen else None for term in terms]
        builder.output(
            builder.buf(
                slotted_tree(builder, GateType.OR, slots, memo),
                name=f"f{out_index}",
            )
        )
    return builder.build()


# ----------------------------------------------------------------------
# random multilevel control logic (i10 and the s-series, scan-stripped)
# ----------------------------------------------------------------------
def random_control(
    num_inputs: int = 64,
    num_gates: int = 600,
    num_outputs: int = 48,
    seed: int = 11,
    xor_fraction: float = 0.08,
    max_depth: int = 30,
    reuse: float = 0.45,
    name: str = "ctl",
) -> Network:
    """Random multilevel control logic with ISCAS-like fanout.

    Used for i10 and the scan-stripped ISCAS'89 circuits, whose
    combinational bodies are irregular control logic between flip-flop
    boundaries (the flip-flops themselves become pseudo PIs/POs, which
    is why these benchmarks have hundreds of each).
    """
    builder = NetworkBuilder(name)
    rng = random.Random(seed)
    nets = [builder.input(f"x{i}") for i in range(num_inputs)]
    level_of = {net: 0 for net in nets}
    by_level: list[list[str]] = [list(nets)]
    weights = (
        [GateType.NAND] * 24 + [GateType.NOR] * 18 + [GateType.AND] * 16
        + [GateType.OR] * 16 + [GateType.INV] * 12
        + [GateType.XOR] * max(1, int(100 * xor_fraction))
        + [GateType.XNOR] * max(1, int(50 * xor_fraction))
    )
    for _ in range(num_gates):
        gtype = rng.choice(weights)
        if gtype in (GateType.INV, GateType.BUF):
            arity = 1
        else:
            arity = rng.choice((2, 2, 2, 3, 3, 4))
        # level-bounded growth: one fanin near the target level keeps
        # cones connected; the rest sample lower levels (reconvergence)
        target = rng.randint(1, max_depth)
        top = min(target - 1, len(by_level) - 1)
        fanins: list[str] = []
        anchor_pool = by_level[top]
        fanins.append(rng.choice(anchor_pool))
        while len(fanins) < arity:
            if rng.random() < reuse:
                candidate = rng.choice(nets)
            else:
                lvl = rng.randint(0, top)
                candidate = rng.choice(by_level[lvl])
            if level_of[candidate] > top or candidate in fanins:
                continue
            fanins.append(candidate)
        new_net = builder.gate(gtype, *fanins)
        nets.append(new_net)
        level = 1 + max(level_of[f] for f in fanins)
        level_of[new_net] = level
        while len(by_level) <= level:
            by_level.append([])
        by_level[level].append(new_net)
    internal = nets[num_inputs:]
    sinks = rng.sample(internal, min(num_outputs, len(internal)))
    for index, net in enumerate(sinks):
        builder.output(net)
    return builder.build()


def tiled_control(
    tiles: int = 8,
    gates_per_tile: int = 400,
    inputs_per_tile: int = 24,
    outputs_per_tile: int = 8,
    stitch_width: int = 6,
    seed: int = 17,
    xor_fraction: float = 0.06,
    max_depth: int = 24,
    reuse: float = 0.4,
    name: str = "tiled",
) -> Network:
    """Tile-composed control logic for the 1e5-1e6 gate workloads.

    Real million-gate designs are not one amorphous cloud but many
    moderately coupled blocks; this generator composes *tiles* blocks
    of :func:`random_control`-style logic, each borrowing
    *stitch_width* exported signals from the previous tile as extra
    leaf inputs.  The sparse tile-to-tile stitching gives the FM
    carve (``repro.place.regions``) natural min-cut seams, and tiles
    are emitted in sequence so insertion-order placements (the grid
    scaffolding benchmarks use) keep them spatially coherent — the
    structure partitioned rewiring is designed to exploit.  Total
    gate count is ``tiles * gates_per_tile``.

    Every sink net (no fanout inside its tile, not stitched onward)
    becomes a primary output — the flop-boundary convention of the
    scan-mapped ISCAS sequential benchmarks — so the whole gate count
    stays live through the mapper's dead-logic sweep; *outputs_per_tile*
    only adds observation points on *internal* nets on top of that.
    """
    builder = NetworkBuilder(name)
    rng = random.Random(seed)
    weights = (
        [GateType.NAND] * 24 + [GateType.NOR] * 18 + [GateType.AND] * 16
        + [GateType.OR] * 16 + [GateType.INV] * 12
        + [GateType.XOR] * max(1, int(100 * xor_fraction))
        + [GateType.XNOR] * max(1, int(50 * xor_fraction))
    )
    exports: list[str] = []
    for tile in range(tiles):
        pis = [
            builder.input(f"t{tile}x{i}") for i in range(inputs_per_tile)
        ]
        borrowed = exports[:stitch_width]
        nets = pis + borrowed
        level_of = {net: 0 for net in nets}
        by_level: list[list[str]] = [list(nets)]
        used: set[str] = set()
        for _ in range(gates_per_tile):
            gtype = rng.choice(weights)
            if gtype in (GateType.INV, GateType.BUF):
                arity = 1
            else:
                arity = rng.choice((2, 2, 2, 3, 3, 4))
            target = rng.randint(1, max_depth)
            top = min(target - 1, len(by_level) - 1)
            fanins: list[str] = []
            fanins.append(rng.choice(by_level[top]))
            while len(fanins) < arity:
                if rng.random() < reuse:
                    candidate = rng.choice(nets)
                else:
                    lvl = rng.randint(0, top)
                    candidate = rng.choice(by_level[lvl])
                if level_of[candidate] > top or candidate in fanins:
                    continue
                fanins.append(candidate)
            new_net = builder.gate(gtype, *fanins)
            used.update(fanins)
            nets.append(new_net)
            level = 1 + max(level_of[f] for f in fanins)
            level_of[new_net] = level
            while len(by_level) <= level:
                by_level.append([])
            by_level[level].append(new_net)
        internal = nets[len(pis) + len(borrowed):]
        if internal:
            for net in rng.sample(
                internal, min(outputs_per_tile, len(internal))
            ):
                builder.output(net)
                used.add(net)
            exports = rng.sample(
                internal, min(stitch_width, len(internal))
            )
            used.update(exports)
            for net in internal:
                if net not in used:
                    builder.output(net)
    return builder.build()


def bus_interface(
    width: int = 16,
    control_gates: int = 300,
    seed: int = 5,
    name: str = "busif",
) -> Network:
    """ALU + comparator + parity + random control (c2670/c5315/c7552).

    The big ISCAS'85 interfaces mix datapath slices with irregular
    control; this generator stitches an ALU, an equality comparator, a
    parity tree and a random-control block sharing the same operand
    wires.
    """
    builder = NetworkBuilder(name)
    rng = random.Random(seed)
    a = [builder.input(f"a{i}") for i in range(width)]
    b = [builder.input(f"b{i}") for i in range(width)]
    ctl = [builder.input(f"k{i}") for i in range(max(6, width // 2))]
    # adder slice
    sums, carry = ripple_adder(builder, a, b, ctl[0])
    for index, net in enumerate(sums):
        builder.output(builder.buf(net, name=f"sum{index}"))
    builder.output(builder.buf(carry, name="cout"))
    # comparator
    eq_bits = [builder.xnor(x, y) for x, y in zip(a, b)]
    builder.output(
        builder.tree(GateType.AND, eq_bits, fanin_limit=4, name="eq")
    )
    # parity
    builder.output(
        builder.tree(GateType.XOR, a + ctl, fanin_limit=2, name="par")
    )
    # control cloud over everything
    nets = a + b + ctl + sums + eq_bits
    pool = list(nets)
    weights = (
        [GateType.NAND] * 5 + [GateType.NOR] * 4 + [GateType.AND] * 3
        + [GateType.OR] * 3 + [GateType.INV] * 2 + [GateType.XOR]
    )
    created: list[str] = []
    for _ in range(control_gates):
        gtype = rng.choice(weights)
        arity = 1 if gtype is GateType.INV else rng.choice((2, 2, 3, 4))
        fanins: list[str] = []
        while len(fanins) < arity:
            source = pool if rng.random() < 0.4 else pool[-40:]
            candidate = rng.choice(source)
            if candidate not in fanins:
                fanins.append(candidate)
        net = builder.gate(gtype, *fanins)
        pool.append(net)
        created.append(net)
    for index, net in enumerate(rng.sample(created, min(width, len(created)))):
        builder.output(net)
    return builder.build()
