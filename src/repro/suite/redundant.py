"""Function-preserving redundancy injection.

The ISCAS benchmarks famously contain untestable stuck-at faults
(c2670, c5315 and c7552 each have dozens), and the paper's Table 1
column 14 counts the redundancies its supergate extraction stumbles
over.  Since our generators synthesize irredundant logic, this pass
plants the classic pattern behind Fig. 1b:

    g = AND(x, y, ...)        # g implies x
    h = AND(g, ..., x)        # the extra x is redundant

Adding a transitive literal to a downstream AND (or OR) gate leaves
every function unchanged — ``g <= x`` already — but creates exactly the
reconvergent stem that direct backward implication flags as an
*agreement* (the stem ``x`` is implied 1 along both branches when ``h``
is forced).  The injector verifies each injection preserves output
functions via random simulation (and callers' test suites check
exhaustively).
"""

from __future__ import annotations

import random

from ..network.gatetype import GateType, base_type, is_inverted
from ..network.netlist import Network, NetworkError


def inject_redundant_wires(
    network: Network, count: int, seed: int = 0, max_tries: int = 2000
) -> int:
    """Add up to *count* redundant transitive-literal connections.

    Returns the number of wires actually added.  Each injection picks a
    gate ``h`` of AND (or OR) polarity class, one of its fanins ``g`` of
    the *same* class, and re-feeds one of ``g``'s own fanins ``x`` into
    ``h`` — a no-op functionally, a Fig. 1b redundancy structurally.
    """
    rng = random.Random(seed)
    names = list(network.gate_names())
    if not names:
        return 0
    added = 0
    tries = 0
    while added < count and tries < max_tries:
        tries += 1
        h_name = rng.choice(names)
        h_gate = network.gate(h_name)
        h_class = _conjunction_class(h_gate.gtype)
        if h_class is None or h_gate.arity() < 2:
            continue
        fanin_candidates = [
            net for net in h_gate.fanins if not network.is_input(net)
        ]
        if not fanin_candidates:
            continue
        g_name = rng.choice(fanin_candidates)
        g_gate = network.gate(g_name)
        if _conjunction_class(g_gate.gtype) != h_class:
            continue
        if is_inverted(g_gate.gtype):
            continue  # an inverted stage breaks the implication chain
        x_net = rng.choice(g_gate.fanins)
        if x_net in h_gate.fanins:
            continue
        h_gate.fanins.append(x_net)
        network._touch()
        added += 1
    return added


def _conjunction_class(gtype: GateType) -> GateType | None:
    """AND-polarity or OR-polarity class of a gate (None otherwise)."""
    base = base_type(gtype)
    if base in (GateType.AND, GateType.OR):
        return base
    return None


def verify_injection(before: Network, after: Network) -> bool:
    """Cheap functional check used by the flow after injection."""
    from ..verify.equiv import networks_equivalent

    try:
        return networks_equivalent(before, after)
    except NetworkError:
        return False
