"""The full experimental flow of Section 6, one benchmark at a time.

``generate -> script_rugged -> map -> place -> STA -> optimize`` in
each of the three modes, producing one Table 1 row.  The flow mirrors
the paper's setup: netlists are optimized and mapped before placement,
cell locations are frozen, and every optimizer starts from the same
placed design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..library.cells import Library, default_library
from ..network.netlist import Network
from ..place.placement import Placement, total_hpwl
from ..place.placer import place
from ..rapids.engine import MODES, SUPERGATE_STORE, RapidsResult, run_rapids
from ..rapids.report import Table1Row, build_row, fanout_profile
from ..symmetry.redundancy import find_easy_redundancies, redundancy_counts
from ..synth.mapper import map_network, network_area
from ..synth.strash import script_rugged
from ..timing.sta import TimingEngine
from .redundant import inject_redundant_wires
from .registry import BenchmarkSpec, configured_scale, resolve_benchmark


@dataclass
class FlowConfig:
    """Knobs of the experimental flow."""

    scale: float | None = None        # None = REPRO_SCALE / default
    place_seed: int = 0
    modes: tuple[str, ...] = MODES
    max_rounds: int = 12
    batch_limit: int = 64
    check_equivalence: bool = False
    sim_backend: str = "auto"         # simulation backend for verification
                                      # ("auto" = adaptive per sweep shape)
    workers: int = 1                  # gain-evaluation worker processes
                                      # (trajectory is worker-count-invariant)
    wl_passes: int = 1                # post-optimization wirelength-rewiring
                                      # passes (0 = skip the Section-5 polish;
                                      # on by default: the timing-aware gate
                                      # makes the polish delay-safe)
    wl_batched: bool = True           # vectorized conflict-free wirelength
                                      # path (False = serial greedy reference)
    wl_timing_aware: bool = True      # gate wirelength swaps on projected
                                      # slack (False = HPWL-only objective)
    wl_slack_margin: float = 0.0      # guard band (ns) the slack gate
                                      # enforces; 0.0 = never degrade delay
    wl_class_swaps: bool = False      # coloring-derived cross-supergate
                                      # candidates in the wirelength polish
                                      # (each verified by simulation first;
                                      # off = trajectories unchanged)
    partition: bool = False           # region-bounded wirelength polish:
                                      # FM-carved regions with frozen
                                      # boundary nets (repro.rapids.partition)
    partition_max_gates: int = 2500   # region size cap for the carve
    anneal_moves: int | None = None  # None = auto (40 moves per gate)
    presize: bool = True              # timing-driven sizing before placement
    checkpoint: str | None = None     # checkpoint file path; each mode
                                      # saves to "<path>.<mode>" so a
                                      # multi-mode run resumes per mode
    resume: bool = False              # reload per-mode checkpoints and
                                      # continue interrupted runs
    checkpoint_every: int = 1         # boundary cadence between saves

    def effective_scale(self) -> float:
        return self.scale if self.scale is not None else configured_scale()


@dataclass
class FlowOutcome:
    """Everything produced by one benchmark's flow."""

    name: str
    scale: float
    network: Network                  # the placed, mapped input design
    placement: Placement
    initial_delay: float
    initial_area: float
    hpwl: float
    results: dict[str, RapidsResult] = field(default_factory=dict)
    row: Table1Row | None = None
    build_seconds: float = 0.0
    stats: dict[str, float] = field(default_factory=dict)


def prepare_benchmark(
    name: str,
    config: FlowConfig | None = None,
    library: Library | None = None,
) -> FlowOutcome:
    """Generate, optimize, map and place one benchmark (no rewiring yet)."""
    config = config or FlowConfig()
    library = library or default_library()
    spec = _spec(name)
    scale = config.effective_scale()
    start = time.perf_counter()
    network = spec.build(scale)
    script_rugged(network)
    # plant the benchmark's share of untestable wires (ISCAS circuits
    # are famously redundant; Table 1 column 14 counts what extraction
    # finds) — function-preserving by construction
    target_redundancies = max(1, round(spec.paper.redundancies * scale))
    inject_redundant_wires(network, target_redundancies, seed=config.place_seed)
    map_network(network, library)
    anneal_moves = config.anneal_moves
    if anneal_moves is None:
        anneal_moves = min(40 * len(network), 120_000)
    if config.presize:
        # Timing-driven sizing before placement, like SIS "map -n 1
        # -AFG": gate sizes are optimized against *estimated* wires (a
        # placement the real one will not match), so the post-placement
        # optimizers harvest only the estimation gap — the paper's
        # timing-convergence premise.
        proxy = place(
            network, library, seed=config.place_seed + 7777,
            anneal_moves=anneal_moves // 2,
        )
        run_rapids(network, proxy, library, mode="gs", max_rounds=6,
                   batch_limit=config.batch_limit, workers=config.workers)
    placement = place(
        network, library, seed=config.place_seed,
        anneal_moves=anneal_moves,
    )
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    outcome = FlowOutcome(
        name=name,
        scale=scale,
        network=network,
        placement=placement,
        initial_delay=engine.max_delay,
        initial_area=network_area(network, library),
        hpwl=total_hpwl(network, placement),
        build_seconds=time.perf_counter() - start,
    )
    sgn = SUPERGATE_STORE.get_or_extract(network)
    outcome.stats = {
        "gates": float(len(network)),
        "depth": float(network.depth()),
        "coverage_percent": sgn.coverage() * 100.0,
        "max_supergate_inputs": float(sgn.max_supergate_inputs()),
        "redundancies": float(
            redundancy_counts(find_easy_redundancies(network, sgn))["events"]
        ),
        **fanout_profile(network),
    }
    return outcome


def run_benchmark(
    name: str,
    config: FlowConfig | None = None,
    library: Library | None = None,
) -> FlowOutcome:
    """Full flow: prepare + optimize with every configured mode."""
    config = config or FlowConfig()
    library = library or default_library()
    outcome = prepare_benchmark(name, config, library)
    for mode in config.modes:
        trial_network = outcome.network.copy()
        trial_placement = outcome.placement.copy()
        outcome.results[mode] = run_rapids(
            trial_network,
            trial_placement,
            library,
            mode=mode,
            max_rounds=config.max_rounds,
            batch_limit=config.batch_limit,
            check_equivalence=config.check_equivalence,
            sim_backend=config.sim_backend,
            workers=config.workers,
            wl_passes=config.wl_passes,
            wl_batched=config.wl_batched,
            wl_timing_aware=config.wl_timing_aware,
            wl_slack_margin=config.wl_slack_margin,
            wl_class_swaps=config.wl_class_swaps,
            partition=config.partition,
            partition_max_gates=config.partition_max_gates,
            checkpoint=(
                f"{config.checkpoint}.{mode}"
                if config.checkpoint is not None else None
            ),
            resume=config.resume,
            checkpoint_every=config.checkpoint_every,
        )
    if all(mode in outcome.results for mode in MODES):
        outcome.row = build_row(
            circuit=name,
            gates=len(outcome.network),
            initial_delay=outcome.initial_delay,
            results=outcome.results,
        )
    return outcome


def run_suite(
    names: list[str] | None = None,
    config: FlowConfig | None = None,
    library: Library | None = None,
    progress=None,
) -> list[FlowOutcome]:
    """Run the flow over several benchmarks (default: the whole Table 1)."""
    from .registry import benchmark_names

    outcomes = []
    for name in names or benchmark_names():
        outcome = run_benchmark(name, config, library)
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return outcomes


def trajectory_fingerprint(
    name: str, config: FlowConfig | None = None
) -> str:
    """Digest of one benchmark's whole flow trajectory.

    Hashes the prepared netlist (gates, types, fanins, cell bindings),
    the placement coordinates and every mode's optimization outcome
    (moves applied, final delay/area).  Two processes running the same
    flow must produce the same fingerprint regardless of
    ``PYTHONHASHSEED`` — the determinism contract
    ``tests/test_determinism.py`` and the CI hash-seed matrix enforce.
    """
    import hashlib

    outcome = run_benchmark(name, config)
    digest = hashlib.blake2b(digest_size=16)
    network = outcome.network
    for gate_name in sorted(network.gate_names()):
        gate = network.gate(gate_name)
        digest.update(
            f"{gate_name}:{gate.gtype.value}:"
            f"{','.join(gate.fanins)}:{gate.cell}".encode()
        )
    for gate_name, (x, y) in sorted(outcome.placement.locations.items()):
        digest.update(f"{gate_name}@{x:.9f},{y:.9f}".encode())
    digest.update(f"delay={outcome.initial_delay:.12f}".encode())
    for mode in sorted(outcome.results):
        result = outcome.results[mode].optimize
        digest.update(
            f"{mode}:{result.moves_applied}:{result.final_delay:.12f}:"
            f"{result.final_area:.9f}".encode()
        )
    return digest.hexdigest()


def _spec(name: str) -> BenchmarkSpec:
    return resolve_benchmark(name)
