"""Redundancy proofs via test generation.

A stuck-at fault with no test is untestable, and the corresponding wire
or gate is redundant.  This is the classical (RAMBO-style) machinery
the paper's "easy" detection shortcuts: Fig. 1 events found during
supergate extraction can be confirmed here, and the test suite checks
that every injected redundancy of ``repro.suite.redundant`` is indeed
untestable.
"""

from __future__ import annotations

from ..network.netlist import Network, Pin
from .faults import Fault
from .podem import find_test


def prove_branch_redundant(
    network: Network,
    pin: Pin,
    stuck_at: int,
    max_backtracks: int = 20000,
) -> bool | None:
    """Is the branch feeding *pin* stuck-at-*stuck_at* untestable?

    ``True`` = proven redundant, ``False`` = a test exists, ``None`` =
    budget exhausted.
    """
    net = network.fanin_net(pin)
    result = find_test(
        network,
        fault=Fault(net=net, stuck_at=stuck_at, pin=pin),
        max_backtracks=max_backtracks,
    )
    if result.test is not None:
        return False
    if result.proven_untestable:
        return True
    return None


def prove_stem_redundant(
    network: Network,
    net: str,
    stuck_at: int,
    max_backtracks: int = 20000,
) -> bool | None:
    """Is the stem of *net* stuck-at-*stuck_at* untestable?"""
    result = find_test(
        network,
        fault=Fault(net=net, stuck_at=stuck_at),
        max_backtracks=max_backtracks,
    )
    if result.test is not None:
        return False
    if result.proven_untestable:
        return True
    return None


def untestable_fault_count(
    network: Network,
    max_faults: int | None = None,
    max_backtracks: int = 4000,
) -> dict[str, int]:
    """Census of untestable stem faults (slow; for small circuits)."""
    from .faults import all_faults

    counts = {"testable": 0, "untestable": 0, "undecided": 0}
    examined = 0
    for fault in all_faults(network, include_branches=False):
        if max_faults is not None and examined >= max_faults:
            break
        examined += 1
        result = find_test(
            network, fault=fault, max_backtracks=max_backtracks
        )
        if result.test is not None:
            counts["testable"] += 1
        elif result.proven_untestable:
            counts["untestable"] += 1
        else:
            counts["undecided"] += 1
    return counts
