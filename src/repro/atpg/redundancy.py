"""Redundancy proofs via test generation.

A stuck-at fault with no test is untestable, and the corresponding wire
or gate is redundant.  This is the classical (RAMBO-style) machinery
the paper's "easy" detection shortcuts: Fig. 1 events found during
supergate extraction can be confirmed here, and the test suite checks
that every injected redundancy of ``repro.suite.redundant`` is indeed
untestable.

Testability (the *negative* answer) is cheap: a parallel-pattern fault
simulation of one random block (``repro.logic.simcore.faultsim``)
proves most testable faults detected without ever entering the PODEM
search, so the backtracking engine only runs for the candidates that
might actually be redundant.  Set ``random_filter=False`` to force the
historical search-only behaviour.
"""

from __future__ import annotations

from ..logic.simcore import FaultSimulator, random_pattern_block
from ..network.netlist import Network, Pin
from .faults import Fault
from .podem import find_test


def _randomly_detected(
    network: Network,
    fault: Fault,
    width: int = 64,
    rounds: int = 2,
    backend: str = "auto",
) -> bool:
    """One vectorized random block: does it already detect the fault?"""
    if not network.inputs:
        return False
    assignments, num_patterns = random_pattern_block(
        network.inputs, width=width, rounds=rounds
    )
    simulator = FaultSimulator(network, backend)
    simulator.load_patterns(assignments, num_patterns)
    return bool(simulator.detecting_patterns(fault))


def prove_branch_redundant(
    network: Network,
    pin: Pin,
    stuck_at: int,
    max_backtracks: int = 20000,
    random_filter: bool = True,
    backend: str = "auto",
) -> bool | None:
    """Is the branch feeding *pin* stuck-at-*stuck_at* untestable?

    ``True`` = proven redundant, ``False`` = a test exists, ``None`` =
    budget exhausted.
    """
    net = network.fanin_net(pin)
    fault = Fault(net=net, stuck_at=stuck_at, pin=pin)
    if random_filter and _randomly_detected(network, fault, backend=backend):
        return False
    result = find_test(
        network, fault=fault, max_backtracks=max_backtracks
    )
    if result.test is not None:
        return False
    if result.proven_untestable:
        return True
    return None


def prove_stem_redundant(
    network: Network,
    net: str,
    stuck_at: int,
    max_backtracks: int = 20000,
    random_filter: bool = True,
    backend: str = "auto",
) -> bool | None:
    """Is the stem of *net* stuck-at-*stuck_at* untestable?"""
    fault = Fault(net=net, stuck_at=stuck_at)
    if random_filter and _randomly_detected(network, fault, backend=backend):
        return False
    result = find_test(
        network, fault=fault, max_backtracks=max_backtracks
    )
    if result.test is not None:
        return False
    if result.proven_untestable:
        return True
    return None


def untestable_fault_count(
    network: Network,
    max_faults: int | None = None,
    max_backtracks: int = 4000,
    random_filter: bool = True,
    backend: str = "auto",
) -> dict[str, int]:
    """Census of untestable stem faults.

    With *random_filter* (the default) one parallel-pattern random
    block classifies the bulk of the fault list as testable in a single
    vectorized pass; PODEM examines only the survivors.  Faults the
    filter detects are testable by construction, so the census can only
    move ``undecided`` verdicts to ``testable`` relative to the
    search-only baseline.
    """
    from .faults import all_faults

    counts = {"testable": 0, "untestable": 0, "undecided": 0}
    examined = list(all_faults(network, include_branches=False))
    if max_faults is not None:
        examined = examined[:max_faults]
    if random_filter and examined and network.inputs:
        assignments, num_patterns = random_pattern_block(
            network.inputs, width=64, rounds=2
        )
        simulator = FaultSimulator(network, backend)
        simulator.load_patterns(assignments, num_patterns)
        outcome = simulator.run(examined)
        counts["testable"] += len(outcome.detected)
        examined = outcome.undetected
    for fault in examined:
        result = find_test(
            network, fault=fault, max_backtracks=max_backtracks
        )
        if result.test is not None:
            counts["testable"] += 1
        elif result.proven_untestable:
            counts["untestable"] += 1
        else:
            counts["undecided"] += 1
    return counts
