"""Stuck-at fault model.

Faults live on a net's stem (``pin=None``) or on a single fanout branch
(``pin`` set) — the distinction Fig. 1 of the paper turns on: case 2
proves a *branch* untestable while the stem may still be testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..network.netlist import Network, Pin


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault."""

    net: str
    stuck_at: int
    pin: Pin | None = None  # None = stem fault, else this branch only

    def __str__(self) -> str:
        location = str(self.pin) if self.pin is not None else self.net
        return f"{location} s-a-{self.stuck_at}"


def all_faults(network: Network, include_branches: bool = True) -> Iterator[Fault]:
    """Enumerate stem (and optionally branch) stuck-at faults."""
    for net in network.nets():
        for value in (0, 1):
            yield Fault(net=net, stuck_at=value)
            if include_branches and len(network.fanout(net)) > 1:
                for pin in network.fanout(net):
                    yield Fault(net=net, stuck_at=value, pin=pin)


def fault_site_support(network: Network, fault: Fault) -> list[str]:
    """Primary inputs that can influence the fault site or its effects."""
    support: set[str] = set()
    if network.is_input(fault.net):
        support.add(fault.net)
    else:
        support.update(
            pi
            for pi in network.cone_inputs(fault.net)
        )
    # inputs feeding the propagation cone's side inputs
    downstream = network.fanout_cone(fault.net)
    for name in downstream:
        for pi in network.cone_inputs(name):
            support.add(pi)
    return [pi for pi in network.inputs if pi in support]
