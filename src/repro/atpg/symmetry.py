"""ATPG-based symmetry detection (Lemma 1, after Pomeranz-Reddy [5]).

Two inputs are NES iff no test sets one to ``D`` and the other to
``D'`` and propagates a fault effect to the output; ES iff no test sets
both to ``D``.  The good/faulty channel pair encodes the two cofactors
being compared, so "a test exists" exactly means "the cofactors
differ".

This is the *baseline* detector the paper improves on: exact but
search-based, versus the linear-time reachability detector of
``repro.symmetry``.  The test suite cross-validates the two.
"""

from __future__ import annotations

from ..network.netlist import Network, Pin
from ..logic.values import Value
from .podem import find_test


def nes_by_atpg(
    network: Network,
    input_a: str,
    input_b: str,
    max_backtracks: int = 20000,
) -> bool | None:
    """NES check on two primary inputs (None = budget exhausted)."""
    result = find_test(
        network,
        injections={input_a: Value.D, input_b: Value.DBAR},
        max_backtracks=max_backtracks,
    )
    if result.test is not None:
        return False
    if result.proven_untestable:
        return True
    return None


def es_by_atpg(
    network: Network,
    input_a: str,
    input_b: str,
    max_backtracks: int = 20000,
) -> bool | None:
    """ES check on two primary inputs (None = budget exhausted)."""
    result = find_test(
        network,
        injections={input_a: Value.D, input_b: Value.D},
        max_backtracks=max_backtracks,
    )
    if result.test is not None:
        return False
    if result.proven_untestable:
        return True
    return None


def pin_symmetry_by_atpg(
    network: Network,
    root: str,
    pin_a: Pin,
    pin_b: Pin,
    max_backtracks: int = 20000,
) -> set[str]:
    """Symmetry kinds of two internal pins w.r.t. *root*, via ATPG.

    Mirrors ``repro.symmetry.verify.pin_pair_symmetry`` but decides by
    test search instead of exhaustive truth tables: the pins are cut,
    fed by fresh inputs, and the cone of *root* becomes the network
    under test.
    """
    from ..logic.simulate import extract_cone

    trial = network.copy()
    fresh: list[str] = []
    for number, pin in enumerate((pin_a, pin_b)):
        var = trial.fresh_name(f"__atpg{number}")
        trial.add_input(var)
        trial.replace_fanin(pin, var)
        fresh.append(var)
    cone = extract_cone(trial, [root])
    kinds: set[str] = set()
    nes = nes_by_atpg(cone, fresh[0], fresh[1], max_backtracks)
    if nes:
        kinds.add("nes")
    es = es_by_atpg(cone, fresh[0], fresh[1], max_backtracks)
    if es:
        kinds.add("es")
    return kinds
