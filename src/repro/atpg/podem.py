"""Five-valued test generation (PODEM-style backtracking search).

The paper grounds its symmetry theory in ATPG (Lemma 1, after
Pomeranz-Reddy): two signals are NES iff no test assigns one ``D`` and
the other ``D'`` and propagates a fault effect to an output; ES iff no
test assigns both ``D``.  This module provides the search engine for
those queries and for conventional single-stuck-at test generation
(used to *prove* the redundancies of Fig. 1 untestable).

The search assigns primary inputs one at a time, five-valued-simulates
the affected cone, and prunes when the fault effect can no longer reach
an output (empty D-frontier with no effect at a PO).  Untestability is
decided exactly when the search space is exhausted within the backtrack
budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..network.gatetype import GateType, base_type
from ..network.netlist import Network, Pin
from ..logic.values import (
    Value,
    and_values,
    from_bit,
    or_values,
    xor_values,
)
from .faults import Fault, all_faults, fault_site_support


@dataclass
class AtpgResult:
    """Outcome of a test-generation attempt."""

    test: dict[str, int] | None   # PI assignment, or None
    proven_untestable: bool       # search space exhausted
    backtracks: int


def evaluate_gate(
    gtype: GateType, inputs: list[Value]
) -> Value:
    """Five-valued evaluation of one gate."""
    if gtype is GateType.CONST0:
        return Value.ZERO
    if gtype is GateType.CONST1:
        return Value.ONE
    base = base_type(gtype)
    if base is GateType.AND:
        value = and_values(inputs)
    elif base is GateType.OR:
        value = or_values(inputs)
    elif base is GateType.XOR:
        value = xor_values(inputs)
    else:
        value = inputs[0]
    from ..network.gatetype import is_inverted

    if is_inverted(gtype):
        value = value.negate()
    return value


def simulate5(
    network: Network,
    assignments: dict[str, Value],
    fault: Fault | None = None,
    injections: dict[str, Value] | None = None,
) -> dict[str, Value]:
    """Five-valued full simulation with an optional fault.

    ``injections`` force composite values onto nets *as observed by all
    consumers* (used for the symmetry queries, where two signals are
    given D / D' directly).  A stem fault overrides the faulty channel
    of its net; a branch fault only affects the faulted pin's view,
    handled when evaluating the sink gate.
    """
    values: dict[str, Value] = {}
    for pi in network.inputs:
        value = assignments.get(pi, Value.X)
        if injections and pi in injections:
            value = injections[pi]
        if fault is not None and fault.pin is None and fault.net == pi:
            value = _apply_stuck(value, fault.stuck_at)
        values[pi] = value
    for name in network.topo_order():
        gate = network.gate(name)
        fanin_values = []
        for index, fanin in enumerate(gate.fanins):
            value = values[fanin]
            if (
                fault is not None
                and fault.pin == Pin(name, index)
                and fault.net == fanin
            ):
                value = _apply_stuck(value, fault.stuck_at)
            fanin_values.append(value)
        value = evaluate_gate(gate.gtype, fanin_values)
        if injections and name in injections:
            value = injections[name]
        if fault is not None and fault.pin is None and fault.net == name:
            value = _apply_stuck(value, fault.stuck_at)
        values[name] = value
    return values


def _apply_stuck(value: Value, stuck: int) -> Value:
    """Force the faulty channel of a value to the stuck level."""
    good = value.good
    if good is None:
        # unassigned good value: the faulty channel is still pinned
        return Value.X if stuck is None else value
    return Value.D if (good == 1 and stuck == 0) else (
        Value.DBAR if (good == 0 and stuck == 1) else from_bit(good)
    )


def _frontier_alive(
    network: Network, values: dict[str, Value], frontier: list[str]
) -> bool:
    """Can any fault effect still reach an output through X paths?"""
    if not frontier:
        return False
    reachable: set[str] = set()
    stack = list(frontier)
    while stack:
        net = stack.pop()
        if net in reachable:
            continue
        reachable.add(net)
        for pin in network.fanout(net):
            sink = pin.gate
            if values[sink].is_fault_effect() or values[sink] is Value.X:
                stack.append(sink)
    po_set = set(network.outputs)
    return any(
        net in po_set
        and (values[net].is_fault_effect() or values[net] is Value.X)
        for net in reachable
    )


def find_test(
    network: Network,
    fault: Fault | None = None,
    injections: dict[str, Value] | None = None,
    fixed: dict[str, int] | None = None,
    max_backtracks: int = 20000,
) -> AtpgResult:
    """Search for a PI assignment that propagates a fault effect to a PO.

    Either a *fault* (stuck-at) or *injections* (forced D/D' values, the
    symmetry queries) must be given.  ``fixed`` pins some PIs.  Returns
    a test, or ``proven_untestable=True`` when the space is exhausted.
    """
    if fault is None and not injections:
        raise ValueError("need a fault or injections")
    support = (
        fault_site_support(network, fault)
        if fault is not None
        else list(network.inputs)
    )
    if injections:
        support = [pi for pi in support if pi not in injections]
    assignment: dict[str, Value] = dict.fromkeys(network.inputs, Value.X)
    if fixed:
        for net, bit in fixed.items():
            assignment[net] = from_bit(bit)
    backtracks = 0

    def search(depth: int) -> dict[str, int] | None:
        nonlocal backtracks
        values = simulate5(network, assignment, fault, injections)
        if any(
            values[out].is_fault_effect() for out in network.outputs
        ):
            return {
                pi: (assignment[pi].good if assignment[pi].is_assigned()
                     else 0)
                for pi in network.inputs
            }
        effects = [n for n, v in values.items() if v.is_fault_effect()]
        if effects:
            if not _frontier_alive(network, values, effects):
                return None
        elif fault is not None:
            # not activated yet: prune only when the site's good value
            # is already determined equal to the stuck level (five-
            # valued simulation is monotone in the assignment)
            site = values[fault.net]
            if site.is_binary() and site.good == fault.stuck_at:
                return None
        elif injections:
            # injected effects were blocked on every path
            return None
        target = None
        for pi in support:
            if assignment[pi] is Value.X:
                target = pi
                break
        if target is None:
            return None
        for bit in (0, 1):
            assignment[target] = from_bit(bit)
            found = search(depth + 1)
            if found is not None:
                return found
            backtracks += 1
            if backtracks > max_backtracks:
                assignment[target] = Value.X
                raise _BacktrackBudget()
        assignment[target] = Value.X
        return None

    try:
        test = search(0)
    except _BacktrackBudget:
        return AtpgResult(test=None, proven_untestable=False,
                          backtracks=backtracks)
    return AtpgResult(
        test=test, proven_untestable=test is None, backtracks=backtracks,
    )


class _BacktrackBudget(Exception):
    """Raised when the backtrack budget is exhausted."""


@dataclass
class TestGenReport:
    """Outcome of a full test-generation run with fault dropping.

    ``tests`` holds the PODEM-generated cubes only; the faults the
    random pre-pass dropped are covered by ``random_block`` — the
    packed parallel words (PI -> word, pattern count) of that block —
    so the complete test set a consumer must apply is ``random_block``
    plus ``tests``.
    """

    tests: list[dict[str, int]] = field(default_factory=list)
    detected: list[Fault] = field(default_factory=list)
    untestable: list[Fault] = field(default_factory=list)
    undecided: list[Fault] = field(default_factory=list)
    random_block: tuple[dict[str, int], int] | None = None
    podem_calls: int = 0
    random_dropped: int = 0   # faults detected by the random pre-pass
    sim_dropped: int = 0      # faults dropped by simulating PODEM tests

    @property
    def fault_coverage(self) -> float:
        total = len(self.detected) + len(self.untestable) + len(self.undecided)
        return len(self.detected) / total if total else 0.0


def generate_tests(
    network: Network,
    faults: list[Fault] | None = None,
    include_branches: bool = False,
    random_width: int = 64,
    random_rounds: int = 2,
    max_backtracks: int = 20000,
    backend: str = "auto",
) -> TestGenReport:
    """Full-fault-list test generation with parallel-pattern dropping.

    The classical ATPG loop, accelerated by the compiled simulation
    core: a random-pattern block first knocks out the easy faults in
    one vectorized pass, then PODEM targets the survivors one at a
    time — and after every generated test a parallel-pattern fault
    simulation batch-drops every other fault that test detects, so the
    backtracking search runs only for the hard residue.
    """
    from ..logic.simcore import (
        FaultSimulator,
        pack_tests,
        random_pattern_block,
    )

    if faults is None:
        faults = list(all_faults(network, include_branches=include_branches))
    report = TestGenReport()
    simulator = FaultSimulator(network, backend)
    remaining = list(faults)
    if random_rounds > 0 and remaining:
        assignments, num_patterns = random_pattern_block(
            network.inputs, width=random_width, rounds=random_rounds
        )
        simulator.load_patterns(assignments, num_patterns)
        outcome = simulator.run(remaining)
        report.detected.extend(outcome.detected)
        report.random_dropped = len(outcome.detected)
        if outcome.detected:
            report.random_block = (assignments, num_patterns)
        remaining = outcome.undetected
    cursor = 0
    while cursor < len(remaining):
        fault = remaining[cursor]
        cursor += 1
        result = find_test(
            network, fault=fault, max_backtracks=max_backtracks
        )
        report.podem_calls += 1
        if result.test is None:
            if result.proven_untestable:
                report.untestable.append(fault)
            else:
                report.undecided.append(fault)
            continue
        report.tests.append(result.test)
        report.detected.append(fault)
        # batch-drop: one parallel pass of the new test over every
        # still-unclassified fault
        survivors = remaining[cursor:]
        if survivors:
            assignments, num_patterns = pack_tests(
                network.inputs, [result.test]
            )
            simulator.load_patterns(assignments, num_patterns)
            outcome = simulator.run(survivors)
            report.detected.extend(outcome.detected)
            report.sim_dropped += len(outcome.detected)
            remaining[cursor:] = outcome.undetected
    return report


def is_testable(
    network: Network, fault: Fault, max_backtracks: int = 20000
) -> bool | None:
    """True/False when decided, None when the budget ran out."""
    result = find_test(network, fault=fault, max_backtracks=max_backtracks)
    if result.test is not None:
        return True
    if result.proven_untestable:
        return False
    return None
