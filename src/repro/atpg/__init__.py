"""ATPG substrate: D-calculus search, stuck-at faults, symmetry baseline.

Test generation is backed by the compiled parallel-pattern fault
simulator of :mod:`repro.logic.simcore`: random blocks pre-drop the
easy faults and every PODEM-generated test batch-drops whatever else
it detects (:func:`generate_tests`), while redundancy proofs use the
same simulator as a fast testability filter.
"""

from .faults import Fault, all_faults, fault_site_support
from .podem import (
    AtpgResult,
    TestGenReport,
    evaluate_gate,
    find_test,
    generate_tests,
    is_testable,
    simulate5,
)
from .redundancy import (
    prove_branch_redundant,
    prove_stem_redundant,
    untestable_fault_count,
)
from .symmetry import es_by_atpg, nes_by_atpg, pin_symmetry_by_atpg

__all__ = [
    "AtpgResult",
    "Fault",
    "TestGenReport",
    "all_faults",
    "es_by_atpg",
    "evaluate_gate",
    "fault_site_support",
    "find_test",
    "generate_tests",
    "is_testable",
    "nes_by_atpg",
    "pin_symmetry_by_atpg",
    "prove_branch_redundant",
    "prove_stem_redundant",
    "simulate5",
    "untestable_fault_count",
]
