"""Dual-phase technology mapping onto an inverting-cell library.

The library (like the paper's) only has NAND/NOR/XOR/XNOR/INV/BUF
cells.  A naive ``AND -> NAND + INV`` rewrite litters the netlist with
inverter pairs that real mappers never emit; SIS performs *phase
assignment*: every logic function is implemented in the polarity its
consumers actually demand, so an AND tree becomes alternating NAND/NOR
levels with inverters only at genuine phase conflicts and primary
inputs.

``phase_map`` reproduces that: a reverse-topological pass collects the
demanded phases of every signal (through wire gates), then a forward
pass implements each gate once — in its primary phase — adding a single
inverter only when both phases are demanded.
"""

from __future__ import annotations

from ..network.gatetype import (
    CONST_TYPES,
    GateType,
    WIRE_TYPES,
    base_type,
    is_inverted,
)
from ..network.netlist import Network


def _resolve(
    network: Network, net: str, positive: bool
) -> tuple[str, bool]:
    """Follow INV/BUF chains; returns (source net, effective phase)."""
    while True:
        driver = network.driver(net)
        if driver is None or driver.gtype not in WIRE_TYPES:
            return net, positive
        if driver.gtype is GateType.INV:
            positive = not positive
        net = driver.fanins[0]


def _primary_phase(demanded: set[bool]) -> bool:
    """Positive wins whenever demanded (keeps PO nets on their names)."""
    return True in demanded


def _implementation(
    gtype: GateType, primary: bool
) -> tuple[GateType, bool]:
    """Cell type and fanin phase for a gate's primary implementation.

    Returns ``(cell_type, fanin_positive)``: AND in positive phase is a
    NOR of negated operands, in negative phase a NAND of positive ones,
    and dually for OR; XOR serves either phase by choosing XOR/XNOR.
    """
    base = base_type(gtype)
    base_positive = primary == (not is_inverted(gtype))
    if base is GateType.AND:
        if base_positive:
            return GateType.NOR, False
        return GateType.NAND, True
    if base is GateType.OR:
        if base_positive:
            return GateType.NAND, False
        return GateType.NOR, True
    if base is GateType.XOR:
        return (GateType.XOR if base_positive else GateType.XNOR), True
    raise ValueError(f"cannot phase-map {gtype}")


def phase_map(network: Network) -> Network:
    """Return a new network using only inverting cells + INV/BUF.

    Dead logic (gates no output transitively demands) is dropped as a
    side effect, like a mapper's sweep.
    """
    demands: dict[str, set[bool]] = {}

    def demand(net: str, positive: bool) -> None:
        source, phase = _resolve(network, net, positive)
        demands.setdefault(source, set()).add(phase)

    for po in network.outputs:
        demand(po, True)
    order = network.topo_order()
    for name in reversed(order):
        gate = network.gate(name)
        if gate.gtype in WIRE_TYPES or gate.gtype in CONST_TYPES:
            continue
        demanded = demands.get(name)
        if not demanded:
            continue
        primary = _primary_phase(demanded)
        _, fanin_positive = _implementation(gate.gtype, primary)
        for fanin in gate.fanins:
            demand(fanin, fanin_positive)
        if len(demanded) == 2:
            # secondary phase comes from an inverter on the primary net
            pass

    result = Network(network.name)
    produced: dict[tuple[str, bool], str] = {}
    for pi in network.inputs:
        result.add_input(pi)
        produced[(pi, True)] = pi
    # primary inputs demanded in negative phase get a shared inverter
    for pi in network.inputs:
        if False in demands.get(pi, set()):
            inv = result.fresh_name(f"{pi}_n")
            result.add_gate(inv, GateType.INV, [pi])
            produced[(pi, False)] = inv

    def reference(net: str, positive: bool) -> str:
        source, phase = _resolve(network, net, positive)
        return produced[(source, phase)]

    for name in order:
        gate = network.gate(name)
        if gate.gtype in WIRE_TYPES:
            continue
        demanded = demands.get(name)
        if not demanded:
            continue
        if gate.gtype in CONST_TYPES:
            produced[(name, True)] = name
            value_type = gate.gtype
            result.add_gate(name, value_type, [])
            if False in demanded:
                other = result.fresh_name(f"{name}_n")
                from ..network.gatetype import complement_type

                result.add_gate(other, complement_type(value_type), [])
                produced[(name, False)] = other
            continue
        primary = _primary_phase(demanded)
        cell_type, fanin_positive = _implementation(gate.gtype, primary)
        fanins = [
            reference(fanin, fanin_positive) for fanin in gate.fanins
        ]
        result.add_gate(name, cell_type, fanins)
        produced[(name, primary)] = name
        if len(demanded) == 2:
            inv = result.fresh_name(f"{name}_n")
            result.add_gate(inv, GateType.INV, [name])
            produced[(name, not primary)] = inv
    for po in network.outputs:
        result.add_output(reference(po, True))
    return result
