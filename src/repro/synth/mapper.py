"""Technology decomposition and mapping onto the cell library.

The paper's netlists come out of SIS ``map -n 1 -AFG`` bound to a
library of INV/BUF/NAND/NOR/XOR/XNOR cells with 2-4 inputs.  This
module reproduces that pipeline:

* :func:`decompose` balances wide gates into trees that respect the
  library's maximum arities;
* :func:`map_network` runs dual-phase mapping (``repro.synth.phase``) —
  every function is implemented in the polarity its consumers demand,
  so AND/OR trees become alternating NAND/NOR levels with inverters
  only at genuine phase conflicts — then binds each gate to a drive
  strength sized against a fanout-based wire-load model
  (:func:`bind_cells`), standing in for SIS's timing-driven covering.

The mapper is deliberately local (no tree-covering DP): the rewiring
study only needs a *legal, realistic* mapped netlist — alternating
NAND/NOR trees are exactly the structures generalized implication
supergates absorb.
"""

from __future__ import annotations

from ..library.cells import Library
from ..network.gatetype import (
    CONST_TYPES,
    GateType,
    complement_type,
)
from ..network.netlist import Gate, Network, NetworkError
from ..network.transform import collapse_wire_pairs, sweep

_DECOMPOSE_BASE = {
    GateType.AND: (GateType.AND, False),
    GateType.NAND: (GateType.AND, True),
    GateType.OR: (GateType.OR, False),
    GateType.NOR: (GateType.OR, True),
    GateType.XOR: (GateType.XOR, False),
    GateType.XNOR: (GateType.XOR, True),
}


def decompose(network: Network, library: Library) -> int:
    """Split gates wider than the library supports into balanced trees.

    AND/OR chains split at the widest available NAND/NOR arity;
    XOR-class gates split at the XOR2 arity.  The *root* of each tree
    keeps the original gate's name and (inverted) type, so primary
    outputs and fanout references remain valid.  Returns the number of
    gates added.
    """
    added = 0
    for name in list(network.topo_order()):
        gate = network.gate(name)
        if gate.gtype not in _DECOMPOSE_BASE:
            continue
        base, inverted = _DECOMPOSE_BASE[gate.gtype]
        limit = _arity_limit(library, base)
        if gate.arity() <= limit:
            continue
        added += _split_gate(network, name, base, inverted, limit)
    return added


def _arity_limit(library: Library, base: GateType) -> int:
    if base is GateType.AND:
        return max(library.max_arity(GateType.NAND), 2)
    if base is GateType.OR:
        return max(library.max_arity(GateType.NOR), 2)
    return max(library.max_arity(GateType.XOR), 2)


def _split_gate(
    network: Network,
    name: str,
    base: GateType,
    inverted: bool,
    limit: int,
) -> int:
    """Rebuild gate *name* as a balanced tree of arity <= *limit*."""
    gate = network.gate(name)
    level = list(gate.fanins)
    added = 0
    while len(level) > limit:
        grouped: list[str] = []
        for start in range(0, len(level), limit):
            chunk = level[start:start + limit]
            if len(chunk) == 1:
                grouped.append(chunk[0])
                continue
            inner = network.fresh_name(f"{name}_d")
            network.add_gate(inner, base, chunk)
            added += 1
            grouped.append(inner)
        level = grouped
    gate.fanins = level
    root_type = complement_type(base) if inverted else base
    network.set_gate_type(name, root_type)
    return added


def map_network(network: Network, library: Library) -> Network:
    """Map a generic network in place onto the library's cell functions.

    Wide gates are decomposed to library arities, then dual-phase
    mapping (``repro.synth.phase``) implements every function with
    NAND/NOR/XOR/XNOR cells, inverters appearing only at true phase
    conflicts.  After this pass every gate carries a bound ``cell``.
    """
    from .phase import phase_map

    decompose(network, library)
    mapped = phase_map(network)
    _replace_contents(network, mapped)
    collapse_wire_pairs(network)
    sweep(network)
    bind_cells(network, library)
    return network


def _replace_contents(network: Network, source: Network) -> None:
    """Overwrite *network*'s structure with *source*'s (keeps identity)."""
    network.inputs = list(source.inputs)
    network._input_set = set(source._input_set)
    network.outputs = list(source.outputs)
    network._gates = {
        gate.name: gate for gate in source.copy().gates()
    }
    network._touch()


def bind_cells(network: Network, library: Library) -> None:
    """Bind every mapped gate to a wire-load-model-sized drive strength.

    Mirrors the paper's timing-driven mapping (``map -n 1 -AFG``): with
    no placement yet, each net's capacitance is estimated from a
    fanout-based wire-load model, and the cheapest drive strength that
    balances self delay against the input-capacitance burden on the
    upstream stage is chosen (a one-step logical-effort argument).
    The mapped netlist is therefore *already well sized for the
    estimated loads* — exactly the paper's premise — and the
    post-placement optimizers only harvest the gap between wire-load
    estimates and real placed wires.
    """
    from ..library.cells import UNIT_WIRE_CAP_PER_UM

    implementations_cache: dict[tuple, list] = {}

    def implementations_of(gate: Gate) -> list:
        key = (gate.gtype, gate.arity())
        cells = implementations_cache.get(key)
        if cells is None:
            cells = library.implementations(*key)
            if not cells:
                raise NetworkError(
                    f"no {gate.gtype.name}{gate.arity()} cell for "
                    f"{gate.name!r}"
                )
            implementations_cache[key] = cells
        return cells

    # pass 1: estimate the die from mid-strength areas
    total_area = 0.0
    for gate in network.gates():
        if gate.gtype in CONST_TYPES:
            continue
        if gate.gtype in (GateType.AND, GateType.OR):
            raise NetworkError(
                f"gate {gate.name!r} is unmapped {gate.gtype.name}"
            )
        total_area += library.default_cell(gate.gtype, gate.arity()).area
    die_side = max((total_area / 0.60) ** 0.5, 50.0)

    # the upstream-burden weight: a typical mid-strength drive resistance
    upstream_resistance = 1.5

    # pass 2: choose sizes against the wire-load model
    for gate in network.gates():
        if gate.gtype in CONST_TYPES:
            gate.cell = None
            continue
        cells = implementations_of(gate)
        pins = network.fanout(gate.name)
        pads = network.outputs.count(gate.name)
        fanout = max(len(pins) + pads, 1)
        wlm_length = 0.28 * die_side * (fanout ** 0.5)
        load = wlm_length * UNIT_WIRE_CAP_PER_UM + 0.05 * pads
        for pin in pins:
            sink = network.gate(pin.gate)
            load += library.default_cell(sink.gtype, sink.arity()).input_cap
        best = None
        best_cost = float("inf")
        for cell in cells:
            self_delay = max(
                cell.rise_intrinsic + cell.rise_resistance * load,
                cell.fall_intrinsic + cell.fall_resistance * load,
            )
            upstream = upstream_resistance * cell.input_cap * gate.arity()
            cost = self_delay + upstream
            if cost < best_cost - 1e-12:
                best_cost = cost
                best = cell
        gate.cell = best.name


def network_area(network: Network, library: Library) -> float:
    """Total cell area (um^2) of a mapped network (Table 1 columns 10-11)."""
    total = 0.0
    for gate in network.gates():
        if gate.cell is not None:
            total += library.cell(gate.cell).area
    return total


def is_mapped(network: Network) -> bool:
    """True when every non-constant gate carries a cell binding."""
    return all(
        gate.cell is not None
        for gate in network.gates()
        if gate.gtype not in CONST_TYPES
    )


def mapping_stats(network: Network, library: Library) -> dict[str, float]:
    """Size/area/depth summary after mapping."""
    return {
        "gates": float(len(network)),
        "area": network_area(network, library),
        "depth": float(network.depth()),
        "inverters": float(
            sum(1 for g in network.gates() if g.gtype is GateType.INV)
        ),
    }
