"""Synthesis substrate: cleanup, decomposition, technology mapping."""

from .strash import script_rugged, simplify_trivial, strash
from .mapper import (
    bind_cells,
    decompose,
    is_mapped,
    map_network,
    mapping_stats,
    network_area,
)

__all__ = [
    "bind_cells",
    "decompose",
    "is_mapped",
    "map_network",
    "mapping_stats",
    "network_area",
    "script_rugged",
    "simplify_trivial",
    "strash",
]
