"""Structural hashing and light logic cleanup (the ``script.rugged`` stand-in).

SIS's ``script.rugged`` performs algebraic restructuring before
mapping.  A full multi-level optimizer is out of scope for the
reproduction (the rewiring engine's input is *any* mapped netlist);
what matters is that the netlist handed to mapping is deduplicated and
constant-free so gate counts and supergate statistics are meaningful.
This module provides:

* constant propagation and sweeping (via ``repro.network.transform``),
* structural hashing: gates with the same type and fanin multiset are
  merged (commutative functions compare unordered),
* single-fanin simplifications (one-input AND becomes a buffer, etc.).
"""

from __future__ import annotations

from ..network.gatetype import GateType, base_type, is_inverted
from ..network.netlist import Network
from ..network.transform import cleanup


def _signature(network: Network, name: str) -> tuple:
    gate = network.gate(name)
    fanins = tuple(sorted(gate.fanins))
    return (gate.gtype, fanins)


def strash(network: Network) -> int:
    """Merge structurally identical gates; returns gates merged.

    Runs to a fixpoint: merging two gates can make their consumers
    identical in turn.
    """
    merged_total = 0
    while True:
        seen: dict[tuple, str] = {}
        replacements: dict[str, str] = {}
        for name in network.topo_order():
            signature = _signature(network, name)
            keeper = seen.get(signature)
            if keeper is None:
                seen[signature] = name
            else:
                replacements[name] = keeper
        if not replacements:
            return merged_total
        for loser, keeper in replacements.items():
            for pin in list(network.fanout(loser)):
                network.replace_fanin(pin, keeper)
            if loser in network.outputs:
                network.replace_output(loser, keeper)
        from ..network.transform import sweep

        sweep(network)
        merged_total += len(replacements)


def simplify_trivial(network: Network) -> int:
    """Rewrite degenerate gates: one-input AND/OR to BUF, XOR to BUF, etc.

    The builder already folds these at construction time; generators
    that edit networks afterwards can end up with them again.
    Returns the number of gates rewritten.
    """
    rewritten = 0
    for name in list(network.gate_names()):
        gate = network.gate(name)
        if gate.arity() != 1:
            continue
        base = base_type(gate.gtype)
        if base in (GateType.AND, GateType.OR, GateType.XOR):
            new_type = GateType.INV if is_inverted(gate.gtype) else GateType.BUF
            network.set_gate_type(name, new_type)
            rewritten += 1
    return rewritten


def script_rugged(network: Network) -> dict[str, int]:
    """Cleanup pipeline applied before technology mapping.

    Named after the SIS script the paper uses; performs the subset that
    affects the statistics the paper reports (no algebraic division).
    """
    stats = {"simplified": simplify_trivial(network)}
    stats.update(cleanup(network))
    stats["merged"] = strash(network)
    stats.update(
        {f"post_{key}": val for key, val in cleanup(network).items()}
    )
    return stats
