"""Static timing analysis over the placed, mapped network.

Arrival times are computed per net with separate rise and fall values;
gate delays use the library's load-dependent pin-to-pin model, wire
delays come from the star/Elmore net model.  Negative-unate cells
(INV/NAND/NOR/XNOR) couple output rise to input fall and vice versa;
XOR-class cells are treated as non-unate.

Besides the full forward/backward analysis, :class:`TimingEngine`
offers *local what-if evaluation* for the optimizer: the projected
slack effect of a pin swap or a gate resize computed from cached state
in O(neighborhood), without mutating the network.  This mirrors
Coudert's neighborhood formulation that the paper builds on.  The
same cached state also feeds :meth:`TimingEngine.project_swap_slacks`,
the batch slack projection behind timing-aware wirelength rewiring
(``docs/architecture.md`` documents the projection-only pricing
contract and the commit-time additivity rule).

The engine is also *incremental*: it subscribes to the network's
mutation events and, on :meth:`TimingEngine.apply_and_update`,
re-propagates arrival times only through the transitive fanout of the
changed nets (a levelized worklist that stops as soon as values
converge) and required times only through the affected fanin frontier.
Required times are cached relative to a zero timing target, which
makes them independent of the clock period / critical-path target: a
target shift rescales every slack without re-propagating anything.
Star RC models of untouched nets are reused verbatim, so the
expensive per-node work of an update — star geometry rebuilds and
delay-model evaluations — is O(affected region), not O(network).
(Folding slacks against the target and patching logic levels after a
structural change remain cheap O(nets) arithmetic passes: the default
target is the critical-path delay, which moves with almost every
committed batch and shifts every slack with it.)
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass
from typing import Iterable, NamedTuple

try:  # numpy accelerates batch slack projection; scalar path needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

from ..library.cells import Cell, Library
from ..network.gatetype import CONST_TYPES, GateType, XOR_TYPES, is_inverted
from ..contracts import projection_only
from ..network import events
from ..network.netlist import Network, Pin
from ..network.soa import ragged_indices
from ..place.placement import Placement
from ..symmetry.swap import PinSwap
from .netmodel import (
    PO_PAD_CAP,
    StarNet,
    StarSink,
    build_star,
    pin_capacitance,
)

#: Opt-in to the determinism lint (rule D of ``python -m tools.lint``):
#: this module's float accumulations and tie-breaks must never follow
#: set-iteration (= PYTHONHASHSEED) order.
__deterministic__ = True

_NEGATIVE_UNATE = frozenset(
    {GateType.INV, GateType.NAND, GateType.NOR}
)

#: Minimum incremental-worklist size before a pass assembles the numpy
#: arrays for the masked vector sweep; smaller frontiers stay on the
#: scalar worklist, whose constant factors win there.  Both paths are
#: bit-identical, so the threshold affects speed only.
VECTOR_MIN_SEEDS = 16
#: Work-unit cost model for :attr:`TimingStats.work_units`: one
#: vectorized lane evaluation against one scalar dict-walk evaluation,
#: and the per-net array-assembly overhead each vector context pays.
#: Calibrated against measured wall time on the quick set.
VECTOR_LANE_COST = 0.05
VECTOR_SETUP_COST_PER_NET = 0.15


@dataclass
class _VectorContext:
    """Dense arrays for one incremental update's masked vector sweeps.

    Built transiently per :meth:`TimingEngine.apply_and_update` from
    the shared SoA kernel plus this engine's cached stars — never
    cached across updates, so there is no second source of truth to
    drift.  ``edge_wire[slot]`` is the star-model wire delay of fanin
    slot ``slot``; ``d_rise``/``d_fall`` are the per-gate cell delays
    ``intrinsic + resistance * total_cap`` (the same mul-then-add the
    scalar path performs, so lanes are bit-identical).
    """

    net_index: dict
    net_names: tuple
    num_inputs: int
    num_gates: int
    num_nets: int
    num_levels: int
    gate_level: "object"
    net_level: "object"
    fanin_offset: "object"
    fanin_flat: "object"
    fanin_counts: "object"
    consumer_offset: "object"
    consumer_counts: "object"
    consumer_gate: "object"
    consumer_slot: "object"
    edge_wire: "object"
    d_rise: "object"
    d_fall: "object"
    is_xor: "object"
    is_neg: "object"
    is_const: "object"




@dataclass
class PathPoint:
    """One step of a reported critical path."""

    net: str
    arrival: float
    through: str  # "gate" or "wire" or "pi"


@dataclass
class TimingStats:
    """Work counters for full vs. incremental timing updates.

    ``node_updates`` is the benchmarkable unit of timing-update work: a
    star RC rebuild, a gate arrival evaluation, or a required-time
    evaluation (the three per-node operations both the full and the
    incremental flow are made of).
    """

    full_analyses: int = 0
    incremental_updates: int = 0
    stars_built: int = 0
    arrival_evals: int = 0
    required_evals: int = 0
    #: Subset of arrival/required evaluations served by the masked
    #: vector passes (each also counts in its scalar-named total, so
    #: ``node_updates`` keeps its meaning across code paths).
    vector_arrival_evals: int = 0
    vector_required_evals: int = 0
    #: One per vector pass actually dispatched.
    vector_dispatches: int = 0
    #: Nets charged for vector-context array assembly (once per
    #: context build, ``num_nets`` each).
    vector_setup_nets: int = 0

    @property
    def node_updates(self) -> int:
        return self.stars_built + self.arrival_evals + self.required_evals

    @property
    def work_units(self) -> float:
        """Cost-weighted timing-update work.

        ``node_updates`` counts evaluations; this weights them by what
        they cost: a vectorized lane evaluation is a small fraction of
        a scalar dict-walk one, plus the per-net assembly the vector
        context pays up front.  A full analysis is all-scalar, so for
        it ``work_units == node_updates``.
        """
        vector_evals = self.vector_arrival_evals + self.vector_required_evals
        scalar_evals = (
            self.arrival_evals + self.required_evals - vector_evals
        )
        return (
            self.stars_built
            + scalar_evals
            + VECTOR_LANE_COST * vector_evals
            + VECTOR_SETUP_COST_PER_NET * self.vector_setup_nets
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "full_analyses": self.full_analyses,
            "incremental_updates": self.incremental_updates,
            "stars_built": self.stars_built,
            "arrival_evals": self.arrival_evals,
            "required_evals": self.required_evals,
            "vector_arrival_evals": self.vector_arrival_evals,
            "vector_required_evals": self.vector_required_evals,
            "vector_dispatches": self.vector_dispatches,
            "vector_setup_nets": self.vector_setup_nets,
            "node_updates": self.node_updates,
            "work_units": self.work_units,
        }


@dataclass
class EvalState:
    """Picklable read-only snapshot of everything gain projection needs.

    Produced by :meth:`TimingEngine.export_eval_state` and consumed by
    :meth:`TimingEngine.from_eval_state` — typically on the other side
    of a process boundary (``repro.parallel``).  The snapshot carries
    the engine's *cached* analysis results verbatim (arrival times,
    slacks, star RC models, logic levels), never recomputed state, so
    a reconstructed engine projects bit-identical gains: pickling
    round-trips floats exactly and the what-if code paths are shared.
    """

    network: Network
    placement: Placement
    library: Library
    period: float | None
    po_pad_cap: float
    arrival: dict[str, tuple[float, float]]
    slack: dict[str, float]
    stars: dict[str, "StarNet"]
    levels: dict[str, int]
    req0: dict[str, tuple[float, float]]
    max_delay: float
    version: int


class Gains(NamedTuple):
    """Projected local effect of a candidate move.

    ``min_gain`` is the improvement of the neighborhood's *minimum*
    slack (phase 1 of the Coudert loop); ``sum_gain`` the improvement of
    the neighborhood's slack *sum* (the relaxation phase);
    ``projected_min`` is the absolute minimum slack the neighborhood
    would have after the move (what area recovery spends).
    """

    min_gain: float
    sum_gain: float
    projected_min: float = 0.0


#: Float-noise headroom for guard-band comparisons: a projected slack
#: this close to the boundary is treated as on the safe side.
PROJECTION_EPS = 1e-12
#: Projected-vs-applied slack disagreement beyond this triggers the
#: re-pricing fallback in timing-aware consumers (see
#: :meth:`TimingEngine.project_swap_slacks`).
PROJECTION_DRIFT_TOL = 1e-6


@dataclass(frozen=True)
class SlackProjection:
    """Projected slack effect of one candidate pin rebinding.

    Produced by :meth:`TimingEngine.project_swap_slacks` without
    mutating the network.  ``projected``/``current`` map every net
    whose slack the move changes to its post-move / cached value;
    ``touched`` is the conflict footprint — every net the projection
    read or would rewrite.  Two moves with disjoint ``touched`` sets
    (exact mode) neither interact nor invalidate each other's
    projection, so their projected slacks realize *exactly* when both
    are committed in one batch.
    """

    bindings: tuple[tuple[Pin, str], ...]
    current: dict[str, float]
    projected: dict[str, float]
    touched: frozenset[str]
    exact: bool = False

    @property
    def projected_min(self) -> float:
        """Post-move minimum slack over the neighborhood."""
        return min(self.projected.values(), default=float("inf"))

    def admissible(self, margin: float) -> bool:
        """Guard-band test: may this move be committed at *margin*?

        Every neighborhood net must either keep a projected slack of at
        least *margin* (the guard band) or not get worse than it
        already is — a move is never rejected for a pre-existing
        violation it does not deepen.  Monotone in *margin*: a larger
        guard band admits a subset of the moves a smaller one admits.
        """
        for net, projected in self.projected.items():
            if projected >= margin - PROJECTION_EPS:
                continue
            current = self.current.get(net)
            if current is not None and projected >= current - PROJECTION_EPS:
                continue
            return False
        return True


class TimingEngine:
    """Placed-network STA with incremental what-if evaluation."""

    def __init__(
        self,
        network: Network,
        placement: Placement,
        library: Library,
        period: float | None = None,
        po_pad_cap: float = PO_PAD_CAP,
    ) -> None:
        self.network = network
        self.placement = placement
        self.library = library
        self.period = period
        self.po_pad_cap = po_pad_cap
        self.arrival: dict[str, tuple[float, float]] = {}
        self.required: dict[str, float] = {}
        self.slack: dict[str, float] = {}
        self.stars: dict[str, StarNet] = {}
        self.max_delay = 0.0
        self.stats = TimingStats()
        self._levels: dict[str, int] = {}
        self._analyzed_version = -1
        # required pairs relative to a zero target (target-independent)
        self._req0: dict[str, tuple[float, float]] = {}
        self._target = 0.0
        # incremental-update state fed by network mutation events
        self._dirty_stars: set[str] = set()
        self._dirty_gates: set[str] = set()
        self._dead: set[str] = set()
        self._structure_dirty = False
        self._needs_full = True
        network.subscribe(self)

    # ------------------------------------------------------------------
    # mutation tracking
    # ------------------------------------------------------------------
    def notify_network_event(self, kind: str, data: dict) -> None:
        """Accumulate dirty state from a network mutation event."""
        if kind == events.REPLACE_FANIN:
            self._dirty_stars.add(data["old"])
            self._dirty_stars.add(data["new"])
            self._dirty_gates.add(data["pin"].gate)
            self._structure_dirty = True
        elif kind == events.SWAP_FANINS:
            self._dirty_stars.add(data["net_a"])
            self._dirty_stars.add(data["net_b"])
            self._dirty_gates.add(data["pin_a"].gate)
            self._dirty_gates.add(data["pin_b"].gate)
            self._structure_dirty = True
        elif kind == events.ADD_GATE:
            self._dead.discard(data["gate"])
            self._dirty_stars.add(data["gate"])
            self._dirty_stars.update(data["fanins"])
            self._dirty_gates.add(data["gate"])
            self._structure_dirty = True
        elif kind == events.REMOVE_GATE:
            name = data["gate"]
            self._dead.add(name)
            self._dirty_stars.discard(name)
            self._dirty_gates.discard(name)
            self._dirty_stars.update(data["fanins"])
            self._structure_dirty = True
        elif kind in (events.SET_CELL, events.SET_GATE_TYPE):
            # own delay arcs change; fanin nets see a new pin load
            self._dirty_gates.add(data["gate"])
            self._dirty_stars.update(data["fanins"])
        elif kind == events.SET_FANINS:
            self._dirty_stars.update(data["old"])
            self._dirty_stars.update(data["new"])
            self._dirty_gates.add(data["gate"])
            self._structure_dirty = True
        elif kind == events.ADD_INPUT:
            self._dirty_stars.add(data["net"])
            self._structure_dirty = True
        elif kind == events.ADD_OUTPUT:
            self._dirty_stars.add(data["net"])
        elif kind == events.REPLACE_OUTPUT:
            self._dirty_stars.add(data["old"])
            self._dirty_stars.add(data["new"])
        elif kind == events.RESTORE:
            # a snapshot rollback, delivered as an exact gate diff
            if data["io_changed"]:
                self._needs_full = True
                return
            for name, fanins in data["removed"]:
                self._dead.add(name)
                self._dirty_stars.discard(name)
                self._dirty_gates.discard(name)
                self._dirty_stars.update(fanins)
            for name, fanins in data["added"]:
                self._dead.discard(name)
                self._dirty_stars.add(name)
                self._dirty_stars.update(fanins)
                self._dirty_gates.add(name)
            for name, old_fanins, new_fanins in data["changed"]:
                self._dirty_gates.add(name)
                self._dirty_stars.update(old_fanins)
                self._dirty_stars.update(new_fanins)
            self._structure_dirty = True
        else:
            # untracked mutation: all cached timing is suspect
            self._needs_full = True

    # ------------------------------------------------------------------
    # full analysis
    # ------------------------------------------------------------------
    def analyze(self) -> None:
        """Run full STA (arrival, required, slack for every net)."""
        network = self.network
        self.placement.ensure_covered(network)
        self.stars = {}
        self.arrival = {}
        for pi in network.inputs:
            self.arrival[pi] = (0.0, 0.0)
            self._ensure_star(pi)
        order = network.topo_order()
        self._levels = {net: 0 for net in network.inputs}
        for name in order:
            self._ensure_star(name)
            self.arrival[name] = self._gate_arrival(name)
            gate = network.gate(name)
            self._levels[name] = 1 + max(
                (self._levels[f] for f in gate.fanins), default=0
            )
        self.max_delay = 0.0
        for output in network.outputs:
            rise, fall = self.arrival[output]
            po_delay = self._po_wire_delay(output)
            self.max_delay = max(self.max_delay, rise + po_delay,
                                 fall + po_delay)
        target = self.period if self.period is not None else self.max_delay
        self._backward_required(order)
        self._fold_slacks(target)
        self._analyzed_version = network.version
        self.stats.full_analyses += 1
        self._clear_dirty()

    def is_fresh(self) -> bool:
        """True when the cached analysis matches the network version."""
        return self._analyzed_version == self.network.version

    def _clear_dirty(self) -> None:
        self._dirty_stars.clear()
        self._dirty_gates.clear()
        self._dead.clear()
        self._structure_dirty = False
        self._needs_full = False

    def _ensure_star(self, net: str) -> StarNet:
        star = self.stars.get(net)
        if star is None:
            star = build_star(
                self.network, self.placement, self.library, net,
                po_pad_cap=self.po_pad_cap,
            )
            self.stars[net] = star
            self.stats.stars_built += 1
        return star

    def _cell_of(self, name: str) -> Cell | None:
        gate = self.network.gate(name)
        if gate.cell is None:
            return None
        return self.library.cell(gate.cell)

    def _gate_arrival(self, name: str) -> tuple[float, float]:
        """Arrival (rise, fall) at a gate's output net."""
        self.stats.arrival_evals += 1
        network = self.network
        gate = network.gate(name)
        if gate.gtype in CONST_TYPES:
            return (0.0, 0.0)
        cell = self._cell_of(name)
        load = self._ensure_star(name).total_cap
        if cell is None:
            d_rise = d_fall = 0.0
        else:
            d_rise = cell.delay(load, "rise")
            d_fall = cell.delay(load, "fall")
        worst_rise = 0.0
        worst_fall = 0.0
        for index, fanin in enumerate(gate.fanins):
            pin = Pin(name, index)
            wire = self.stars[fanin].sink_delay(pin)
            in_rise, in_fall = self.arrival[fanin]
            pin_rise = in_rise + wire
            pin_fall = in_fall + wire
            out_rise, out_fall = _propagate(
                gate.gtype, pin_rise, pin_fall
            )
            worst_rise = max(worst_rise, out_rise)
            worst_fall = max(worst_fall, out_fall)
        return (worst_rise + d_rise, worst_fall + d_fall)

    def _po_wire_delay(self, output: str) -> float:
        star = self.stars.get(output)
        if star is None:
            return 0.0
        for sink in star.sinks:
            if sink.pin is None:
                return sink.wire_delay
        return 0.0

    def _backward_required(self, order: list[str]) -> None:
        """Per-transition required times relative to a zero target.

        Unateness couples transitions the same way the forward pass
        does, so on the critical path required meets arrival exactly
        (zero slack at the default period).  The pairs stored in
        ``_req0`` are offsets from the target: absolute required times
        and slacks are derived by :meth:`_fold_slacks`.
        """
        network = self.network
        INF = float("inf")
        req: dict[str, tuple[float, float]] = {
            net: (INF, INF) for net in network.nets()
        }
        for output in network.outputs:
            po_delay = self._po_wire_delay(output)
            old_rise, old_fall = req[output]
            req[output] = (
                min(old_rise, -po_delay),
                min(old_fall, -po_delay),
            )
        for name in reversed(order):
            self.stats.required_evals += 1
            gate = network.gate(name)
            cell = self._cell_of(name)
            if cell is None:
                d_rise = d_fall = 0.0
            else:
                load = self.stars[name].total_cap
                d_rise = cell.delay(load, "rise")
                d_fall = cell.delay(load, "fall")
            out_rise, out_fall = req[name]
            # budget available at the gate's input pins per transition
            pin_rise_budget, pin_fall_budget = _required_through(
                gate.gtype, out_rise - d_rise, out_fall - d_fall
            )
            for index, fanin in enumerate(gate.fanins):
                pin = Pin(name, index)
                wire = self.stars[fanin].sink_delay(pin)
                old_rise, old_fall = req[fanin]
                req[fanin] = (
                    min(old_rise, pin_rise_budget - wire),
                    min(old_fall, pin_fall_budget - wire),
                )
        self._req0 = req

    def _fold_slacks(self, target: float) -> None:
        """Derive absolute required times and slacks from ``_req0``."""
        self._target = target
        required: dict[str, float] = {}
        slack: dict[str, float] = {}
        arrival = self.arrival
        for net, (req_rise, req_fall) in self._req0.items():
            required[net] = min(req_rise, req_fall) + target
            rise, fall = arrival.get(net, (0.0, 0.0))
            slack[net] = min(req_rise - rise, req_fall - fall) + target
        self.required = required
        self.slack = slack

    # ------------------------------------------------------------------
    # incremental update
    # ------------------------------------------------------------------
    def invalidate(self, nets: Iterable[str]) -> None:
        """Mark nets' RC models and timing as stale.

        For callers that change something the mutation events cannot
        see (a placement tweak, an external edit): the named nets'
        stars are rebuilt and their drivers re-evaluated on the next
        :meth:`apply_and_update` / :meth:`refresh`.
        """
        network = self.network
        for net in nets:
            self._dirty_stars.add(net)
            if net in network and not network.is_input(net):
                self._dirty_gates.add(net)

    def refresh(self) -> None:
        """Bring cached timing up to date, incrementally when possible."""
        if self._needs_full or self._analyzed_version < 0:
            self.analyze()
        elif (
            not self.is_fresh()
            or self._dirty_stars or self._dirty_gates or self._dead
        ):
            self.apply_and_update()

    def apply_and_update(self, footprint: Iterable[str] | None = None) -> None:
        """Propagate committed network changes through cached timing.

        Re-propagates arrivals through the transitive fanout of the
        changed nets only (levelized worklist, early termination on
        convergence) and required times through the affected fanin
        frontier; star models of untouched nets are reused.  The
        result matches a fresh :meth:`analyze` exactly.  *footprint*
        optionally names extra nets to invalidate (see
        :meth:`invalidate`).
        """
        if footprint is not None:
            self.invalidate(footprint)
        if self._needs_full or self._analyzed_version < 0:
            self.analyze()
            return
        network = self.network
        self.stats.incremental_updates += 1
        # 0. forget removed nets
        for net in self._dead:
            self.arrival.pop(net, None)
            self._req0.pop(net, None)
            self.required.pop(net, None)
            self.slack.pop(net, None)
            self.stars.pop(net, None)
            self._levels.pop(net, None)
        # 1. place any gates rewiring created (inverters nestle at
        #    their sink, perturbing nothing)
        self.placement.ensure_covered(network)
        # 2. structural caches
        if self._structure_dirty:
            self._levels = {net: 0 for net in network.inputs}
            for name in network.topo_order():
                gate = network.gate(name)
                self._levels[name] = 1 + max(
                    (self._levels[f] for f in gate.fanins), default=0
                )
        levels = self._levels
        # 3. rebuild the RC models of touched nets
        rebuilt: set[str] = set()
        for net in self._dirty_stars:
            if net not in network:
                continue
            self.stars.pop(net, None)
            self._ensure_star(net)
            rebuilt.add(net)
        for pi in network.inputs:
            if pi not in self.arrival:
                self.arrival[pi] = (0.0, 0.0)
        # 4. forward: re-propagate arrivals through the affected fanout
        seeds: set[str] = set()
        for net in rebuilt:
            if not network.is_input(net):
                seeds.add(net)                  # driver sees a new load
            for sink in self.stars[net].sinks:
                if sink.pin is not None:
                    seeds.add(sink.pin.gate)    # sink wire delay moved
        for name in self._dirty_gates:
            if name in network and not network.is_input(name):
                seeds.add(name)
        # large frontiers take the masked vector sweep over the shared
        # SoA arrays; small ones (and any state the arrays cannot
        # describe) stay on the scalar worklist — both are bit-identical
        ctx = (
            self._vector_context()
            if len(seeds) >= VECTOR_MIN_SEEDS
            else None
        )
        if ctx is not None:
            self._forward_arrival_vector(ctx, seeds)
        else:
            heap = [(levels.get(name, 0), name) for name in seeds]
            heapq.heapify(heap)
            done: set[str] = set()
            while heap:
                _, name = heapq.heappop(heap)
                if name in done:
                    continue
                done.add(name)
                new_arrival = self._gate_arrival(name)
                if self.arrival.get(name) != new_arrival:
                    self.arrival[name] = new_arrival
                    for pin in network.fanout(name):
                        if pin.gate not in done:
                            heapq.heappush(
                                heap, (levels.get(pin.gate, 0), pin.gate)
                            )
        # 5. critical path target
        self.max_delay = 0.0
        for output in network.outputs:
            rise, fall = self.arrival[output]
            po_delay = self._po_wire_delay(output)
            self.max_delay = max(self.max_delay, rise + po_delay,
                                 fall + po_delay)
        target = self.period if self.period is not None else self.max_delay
        # 6. backward: re-propagate required through the fanin frontier
        po_nets = set(network.outputs)
        bseeds: set[str] = set()
        for net in rebuilt:
            bseeds.add(net)
            if not network.is_input(net):
                bseeds.update(network.gate(net).fanins)
        for name in self._dirty_gates:
            if name not in network:
                continue
            bseeds.add(name)
            if not network.is_input(name):
                bseeds.update(network.gate(name).fanins)
        if ctx is None and len(bseeds) >= VECTOR_MIN_SEEDS:
            ctx = self._vector_context()
        if ctx is not None:
            self._backward_required_vector(ctx, bseeds)
        else:
            bheap = [(-levels.get(net, 0), net) for net in bseeds]
            heapq.heapify(bheap)
            bdone: set[str] = set()
            while bheap:
                _, net = heapq.heappop(bheap)
                if net in bdone:
                    continue
                bdone.add(net)
                pair = self._recompute_req0(net, po_nets)
                if self._req0.get(net) != pair:
                    self._req0[net] = pair
                    if not network.is_input(net):
                        for fanin in network.gate(net).fanins:
                            if fanin not in bdone:
                                heapq.heappush(
                                    bheap, (-levels.get(fanin, 0), fanin)
                                )
        # 7. fold slacks against the (possibly shifted) target
        self._fold_slacks(target)
        self._analyzed_version = network.version
        self._clear_dirty()

    def _recompute_req0(self, net: str, po_nets: set[str]) -> tuple[float, float]:
        """Zero-target required pair at *net* from its consumers' cache."""
        self.stats.required_evals += 1
        network = self.network
        INF = float("inf")
        rise = fall = INF
        if net in po_nets:
            po_delay = self._po_wire_delay(net)
            rise = fall = -po_delay
        for pin in network.fanout(net):
            consumer = network.gate(pin.gate)
            out_pair = self._req0.get(pin.gate)
            if out_pair is None:
                continue
            cell = self._cell_of(pin.gate)
            if cell is None:
                d_rise = d_fall = 0.0
            else:
                load = self.stars[pin.gate].total_cap
                d_rise = cell.delay(load, "rise")
                d_fall = cell.delay(load, "fall")
            pin_rise_budget, pin_fall_budget = _required_through(
                consumer.gtype, out_pair[0] - d_rise, out_pair[1] - d_fall
            )
            wire = self.stars[net].sink_delay(pin)
            rise = min(rise, pin_rise_budget - wire)
            fall = min(fall, pin_fall_budget - wire)
        return (rise, fall)

    # ------------------------------------------------------------------
    # masked vector re-propagation (shared SoA kernel arrays)
    # ------------------------------------------------------------------
    def _vector_context(self) -> "_VectorContext | None":
        """Assemble the dense arrays for the vector sweeps, or ``None``.

        Bails to the scalar worklists whenever the flat view or the
        cached timing state cannot fully describe the network — numpy
        missing, a gate without a star, a cell name the library does
        not know, or a star sink that no longer matches the current
        wiring.  Both paths are bit-identical, so bailing only costs
        speed.
        """
        if _np is None:
            return None
        from ..logic.simcore.compiled import OP_CONST0, OP_CONST1, OP_XOR
        from ..network.soa import get_soa

        kernel = get_soa(self.network)
        compiled = kernel.sync()
        arrays = kernel.arrays()
        if arrays is None or compiled.num_gates == 0:
            return None
        num_inputs = compiled.num_inputs
        num_gates = compiled.num_gates
        stars = self.stars
        cells = self.library
        load = _np.zeros(num_gates)
        rise_int = _np.zeros(num_gates)
        rise_res = _np.zeros(num_gates)
        fall_int = _np.zeros(num_gates)
        fall_res = _np.zeros(num_gates)
        for position, name in enumerate(compiled.gate_names):
            star = stars.get(name)
            if star is None:
                return None
            load[position] = star.total_cap
            cell_name = kernel.cells[position]
            if cell_name is None:
                continue
            try:
                cell = cells.cell(cell_name)
            except KeyError:
                return None
            rise_int[position] = cell.rise_intrinsic
            rise_res[position] = cell.rise_resistance
            fall_int[position] = cell.fall_intrinsic
            fall_res[position] = cell.fall_resistance
        net_index = compiled.net_index
        offsets = compiled.fanin_offset
        flat = compiled.fanin_flat
        num_edges = len(flat)
        edge_wire = _np.zeros(num_edges)
        edge_ok = _np.zeros(num_edges, dtype=bool)
        for net, star in stars.items():
            index = net_index.get(net)
            if index is None:
                continue
            for sink in star.sinks:
                pin = sink.pin
                if pin is None:
                    continue
                gate_index = net_index.get(pin.gate)
                if gate_index is None or gate_index < num_inputs:
                    continue
                position = gate_index - num_inputs
                width = offsets[position + 1] - offsets[position]
                if not 0 <= pin.index < width:
                    continue
                slot = offsets[position] + pin.index
                if flat[slot] != index or edge_ok[slot]:
                    continue
                edge_ok[slot] = True
                edge_wire[slot] = sink.wire_delay
        if not edge_ok.all():
            return None
        opcode = arrays["opcode"]
        is_xor = opcode == OP_XOR
        is_const = (opcode == OP_CONST0) | (opcode == OP_CONST1)
        self.stats.vector_setup_nets += compiled.num_nets
        return _VectorContext(
            net_index=net_index,
            net_names=compiled.inputs + compiled.gate_names,
            num_inputs=num_inputs,
            num_gates=num_gates,
            num_nets=compiled.num_nets,
            num_levels=arrays["num_levels"],
            gate_level=arrays["gate_level"],
            net_level=arrays["net_level"],
            fanin_offset=arrays["fanin_offset"],
            fanin_flat=arrays["fanin_flat"],
            fanin_counts=arrays["fanin_counts"],
            consumer_offset=arrays["consumer_offset"],
            consumer_counts=arrays["consumer_counts"],
            consumer_gate=arrays["consumer_gate"],
            consumer_slot=arrays["consumer_slot"],
            edge_wire=edge_wire,
            d_rise=rise_int + rise_res * load,
            d_fall=fall_int + fall_res * load,
            is_xor=is_xor,
            is_neg=arrays["invert"] & ~is_xor,
            is_const=is_const,
        )

    def _forward_arrival_vector(
        self, ctx: _VectorContext, seeds: set[str]
    ) -> None:
        """Levelized forward sweep over a dirty mask (= scalar worklist).

        Arrivals live in dense (rise, fall, present) arrays; each level
        gathers the dirty gates' fanin arrivals plus wire delays in one
        ragged numpy pass, folds unateness and the cell delay, and
        marks consumers of changed nets dirty.  The evaluation set and
        every float match the scalar worklist exactly: fanins sit at
        strictly lower levels, the reductions are pure selections, and
        each lane performs the same mul-then-add arithmetic.
        """
        np = _np
        num_inputs = ctx.num_inputs
        arr_rise = np.zeros(ctx.num_nets)
        arr_fall = np.zeros(ctx.num_nets)
        present = np.zeros(ctx.num_nets, dtype=bool)
        net_index = ctx.net_index
        for net, pair in self.arrival.items():
            index = net_index.get(net)
            if index is not None:
                arr_rise[index] = pair[0]
                arr_fall[index] = pair[1]
                present[index] = True
        dirty = np.zeros(ctx.num_gates, dtype=bool)
        for name in seeds:
            index = net_index.get(name)
            if index is not None and index >= num_inputs:
                dirty[index - num_inputs] = True
        self.stats.vector_dispatches += 1
        gate_level = ctx.gate_level
        changed_positions: list = []
        for level in range(1, ctx.num_levels):
            sel = np.nonzero(dirty & (gate_level == level))[0]
            if sel.size == 0:
                continue
            dirty[sel] = False
            self.stats.arrival_evals += sel.size
            self.stats.vector_arrival_evals += sel.size
            counts = ctx.fanin_counts[sel]
            worst_rise = np.zeros(sel.size)
            worst_fall = np.zeros(sel.size)
            edges, seg_starts = ragged_indices(ctx.fanin_offset[sel], counts)
            if edges.size:
                wire = ctx.edge_wire[edges]
                fanin = ctx.fanin_flat[edges]
                pin_rise = arr_rise[fanin] + wire
                pin_fall = arr_fall[fanin] + wire
                own_xor = np.repeat(ctx.is_xor[sel], counts)
                own_neg = np.repeat(ctx.is_neg[sel], counts)
                both = np.maximum(pin_rise, pin_fall)
                out_rise = np.where(
                    own_xor, both, np.where(own_neg, pin_fall, pin_rise)
                )
                out_fall = np.where(
                    own_xor, both, np.where(own_neg, pin_rise, pin_fall)
                )
                nonempty = counts > 0
                worst_rise[nonempty] = np.maximum.reduceat(
                    out_rise, seg_starts[nonempty]
                )
                worst_fall[nonempty] = np.maximum.reduceat(
                    out_fall, seg_starts[nonempty]
                )
                # scalar worst-folds start at 0.0
                np.maximum(worst_rise, 0.0, out=worst_rise)
                np.maximum(worst_fall, 0.0, out=worst_fall)
            const = ctx.is_const[sel]
            new_rise = np.where(const, 0.0, worst_rise + ctx.d_rise[sel])
            new_fall = np.where(const, 0.0, worst_fall + ctx.d_fall[sel])
            nets = sel + num_inputs
            changed = (
                ~present[nets]
                | (new_rise != arr_rise[nets])
                | (new_fall != arr_fall[nets])
            )
            arr_rise[nets] = new_rise
            arr_fall[nets] = new_fall
            present[nets] = True
            changed_nets = nets[changed]
            if changed_nets.size:
                changed_positions.append(sel[changed])
                cons, _ = ragged_indices(
                    ctx.consumer_offset[changed_nets],
                    ctx.consumer_counts[changed_nets],
                )
                if cons.size:
                    dirty[ctx.consumer_gate[cons]] = True
        if changed_positions:
            all_changed = np.concatenate(changed_positions)
            names = ctx.net_names
            arrival = self.arrival
            rises = arr_rise[all_changed + num_inputs].tolist()
            falls = arr_fall[all_changed + num_inputs].tolist()
            for position, rise, fall in zip(
                all_changed.tolist(), rises, falls
            ):
                arrival[names[num_inputs + position]] = (rise, fall)

    def _backward_required_vector(
        self, ctx: _VectorContext, bseeds: set[str]
    ) -> None:
        """Levelized backward sweep over a dirty net mask.

        The dense mirror of the scalar loop around
        :meth:`_recompute_req0`: per level (descending) each dirty net
        refolds its zero-target required pair from its consumers'
        cached pairs, the consumer cell delays, unateness, and the
        star wire delays; changed nets mark their driver's fanins
        dirty.  A consumer with no cached pair contributes ``+inf`` —
        the identity of the min fold — exactly like the scalar
        ``continue``.
        """
        np = _np
        INF = float("inf")
        num_inputs = ctx.num_inputs
        req_rise = np.full(ctx.num_nets, INF)
        req_fall = np.full(ctx.num_nets, INF)
        present = np.zeros(ctx.num_nets, dtype=bool)
        net_index = ctx.net_index
        for net, pair in self._req0.items():
            index = net_index.get(net)
            if index is not None:
                req_rise[index] = pair[0]
                req_fall[index] = pair[1]
                present[index] = True
        po_base = np.full(ctx.num_nets, INF)
        for net in self.network.outputs:
            index = net_index.get(net)
            if index is not None:
                po_base[index] = -self._po_wire_delay(net)
        dirty = np.zeros(ctx.num_nets, dtype=bool)
        for net in bseeds:
            index = net_index.get(net)
            if index is not None:
                dirty[index] = True
        self.stats.vector_dispatches += 1
        net_level = ctx.net_level
        changed_all: list = []
        for level in range(ctx.num_levels - 1, -1, -1):
            sel = np.nonzero(dirty & (net_level == level))[0]
            if sel.size == 0:
                continue
            dirty[sel] = False
            self.stats.required_evals += sel.size
            self.stats.vector_required_evals += sel.size
            new_rise = po_base[sel].copy()
            new_fall = po_base[sel].copy()
            counts = ctx.consumer_counts[sel]
            edges, seg_starts = ragged_indices(
                ctx.consumer_offset[sel], counts
            )
            if edges.size:
                gates = ctx.consumer_gate[edges]
                gate_nets = gates + num_inputs
                # absent consumer pairs hold the +inf they were
                # initialised with: a no-op in the min fold, like the
                # scalar skip
                out_rise = req_rise[gate_nets] - ctx.d_rise[gates]
                out_fall = req_fall[gate_nets] - ctx.d_fall[gates]
                g_xor = ctx.is_xor[gates]
                g_neg = ctx.is_neg[gates]
                both = np.minimum(out_rise, out_fall)
                budget_rise = np.where(
                    g_xor, both, np.where(g_neg, out_fall, out_rise)
                )
                budget_fall = np.where(
                    g_xor, both, np.where(g_neg, out_rise, out_fall)
                )
                wire = ctx.edge_wire[ctx.consumer_slot[edges]]
                contrib_rise = budget_rise - wire
                contrib_fall = budget_fall - wire
                nonempty = counts > 0
                new_rise[nonempty] = np.minimum(
                    new_rise[nonempty],
                    np.minimum.reduceat(contrib_rise, seg_starts[nonempty]),
                )
                new_fall[nonempty] = np.minimum(
                    new_fall[nonempty],
                    np.minimum.reduceat(contrib_fall, seg_starts[nonempty]),
                )
            changed = (
                ~present[sel]
                | (new_rise != req_rise[sel])
                | (new_fall != req_fall[sel])
            )
            req_rise[sel] = new_rise
            req_fall[sel] = new_fall
            present[sel] = True
            changed_ids = sel[changed]
            if changed_ids.size:
                changed_all.append(changed_ids)
                gate_ids = changed_ids[changed_ids >= num_inputs]
                gate_ids = gate_ids - num_inputs
                if gate_ids.size:
                    fans, _ = ragged_indices(
                        ctx.fanin_offset[gate_ids],
                        ctx.fanin_counts[gate_ids],
                    )
                    if fans.size:
                        dirty[ctx.fanin_flat[fans]] = True
        if changed_all:
            ids = np.concatenate(changed_all)
            names = ctx.net_names
            req0 = self._req0
            rises = req_rise[ids].tolist()
            falls = req_fall[ids].tolist()
            for index, rise, fall in zip(ids.tolist(), rises, falls):
                req0[names[index]] = (rise, fall)

    # ------------------------------------------------------------------
    # snapshot export (parallel gain evaluation)
    # ------------------------------------------------------------------
    def export_eval_state(self) -> EvalState:
        """Snapshot the cached analysis for read-only gain projection.

        The returned :class:`EvalState` is picklable (the network drops
        its listeners on serialization) and references the engine's
        live caches without copying — callers must treat it as frozen
        and serialize it before the next committed batch.  A worker
        rebuilt from it via :meth:`from_eval_state` computes
        :meth:`swap_gain` / :meth:`resize_gain` bit-identically to this
        engine.
        """
        self.refresh()
        return EvalState(
            network=self.network,
            placement=self.placement,
            library=self.library,
            period=self.period,
            po_pad_cap=self.po_pad_cap,
            arrival=self.arrival,
            slack=self.slack,
            stars=self.stars,
            levels=self._levels,
            req0=self._req0,
            max_delay=self.max_delay,
            version=self.network.version,
        )

    @classmethod
    def from_eval_state(cls, state: EvalState) -> "TimingEngine":
        """Engine over a snapshot, ready for what-if evaluation.

        No analysis runs: the cached dicts — including the zero-target
        required pairs the incremental backward pass consumes — are
        adopted verbatim, so the reconstruction cost is O(1) beyond
        unpickling.  The primary use is the non-mutating projection
        surface (``swap_gain``, ``resize_gain``, ``slack``,
        ``worst_arrival``); committing moves through the replica also
        works and triggers the normal incremental machinery against
        the snapshot's network copy.
        """
        engine = cls(
            state.network, state.placement, state.library,
            period=state.period, po_pad_cap=state.po_pad_cap,
        )
        engine.arrival = state.arrival
        engine.slack = state.slack
        engine.stars = state.stars
        engine._levels = state.levels
        engine._req0 = state.req0
        engine.max_delay = state.max_delay
        engine._target = (
            state.period if state.period is not None else state.max_delay
        )
        engine._analyzed_version = state.version
        engine._needs_full = False
        return engine

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def worst_arrival(self, net: str) -> float:
        """Scalar (worst of rise/fall) arrival at a net."""
        rise, fall = self.arrival[net]
        return max(rise, fall)

    def worst_slack(self) -> float:
        """Minimum slack over all nets."""
        return min(self.slack.values(), default=0.0)

    def critical_path(self) -> list[PathPoint]:
        """Trace the worst path from its primary output back to a PI."""
        if not self.arrival:
            self.analyze()
        worst_po = max(
            self.network.outputs,
            key=lambda net: self.worst_arrival(net) + self._po_wire_delay(net),
            default=None,
        )
        if worst_po is None:
            return []
        path: list[PathPoint] = []
        current = worst_po
        while True:
            path.append(
                PathPoint(
                    net=current,
                    arrival=self.worst_arrival(current),
                    through="pi" if self.network.is_input(current) else "gate",
                )
            )
            if self.network.is_input(current):
                break
            gate = self.network.gate(current)
            if not gate.fanins:
                break
            best_fanin = None
            best_value = -1.0
            for index, fanin in enumerate(gate.fanins):
                wire = self.stars[fanin].sink_delay(Pin(current, index))
                value = self.worst_arrival(fanin) + wire
                if value > best_value:
                    best_value = value
                    best_fanin = fanin
            current = best_fanin
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # local what-if evaluation
    # ------------------------------------------------------------------
    @projection_only
    def swap_gain(self, swap: PinSwap) -> Gains:
        """Projected local slack gains of a pin swap (ns).

        Positive values mean the neighborhood improves.  The projection
        rebuilds the two affected star nets with their sink pins
        exchanged, recomputes driver arrivals and sink-gate arrivals
        from cached values, and compares slacks; inverting swaps add an
        inverter's delay and input load on both legs.
        """
        network = self.network
        net_a = network.fanin_net(swap.pin_a)
        net_b = network.fanin_net(swap.pin_b)
        if net_a == net_b:
            return Gains(0.0, 0.0, float("inf"))
        inv_cell = None
        if swap.inverting:
            inv_cell = self.library.implementations(GateType.INV, 1)[0]
        context: dict[str, float] = {}
        frontier: dict[str, float] = {}
        stars_new = {}
        po_nets = set(network.outputs)
        for net, lost_pin, gained_pin in (
            (net_a, swap.pin_a, swap.pin_b),
            (net_b, swap.pin_b, swap.pin_a),
        ):
            star = self._ensure_star(net)
            specs = []
            for sink in star.sinks:
                if sink.pin == lost_pin:
                    continue
                specs.append((sink.pin, sink.location, sink.pin_cap))
            gained_cap = (
                inv_cell.input_cap if inv_cell is not None
                else pin_capacitance(network, self.library, gained_pin)
            )
            specs.append(
                (
                    gained_pin,
                    self.placement.locations[gained_pin.gate],
                    gained_cap,
                )
            )
            stars_new[net] = build_star(
                network, self.placement, self.library, net,
                po_pad_cap=self.po_pad_cap, override_sinks=specs,
            )
            context[net] = self._driver_arrival_with_load(
                net, stars_new[net].total_cap
            )
            if net in po_nets:
                frontier[net] = context[net] + self._po_delta(
                    net, stars_new[net]
                )
        affected_gates = {swap.pin_a.gate, swap.pin_b.gate}
        for net in (net_a, net_b):
            for sink in self.stars[net].sinks:
                if sink.pin is not None:
                    affected_gates.add(sink.pin.gate)
        # project in level order and feed results forward so chained
        # effects inside a supergate (the logic-level-reduction move)
        # are captured, not just first-order ones
        for gate_name in sorted(
            affected_gates,
            key=lambda name: (self._levels.get(name, 0), name),
        ):
            projected = self._project_gate_arrival(
                gate_name,
                stars_new,
                context,
                swapped={swap.pin_a: net_b, swap.pin_b: net_a},
                inv_cell=inv_cell,
                inv_pins={swap.pin_a, swap.pin_b},
            )
            frontier[gate_name] = projected
            context[gate_name] = projected
        return self._local_gain(frontier)

    @projection_only
    def resize_gain(self, gate_name: str, new_cell_name: str) -> Gains:
        """Projected local slack gains of a gate resize."""
        network = self.network
        gate = network.gate(gate_name)
        old_cell = self._cell_of(gate_name)
        new_cell = self.library.cell(new_cell_name)
        if old_cell is None:
            return Gains(0.0, 0.0, float("inf"))
        context: dict[str, float] = {}
        frontier: dict[str, float] = {}
        stars_new: dict[str, StarNet] = {}
        po_nets = set(network.outputs)
        # fanin nets see a different pin capacitance; sorted so the
        # frontier's float-summed gains are PYTHONHASHSEED-independent
        delta_cap = new_cell.input_cap - old_cell.input_cap
        affected_gates: set[str] = {gate_name}
        for fanin in sorted(set(gate.fanins)):
            star = self._ensure_star(fanin)
            new_cap = star.total_cap + delta_cap * gate.fanins.count(fanin)
            stars_new[fanin] = _with_total_cap(star, new_cap)
            context[fanin] = self._driver_arrival_with_load(fanin, new_cap)
            if fanin in po_nets:
                frontier[fanin] = context[fanin]
            for sink in star.sinks:
                if sink.pin is not None:
                    affected_gates.add(sink.pin.gate)
        for name in sorted(
            affected_gates,
            key=lambda other: (self._levels.get(other, 0), other),
        ):
            projected = self._project_gate_arrival(
                name,
                stars_new,
                context,
                resized={gate_name: new_cell},
            )
            frontier[name] = projected
            context[name] = projected
        return self._local_gain(frontier)

    def _driver_arrival_with_load(self, net: str, new_load: float) -> float:
        """Scalar arrival at *net* if its driver saw *new_load*."""
        if self.network.is_input(net):
            return 0.0
        cell = self._cell_of(net)
        if cell is None:
            return self.worst_arrival(net)
        old_load = self.stars[net].total_cap
        old = self.worst_arrival(net)
        delta = cell.worst_delay(new_load) - cell.worst_delay(old_load)
        return old + delta

    def _project_gate_arrival(
        self,
        gate_name: str,
        stars_new: dict[str, StarNet],
        new_arrivals: dict[str, float],
        swapped: dict[Pin, str] | None = None,
        inv_cell: Cell | None = None,
        inv_pins: set[Pin] | None = None,
        resized: dict[str, Cell] | None = None,
    ) -> float:
        """Scalar arrival of a gate with selected nets/pins overridden."""
        network = self.network
        gate = network.gate(gate_name)
        if gate.gtype in CONST_TYPES:
            return 0.0
        cell = (resized or {}).get(gate_name) or self._cell_of(gate_name)
        load = self.stars[gate_name].total_cap if (
            gate_name in self.stars
        ) else 0.0
        d_gate = cell.worst_delay(load) if cell is not None else 0.0
        worst = 0.0
        for index, fanin in enumerate(gate.fanins):
            pin = Pin(gate_name, index)
            if swapped and pin in swapped:
                fanin = swapped[pin]
            star = stars_new.get(fanin) or self._ensure_star(fanin)
            try:
                wire = star.sink_delay(pin)
            except KeyError:
                # what-if star: the pin keeps its cached wire delay
                wire = self.stars[fanin].sink_delay(pin)
            src = new_arrivals.get(fanin)
            if src is None:
                src = self.worst_arrival(fanin)
            pin_arrival = src + wire
            if inv_cell is not None and inv_pins and pin in inv_pins:
                pin_cap = pin_capacitance(network, self.library, pin)
                pin_arrival += inv_cell.worst_delay(pin_cap)
            worst = max(worst, pin_arrival)
        return worst + d_gate

    def _po_delta(self, net: str, new_star: StarNet) -> float:
        """Change of the PO-pad wire delay when a net's star changes."""
        old = 0.0
        for sink in self._ensure_star(net).sinks:
            if sink.pin is None:
                old = sink.wire_delay
                break
        new = 0.0
        for sink in new_star.sinks:
            if sink.pin is None:
                new = sink.wire_delay
                break
        return new - old

    def _local_gain(self, frontier: dict[str, float]) -> Gains:
        """Compare projected vs. current slacks over the frontier nets.

        The frontier contains only nets whose projected arrival already
        folds in *every* effect of the move (changed fanin arrivals,
        wire delays, own gate delay); upstream nets are deliberately
        excluded because their slowdown or speedup is visible at the
        frontier and their own required times would shift with the
        move.
        """
        current_min = float("inf")
        projected_min = float("inf")
        sum_delta = 0.0
        for net, projected_arrival in frontier.items():
            if net not in self.slack:
                continue
            current = self.slack[net]
            delta = projected_arrival - self.worst_arrival(net)
            current_min = min(current_min, current)
            projected_min = min(projected_min, current - delta)
            sum_delta -= delta
        if current_min == float("inf"):
            return Gains(0.0, 0.0, float("inf"))
        return Gains(projected_min - current_min, sum_delta, projected_min)

    def slack_sum(self, nets: list[str]) -> float:
        """Sum of slacks over the given nets (relaxation-phase metric)."""
        return sum(self.slack.get(net, 0.0) for net in nets)

    # ------------------------------------------------------------------
    # batch slack projection (timing-aware wirelength rewiring)
    # ------------------------------------------------------------------
    @projection_only
    def project_swap_slacks(
        self,
        batch: list[tuple[tuple[Pin, str], ...]],
        exact: bool = False,
    ) -> list[SlackProjection]:
        """Mutation-free slack projections for a batch of pin rebindings.

        Each batch element is a rebinding: a sequence of ``(pin,
        new_net)`` pairs — ``((pin_a, net_b), (pin_b, net_a))`` for a
        non-inverting leaf swap, or the ``cross_swap_bindings`` list of
        a cross-supergate exchange.  Like :meth:`swap_gain`, pricing
        reuses the cached star/arrival state and never mutates the
        network — zero events reach subscribed engines.

        The default *frontier* mode scores the whole batch at once:
        the affected nets' star RC models are re-derived in one
        vectorized numpy pass (pure-Python fallback included) and
        arrivals are re-folded over the two-net neighborhood only —
        cheap, slightly approximate beyond the frontier, right for
        pre-filtering thousands of candidates.

        ``exact=True`` instead mirrors :meth:`apply_and_update`
        per candidate: arrivals are re-propagated through the whole
        affected fanout and required times through the affected fanin
        frontier (worklists over overlay dicts, early termination on
        convergence), so the projected slacks equal the post-commit
        re-fold to float noise and ``touched`` names every net the
        walk visited.  Committing a set of moves whose exact
        ``touched`` sets are pairwise disjoint realizes every
        projection exactly — the additivity the batched wirelength
        committer relies on.  Exact agreement with the applied state
        additionally requires a pinned target (``period`` set):
        with a floating target the re-timed critical path re-folds
        every slack.  Consumers detect residual drift (float noise,
        overlapping neighborhoods) against
        :data:`PROJECTION_DRIFT_TOL` and fall back to re-pricing.
        """
        self.refresh()
        if exact:
            return [self._project_rebind_exact(tuple(b)) for b in batch]
        prepared = [self._rebind_specs(tuple(b)) for b in batch]
        jobs: list[tuple[str, list]] = []
        slots: list[dict[str, int]] = []
        for _moved, specs in prepared:
            slot = {}
            for net, spec in specs.items():
                slot[net] = len(jobs)
                jobs.append((net, spec))
            slots.append(slot)
        stars = self._rebound_stars(jobs)
        projections = []
        for (moved, _specs), slot, bindings in zip(prepared, slots, batch):
            new_stars = {net: stars[index] for net, index in slot.items()}
            projections.append(
                self._fold_rebind_frontier(tuple(bindings), moved, new_stars)
            )
        return projections

    def _rebind_specs(
        self, bindings: tuple[tuple[Pin, str], ...]
    ) -> tuple[dict[Pin, str], dict[str, list]]:
        """Post-move sink specs of every net a rebinding touches.

        Returns ``(moved, specs)``: the effective pin -> new-net map
        (no-op bindings dropped) and, per affected net, the
        ``build_star`` override list — cached sinks minus departing
        pins, arriving pins appended in binding order, so the spec
        order (and the float sums derived from it) is deterministic.
        """
        network = self.network
        moved: dict[Pin, str] = {}
        affected: set[str] = set()
        for pin, new_net in bindings:
            old_net = network.fanin_net(pin)
            if old_net == new_net:
                continue
            moved[pin] = new_net
            affected.add(old_net)
            affected.add(new_net)
        specs: dict[str, list] = {}
        for net in sorted(affected):
            star = self._ensure_star(net)
            spec = [
                (sink.pin, sink.location, sink.pin_cap)
                for sink in star.sinks
                if sink.pin is None or sink.pin not in moved
            ]
            for pin, new_net in moved.items():
                if new_net == net:
                    spec.append(
                        (
                            pin,
                            self.placement.locations[pin.gate],
                            pin_capacitance(network, self.library, pin),
                        )
                    )
            specs[net] = spec
        return moved, specs

    def _rebound_stars(self, jobs: list[tuple[str, list]]) -> list[StarNet]:
        """Star RC models for edited sink lists, one vectorized pass.

        Each job is ``(net, override_specs)``; the result matches
        ``build_star(..., override_sinks=specs)`` (same formulas, same
        per-net summation order) to float associativity.  The numpy
        path flattens every job's sinks into one row table and derives
        centers, loads and per-sink Elmore delays with whole-array
        expressions; the scalar fallback loops over ``build_star``.
        """
        if _np is None or len(jobs) < 2:
            return [
                build_star(
                    self.network, self.placement, self.library, net,
                    po_pad_cap=self.po_pad_cap, override_sinks=spec,
                )
                for net, spec in jobs
            ]
        from ..library.cells import (
            UNIT_WIRE_CAP_PER_UM as _CAP,
            UNIT_WIRE_RES_PER_UM as _RES,
        )
        count = len(jobs)
        placement = self.placement
        network = self.network
        src = _np.empty((count, 2))
        n_sinks = _np.empty(count, dtype=_np.int64)
        job_ids: list[int] = []
        xs: list[float] = []
        ys: list[float] = []
        caps: list[float] = []
        for index, (net, spec) in enumerate(jobs):
            src[index] = placement.source_location(network, net)
            n_sinks[index] = len(spec)
            for _pin, (x, y), cap in spec:
                job_ids.append(index)
                xs.append(x)
                ys.append(y)
                caps.append(cap)
        job = _np.asarray(job_ids, dtype=_np.int64)
        x = _np.asarray(xs)
        y = _np.asarray(ys)
        cap = _np.asarray(caps)
        n_points = 1 + n_sinks
        cx = (src[:, 0] + _np.bincount(job, weights=x, minlength=count))
        cy = (src[:, 1] + _np.bincount(job, weights=y, minlength=count))
        cx /= n_points
        cy /= n_points
        empty = n_sinks == 0
        cx[empty] = src[empty, 0]
        cy[empty] = src[empty, 1]
        source_len = _np.abs(src[:, 0] - cx) + _np.abs(src[:, 1] - cy)
        r_source = _RES * source_len
        c_source = _CAP * source_len
        seg_len = _np.abs(x - cx[job]) + _np.abs(y - cy[job])
        c_seg = _CAP * seg_len
        downstream = _np.bincount(
            job, weights=c_seg, minlength=count
        ) + _np.bincount(job, weights=cap, minlength=count)
        total_cap = c_source + downstream
        total_cap[empty] = 0.0
        delay = r_source[job] * (c_source + downstream)[job] + (
            _RES * seg_len
        ) * (c_seg + cap)
        stars: list[StarNet] = []
        row = 0
        for index, (net, spec) in enumerate(jobs):
            sinks = []
            for pin, location, pin_cap in spec:
                sinks.append(
                    StarSink(
                        pin=pin,
                        location=location,
                        pin_cap=pin_cap,
                        wire_delay=float(delay[row]),
                    )
                )
                row += 1
            source = (float(src[index, 0]), float(src[index, 1]))
            stars.append(
                StarNet(
                    net=net,
                    source=source,
                    center=source if not sinks else (
                        float(cx[index]), float(cy[index])
                    ),
                    total_cap=float(total_cap[index]),
                    sinks=tuple(sinks),
                )
            )
        return stars

    def _rebound_gate_arrival(
        self,
        name: str,
        moved: dict[Pin, str],
        new_stars: dict[str, StarNet],
        context: dict[str, tuple[float, float]],
    ) -> tuple[float, float]:
        """Exact (rise, fall) arrival of a gate under a rebind overlay.

        Mirrors :meth:`_gate_arrival` with three overrides: pins in
        *moved* read their new driving net, nets in *new_stars* use
        the edited RC model (wire delays and the gate's own load), and
        nets in *context* use the projected upstream arrival pair.
        """
        network = self.network
        gate = network.gate(name)
        if gate.gtype in CONST_TYPES:
            return (0.0, 0.0)
        cell = self._cell_of(name)
        own_star = new_stars.get(name)
        if own_star is None:
            own_star = self._ensure_star(name)
        if cell is None:
            d_rise = d_fall = 0.0
        else:
            d_rise = cell.delay(own_star.total_cap, "rise")
            d_fall = cell.delay(own_star.total_cap, "fall")
        worst_rise = 0.0
        worst_fall = 0.0
        for index, fanin in enumerate(gate.fanins):
            pin = Pin(name, index)
            fanin = moved.get(pin, fanin)
            star = new_stars.get(fanin)
            if star is None:
                star = self._ensure_star(fanin)
            wire = star.sink_delay(pin)
            in_pair = context.get(fanin)
            if in_pair is None:
                in_pair = self.arrival.get(fanin, (0.0, 0.0))
            out_rise, out_fall = _propagate(
                gate.gtype, in_pair[0] + wire, in_pair[1] + wire
            )
            worst_rise = max(worst_rise, out_rise)
            worst_fall = max(worst_fall, out_fall)
        return (worst_rise + d_rise, worst_fall + d_fall)

    def _fold_rebind_frontier(
        self,
        bindings: tuple[tuple[Pin, str], ...],
        moved: dict[Pin, str],
        new_stars: dict[str, StarNet],
    ) -> SlackProjection:
        """Frontier-only projection: drivers + sink gates of the moved nets."""
        network = self.network
        po_nets = set(network.outputs)
        context: dict[str, tuple[float, float]] = {}
        deltas: dict[str, float] = {}
        for net in new_stars:
            old_pair = self.arrival.get(net, (0.0, 0.0))
            new_pair = old_pair
            if not network.is_input(net):
                cell = self._cell_of(net)
                if cell is not None:
                    old_load = self._ensure_star(net).total_cap
                    new_load = new_stars[net].total_cap
                    new_pair = (
                        old_pair[0]
                        + cell.delay(new_load, "rise")
                        - cell.delay(old_load, "rise"),
                        old_pair[1]
                        + cell.delay(new_load, "fall")
                        - cell.delay(old_load, "fall"),
                    )
            context[net] = new_pair
            if net in po_nets:
                # the pad sink has no consumer gate to mirror a
                # violation at, so the driver net itself carries the
                # projected pad arrival; non-PO driver slowdowns are
                # measured at their sink gates below (a violated net
                # always violates its critical consumer too)
                deltas[net] = (
                    max(new_pair) - max(old_pair)
                    + self._po_delta(net, new_stars[net])
                )
        gates: set[str] = set()
        for net in new_stars:
            for sink in self._ensure_star(net).sinks:
                if sink.pin is not None:
                    gates.add(sink.pin.gate)
            for sink in new_stars[net].sinks:
                if sink.pin is not None:
                    gates.add(sink.pin.gate)
        for name in sorted(
            gates, key=lambda gate: (self._levels.get(gate, 0), gate)
        ):
            pair = self._rebound_gate_arrival(name, moved, new_stars, context)
            deltas[name] = max(pair) - max(self.arrival.get(name, (0.0, 0.0)))
            context[name] = pair
        current: dict[str, float] = {}
        projected: dict[str, float] = {}
        for net, delta in deltas.items():
            slack = self.slack.get(net)
            if slack is None:
                continue
            current[net] = slack
            projected[net] = slack - delta
        return SlackProjection(
            bindings=bindings,
            current=current,
            projected=projected,
            touched=frozenset(new_stars) | frozenset(gates),
            exact=False,
        )

    def _project_rebind_exact(
        self, bindings: tuple[tuple[Pin, str], ...]
    ) -> SlackProjection:
        """Full-cone projection mirroring :meth:`apply_and_update`.

        Forward arrivals and backward required times are re-derived
        into overlay dicts with the same worklists the committed
        update would run (changes re-push their neighbors, so the
        result is the unique fixed point regardless of visit order);
        the cached engine state is never written.  ``touched`` is the
        complete visited set — the conflict footprint under which
        batched projections add exactly.
        """
        network = self.network
        moved, specs = self._rebind_specs(bindings)
        if not moved:
            return SlackProjection(
                bindings=bindings, current={}, projected={},
                touched=frozenset(), exact=True,
            )
        new_stars = {
            net: build_star(
                network, self.placement, self.library, net,
                po_pad_cap=self.po_pad_cap, override_sinks=spec,
            )
            for net, spec in specs.items()
        }
        levels = self._levels

        def consumers(net: str) -> list[Pin]:
            star = new_stars.get(net)
            if star is not None:
                return [s.pin for s in star.sinks if s.pin is not None]
            return network.fanout(net)

        def effective_fanins(name: str) -> list[str]:
            gate = network.gate(name)
            return [
                moved.get(Pin(name, index), fanin)
                for index, fanin in enumerate(gate.fanins)
            ]

        # forward: arrivals through the affected fanout, overlay-only
        arr_over: dict[str, tuple[float, float]] = {}
        visited_fwd: set[str] = set()
        seeds: set[str] = set()
        for net in new_stars:
            if not network.is_input(net):
                seeds.add(net)
            for sink in self._ensure_star(net).sinks:
                if sink.pin is not None:
                    seeds.add(sink.pin.gate)
            for pin in consumers(net):
                seeds.add(pin.gate)
        heap = [(levels.get(name, 0), name) for name in sorted(seeds)]
        heapq.heapify(heap)
        while heap:
            _, name = heapq.heappop(heap)
            if name not in network or network.is_input(name):
                continue
            visited_fwd.add(name)
            pair = self._rebound_gate_arrival(name, moved, new_stars, arr_over)
            old = arr_over.get(name, self.arrival.get(name))
            if pair != old:
                arr_over[name] = pair
                for pin in consumers(name):
                    heapq.heappush(
                        heap, (levels.get(pin.gate, 0), pin.gate)
                    )
        # backward: required times through the affected fanin frontier
        po_nets = set(network.outputs)
        req_over: dict[str, tuple[float, float]] = {}
        visited_bwd: set[str] = set()
        bseeds: set[str] = set()
        for net in new_stars:
            bseeds.add(net)
            if not network.is_input(net):
                bseeds.update(effective_fanins(net))
        for pin in moved:
            bseeds.add(pin.gate)
            if pin.gate in network and not network.is_input(pin.gate):
                bseeds.update(effective_fanins(pin.gate))
        bheap = [(-levels.get(net, 0), net) for net in sorted(bseeds)]
        heapq.heapify(bheap)
        while bheap:
            _, net = heapq.heappop(bheap)
            if net not in network:
                continue
            visited_bwd.add(net)
            pair = self._rebound_req0(net, moved, new_stars, req_over, po_nets)
            old = req_over.get(net, self._req0.get(net))
            if pair != old:
                req_over[net] = pair
                if not network.is_input(net):
                    for fanin in effective_fanins(net):
                        heapq.heappush(
                            bheap, (-levels.get(fanin, 0), fanin)
                        )
        # fold changed slacks against the engine's (pinned) target
        target = self.period if self.period is not None else self.max_delay
        current: dict[str, float] = {}
        projected: dict[str, float] = {}
        for net in set(arr_over) | set(req_over):
            req = req_over.get(net, self._req0.get(net))
            if req is None:
                continue
            arrival = arr_over.get(net, self.arrival.get(net, (0.0, 0.0)))
            projected[net] = min(
                req[0] - arrival[0], req[1] - arrival[1]
            ) + target
            slack = self.slack.get(net)
            if slack is not None:
                current[net] = slack
        return SlackProjection(
            bindings=bindings,
            current=current,
            projected=projected,
            touched=frozenset(new_stars) | visited_fwd | visited_bwd,
            exact=True,
        )

    def _rebound_req0(
        self,
        net: str,
        moved: dict[Pin, str],
        new_stars: dict[str, StarNet],
        req_over: dict[str, tuple[float, float]],
        po_nets: set[str],
    ) -> tuple[float, float]:
        """Zero-target required pair at *net* under a rebind overlay.

        Mirrors :meth:`_recompute_req0`: consumer pins come from the
        post-move sink lists, consumer loads and sink wire delays from
        the overlay stars, consumer required pairs from the overlay.
        """
        network = self.network
        INF = float("inf")
        rise = fall = INF
        star = new_stars.get(net)
        if star is None:
            star = self._ensure_star(net)
        if net in po_nets:
            po_delay = 0.0
            for sink in star.sinks:
                if sink.pin is None:
                    po_delay = sink.wire_delay
                    break
            rise = fall = -po_delay
        sink_pins = [s.pin for s in star.sinks if s.pin is not None]
        for pin in sink_pins:
            consumer = network.gate(pin.gate)
            out_pair = req_over.get(pin.gate, self._req0.get(pin.gate))
            if out_pair is None:
                continue
            cell = self._cell_of(pin.gate)
            if cell is None:
                d_rise = d_fall = 0.0
            else:
                own_star = new_stars.get(pin.gate)
                if own_star is None:
                    own_star = self.stars[pin.gate]
                load = own_star.total_cap
                d_rise = cell.delay(load, "rise")
                d_fall = cell.delay(load, "fall")
            pin_rise_budget, pin_fall_budget = _required_through(
                consumer.gtype, out_pair[0] - d_rise, out_pair[1] - d_fall
            )
            wire = star.sink_delay(pin)
            rise = min(rise, pin_rise_budget - wire)
            fall = min(fall, pin_fall_budget - wire)
        return (rise, fall)


def _propagate(
    gtype: GateType, pin_rise: float, pin_fall: float
) -> tuple[float, float]:
    """Map pin-arrival transitions to output transitions by unateness."""
    if gtype in XOR_TYPES:
        worst = max(pin_rise, pin_fall)
        return (worst, worst)
    if gtype in _NEGATIVE_UNATE or (
        is_inverted(gtype) and gtype is not GateType.XNOR
    ):
        return (pin_fall, pin_rise)
    return (pin_rise, pin_fall)


def _required_through(
    gtype: GateType, out_rise_budget: float, out_fall_budget: float
) -> tuple[float, float]:
    """Inverse of :func:`_propagate` for the backward required pass.

    Returns the (rise, fall) budgets at the gate's *input* pins given
    the output budgets already reduced by the gate's arc delays.
    """
    if gtype in XOR_TYPES:
        worst = min(out_rise_budget, out_fall_budget)
        return (worst, worst)
    if gtype in _NEGATIVE_UNATE or (
        is_inverted(gtype) and gtype is not GateType.XNOR
    ):
        # pin fall feeds out rise and vice versa
        return (out_fall_budget, out_rise_budget)
    return (out_rise_budget, out_fall_budget)


def _with_total_cap(star: StarNet, total_cap: float) -> StarNet:
    """Copy of a star net with an adjusted total load."""
    return StarNet(
        net=star.net,
        source=star.source,
        center=star.center,
        total_cap=max(total_cap, 0.0),
        sinks=star.sinks,
    )
