"""Star interconnect model with Elmore delay (Riess-Ettl, paper [4]).

Each net is modeled as a star: the center sits at the center of gravity
of all terminals, the net splits into a source->center segment and one
center->sink segment per sink.  Every segment is a lumped RC (its
resistance in series, its capacitance at the far node) using the
paper's unit values of 2 pF/cm and 2.4 kOhm/cm; Elmore delay then gives
a per-sink wire delay, so "each sink may have different delay from the
source" exactly as Section 6 describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..library.cells import (
    Library,
    wire_capacitance,
    wire_resistance,
)
from ..network.netlist import Network, Pin
from ..place.placement import Placement, manhattan

#: Default capacitive load of a primary-output pad (pF).
PO_PAD_CAP = 0.050


@dataclass(frozen=True)
class StarSink:
    """One sink of a star net.

    ``pin`` is ``None`` for a primary-output pad sink.  ``wire_delay``
    is the Elmore delay from the driver's output pin to this sink,
    *excluding* the driver's own load-dependent gate delay.
    """

    pin: Pin | None
    location: tuple[float, float]
    pin_cap: float
    wire_delay: float


@dataclass(frozen=True)
class StarNet:
    """RC view of one placed net."""

    net: str
    source: tuple[float, float]
    center: tuple[float, float]
    total_cap: float            # what the driver sees (wire + all pins)
    sinks: tuple[StarSink, ...]

    def sink_delay(self, pin: Pin | None) -> float:
        """Wire delay to the sink at *pin* (``None`` = first PO pad)."""
        for sink in self.sinks:
            if sink.pin == pin:
                return sink.wire_delay
        raise KeyError(f"net {self.net} has no sink {pin}")


def pin_capacitance(network: Network, library: Library, pin: Pin) -> float:
    """Input capacitance of the cell pin (0 for unmapped gates)."""
    gate = network.gate(pin.gate)
    if gate.cell is None:
        return 0.0
    return library.cell(gate.cell).input_cap


def build_star(
    network: Network,
    placement: Placement,
    library: Library,
    net: str,
    po_pad_cap: float = PO_PAD_CAP,
    override_sinks: list[tuple[Pin | None, tuple[float, float], float]]
    | None = None,
) -> StarNet:
    """Build the star RC model of *net*.

    ``override_sinks`` replaces the sink list for what-if evaluation
    (each entry: pin, location, pin capacitance) without mutating the
    network.
    """
    source = placement.source_location(network, net)
    if override_sinks is None:
        sink_specs: list[tuple[Pin | None, tuple[float, float], float]] = []
        for pin in network.fanout(net):
            sink_specs.append(
                (
                    pin,
                    placement.locations[pin.gate],
                    pin_capacitance(network, library, pin),
                )
            )
        for index, output in enumerate(network.outputs):
            if output == net:
                sink_specs.append(
                    (None, placement.output_pads[index], po_pad_cap)
                )
    else:
        sink_specs = override_sinks
    if not sink_specs:
        return StarNet(
            net=net, source=source, center=source, total_cap=0.0, sinks=(),
        )
    points = [source] + [spec[1] for spec in sink_specs]
    center = (
        sum(p[0] for p in points) / len(points),
        sum(p[1] for p in points) / len(points),
    )
    source_len = manhattan(source, center)
    r_source = wire_resistance(source_len)
    c_source = wire_capacitance(source_len)
    sink_lens = [manhattan(center, spec[1]) for spec in sink_specs]
    c_segments = [wire_capacitance(length) for length in sink_lens]
    downstream_cap = sum(c_segments) + sum(spec[2] for spec in sink_specs)
    total_cap = c_source + downstream_cap
    sinks = []
    for spec, length, c_seg in zip(sink_specs, sink_lens, c_segments):
        pin, location, cap = spec
        r_seg = wire_resistance(length)
        # Elmore: R_source sees its own cap (at center) + everything
        # downstream; R_seg sees its segment cap + the sink pin.
        delay = r_source * (c_source + downstream_cap) + r_seg * (
            c_seg + cap
        )
        sinks.append(
            StarSink(
                pin=pin, location=location, pin_cap=cap, wire_delay=delay,
            )
        )
    return StarNet(
        net=net,
        source=source,
        center=center,
        total_cap=total_cap,
        sinks=tuple(sinks),
    )
