"""Timing substrate: star RC net model, Elmore delay, rise/fall STA."""

from .netmodel import (
    PO_PAD_CAP,
    StarNet,
    StarSink,
    build_star,
    pin_capacitance,
)
from .sta import Gains, PathPoint, TimingEngine

__all__ = [
    "Gains",
    "PO_PAD_CAP",
    "PathPoint",
    "StarNet",
    "StarSink",
    "TimingEngine",
    "build_star",
    "pin_capacitance",
]
