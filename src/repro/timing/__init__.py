"""Timing substrate: star RC net model, Elmore delay, rise/fall STA."""

from .netmodel import (
    PO_PAD_CAP,
    StarNet,
    StarSink,
    build_star,
    pin_capacitance,
)
from .sta import (
    PROJECTION_DRIFT_TOL,
    Gains,
    PathPoint,
    SlackProjection,
    TimingEngine,
)

__all__ = [
    "Gains",
    "PO_PAD_CAP",
    "PROJECTION_DRIFT_TOL",
    "PathPoint",
    "SlackProjection",
    "StarNet",
    "StarSink",
    "TimingEngine",
    "build_star",
    "pin_capacitance",
]
