"""Logic substrate: values, simulation, truth tables, BDDs, implication.

Bit-parallel evaluation has two tiers: :mod:`repro.logic.simulate` is
the simple per-call reference (walk the network, bigint words), and
:mod:`repro.logic.simcore` is the compiled vectorized core (flattened
index arrays, pluggable bigint / numpy backends, incremental
resimulation, parallel-pattern fault simulation) that the hot paths —
equivalence filtering, symmetry verification, ATPG — run on.
"""

from .simcore import (
    AdaptiveBackend,
    CompiledNetwork,
    FaultSimulator,
    SimEngine,
    choose_backend,
    compile_network,
    fault_simulate,
    get_compiled,
    make_backend,
    numpy_available,
    sweep_shape,
)
from .values import (
    Value,
    and_values,
    from_bit,
    from_pair,
    or_values,
    xor_values,
)
from .simulate import (
    cone_truth_table,
    extract_cone,
    random_simulate_outputs,
    random_words,
    simulate,
    simulate_outputs,
    table_mask,
    truth_tables,
    variable_word,
)
from .truthtable import (
    all_symmetric_pairs,
    cofactor,
    complement_variable,
    depends_on,
    double_cofactor,
    es_check_by_swap,
    is_es,
    is_nes,
    nes_check_by_swap,
    swap_variables,
)
from .bdd import BddManager, ONE, ZERO, bdd_es, bdd_nes, network_bdds
from .implication import (
    ImplicationResult,
    backward_imply,
    forward_value,
    implies_inputs,
)

__all__ = [
    "AdaptiveBackend",
    "BddManager",
    "CompiledNetwork",
    "FaultSimulator",
    "ImplicationResult",
    "ONE",
    "SimEngine",
    "Value",
    "ZERO",
    "choose_backend",
    "compile_network",
    "fault_simulate",
    "get_compiled",
    "make_backend",
    "numpy_available",
    "sweep_shape",
    "all_symmetric_pairs",
    "and_values",
    "backward_imply",
    "bdd_es",
    "bdd_nes",
    "cofactor",
    "complement_variable",
    "cone_truth_table",
    "depends_on",
    "double_cofactor",
    "es_check_by_swap",
    "extract_cone",
    "forward_value",
    "from_bit",
    "from_pair",
    "implies_inputs",
    "is_es",
    "is_nes",
    "nes_check_by_swap",
    "network_bdds",
    "or_values",
    "random_simulate_outputs",
    "random_words",
    "simulate",
    "simulate_outputs",
    "swap_variables",
    "table_mask",
    "truth_tables",
    "variable_word",
    "xor_values",
]
