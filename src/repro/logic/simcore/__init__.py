"""Compiled, vectorized simulation core with pluggable backends.

The subsystem the hot paths of this repository stand on:

* :mod:`compiled` — one-time flattening of a ``Network`` into
  topologically ordered opcode / fanin-index arrays (:func:`get_compiled`
  caches per network, invalidated by the mutation-version counter);
* :mod:`backends` — the evaluation strategies: ``bigint`` (the
  historical arbitrary-precision reference) and ``numpy`` (dense
  ``uint64`` blocks, whole pattern batches per vectorized sweep);
* :mod:`engine` — :class:`SimEngine`, which keeps state alive across
  calls and resimulates *incrementally* after rewiring moves via the
  network mutation-event hook;
* :mod:`faultsim` — parallel-pattern stuck-at fault simulation with
  sparse single-fault propagation, the batch fault-dropper behind ATPG
  and redundancy proofs.

Invalidation contract: any ``Network`` mutation bumps the version and
emits a typed event.  Stateless helpers (``get_compiled``,
``fault_simulate``) revalidate by version; a ``SimEngine`` listens to
events, patches pure pin rewires into its compiled form in place and
falls back to recompile + full sweep for structural changes.  The
full event taxonomy and per-engine invalidation rules live in
``docs/architecture.md``.
"""

from .backends import (
    AdaptiveBackend,
    BigintBackend,
    NumpyBackend,
    SimBackend,
    SweepShape,
    choose_backend,
    estimate_sweep_costs,
    eval_word,
    make_backend,
    numpy_available,
    sweep_shape,
)
from .compiled import CompiledNetwork, compile_network, get_compiled
from .engine import SimEngine
from .faultsim import (
    FaultSimReport,
    FaultSimulator,
    fault_simulate,
    pack_tests,
    random_pattern_block,
)

__all__ = [
    "AdaptiveBackend",
    "BigintBackend",
    "CompiledNetwork",
    "FaultSimReport",
    "FaultSimulator",
    "NumpyBackend",
    "SimBackend",
    "SimEngine",
    "SweepShape",
    "choose_backend",
    "compile_network",
    "estimate_sweep_costs",
    "eval_word",
    "fault_simulate",
    "get_compiled",
    "make_backend",
    "numpy_available",
    "pack_tests",
    "random_pattern_block",
    "sweep_shape",
]
