"""Parallel-pattern stuck-at fault simulation on the compiled core.

Classic single-fault propagation, vectorized across patterns: the
fault-free circuit is swept once for the whole pattern block (that is
the dense, backend-accelerated part), then every fault is propagated
*sparsely* — only the nets whose words actually differ from the good
machine are recomputed, walking the compiled fanout adjacency in
topological order and stopping as soon as the difference dies out.

The sparse walk operates on plain integer words read out of the
backend state, so detection results are bit-identical no matter which
backend ran the dense sweep — the cross-backend property the test
suite checks.

The main entry points:

* :func:`fault_simulate` — which of these faults do these patterns
  detect?
* :func:`pack_tests` — pack explicit PI assignment dicts (ATPG test
  cubes) into one parallel pattern block.

ATPG uses this to *batch-drop* faults: after PODEM generates one test,
a single parallel-pattern pass removes every other fault that test
happens to detect (plus everything random patterns caught up front),
so the expensive search runs only for the hard residue — see
:func:`repro.atpg.podem.generate_tests`.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ...network.netlist import Network
from .backends import SimBackend, eval_word, make_backend
from .compiled import CompiledNetwork, get_compiled

if TYPE_CHECKING:  # pragma: no cover - the Fault type lives in repro.atpg;
    # imported only for annotations to keep the logic layer atpg-free
    from ...atpg.faults import Fault


@dataclass
class FaultSimReport:
    """Outcome of one parallel-pattern fault-simulation pass."""

    detected: list["Fault"] = field(default_factory=list)
    undetected: list["Fault"] = field(default_factory=list)
    num_patterns: int = 0

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 0.0


def pack_tests(
    inputs: Sequence[str], tests: Sequence[Mapping[str, int]]
) -> tuple[dict[str, int], int]:
    """Pack PI assignment dicts into parallel words (pattern k = test k).

    Unassigned inputs default to 0, matching what
    :func:`repro.atpg.podem.find_test` reports for don't-cares.
    """
    assignments = dict.fromkeys(inputs, 0)
    for k, test in enumerate(tests):
        for pi in inputs:
            if test.get(pi, 0):
                assignments[pi] |= 1 << k
    return assignments, max(len(tests), 1)


def random_pattern_block(
    inputs: Sequence[str], width: int = 64, seed: int = 0, rounds: int = 1
) -> tuple[dict[str, int], int]:
    """Concatenated random blocks, same stream as ``SimEngine``."""
    assignments = dict.fromkeys(inputs, 0)
    for block in range(rounds):
        rng = random.Random(seed + block)
        shift = block * width
        for pi in inputs:
            assignments[pi] |= rng.getrandbits(width) << shift
    return assignments, width * rounds


class FaultSimulator:
    """Reusable fault simulator bound to one network snapshot.

    Builds the good-machine state once per pattern block; :meth:`run`
    can then be called with many fault lists (ATPG drops faults batch
    by batch against the same block).
    """

    def __init__(
        self, network: Network, backend: str | SimBackend = "auto"
    ) -> None:
        self.network = network
        self.backend: SimBackend = (
            make_backend(backend) if isinstance(backend, str) else backend
        )
        self._compiled: CompiledNetwork | None = None
        self._state = None
        self._good: dict[int, int] = {}
        self.num_patterns = 0
        self.mask = 0

    def load_patterns(
        self, assignments: Mapping[str, int], num_patterns: int
    ) -> None:
        """Sweep the fault-free machine over one pattern block."""
        compiled = get_compiled(self.network)
        state = self.backend.make_state(compiled, num_patterns)
        for pi in compiled.inputs:
            self.backend.load(state, compiled.net_index[pi], assignments[pi])
        self.backend.full_sweep(compiled, state)
        self._compiled = compiled
        self._state = state
        self._good = {}
        self.num_patterns = num_patterns
        self.mask = (1 << num_patterns) - 1

    def _good_word(self, index: int) -> int:
        word = self._good.get(index)
        if word is None:
            word = self.backend.read(self._state, index)
            self._good[index] = word
        return word

    def detecting_patterns(self, fault: "Fault") -> int:
        """Word of patterns that detect *fault* (bit k = pattern k).

        Sparse single-fault propagation: ``diff`` carries the faulty
        word only for nets that differ from the good machine; gates are
        re-evaluated in topological order and propagation stops when
        ``diff`` stops growing.
        """
        if self._state is None:
            raise RuntimeError("no patterns loaded; call load_patterns first")
        compiled = self._compiled
        base = compiled.num_inputs
        site = compiled.net_index.get(fault.net)
        if site is None:
            return 0
        faulty_word = self.mask if fault.stuck_at else 0
        diff: dict[int, int] = {}
        heap: list[int] = []

        def push_consumers(index: int) -> None:
            for consumer in compiled.fanout[index]:
                heapq.heappush(heap, consumer)

        branch_position: int | None = None
        if fault.pin is not None:
            # branch fault: only the faulted pin's gate sees the stuck
            # value; every other consumer keeps the healthy stem
            gate_index = compiled.net_index.get(fault.pin.gate)
            if gate_index is None or gate_index < base:
                return 0
            branch_position = gate_index - base
            heapq.heappush(heap, branch_position)
        else:
            good = self._good_word(site)
            if faulty_word == good:
                return 0  # never excited
            diff[site] = faulty_word
            push_consumers(site)

        done: set[int] = set()
        while heap:
            position = heapq.heappop(heap)
            if position in done:
                continue
            done.add(position)
            out_index = base + position
            words = []
            for offset, fanin in enumerate(compiled.fanins_of(position)):
                if position == branch_position and offset == fault.pin.index:
                    words.append(faulty_word)
                else:
                    words.append(diff.get(fanin, self._good_word(fanin)))
            value = eval_word(
                compiled.opcode[position],
                compiled.invert[position],
                words,
                self.mask,
            )
            if value != self._good_word(out_index):
                diff[out_index] = value
                push_consumers(out_index)
            else:
                diff.pop(out_index, None)
        detected = 0
        for po in compiled.po_index:
            if po in diff:
                detected |= diff[po] ^ self._good_word(po)
        return detected

    def run(self, faults: Iterable["Fault"]) -> FaultSimReport:
        """Split *faults* into detected / undetected under the block."""
        report = FaultSimReport(num_patterns=self.num_patterns)
        for fault in faults:
            if self.detecting_patterns(fault):
                report.detected.append(fault)
            else:
                report.undetected.append(fault)
        return report


def fault_simulate(
    network: Network,
    faults: Iterable["Fault"],
    assignments: Mapping[str, int],
    num_patterns: int,
    backend: str | SimBackend = "auto",
) -> FaultSimReport:
    """One-shot parallel-pattern fault simulation of a pattern block."""
    simulator = FaultSimulator(network, backend)
    simulator.load_patterns(assignments, num_patterns)
    return simulator.run(faults)
