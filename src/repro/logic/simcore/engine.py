"""The simulation engine: compiled form + backend + incremental resim.

:class:`SimEngine` binds one network to one evaluation backend and
keeps the whole simulation state (one word per net) alive between
calls.  It subscribes to the network's mutation events (the PR-1
hook), so after a rewiring move it can **resimulate incrementally**:
only the gates whose fanin words actually changed are re-evaluated,
propagating through the fanout in topological order and stopping as
soon as words stop changing — the simulation twin of
``TimingEngine.apply_and_update``.

Pure pin rewires (``replace_fanin`` / ``swap_fanins``, the paper's
moves) are patched into the privately owned compiled form in place;
structural mutations (gates added or removed, type changes, restores)
schedule a recompile plus full sweep on the next access.

The pattern-loading helpers mirror the historical
:mod:`repro.logic.simulate` API — random words use the same
``random.Random(seed)`` stream and exhaustive tables the same variable
ordering — so engine results are drop-in comparable with (and are
checked against) the reference implementation.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Mapping

from ...network import events
from ...network.netlist import Network
from ..simulate import variable_word
from .backends import SimBackend, make_backend
from .compiled import CompiledNetwork, get_compiled

#: Structural mutation kinds that force a recompile + full resweep.
_STRUCTURAL = frozenset({
    events.ADD_GATE,
    events.REMOVE_GATE,
    events.ADD_INPUT,
    events.ADD_OUTPUT,
    events.REPLACE_OUTPUT,
    events.SET_GATE_TYPE,
    events.SET_FANINS,
    events.RESTORE,
    events.UNKNOWN,
})


class SimEngine:
    """Bit-parallel simulator with pluggable backends, bound to a network."""

    def __init__(self, network: Network, backend: str | SimBackend = "auto") -> None:
        self.network = network
        self.backend: SimBackend = (
            make_backend(backend) if isinstance(backend, str) else backend
        )
        self._compiled: CompiledNetwork | None = None
        self._owns_compiled = False
        self._state = None
        self._assignments: dict[str, int] = {}
        self.num_patterns = 0
        self._dirty_gates: set[str] = set()
        self._needs_recompile = True
        self._needs_full_sweep = True
        #: counters for benchmarks: how much work the engine avoided
        self.full_sweeps = 0
        self.incremental_updates = 0
        self.gate_evals = 0
        network.subscribe(self)

    # ------------------------------------------------------------------
    # mutation events
    # ------------------------------------------------------------------
    def notify_network_event(self, kind: str, data: dict) -> None:
        if kind in (events.SET_CELL,):
            return  # cell binding does not affect logic values
        if kind in _STRUCTURAL:
            self._needs_recompile = True
            self._needs_full_sweep = True
            return
        if kind == events.REPLACE_FANIN:
            self._patch(data["pin"].gate, data["pin"].index, data["new"])
        elif kind == events.SWAP_FANINS:
            self._patch(data["pin_a"].gate, data["pin_a"].index, data["net_b"])
            self._patch(data["pin_b"].gate, data["pin_b"].index, data["net_a"])
        else:  # unrecognized mutation: treat as untracked
            self._needs_recompile = True
            self._needs_full_sweep = True

    def _patch(self, gate_name: str, pin_index: int, net: str) -> None:
        self._dirty_gates.add(gate_name)
        if self._needs_recompile or self._compiled is None:
            return
        if not self._owns_compiled:
            # the compiled form is shared through the get_compiled
            # cache; clone before the first in-place patch so other
            # engines on this network keep an unpatched view
            self._compiled = self._compiled.clone()
            self._owns_compiled = True
        position = self._compiled.position_of(gate_name)
        if not self._compiled.patch_fanin(position, pin_index, net):
            # the rewire broke the stored topological order (or points
            # at a net the snapshot has never seen): recompile, but the
            # dirty set still bounds the resimulation region
            self._needs_recompile = True

    # ------------------------------------------------------------------
    # compiled form
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> CompiledNetwork:
        """The engine's (patched) compiled form, recompiling if stale."""
        if self._needs_recompile or self._compiled is None:
            old = self._compiled
        else:
            return self._compiled
        self._compiled = get_compiled(self.network)
        self._owns_compiled = False
        self._needs_recompile = False
        if old is not None and not self._needs_full_sweep and self._state is not None:
            # recompiled mid-session because a patch broke topo order:
            # carry the old words over so resimulation stays incremental
            self._state = self._migrate_state(old, self._compiled, self._state)
        return self._compiled

    def _migrate_state(self, old: CompiledNetwork, new: CompiledNetwork, state):
        fresh = self.backend.make_state(new, self.num_patterns)
        for net, index in new.net_index.items():
            old_index = old.net_index.get(net)
            if old_index is not None:
                self.backend.load(fresh, index, self.backend.read(state, old_index))
        return fresh

    # ------------------------------------------------------------------
    # pattern loading
    # ------------------------------------------------------------------
    def set_patterns(
        self, assignments: Mapping[str, int], num_patterns: int
    ) -> None:
        """Load one word per primary input and run a full sweep."""
        if num_patterns < 1:
            raise ValueError("need at least one pattern")
        compiled = self.compiled
        words: dict[str, int] = {}
        for pi in compiled.inputs:
            try:
                words[pi] = assignments[pi]
            except KeyError:
                raise KeyError(
                    f"no assignment for primary input {pi!r}"
                ) from None
        self._assignments = words
        self.num_patterns = num_patterns
        self._state = self.backend.make_state(compiled, num_patterns)
        for pi, word in words.items():
            self.backend.load(self._state, compiled.net_index[pi], word)
        self.backend.full_sweep(compiled, self._state)
        self.full_sweeps += 1
        self.gate_evals += compiled.num_gates
        self._dirty_gates.clear()
        self._needs_full_sweep = False

    def set_random_patterns(
        self, width: int = 64, seed: int = 0, rounds: int = 1
    ) -> None:
        """Load ``rounds`` concatenated random blocks of *width* patterns.

        Block ``r`` reproduces ``random_words(inputs, width, seed + r)``
        exactly, so a multi-round filter collapses into one wide sweep
        without changing which patterns are applied.
        """
        from .faultsim import random_pattern_block

        assignments, num_patterns = random_pattern_block(
            self.compiled.inputs, width=width, seed=seed, rounds=rounds
        )
        self.set_patterns(assignments, num_patterns)

    def set_exhaustive_patterns(self, support: list[str] | None = None) -> None:
        """Load the full truth-table stimulus over *support* (default PIs).

        Like ``logic.simulate.truth_tables``, the support must cover
        every primary input (:meth:`set_patterns` raises ``KeyError``
        otherwise); non-input support entries are permitted and consume
        a variable position without driving anything.
        """
        compiled = self.compiled
        if support is None:
            support = list(compiled.inputs)
        num_vars = len(support)
        if num_vars > 24:
            raise ValueError(f"support of {num_vars} inputs is too large")
        assignments = {
            net: variable_word(index, num_vars)
            for index, net in enumerate(support)
        }
        self.set_patterns(assignments, 1 << num_vars)

    # ------------------------------------------------------------------
    # incremental resimulation
    # ------------------------------------------------------------------
    def resimulate(self) -> None:
        """Bring every net's word up to date after network mutations.

        Event-driven: gates dirtied by rewires are re-evaluated in
        topological order and changes propagate through the compiled
        fanout adjacency only while words keep changing.  Structural
        mutations fall back to a full sweep.
        """
        if self._state is None:
            raise RuntimeError("no patterns loaded; call set_patterns first")
        if self._needs_full_sweep:
            self.set_patterns(self._assignments, self.num_patterns)
            return
        if not self._dirty_gates:
            return
        compiled = self.compiled
        state = self._state
        heap: list[int] = []
        for name in self._dirty_gates:
            index = compiled.net_index.get(name)
            if index is not None and index >= compiled.num_inputs:
                heap.append(index - compiled.num_inputs)
        heapq.heapify(heap)
        done: set[int] = set()
        evals = 0
        while heap:
            position = heapq.heappop(heap)
            if position in done:
                continue
            done.add(position)
            evals += 1
            if self.backend.eval_gate(compiled, state, position):
                for consumer in compiled.fanout[compiled.num_inputs + position]:
                    if consumer not in done:
                        heapq.heappush(heap, consumer)
        self._dirty_gates.clear()
        self.incremental_updates += 1
        self.gate_evals += evals

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _current_state(self):
        if self._state is None:
            raise RuntimeError("no patterns loaded; call set_patterns first")
        if self._needs_full_sweep or self._dirty_gates:
            self.resimulate()
        return self._state

    def word(self, net: str) -> int:
        """Simulation word of one net as a plain integer."""
        state = self._current_state()
        return self.backend.read(state, self.compiled.net_index[net])

    def output_words(self) -> list[int]:
        """Primary-output words, in PO order."""
        state = self._current_state()
        return [self.backend.read(state, i) for i in self.compiled.po_index]

    def words(self, nets: Iterable[str] | None = None) -> dict[str, int]:
        """Words of the given nets (default: every net), as a dict."""
        state = self._current_state()
        compiled = self.compiled
        if nets is None:
            nets = compiled.net_index
        return {
            net: self.backend.read(state, compiled.net_index[net])
            for net in nets
        }

    # ------------------------------------------------------------------
    # convenience drivers (the consumers' common call shapes)
    # ------------------------------------------------------------------
    def random_output_words(
        self, width: int = 64, seed: int = 0, rounds: int = 1
    ) -> list[int]:
        """Random-pattern PO words (cheap functional fingerprint)."""
        self.set_random_patterns(width=width, seed=seed, rounds=rounds)
        return self.output_words()

    def truth_tables(
        self, support: list[str] | None = None,
        nets: Iterable[str] | None = None,
    ) -> dict[str, int]:
        """Exhaustive truth-table words, like ``logic.simulate.truth_tables``."""
        self.set_exhaustive_patterns(support)
        return self.words(nets)

    @property
    def resolved_backend(self) -> str:
        """Concrete backend name behind the current pattern block.

        For the adaptive ``"auto"`` backend this is what the cost model
        picked at the last ``set_patterns``; explicit backends report
        their own name.  ``"auto"`` before any patterns are loaded.
        """
        choice = getattr(self.backend, "last_choice", None)
        return choice or self.backend.name

    @property
    def mask(self) -> int:
        """All-ones mask over the currently loaded pattern count."""
        return (1 << self.num_patterns) - 1 if self.num_patterns else 0

    def detach(self) -> None:
        """Stop listening to the network (optional; listeners are weak)."""
        self.network.unsubscribe(self)
