"""Compiled network form: the Network flattened into index arrays.

A :class:`CompiledNetwork` is a one-time flattening of a
:class:`~repro.network.netlist.Network` into topologically ordered
opcode / fanin-index / output-index arrays.  Every net gets a dense
integer index — primary inputs first (in PI order), then gate outputs
in topological order — so a simulation backend can hold the whole
network state in one flat vector (a list of bigint words, or a 2-D
``uint64`` numpy block) and evaluate it with a single forward sweep
that never touches a dict or a Gate object.

The compiled form is a *snapshot*: it records the network ``version``
it was built from, and :func:`get_compiled` transparently recompiles
when the network has mutated since (every mutation bumps the version
through the PR-1 event hook, so a stale hit is impossible).  Engines
that track mutation events can instead patch a privately owned
instance in place — see :meth:`CompiledNetwork.patch_fanin`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...network.gatetype import GateType
from ...network.netlist import Network

#: Base opcodes of the compiled form.  Inversion is a separate flag so
#: NAND compiles to ``(OP_AND, invert=True)`` exactly like the
#: :mod:`repro.network.gatetype` algebra.
OP_AND, OP_OR, OP_XOR, OP_BUF, OP_CONST0, OP_CONST1 = range(6)

_OPCODE: dict[GateType, tuple[int, bool]] = {
    GateType.AND: (OP_AND, False),
    GateType.NAND: (OP_AND, True),
    GateType.OR: (OP_OR, False),
    GateType.NOR: (OP_OR, True),
    GateType.XOR: (OP_XOR, False),
    GateType.XNOR: (OP_XOR, True),
    GateType.BUF: (OP_BUF, False),
    GateType.INV: (OP_BUF, True),
    GateType.CONST0: (OP_CONST0, False),
    GateType.CONST1: (OP_CONST1, False),
}


@dataclass
class CompiledNetwork:
    """Flat, index-based snapshot of a network for vectorized sweeps.

    ``num_inputs`` primary inputs occupy net indices ``0 .. P-1``; the
    gate at topological position ``g`` drives net index ``P + g``.
    ``fanin_flat[fanin_offset[g]:fanin_offset[g+1]]`` are gate ``g``'s
    fanin net indices in pin order; ``fanout[i]`` lists the topological
    positions of every gate consuming net ``i`` (branch multiplicity
    preserved once per gate).
    """

    name: str
    version: int
    inputs: tuple[str, ...]
    gate_names: tuple[str, ...]          # topological order
    opcode: list[int]
    invert: list[bool]
    fanin_offset: list[int]
    fanin_flat: list[int]
    po_index: list[int]
    net_index: dict[str, int]
    fanout: list[list[int]] = field(repr=False)
    #: bumped by every in-place patch; backends key derived plans
    #: (e.g. the numpy level-packed schedule) against it
    revision: int = 0

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_gates(self) -> int:
        return len(self.gate_names)

    @property
    def num_nets(self) -> int:
        return len(self.inputs) + len(self.gate_names)

    def fanins_of(self, position: int) -> list[int]:
        """Fanin net indices of the gate at topological *position*."""
        return self.fanin_flat[
            self.fanin_offset[position]:self.fanin_offset[position + 1]
        ]

    def position_of(self, gate_name: str) -> int:
        """Topological position of *gate_name* (its net index - P)."""
        return self.net_index[gate_name] - len(self.inputs)

    def clone(self) -> "CompiledNetwork":
        """Private copy for in-place patching (copy-on-write).

        Engines share the :func:`get_compiled` cache until their first
        patch, then clone so concurrent engines on one network never
        see each other's patches.
        """
        return CompiledNetwork(
            name=self.name,
            version=self.version,
            inputs=self.inputs,
            gate_names=self.gate_names,
            opcode=self.opcode,          # never patched (type changes
            invert=self.invert,          # recompile), safe to share
            fanin_offset=self.fanin_offset,
            fanin_flat=list(self.fanin_flat),
            po_index=self.po_index,
            net_index=self.net_index,
            fanout=[list(sinks) for sinks in self.fanout],
            revision=self.revision,
        )

    def patch_fanin(self, position: int, pin_index: int, net: str) -> bool:
        """Point one fanin slot at a different net, in place.

        Returns ``True`` when the patch keeps the stored topological
        order valid (the new driver is compiled *before* the consumer);
        ``False`` means the caller must recompile.  The fanout adjacency
        is kept consistent either way.
        """
        new_index = self.net_index.get(net)
        if new_index is None:
            return False
        slot = self.fanin_offset[position] + pin_index
        old_index = self.fanin_flat[slot]
        if old_index == new_index:
            return True
        self.fanin_flat[slot] = new_index
        self.revision += 1
        remaining = self.fanins_of(position)
        if old_index not in remaining:
            try:
                self.fanout[old_index].remove(position)
            except ValueError:
                pass
        if position not in self.fanout[new_index]:
            self.fanout[new_index].append(position)
        # a net index below P is a primary input; otherwise the driver
        # must sit at an earlier topological position than the consumer
        return new_index < self.num_inputs or (
            new_index - self.num_inputs < position
        )


def compile_network(network: Network) -> CompiledNetwork:
    """Flatten *network* into a fresh :class:`CompiledNetwork`."""
    inputs = tuple(network.inputs)
    order = tuple(network.topo_order())
    net_index: dict[str, int] = {net: i for i, net in enumerate(inputs)}
    base = len(inputs)
    for position, name in enumerate(order):
        net_index[name] = base + position
    opcode: list[int] = []
    invert: list[bool] = []
    fanin_offset: list[int] = [0]
    fanin_flat: list[int] = []
    fanout: list[list[int]] = [[] for _ in range(base + len(order))]
    for position, name in enumerate(order):
        gate = network.gate(name)
        op, inv = _OPCODE[gate.gtype]
        opcode.append(op)
        invert.append(inv)
        for fanin in gate.fanins:
            index = net_index[fanin]
            fanin_flat.append(index)
            sinks = fanout[index]
            if not sinks or sinks[-1] != position:
                sinks.append(position)
        fanin_offset.append(len(fanin_flat))
    return CompiledNetwork(
        name=network.name,
        version=network.version,
        inputs=inputs,
        gate_names=order,
        opcode=opcode,
        invert=invert,
        fanin_offset=fanin_offset,
        fanin_flat=fanin_flat,
        po_index=[net_index[net] for net in network.outputs],
        net_index=net_index,
        fanout=fanout,
    )


def get_compiled(network: Network) -> CompiledNetwork:
    """Compiled form of *network*, served by the shared SoA kernel.

    One :class:`~repro.network.soa.SoAKernel` per network owns this
    view: pin-rewiring and cell-binding mutations are absorbed as
    in-place patches (``revision`` bumps, the object identity is
    preserved), while structural mutations mark the kernel stale so
    this call recompiles.  Either way the returned arrays are always
    consistent with the live network — engines that want isolation
    from later patches :meth:`~CompiledNetwork.clone` on first write,
    exactly as before.
    """
    from ...network.soa import get_soa

    return get_soa(network).sync()
