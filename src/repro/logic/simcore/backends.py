"""Pluggable evaluation backends for the compiled simulation core.

A backend owns the *representation* of a simulation state — one word of
``num_patterns`` bits per net — and knows how to run a forward sweep
over a :class:`~repro.logic.simcore.compiled.CompiledNetwork`:

* :class:`BigintBackend` keeps one arbitrary-precision Python integer
  per net, exactly like the historical :mod:`repro.logic.simulate`
  evaluator.  It is the reference backend: simple, dependency-free and
  bit-exact by construction.
* :class:`NumpyBackend` packs patterns into a dense ``uint64`` block of
  shape ``(num_nets, num_words)`` and evaluates every gate as a
  vectorized bitwise op across all words at once — multi-word, so a
  single sweep can carry far more than 64 patterns.

Both backends expose the same small surface (make state, load/read
bigint words at the boundary, full sweep, single-gate eval), and both
produce identical :func:`read` results for identical inputs — the
property ``tests/test_simcore.py`` checks bit-for-bit.

:class:`AdaptiveBackend` (the ``"auto"`` of :func:`make_backend`)
resolves to one of the two per pattern block from a static cost model
over the compiled sweep shape (:func:`sweep_shape`): CPython's bigint
ops pay far less per-op dispatch than a ufunc call with fancy-indexed
gather/scatter, so bigint wins deep narrow control logic where level
groups hold one or two gates, while numpy wins wide shallow circuits
and very wide blocks where dispatch amortizes over the group.  No
runtime probing: the choice is derived from gate/level/group counts
alone, so it is deterministic and costs O(gates) once per compile.

Words crossing the backend boundary are always plain Python integers
(bit ``k`` = pattern ``k``), so callers never see the representation.
"""

from __future__ import annotations

from typing import Mapping, NamedTuple, Protocol

from .compiled import (
    CompiledNetwork,
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_OR,
    OP_XOR,
)

try:  # numpy is an optional accelerator; the bigint backend needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None


def eval_word(op: int, inv: bool, words: list[int], mask: int) -> int:
    """Evaluate one compiled opcode over bigint words (reference op)."""
    if op == OP_CONST0:
        acc = 0
    elif op == OP_CONST1:
        acc = mask
    elif op == OP_AND:
        acc = mask
        for word in words:
            acc &= word
    elif op == OP_OR:
        acc = 0
        for word in words:
            acc |= word
    elif op == OP_XOR:
        acc = 0
        for word in words:
            acc ^= word
    else:  # OP_BUF
        acc = words[0]
    if inv:
        acc ^= mask
    return acc & mask


class SimBackend(Protocol):
    """What the engine needs from an evaluation backend."""

    name: str

    def make_state(self, compiled: CompiledNetwork, num_patterns: int): ...

    def load(self, state, index: int, word: int) -> None: ...

    def read(self, state, index: int) -> int: ...

    def full_sweep(self, compiled: CompiledNetwork, state) -> None: ...

    def eval_gate(self, compiled: CompiledNetwork, state, position: int) -> bool: ...


class BigintState:
    """One arbitrary-precision integer word per net."""

    __slots__ = ("words", "mask", "num_patterns")

    def __init__(self, num_nets: int, num_patterns: int) -> None:
        self.words: list[int] = [0] * num_nets
        self.num_patterns = num_patterns
        self.mask = (1 << num_patterns) - 1


class BigintBackend:
    """Reference backend: the historical bigint evaluator, index-based."""

    name = "bigint"

    def make_state(self, compiled: CompiledNetwork, num_patterns: int) -> BigintState:
        return BigintState(compiled.num_nets, num_patterns)

    def load(self, state: BigintState, index: int, word: int) -> None:
        state.words[index] = word & state.mask

    def read(self, state: BigintState, index: int) -> int:
        return state.words[index]

    def full_sweep(self, compiled: CompiledNetwork, state: BigintState) -> None:
        words = state.words
        mask = state.mask
        base = compiled.num_inputs
        opcode = compiled.opcode
        invert = compiled.invert
        offset = compiled.fanin_offset
        flat = compiled.fanin_flat
        for position in range(compiled.num_gates):
            fanins = flat[offset[position]:offset[position + 1]]
            words[base + position] = eval_word(
                opcode[position],
                invert[position],
                [words[k] for k in fanins],
                mask,
            )

    def eval_gate(
        self, compiled: CompiledNetwork, state: BigintState, position: int
    ) -> bool:
        words = state.words
        out = compiled.num_inputs + position
        new = eval_word(
            compiled.opcode[position],
            compiled.invert[position],
            [words[k] for k in compiled.fanins_of(position)],
            state.mask,
        )
        if new == words[out]:
            return False
        words[out] = new
        return True


class NumpyState:
    """Dense ``uint64`` block: one row of packed words per net.

    Bits past ``num_patterns`` in the last word are kept zero (every
    write masks the tail), so row comparisons and :meth:`read` need no
    per-access masking.  Rows beyond ``num_nets`` are scratch slots of
    the level-packed evaluation plan (temporaries of multi-input gates
    decomposed into binary ops).
    """

    __slots__ = ("block", "num_patterns", "num_words", "tail_mask",
                 "int_mask")

    def __init__(self, num_slots: int, num_patterns: int) -> None:
        self.num_patterns = num_patterns
        self.num_words = max(1, -(-num_patterns // 64))
        self.block = _np.zeros((num_slots, self.num_words), dtype=_np.uint64)
        tail_bits = num_patterns - (self.num_words - 1) * 64
        self.tail_mask = _np.uint64((1 << tail_bits) - 1 if tail_bits < 64 else
                                    0xFFFF_FFFF_FFFF_FFFF)
        # cached once: building a multi-kilobit mask per load() call
        # used to dominate pattern loading on wide blocks
        self.int_mask = (1 << num_patterns) - 1


def _binary_decomposition(compiled: CompiledNetwork):
    """Decompose the compiled gates into leveled binary nodes.

    The single source of truth for the level-packed evaluation
    structure: every multi-input gate becomes a balanced tree of binary
    ops whose temporaries live in scratch slots past the real nets, and
    every node carries the (level, op, invert) key the numpy plan
    groups by.  Both the executable plan (:class:`_NumpyPlan`) and the
    static cost model (:func:`sweep_shape`) are derived from this one
    enumeration, so the model can never drift from what the backend
    actually runs.

    Returns ``(nodes, const_rows, num_slots)`` where each node is
    ``(level, op, invert, out_slot, a_slot, b_slot | -1 for copies)``
    and ``const_rows`` is ``[(row, op), ...]`` for constant gates.
    Cached per compiled revision so plan and shape share one O(gates)
    pass per (re)compile, not one each.
    """
    cached = getattr(compiled, "_binary_decomp", None)
    if cached is not None and cached[0] == compiled.revision:
        return cached[1]
    base = compiled.num_inputs
    level: list[int] = [0] * compiled.num_nets
    next_slot = compiled.num_nets
    nodes: list[tuple[int, int, bool, int, int, int]] = []
    const_rows: list[tuple[int, int]] = []
    for position in range(compiled.num_gates):
        out = base + position
        op = compiled.opcode[position]
        inv = compiled.invert[position]
        fanins = compiled.fanins_of(position)
        if op in (OP_CONST0, OP_CONST1):
            const_rows.append((out, op))
            continue
        if op == OP_BUF or len(fanins) == 1:
            level[out] = level[fanins[0]] + 1
            nodes.append((level[out], OP_BUF, inv, out, fanins[0], -1))
            continue
        current = list(fanins)
        while len(current) > 2:
            reduced = []
            for k in range(0, len(current) - 1, 2):
                temp = next_slot
                next_slot += 1
                temp_level = max(level[current[k]], level[current[k + 1]]) + 1
                level.append(temp_level)
                nodes.append(
                    (temp_level, op, False, temp, current[k], current[k + 1])
                )
                reduced.append(temp)
            if len(current) % 2:
                reduced.append(current[-1])
            current = reduced
        level[out] = max(level[current[0]], level[current[1]]) + 1
        nodes.append((level[out], op, inv, out, current[0], current[1]))
    result = (nodes, const_rows, next_slot)
    compiled._binary_decomp = (compiled.revision, result)
    return result


class _NumpyPlan:
    """Level-packed evaluation schedule for one compiled snapshot.

    Evaluating gate-by-gate wastes the vectorization on ufunc dispatch:
    each call touches only ``num_words`` elements.  The plan therefore
    takes the shared binary decomposition and groups each level's nodes
    by (op, invert).  One group — *all* same-op gates of one level —
    evaluates as a single gather/ufunc/scatter triple across
    ``len(group) × num_words`` elements, so dispatch cost amortizes
    over gates as well as patterns.
    """

    __slots__ = ("num_slots", "const_rows", "groups")

    def __init__(self, compiled: CompiledNetwork) -> None:
        nodes, const_rows, num_slots = _binary_decomposition(compiled)
        self.num_slots = num_slots
        self.const_rows = const_rows
        buckets: dict[tuple[int, int, bool], list[tuple[int, int, int]]] = {}
        for node_level, op, inv, out, a, b in nodes:
            buckets.setdefault((node_level, op, inv), []).append((out, a, b))
        self.groups = []
        for (_, op, inv), members in sorted(buckets.items()):
            out_idx = _np.array([m[0] for m in members], dtype=_np.intp)
            a_idx = _np.array([m[1] for m in members], dtype=_np.intp)
            b_idx = _np.array([m[2] for m in members], dtype=_np.intp)
            self.groups.append((op, inv, out_idx, a_idx, b_idx))


class NumpyBackend:
    """Vectorized backend: whole pattern blocks, whole levels per op."""

    name = "numpy"

    def __init__(self) -> None:
        if _np is None:
            raise RuntimeError(
                "numpy is not available; use the 'bigint' backend"
            )

    def _plan(self, compiled: CompiledNetwork) -> _NumpyPlan:
        cached = getattr(compiled, "_numpy_plan", None)
        if cached is not None and cached[0] == compiled.revision:
            return cached[1]
        plan = _NumpyPlan(compiled)
        compiled._numpy_plan = (compiled.revision, plan)
        return plan

    def make_state(self, compiled: CompiledNetwork, num_patterns: int) -> NumpyState:
        state = NumpyState(self._plan(compiled).num_slots, num_patterns)
        for row, op in self._plan(compiled).const_rows:
            if op == OP_CONST1:
                state.block[row] = _np.uint64(0xFFFF_FFFF_FFFF_FFFF)
                state.block[row, -1] = state.tail_mask
        return state

    def load(self, state: NumpyState, index: int, word: int) -> None:
        raw = (word & state.int_mask).to_bytes(state.num_words * 8, "little")
        state.block[index] = _np.frombuffer(raw, dtype="<u8")

    def read(self, state: NumpyState, index: int) -> int:
        return int.from_bytes(
            state.block[index].astype("<u8", copy=False).tobytes(), "little"
        )

    def _eval_into(
        self,
        compiled: CompiledNetwork,
        state: NumpyState,
        position: int,
        out,
    ) -> None:
        """Evaluate one gate's block into the *out* row."""
        block = state.block
        op = compiled.opcode[position]
        fanins = compiled.fanins_of(position)
        if op == OP_CONST0:
            out[:] = 0
        elif op == OP_CONST1:
            out[:] = _np.uint64(0xFFFF_FFFF_FFFF_FFFF)
        elif op == OP_BUF or len(fanins) == 1:
            out[:] = block[fanins[0]]
        else:
            func = (
                _np.bitwise_and if op == OP_AND
                else _np.bitwise_or if op == OP_OR
                else _np.bitwise_xor
            )
            func(block[fanins[0]], block[fanins[1]], out=out)
            for index in fanins[2:]:
                func(out, block[index], out=out)
        if compiled.invert[position]:
            _np.invert(out, out=out)
        if compiled.invert[position] or op == OP_CONST1:
            out[-1] &= state.tail_mask

    def full_sweep(self, compiled: CompiledNetwork, state: NumpyState) -> None:
        block = state.block
        for op, inv, out_idx, a_idx, b_idx in self._plan(compiled).groups:
            if op == OP_BUF:
                rows = block[a_idx]
            else:
                func = (
                    _np.bitwise_and if op == OP_AND
                    else _np.bitwise_or if op == OP_OR
                    else _np.bitwise_xor
                )
                rows = func(block[a_idx], block[b_idx])
            if inv:
                _np.invert(rows, out=rows)
                rows[:, -1] &= state.tail_mask
            block[out_idx] = rows

    def eval_gate(
        self, compiled: CompiledNetwork, state: NumpyState, position: int
    ) -> bool:
        out = state.block[compiled.num_inputs + position]
        old = out.copy()
        self._eval_into(compiled, state, position, out)
        return not _np.array_equal(old, out)


def numpy_available() -> bool:
    """True when the numpy accelerator can be used."""
    return _np is not None


# ----------------------------------------------------------------------
# adaptive backend choice
# ----------------------------------------------------------------------
class SweepShape(NamedTuple):
    """Static shape of one full sweep over a compiled network.

    ``num_nodes`` counts the binary evaluation nodes after multi-input
    gates decompose into balanced trees (what both backends actually
    execute per sweep); ``num_groups`` counts the level-packed
    (level, op, invert) batches the numpy plan would issue — one ufunc
    dispatch each.  The ratio ``num_nodes / num_groups`` is the mean
    vectorization width: deep narrow control logic sits near 1, wide
    shallow XOR networks in the tens to hundreds.
    """

    num_gates: int
    num_nodes: int
    num_groups: int

    @property
    def mean_group_size(self) -> float:
        return self.num_nodes / self.num_groups if self.num_groups else 0.0


def sweep_shape(compiled: CompiledNetwork) -> SweepShape:
    """Shape of *compiled*'s sweep, from the shared binary decomposition.

    Counts the same nodes and (level, op, invert) groups the numpy plan
    executes (:func:`_binary_decomposition` is the single source for
    both) — no numpy needed, no simulation run — and is cached per
    compiled revision, so the adaptive choice costs O(gates) once per
    (re)compile.
    """
    cached = getattr(compiled, "_sweep_shape", None)
    if cached is not None and cached[0] == compiled.revision:
        return cached[1]
    nodes, _const_rows, _num_slots = _binary_decomposition(compiled)
    shape = SweepShape(
        num_gates=compiled.num_gates,
        num_nodes=len(nodes),
        num_groups=len(
            {(lvl, op, inv) for lvl, op, inv, _o, _a, _b in nodes}
        ),
    )
    compiled._sweep_shape = (compiled.revision, shape)
    return shape


#: Cost-model weights in microsecond-equivalent units, calibrated
#: against measured ``set_patterns`` (state + PI loads + full sweep)
#: on CPython 3.11: a bigint node pays ~0.6us of bytecode dispatch
#: and its C limb loop is nearly free per extra word; a numpy level
#: group pays a ufunc dispatch plus fancy-indexed gather/scatter
#: (~4us), pattern loading pays ~0.5us per primary input
#: (``to_bytes``/``frombuffer``) growing with the word count, and a
#: sweep pays a small fixed state-setup cost.  Only the *ordering* of
#: the two totals matters, and it reproduces the measured regimes:
#: bigint wins deep narrow control logic (near-empty level groups,
#: dispatch-dominated) and PI-heavy miniatures; numpy wins wide
#: shallow circuits whose level groups amortize dispatch over tens of
#: gates.
_BIGINT_NODE = 0.6        # per binary node
_BIGINT_NODE_WORD = 0.0015  # per node per 64-bit word (limb loop)
_NUMPY_FIXED = 30.0       # state setup per pattern block
_NUMPY_GROUP = 4.0        # per (level, op, invert) group dispatch
_NUMPY_NODE_WORD = 0.002  # per node per 64-bit word (dense kernel)
_NUMPY_PI = 0.5           # per primary-input load
_NUMPY_PI_WORD = 0.01     # per primary-input load per word


def estimate_sweep_costs(
    compiled: CompiledNetwork, num_patterns: int
) -> tuple[float, float]:
    """(bigint, numpy) modeled cost of one pattern block, same units.

    Covers the whole ``set_patterns`` unit of work — state creation,
    per-PI pattern loads and the full sweep — because that is what
    consumers pay per block; no runtime probing, every term is derived
    from the compiled form's static counts.
    """
    shape = sweep_shape(compiled)
    words = max(1, -(-num_patterns // 64))
    bigint_cost = shape.num_nodes * (
        _BIGINT_NODE + _BIGINT_NODE_WORD * words
    )
    numpy_cost = (
        _NUMPY_FIXED
        + compiled.num_inputs * (_NUMPY_PI + _NUMPY_PI_WORD * words)
        + shape.num_groups * _NUMPY_GROUP
        + shape.num_nodes * _NUMPY_NODE_WORD * words
    )
    return (bigint_cost, numpy_cost)


def choose_backend(compiled: CompiledNetwork, num_patterns: int) -> str:
    """Resolve ``"auto"`` to ``"bigint"`` or ``"numpy"`` for this sweep."""
    if not numpy_available():
        return "bigint"
    bigint_cost, numpy_cost = estimate_sweep_costs(compiled, num_patterns)
    return "bigint" if bigint_cost <= numpy_cost else "numpy"


class AdaptiveState:
    """State wrapper that remembers which concrete backend owns it."""

    __slots__ = ("backend", "inner")

    def __init__(self, backend: SimBackend, inner) -> None:
        self.backend = backend
        self.inner = inner


class AdaptiveBackend:
    """The ``"auto"`` backend: picks bigint or numpy per sweep shape.

    The choice is made at state-creation time from the static cost
    model above — no runtime probing — and travels with the state, so
    one engine can hold, e.g., a bigint state for a 64-pattern filter
    block and a numpy state for a 4096-pattern exhaustive table.
    Results are bit-identical either way (the cross-backend property
    ``tests/test_simcore.py`` checks), so the choice can only move wall
    time.
    """

    name = "auto"

    def __init__(self) -> None:
        self._bigint = BigintBackend()
        self._numpy = NumpyBackend() if numpy_available() else None
        #: backend name picked by the most recent ``make_state``
        self.last_choice: str | None = None

    def resolve(self, compiled: CompiledNetwork, num_patterns: int) -> SimBackend:
        """The concrete backend the cost model picks for this sweep."""
        choice = choose_backend(compiled, num_patterns)
        self.last_choice = choice
        if choice == "numpy" and self._numpy is not None:
            return self._numpy
        return self._bigint

    def make_state(
        self, compiled: CompiledNetwork, num_patterns: int
    ) -> AdaptiveState:
        backend = self.resolve(compiled, num_patterns)
        return AdaptiveState(backend, backend.make_state(compiled, num_patterns))

    def load(self, state: AdaptiveState, index: int, word: int) -> None:
        state.backend.load(state.inner, index, word)

    def read(self, state: AdaptiveState, index: int) -> int:
        return state.backend.read(state.inner, index)

    def full_sweep(self, compiled: CompiledNetwork, state: AdaptiveState) -> None:
        state.backend.full_sweep(compiled, state.inner)

    def eval_gate(
        self, compiled: CompiledNetwork, state: AdaptiveState, position: int
    ) -> bool:
        return state.backend.eval_gate(compiled, state.inner, position)


def make_backend(name: str = "auto") -> SimBackend:
    """Backend factory.

    ``"auto"`` returns the adaptive backend, which resolves to bigint
    on deep narrow sweeps and numpy on wide shallow ones per pattern
    block (and to bigint everywhere when numpy is not installed).
    """
    if name == "auto":
        return AdaptiveBackend()
    if name == "numpy":
        return NumpyBackend()
    if name == "bigint":
        return BigintBackend()
    raise ValueError(f"unknown simulation backend {name!r}")
