"""Five-valued logic for the D-calculus (Roth, 1966).

The paper's theory is phrased in terms of the D-notation: ``D`` is the
composite value (good 1 / faulty 0) and ``DBAR`` its complement (good
0 / faulty 1).  ``X`` is the unassigned value.  Each composite value is
represented as the pair of its good-circuit and faulty-circuit binary
values, which makes gate evaluation a two-channel Boolean evaluation.
"""

from __future__ import annotations

import enum


class Value(enum.Enum):
    """Five-valued D-calculus signal value."""

    ZERO = (0, 0)
    ONE = (1, 1)
    D = (1, 0)      # good 1, faulty 0
    DBAR = (0, 1)   # good 0, faulty 1
    X = (None, None)

    @property
    def good(self) -> int | None:
        """Good-circuit binary value (``None`` when unassigned)."""
        return self.value[0]

    @property
    def faulty(self) -> int | None:
        """Faulty-circuit binary value (``None`` when unassigned)."""
        return self.value[1]

    def is_assigned(self) -> bool:
        """True for any value other than X."""
        return self is not Value.X

    def is_binary(self) -> bool:
        """True for plain 0 / 1."""
        return self in (Value.ZERO, Value.ONE)

    def is_fault_effect(self) -> bool:
        """True for D or DBAR (the good and faulty values differ)."""
        return self in (Value.D, Value.DBAR)

    def negate(self) -> "Value":
        """Logical complement (X stays X)."""
        return _NEGATE[self]

    def __invert__(self) -> "Value":
        return self.negate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return _NAMES[self]


_NEGATE = {
    Value.ZERO: Value.ONE,
    Value.ONE: Value.ZERO,
    Value.D: Value.DBAR,
    Value.DBAR: Value.D,
    Value.X: Value.X,
}

_NAMES = {
    Value.ZERO: "0",
    Value.ONE: "1",
    Value.D: "D",
    Value.DBAR: "D'",
    Value.X: "X",
}


def from_bit(bit: int) -> Value:
    """Convert a binary 0/1 into a :class:`Value`."""
    return Value.ONE if bit else Value.ZERO


def from_pair(good: int | None, faulty: int | None) -> Value:
    """Build a value from its (good, faulty) channel pair."""
    if good is None or faulty is None:
        return Value.X
    return _PAIRS[(good, faulty)]


_PAIRS = {
    (0, 0): Value.ZERO,
    (1, 1): Value.ONE,
    (1, 0): Value.D,
    (0, 1): Value.DBAR,
}


def and_values(values: list[Value]) -> Value:
    """Five-valued AND over a list of values."""
    return _lift(values, _and_channel)


def or_values(values: list[Value]) -> Value:
    """Five-valued OR over a list of values."""
    return _lift(values, _or_channel)


def xor_values(values: list[Value]) -> Value:
    """Five-valued XOR over a list of values (X-dominant)."""
    if any(value is Value.X for value in values):
        return Value.X
    good = 0
    faulty = 0
    for value in values:
        good ^= value.good
        faulty ^= value.faulty
    return from_pair(good, faulty)


def _and_channel(bits: list[int | None]) -> int | None:
    if any(bit == 0 for bit in bits):
        return 0
    if any(bit is None for bit in bits):
        return None
    return 1


def _or_channel(bits: list[int | None]) -> int | None:
    if any(bit == 1 for bit in bits):
        return 1
    if any(bit is None for bit in bits):
        return None
    return 0


def _lift(values: list["Value"], channel) -> "Value":
    good = channel([value.good for value in values])
    faulty = channel([value.faulty for value in values])
    return from_pair(good, faulty)
