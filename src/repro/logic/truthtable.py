"""Truth-table algebra: cofactors and ground-truth symmetry checks.

A function over ``n`` variables is an integer whose bit ``k`` holds the
function value on the input assignment ``k`` (variable ``i`` = bit ``i``
of ``k``).  The symmetry definitions of Section 2.0 are evaluated
directly:

* **NES** (non-equivalence symmetry): ``f_{xi x̄j} == f_{x̄i xj}`` — the
  plain exchange of ``xi`` and ``xj`` leaves ``f`` unchanged.
* **ES** (equivalence symmetry): ``f_{xi xj} == f_{x̄i x̄j}`` — the
  exchange of ``xi`` with the *complement* of ``xj`` (and vice versa)
  leaves ``f`` unchanged.

These are the oracles the paper's reachability-based detector is
validated against in the test suite.
"""

from __future__ import annotations

from .simulate import table_mask, variable_word


def cofactor(table: int, num_vars: int, var: int, phase: int) -> int:
    """Cofactor of *table* with variable *var* fixed to *phase*.

    The result is still expressed over all ``n`` variables (the
    restricted variable becomes irrelevant): positive and negative
    halves are duplicated so cofactors can be compared directly.
    """
    if var >= num_vars:
        raise ValueError(f"variable {var} out of range")
    mask = table_mask(num_vars)
    pattern = variable_word(var, num_vars)
    period = 1 << var
    if phase:
        kept = table & pattern
        spread = kept | (kept >> period)
    else:
        kept = table & ~pattern & mask
        spread = kept | (kept << period)
    return spread & mask


def double_cofactor(
    table: int, num_vars: int,
    var_i: int, phase_i: int, var_j: int, phase_j: int,
) -> int:
    """Cofactor with two variables fixed."""
    once = cofactor(table, num_vars, var_i, phase_i)
    return cofactor(once, num_vars, var_j, phase_j)


def is_nes(table: int, num_vars: int, var_i: int, var_j: int) -> bool:
    """Non-equivalence symmetry: f(xi=1,xj=0) == f(xi=0,xj=1)."""
    lhs = double_cofactor(table, num_vars, var_i, 1, var_j, 0)
    rhs = double_cofactor(table, num_vars, var_i, 0, var_j, 1)
    return lhs == rhs


def is_es(table: int, num_vars: int, var_i: int, var_j: int) -> bool:
    """Equivalence symmetry: f(xi=1,xj=1) == f(xi=0,xj=0)."""
    lhs = double_cofactor(table, num_vars, var_i, 1, var_j, 1)
    rhs = double_cofactor(table, num_vars, var_i, 0, var_j, 0)
    return lhs == rhs


def swap_variables(table: int, num_vars: int, var_i: int, var_j: int) -> int:
    """Truth table of f with variables *var_i* and *var_j* exchanged."""
    if var_i == var_j:
        return table
    result = 0
    for minterm in range(1 << num_vars):
        bit_i = (minterm >> var_i) & 1
        bit_j = (minterm >> var_j) & 1
        swapped = minterm
        if bit_i != bit_j:
            swapped ^= (1 << var_i) | (1 << var_j)
        if (table >> swapped) & 1:
            result |= 1 << minterm
    return result


def complement_variable(table: int, num_vars: int, var: int) -> int:
    """Truth table of f with variable *var* complemented."""
    mask = table_mask(num_vars)
    pattern = variable_word(var, num_vars)
    period = 1 << var
    positive = table & pattern
    negative = table & ~pattern & mask
    return ((positive >> period) | (negative << period)) & mask


def depends_on(table: int, num_vars: int, var: int) -> bool:
    """True when f actually depends on variable *var*."""
    return (
        cofactor(table, num_vars, var, 0)
        != cofactor(table, num_vars, var, 1)
    )


def nes_check_by_swap(
    table: int, num_vars: int, var_i: int, var_j: int
) -> bool:
    """NES via the exchange definition (must agree with :func:`is_nes`)."""
    return swap_variables(table, num_vars, var_i, var_j) == table


def es_check_by_swap(
    table: int, num_vars: int, var_i: int, var_j: int
) -> bool:
    """ES via exchange-with-complement (must agree with :func:`is_es`)."""
    swapped = swap_variables(table, num_vars, var_i, var_j)
    swapped = complement_variable(swapped, num_vars, var_i)
    swapped = complement_variable(swapped, num_vars, var_j)
    return swapped == table


def all_symmetric_pairs(
    table: int, num_vars: int
) -> list[tuple[int, int, str]]:
    """Enumerate all NES / ES pairs of a function.

    Returns tuples ``(i, j, kind)`` with ``i < j`` and kind in
    ``{"nes", "es", "both"}``.
    """
    pairs: list[tuple[int, int, str]] = []
    for var_i in range(num_vars):
        for var_j in range(var_i + 1, num_vars):
            nes = is_nes(table, num_vars, var_i, var_j)
            es = is_es(table, num_vars, var_i, var_j)
            if nes and es:
                pairs.append((var_i, var_j, "both"))
            elif nes:
                pairs.append((var_i, var_j, "nes"))
            elif es:
                pairs.append((var_i, var_j, "es"))
    return pairs
