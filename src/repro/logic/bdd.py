"""A compact reduced ordered binary decision diagram (ROBDD) package.

The paper's verification needs — combinational equivalence of rewired
networks and symmetry ground truth on cones too wide for exhaustive
truth tables — are served by this self-contained BDD manager.  Nodes
are hash-consed triples ``(level, low, high)`` referenced by integer
ids; 0 and 1 are the terminal ids.  Complement edges are not used; the
structure favours clarity over raw capacity, which suits the cone sizes
the rewiring engine produces.
"""

from __future__ import annotations

from typing import Callable

from ..network.gatetype import GateType, base_type, is_inverted
from ..network.netlist import Network

ZERO = 0
ONE = 1

_TERMINAL_LEVEL = 1 << 30


class BddManager:
    """Hash-consed ROBDD node store with an ITE-based apply."""

    def __init__(self, var_names: list[str] | None = None) -> None:
        # nodes[id] = (level, low, high); ids 0/1 are terminals
        self._nodes: list[tuple[int, int, int]] = [
            (_TERMINAL_LEVEL, 0, 0),
            (_TERMINAL_LEVEL, 1, 1),
        ]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self.var_names: list[str] = []
        self._var_index: dict[str, int] = {}
        for name in var_names or []:
            self.declare(name)

    # ------------------------------------------------------------------
    # variables and raw nodes
    # ------------------------------------------------------------------
    def declare(self, name: str) -> int:
        """Declare a variable (appended to the order); returns its level."""
        if name in self._var_index:
            return self._var_index[name]
        level = len(self.var_names)
        self.var_names.append(name)
        self._var_index[name] = level
        return level

    def var(self, name: str) -> int:
        """BDD for the positive literal of *name* (declared on demand)."""
        level = self.declare(name)
        return self._mk(level, ZERO, ONE)

    def nvar(self, name: str) -> int:
        """BDD for the negative literal of *name*."""
        level = self.declare(name)
        return self._mk(level, ONE, ZERO)

    def level_of(self, node: int) -> int:
        """Variable level of *node* (terminals sort last)."""
        return self._nodes[node][0]

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node_id = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node_id
        return node_id

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # boolean operations (all via ITE)
    # ------------------------------------------------------------------
    def ite(self, cond: int, then_: int, else_: int) -> int:
        """If-then-else: the universal binary-operation kernel."""
        if cond == ONE:
            return then_
        if cond == ZERO:
            return else_
        if then_ == else_:
            return then_
        if then_ == ONE and else_ == ZERO:
            return cond
        key = (cond, then_, else_)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(
            self.level_of(cond), self.level_of(then_), self.level_of(else_)
        )
        c0, c1 = self._split(cond, level)
        t0, t1 = self._split(then_, level)
        e0, e1 = self._split(else_, level)
        low = self.ite(c0, t0, e0)
        high = self.ite(c1, t1, e1)
        result = self._mk(level, low, high)
        self._ite_cache[key] = result
        return result

    def _split(self, node: int, level: int) -> tuple[int, int]:
        node_level, low, high = self._nodes[node]
        if node_level == level:
            return low, high
        return node, node

    def not_(self, node: int) -> int:
        return self.ite(node, ZERO, ONE)

    def and_(self, lhs: int, rhs: int) -> int:
        return self.ite(lhs, rhs, ZERO)

    def or_(self, lhs: int, rhs: int) -> int:
        return self.ite(lhs, ONE, rhs)

    def xor(self, lhs: int, rhs: int) -> int:
        return self.ite(lhs, self.not_(rhs), rhs)

    def apply_many(
        self, op: Callable[[int, int], int], operands: list[int]
    ) -> int:
        """Left fold of a binary operation over *operands*."""
        if not operands:
            raise ValueError("apply_many needs at least one operand")
        acc = operands[0]
        for operand in operands[1:]:
            acc = op(acc, operand)
        return acc

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def restrict(self, node: int, name: str, phase: int) -> int:
        """Cofactor of *node* with variable *name* fixed to *phase*."""
        level = self._var_index[name]
        cache: dict[int, int] = {}

        def walk(current: int) -> int:
            node_level, low, high = self._nodes[current]
            if node_level > level:
                return current
            cached = cache.get(current)
            if cached is not None:
                return cached
            if node_level == level:
                result = high if phase else low
            else:
                result = self._mk(node_level, walk(low), walk(high))
            cache[current] = result
            return result

        return walk(node)

    def compose(self, node: int, name: str, replacement: int) -> int:
        """Substitute *replacement* for variable *name* in *node*."""
        positive = self.restrict(node, name, 1)
        negative = self.restrict(node, name, 0)
        return self.ite(replacement, positive, negative)

    def support(self, node: int) -> set[str]:
        """Names of variables the function depends on."""
        seen: set[int] = set()
        names: set[str] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in (ZERO, ONE) or current in seen:
                continue
            seen.add(current)
            level, low, high = self._nodes[current]
            names.add(self.var_names[level])
            stack.append(low)
            stack.append(high)
        return names

    def sat_count(self, node: int, num_vars: int | None = None) -> int:
        """Number of satisfying assignments over the declared variables."""
        total_vars = num_vars if num_vars is not None else len(self.var_names)
        cache: dict[int, int] = {}

        def walk(current: int) -> int:
            # counts assignments over variables below current's level
            if current == ZERO:
                return 0
            if current == ONE:
                return 1
            cached = cache.get(current)
            if cached is not None:
                return cached
            level, low, high = self._nodes[current]
            low_level = min(self.level_of(low), total_vars)
            high_level = min(self.level_of(high), total_vars)
            count = walk(low) * (1 << (low_level - level - 1)) + walk(
                high
            ) * (1 << (high_level - level - 1))
            cache[current] = count
            return count

        top_level = min(self.level_of(node), total_vars)
        return walk(node) * (1 << top_level)

    def any_sat(self, node: int) -> dict[str, int] | None:
        """One satisfying assignment, or ``None`` for the zero function."""
        if node == ZERO:
            return None
        assignment: dict[str, int] = {}
        current = node
        while current != ONE:
            level, low, high = self._nodes[current]
            name = self.var_names[level]
            if high != ZERO:
                assignment[name] = 1
                current = high
            else:
                assignment[name] = 0
                current = low
        return assignment

    def node_count(self, node: int) -> int:
        """Number of distinct internal nodes reachable from *node*."""
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in (ZERO, ONE) or current in seen:
                continue
            seen.add(current)
            _, low, high = self._nodes[current]
            stack.extend((low, high))
        return len(seen)


def network_bdds(
    network: Network,
    manager: BddManager | None = None,
    nets: list[str] | None = None,
) -> tuple[BddManager, dict[str, int]]:
    """Build BDDs for every net (or the cones of *nets*) of a network.

    Primary inputs become BDD variables in PI order.  Returns the
    manager and a map net -> BDD id.
    """
    if manager is None:
        manager = BddManager(list(network.inputs))
    funcs: dict[str, int] = {}
    for pi in network.inputs:
        funcs[pi] = manager.var(pi)
    needed: set[str] | None = None
    if nets is not None:
        needed = set()
        stack = list(nets)
        while stack:
            current = stack.pop()
            if current in needed or network.is_input(current):
                continue
            needed.add(current)
            stack.extend(network.gate(current).fanins)
    for name in network.topo_order():
        if needed is not None and name not in needed:
            continue
        gate = network.gate(name)
        if gate.gtype is GateType.CONST0:
            funcs[name] = ZERO
            continue
        if gate.gtype is GateType.CONST1:
            funcs[name] = ONE
            continue
        operands = [funcs[f] for f in gate.fanins]
        base = base_type(gate.gtype)
        if base is GateType.AND:
            value = manager.apply_many(manager.and_, operands)
        elif base is GateType.OR:
            value = manager.apply_many(manager.or_, operands)
        elif base is GateType.XOR:
            value = manager.apply_many(manager.xor, operands)
        else:  # BUF base
            value = operands[0]
        if is_inverted(gate.gtype):
            value = manager.not_(value)
        funcs[name] = value
    return manager, funcs


def bdd_nes(manager: BddManager, func: int, var_i: str, var_j: str) -> bool:
    """NES check on a BDD: f(xi=1,xj=0) == f(xi=0,xj=1)."""
    lhs = manager.restrict(manager.restrict(func, var_i, 1), var_j, 0)
    rhs = manager.restrict(manager.restrict(func, var_i, 0), var_j, 1)
    return lhs == rhs


def bdd_es(manager: BddManager, func: int, var_i: str, var_j: str) -> bool:
    """ES check on a BDD: f(xi=1,xj=1) == f(xi=0,xj=0)."""
    lhs = manager.restrict(manager.restrict(func, var_i, 1), var_j, 1)
    rhs = manager.restrict(manager.restrict(func, var_i, 0), var_j, 0)
    return lhs == rhs
