"""Direct backward implication (Section 2.0 of the paper).

Given a logic value ``v`` assigned at the out-pin of gate ``g``,
implications are inferred backward: if ``v`` equals the output value
obtained when every input sits at its non-controlling value, then all
in-pins of ``g`` are inferred with ``ncv(g)``.  INV/BUF always imply
their single input; XOR-class gates never imply backward.  The process
stops at gates whose output value is not forcing — exactly the
condition that ends a generalized implication supergate.

The engine also powers the Fig. 1 redundancy analysis: when two
implication paths reconverge at a fanout stem, the stem either receives
*conflicting* values (case 1) or the *same* value (case 2); both events
are reported to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..network.gatetype import (
    GateType,
    XOR_TYPES,
    forced_input_value,
    forcing_output_value,
)
from ..network.netlist import Network


@dataclass
class ImplicationResult:
    """Outcome of a backward implication sweep.

    ``values`` maps each reached net to its implied value.  ``conflicts``
    lists nets implied with *both* polarities (reconvergence, Fig. 1a);
    their entry in ``values`` keeps the first value seen.  ``agreements``
    lists multi-fanout nets reached more than once with a consistent
    value (Fig. 1b).  ``frontier`` lists the nets where implication
    stopped (their drivers were not forced) — the supergate leaves.
    """

    values: dict[str, int] = field(default_factory=dict)
    conflicts: list[str] = field(default_factory=list)
    agreements: list[str] = field(default_factory=list)
    frontier: list[str] = field(default_factory=list)

    def imp_value(self, net: str) -> int | None:
        """``imp_value(p)`` of the paper for the net feeding pin ``p``."""
        return self.values.get(net)


def implies_inputs(gtype: GateType, output_value: int) -> int | None:
    """Value forced on every in-pin when *output_value* sits on the out-pin.

    ``None`` when the gate does not imply backward for this value.
    """
    if gtype is GateType.BUF:
        return output_value
    if gtype is GateType.INV:
        return 1 - output_value
    if gtype in XOR_TYPES:
        return None
    forcing = forcing_output_value(gtype)
    if forcing is None or output_value != forcing:
        return None
    return forced_input_value(gtype)


def backward_imply(
    network: Network,
    net: str,
    value: int,
    cross_fanout: bool = True,
) -> ImplicationResult:
    """Run direct backward implication from ``net = value``.

    With ``cross_fanout=False`` the sweep refuses to continue *through*
    multi-fanout nets (they are recorded on the frontier), matching the
    fanout-free restriction of supergate extraction.  With
    ``cross_fanout=True`` the sweep pushes through stems and reports the
    reconvergence events used for redundancy identification.
    """
    result = ImplicationResult()
    result.values[net] = value
    queue: list[str] = [net]
    seen_multi: set[str] = set()
    while queue:
        current = queue.pop()
        current_value = result.values[current]
        if network.is_input(current):
            result.frontier.append(current)
            continue
        gate = network.gate(current)
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            produced = 1 if gate.gtype is GateType.CONST1 else 0
            if produced != current_value:
                result.conflicts.append(current)
            continue
        forced = implies_inputs(gate.gtype, current_value)
        if forced is None:
            result.frontier.append(current)
            continue
        for fanin in gate.fanins:
            fanin_value = forced
            previous = result.values.get(fanin)
            if previous is not None:
                if previous != fanin_value:
                    if fanin not in result.conflicts:
                        result.conflicts.append(fanin)
                elif (
                    network.fanout_degree(fanin) > 1
                    and fanin not in seen_multi
                ):
                    seen_multi.add(fanin)
                    result.agreements.append(fanin)
                continue
            result.values[fanin] = fanin_value
            if not cross_fanout and network.fanout_degree(fanin) > 1:
                result.frontier.append(fanin)
                continue
            queue.append(fanin)
    return result


def forward_value(network: Network, values: dict[str, int], net: str) -> int | None:
    """Forward-evaluate *net* when all its fanins are known in *values*.

    A small helper for consistency checks; returns ``None`` when some
    fanin is unassigned.
    """
    if network.is_input(net):
        return values.get(net)
    gate = network.gate(net)
    words: list[int] = []
    for fanin in gate.fanins:
        value = values.get(fanin)
        if value is None:
            return None
        words.append(value)
    return gate.eval(words, mask=1)
