"""Bit-parallel logic simulation.

Simulation words are arbitrary-precision Python integers whose bits are
independent patterns.  The same engine therefore covers:

* single-pattern evaluation (``mask=1``),
* 64-bit parallel random simulation (equivalence filtering),
* *exhaustive* truth-table simulation: for a cone with ``n`` inputs the
  word for input ``i`` is the standard variable pattern of period
  ``2**(i+1)`` over ``2**n`` bits, and every net's word *is* its truth
  table.  This is the ground-truth oracle the symmetry tests are
  checked against.

This module is the *reference* evaluator: a straightforward interpreted
walk over the live network, convenient for one-off queries and as the
oracle property tests compare against.  The hot paths (equivalence
filtering, symmetry verification, ATPG fault dropping) run on
:mod:`repro.logic.simcore` instead — the same word algebra over a
compiled index-array form with pluggable bigint/numpy backends and
incremental resimulation, 1-2 orders of magnitude faster per sweep.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping

from ..network.gatetype import GateType
from ..network.netlist import Network


def variable_word(index: int, num_vars: int) -> int:
    """Truth-table word of input *index* among *num_vars* variables.

    Bit ``k`` of the result is bit *index* of ``k``; input 0 is the
    fastest-toggling variable.
    """
    if index >= num_vars:
        raise ValueError(f"variable {index} out of range for {num_vars} vars")
    return _tile(1 << index, 1 << num_vars)


def _tile(period: int, total: int) -> int:
    """Word of length *total* with alternating 0^period 1^period blocks."""
    ones = (1 << period) - 1
    word = 0
    position = period
    while position < total:
        word |= ones << position
        position += 2 * period
    return word


def table_mask(num_vars: int) -> int:
    """All-ones mask of a *num_vars*-input truth table."""
    return (1 << (1 << num_vars)) - 1


def simulate(
    network: Network,
    assignments: Mapping[str, int],
    mask: int = 1,
) -> dict[str, int]:
    """Evaluate every net given input words; returns net -> word.

    *assignments* must define a word for every primary input.  Constant
    gates need no assignment.
    """
    words: dict[str, int] = {}
    for pi in network.inputs:
        try:
            words[pi] = assignments[pi] & mask
        except KeyError:
            raise KeyError(f"no assignment for primary input {pi!r}") from None
    for name in network.topo_order():
        gate = network.gate(name)
        fanin_words = [words[net] for net in gate.fanins]
        words[name] = gate.eval(fanin_words, mask)
    return words


def simulate_outputs(
    network: Network,
    assignments: Mapping[str, int],
    mask: int = 1,
) -> list[int]:
    """Simulate and return only the primary-output words, in PO order."""
    words = simulate(network, assignments, mask)
    return [words[net] for net in network.outputs]


def truth_tables(
    network: Network, support: list[str] | None = None
) -> dict[str, int]:
    """Exhaustive simulation: truth-table word for every net.

    *support* orders the variables (default: the network's primary
    inputs).  Only feasible for small supports (``2**n``-bit words).
    """
    if support is None:
        support = list(network.inputs)
    num_vars = len(support)
    if num_vars > 24:
        raise ValueError(f"support of {num_vars} inputs is too large")
    assignments = {
        net: variable_word(index, num_vars)
        for index, net in enumerate(support)
    }
    return simulate(network, assignments, mask=table_mask(num_vars))


def cone_truth_table(network: Network, net: str) -> tuple[list[str], int]:
    """Truth table of a single net over its own support.

    Returns ``(support, table)`` where *support* lists the primary
    inputs of the cone in PI order and *table* is the truth-table word.
    """
    support = network.cone_inputs(net)
    extracted = extract_cone(network, [net])
    tables = truth_tables(extracted, support)
    return support, tables[net]


def extract_cone(network: Network, nets: list[str]) -> Network:
    """Copy the transitive fanin cones of *nets* into a fresh network."""
    cone = Network(f"{network.name}_cone")
    needed: set[str] = set()
    stack = list(nets)
    while stack:
        current = stack.pop()
        if current in needed:
            continue
        needed.add(current)
        if not network.is_input(current):
            stack.extend(network.gate(current).fanins)
    for pi in network.inputs:
        if pi in needed:
            cone.add_input(pi)
    for name in network.topo_order():
        if name in needed:
            gate = network.gate(name)
            cone.add_gate(name, gate.gtype, list(gate.fanins), cell=gate.cell)
    for net in nets:
        cone.add_output(net)
    return cone


def random_words(
    nets: Iterable[str], width: int = 64, seed: int = 0
) -> dict[str, int]:
    """Deterministic random simulation words for the given nets."""
    rng = random.Random(seed)
    mask = (1 << width) - 1
    return {net: rng.getrandbits(width) & mask for net in nets}


def random_simulate_outputs(
    network: Network, width: int = 64, seed: int = 0
) -> list[int]:
    """Random-pattern output words (a cheap functional fingerprint)."""
    words = random_words(network.inputs, width=width, seed=seed)
    return simulate_outputs(network, words, mask=(1 << width) - 1)
