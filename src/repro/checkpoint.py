"""Run checkpoint/resume: crash-durable optimization state on disk.

A killed process used to lose the whole optimization trajectory; this
module makes long runs restartable without changing what they compute.
:class:`CheckpointManager` owns one checkpoint file and a SIGTERM
handler; the flow's loops call :meth:`CheckpointManager.boundary` at
deterministic points (an optimization round, a partitioned-rewiring
round) with a builder producing the resume payload.  On cadence — and
always when a SIGTERM arrived since the last boundary — the payload is
written atomically (temp file, fsync, ``os.replace``), and after an
interrupt save :class:`RunInterrupted` unwinds the run so the caller
can exit with :data:`CHECKPOINT_EXIT_CODE`.

The payload formats are built from the exact serializations the
parallel snapshot protocol already guarantees bit-exact
(:func:`repro.parallel.snapshot.pack_state_columns` /
:func:`state_from_columns`): a :class:`~repro.timing.sta.EvalState`
carries the network, placement and the engine's *cached* analysis
verbatim — never recomputed — so a resumed engine prices, commits and
logs exactly what the uninterrupted run would have.  The same holds
for resume itself: ``run_rapids(resume=True)`` replays no work, it
grafts the saved state into the live objects
(:func:`graft_state` / :func:`engine_from_state`) and re-enters the
loop at the saved cursor, producing a final fingerprint identical to
an uninterrupted run (``tests/test_checkpoint.py`` locks this).
"""

from __future__ import annotations

import os
import pickle
import signal
import time

from .network.netlist import Gate, Network
from .parallel import faults
from .parallel.snapshot import pack_state_columns, state_from_columns
from .place.placement import Placement
from .timing.sta import EvalState, TimingEngine

#: Exit status of a run stopped at a checkpoint (BSD ``EX_TEMPFAIL``:
#: a temporary condition — rerun with ``--resume`` to continue).
CHECKPOINT_EXIT_CODE = 75


class RunInterrupted(RuntimeError):
    """A SIGTERM arrived and the state was checkpointed; stop cleanly."""

    def __init__(self, path: str, stage: str) -> None:
        super().__init__(
            f"run interrupted; state checkpointed to {path} "
            f"(stage {stage!r}) — rerun with --resume to continue"
        )
        self.path = path
        self.stage = stage


class CheckpointManager:
    """One run's checkpoint file, save cadence, and SIGTERM handling.

    *every* is the boundary cadence (1 = save at every boundary).  The
    SIGTERM handler only sets a flag; the actual save happens at the
    next boundary, where the state is consistent by construction.
    ``context`` entries (set by the orchestrator — benchmark name,
    mode, flow knobs) ride along in every payload so resume can verify
    it is continuing the same run.
    """

    def __init__(self, path: str, every: int = 1) -> None:
        self.path = str(path)
        self.every = max(1, int(every))
        self.context: dict = {}
        self.boundaries = 0
        self.saves = 0
        self.interrupted = False
        #: cumulative seconds spent serializing + writing checkpoints
        self.save_seconds = 0.0
        self._previous_handler = None
        self._installed = False

    # ------------------------------------------------------------------
    # signal lifecycle
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Route SIGTERM to the interrupt flag (main thread only)."""
        if self._installed:
            return
        try:
            self._previous_handler = signal.signal(
                signal.SIGTERM, self._on_sigterm
            )
            self._installed = True
        except ValueError:  # pragma: no cover - non-main thread
            self._previous_handler = None

    def uninstall(self) -> None:
        """Restore the previous SIGTERM disposition (idempotent)."""
        if not self._installed:
            return
        self._installed = False
        try:
            signal.signal(
                signal.SIGTERM,
                self._previous_handler
                if self._previous_handler is not None
                else signal.SIG_DFL,
            )
        except ValueError:  # pragma: no cover - non-main thread
            pass

    def _on_sigterm(self, signum, frame) -> None:
        self.interrupted = True

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def load(self) -> dict | None:
        """The saved payload, or ``None`` (missing/corrupt → run fresh)."""
        try:
            with open(self.path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, EOFError, pickle.UnpicklingError, ValueError,
                AttributeError, ImportError):
            return None
        return payload if isinstance(payload, dict) else None

    def save(self, payload: dict) -> None:
        """Atomically replace the checkpoint file with *payload*.

        Write-to-temp + fsync + ``os.replace`` means a crash mid-save
        leaves the previous checkpoint intact — the file on disk is
        always a complete, loadable payload.
        """
        started = time.perf_counter()
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self.saves += 1
        self.save_seconds += time.perf_counter() - started

    def boundary(self, stage: str, builder, force: bool = False) -> None:
        """One deterministic save point inside a flow loop.

        *builder* is called only when a save is due (cadence, *force*,
        or a pending interrupt) and returns the resume payload for
        *stage*; ``stage`` and the manager ``context`` are merged in.
        After an interrupt-triggered save, raises :class:`RunInterrupted`
        to unwind the run.  Fault plans key the ``checkpoint_round``
        injection point on the boundary counter.
        """
        self.boundaries += 1
        action = faults.checkpoint_fault(self.boundaries)
        if action == "sigterm":
            # raise_signal delivery lands at an interpreter checkpoint;
            # set the flag directly so the injected interrupt is
            # deterministic regardless of delivery timing
            self.interrupted = True
        if force or self.interrupted or self.boundaries % self.every == 0:
            payload = dict(builder())
            payload["stage"] = stage
            payload.update(self.context)
            self.save(payload)
        if self.interrupted:
            raise RunInterrupted(self.path, stage)


# ----------------------------------------------------------------------
# state packing (array columns when possible, pickled graph otherwise)
# ----------------------------------------------------------------------

def pack_eval_state(state: EvalState) -> dict:
    """*state* as a checkpoint payload entry.

    Prefers the SoA column layout (compact, and its bit-exactness is
    already locked by the snapshot protocol's tests); states the packer
    cannot express fall back to the pickled object graph.
    """
    columns = pack_state_columns(state)
    if columns is None:
        return {"kind": "pickle", "state": state}
    blocks, header = columns
    return {
        "kind": "soa",
        "arrays": {name: array for name, array in blocks},
        "header": header,
    }


def unpack_eval_state(packed: dict) -> EvalState:
    """Inverse of :func:`pack_eval_state`.

    The returned state is exclusively owned by the caller (checkpoint
    payloads round-trip through pickle), so its network and dicts may
    be adopted without copying.
    """
    if packed["kind"] == "soa":
        return state_from_columns(packed["arrays"], packed["header"])
    return packed["state"]


def pack_network(network: Network, placement: Placement) -> dict:
    """Network + placement only (no analysis) as a payload entry.

    Rides the same column layout by wrapping them in an
    :class:`EvalState` with empty analysis dicts — used for best-seen
    snapshots and the inter-stage handoff, where no engine caches need
    to survive.
    """
    return pack_eval_state(EvalState(
        network=network,
        placement=placement,
        library=None,
        period=None,
        po_pad_cap=0.0,
        arrival={},
        slack={},
        stars={},
        levels={},
        req0={},
        max_delay=0.0,
        version=network.version,
    ))


def graft_state(state: EvalState, network: Network,
                placement: Placement) -> None:
    """Adopt *state*'s network and placement into the live objects.

    The flow's other components (site factories, supergate caches,
    result reporting) hold references to the caller's *network* and
    *placement*, so resume must restore content *into* them rather
    than swap objects.  No mutation events are emitted — callers graft
    before any listener subscribes (engines and caches are built after
    resume) — and the derived-structure caches are reset by hand.
    """
    source = state.network
    network.name = source.name
    network.inputs = list(source.inputs)
    network._input_set = set(source._input_set)
    network.outputs = list(source.outputs)
    network._gates = {
        name: Gate(
            name=gate.name, gtype=gate.gtype,
            fanins=list(gate.fanins), cell=gate.cell,
        )
        for name, gate in source._gates.items()
    }
    network.version = state.version
    network._fanout_cache = None
    network._fanout_version = -1
    network._po_count_cache = None
    network._po_count_version = -1
    network._topo_cache = None
    network._topo_version = -1
    saved = state.placement
    placement.die_width = saved.die_width
    placement.die_height = saved.die_height
    placement.locations = dict(saved.locations)
    placement.input_pads = dict(saved.input_pads)
    placement.output_pads = dict(saved.output_pads)


def engine_from_state(
    state: EvalState,
    network: Network,
    placement: Placement,
    library,
) -> TimingEngine:
    """Grafted live objects plus an engine resuming *state*'s analysis.

    Mirrors :meth:`TimingEngine.from_eval_state` — the cached dicts are
    adopted in their recorded iteration order, no analysis runs — but
    binds the engine to the caller's live *network*/*placement*/
    *library* so the rest of the run sees one consistent object graph.
    The engine prices and commits bit-identically to the engine the
    interrupted run would have carried into the same round.
    """
    graft_state(state, network, placement)
    engine = TimingEngine(
        network, placement, library,
        period=state.period, po_pad_cap=state.po_pad_cap,
    )
    engine.arrival = dict(state.arrival)
    engine.slack = dict(state.slack)
    engine.stars = dict(state.stars)
    engine._levels = dict(state.levels)
    engine._req0 = dict(state.req0)
    engine.max_delay = state.max_delay
    engine._target = (
        state.period if state.period is not None else state.max_delay
    )
    engine._analyzed_version = state.version
    engine._needs_full = False
    return engine
