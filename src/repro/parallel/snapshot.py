"""Cross-batch snapshot diffing for sharded gain evaluation.

The parent used to re-ship the full :class:`~repro.timing.sta.EvalState`
(~120 KB pickled on c499) to the worker processes for *every*
evaluation batch, although a committed 64-move batch dirties only a
small slice of the analysis between exports.  This module ships the
difference instead:

* the first batch of a session sends a **baseline** — the complete
  state tagged with a session token and baseline id; worker processes
  cache it in a bounded per-session store (one slot per pool session);
* subsequent batches send a **delta**: everything that differs from
  the *baseline* (gate signatures, IO lists, placement locations,
  arrival/required/level entries, rebuilt star models, the scalar
  target).  Deltas are cumulative — always diffed against the
  baseline, never against the previous delta — so any worker holding
  the baseline can reconstruct the current state no matter which
  intermediate batches its process happened to execute.

A worker that never saw the baseline (process scheduling is not
uniform) reports ``stale`` and the parent evaluates that shard inline
against its live engine — same selections, slightly more parent work,
never a wrong answer.  When a delta approaches the size of a full
snapshot (late in an optimization run, when most nets have drifted)
the codec re-baselines automatically.

Slacks are never shipped in deltas: the worker refolds them from the
delta's required pairs, arrivals and target with the exact expression
:meth:`TimingEngine._fold_slacks` uses, so the reconstructed engine is
bit-identical to one built from a full snapshot.

Baselines themselves no longer travel as pickled object graphs.  When
numpy and ``multiprocessing.shared_memory`` are available the codec
packs the state into flat arrays — the name table, the SoA kernel's
fanin CSR, gate type/cell id tables, placement coordinates, the
arrival/required/level dictionaries as (net-index, value) columns and
the star models as a sink CSR — into one shared-memory block, and the
pipe carries only a small pickled header (block name, segment table,
library, scalars).  Workers attach the block, copy the arrays out,
close it, and rebuild an ``EvalState`` that is bit-identical to the
pickled one: dictionary iteration orders are preserved via explicit
key columns, gates are re-inserted in the network's insertion order,
and slacks are refolded exactly as for deltas.  Any reference the
packer cannot express as an index (never in practice) falls back to
the pickled-full payload, so the protocol degrades instead of failing.
"""

from __future__ import annotations

import os
import pickle
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..network.netlist import Gate, Network, Pin
from ..network.soa import get_soa
from ..place.placement import Placement
from ..timing.netmodel import StarNet, StarSink
from ..timing.sta import EvalState
from . import faults, shm

try:  # pragma: no cover - exercised via the numpy-present suite
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

try:  # pragma: no cover - stdlib; absent only on exotic builds
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..timing.sta import TimingEngine

#: Ship a full snapshot instead when the delta pickle exceeds this
#: fraction of the last full payload — past that point diffing only
#: adds bookkeeping.
REBASE_FRACTION = 0.6

_SESSION_COUNTER = 0


@dataclass
class EvalDelta:
    """Everything that changed relative to a baseline ``EvalState``."""

    gates_upsert: list[tuple[str, object, tuple[str, ...], str | None]]
    gates_removed: list[str]
    inputs: list[str] | None
    outputs: list[str] | None
    locations_upsert: list[tuple[str, tuple[float, float]]]
    locations_removed: list[str]
    arrival_upsert: dict
    arrival_removed: list[str]
    req0_upsert: dict
    req0_removed: list[str]
    levels_upsert: dict
    levels_removed: list[str]
    stars_upsert: dict
    stars_removed: list[str]
    max_delay: float
    version: int

    def change_count(self) -> int:
        return (
            len(self.gates_upsert) + len(self.gates_removed)
            + len(self.locations_upsert) + len(self.locations_removed)
            + len(self.arrival_upsert) + len(self.arrival_removed)
            + len(self.req0_upsert) + len(self.req0_removed)
            + len(self.levels_upsert) + len(self.levels_removed)
            + len(self.stars_upsert) + len(self.stars_removed)
        )


@dataclass
class SnapshotStats:
    """Payload accounting for benchmarks and tests.

    ``full_bytes`` counts everything a full baseline ships — pickled
    pipe payload *plus* shared-memory data — so size comparisons
    against deltas stay honest; ``full_pipe_bytes`` isolates what
    actually crosses the executor pipe per full batch.
    """

    full_batches: int = 0
    delta_batches: int = 0
    full_bytes: int = 0
    full_pipe_bytes: int = 0
    delta_bytes: int = 0
    stale_shards: int = 0
    changes_shipped: int = 0

    def mean_full_bytes(self) -> float:
        return self.full_bytes / self.full_batches if self.full_batches else 0.0

    def mean_full_pipe_bytes(self) -> float:
        return (
            self.full_pipe_bytes / self.full_batches
            if self.full_batches else 0.0
        )

    def mean_delta_bytes(self) -> float:
        return (
            self.delta_bytes / self.delta_batches
            if self.delta_batches else 0.0
        )


@dataclass
class _BaselineRefs:
    """Parent-side shallow capture of a shipped baseline.

    Dict values are immutable (tuples, floats, ints) and star models
    are replaced — never mutated — when rebuilt, so value/identity
    comparison against these shallow copies detects every change.
    """

    gates: dict[str, tuple]
    inputs: list[str]
    outputs: list[str]
    locations: dict[str, tuple[float, float]]
    arrival: dict
    req0: dict
    levels: dict
    stars: dict


class EvalSnapshotCodec:
    """Parent-side encoder: full baselines + cumulative deltas."""

    def __init__(self) -> None:
        global _SESSION_COUNTER
        _SESSION_COUNTER += 1
        self.token = f"{os.getpid()}.{_SESSION_COUNTER}"
        self.stats = SnapshotStats()
        self._baseline_id = 0
        self._refs: _BaselineRefs | None = None
        self._engine_ref: "weakref.ref[TimingEngine] | None" = None
        self._last_full_bytes = 0
        #: parent-held shared-memory block of the current baseline;
        #: released when the next baseline ships or the codec closes
        self._shm: object | None = None

    def encode(self, engine: "TimingEngine") -> bytes:
        """Payload for this batch: a delta when possible, else a full."""
        state = engine.export_eval_state()
        previous = (
            self._engine_ref() if self._engine_ref is not None else None
        )
        if self._refs is None or previous is not engine:
            return self._encode_full(engine, state)
        delta = self._diff(state)
        payload = pickle.dumps(
            ("delta", self.token, self._baseline_id, delta),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        if len(payload) > REBASE_FRACTION * self._last_full_bytes:
            return self._encode_full(engine, state)
        self.stats.delta_batches += 1
        self.stats.delta_bytes += len(payload)
        self.stats.changes_shipped += delta.change_count()
        return payload

    def invalidate(self) -> None:
        """Force the next :meth:`encode` to ship a full baseline.

        Called when a worker reports a stale shard (it never cached
        the current baseline): re-shipping the full snapshot gives
        every process a chance to resynchronize instead of leaving the
        late joiner permanently on the parent-inline fallback.  Worst
        case (a worker that idles through every full batch) this
        degrades to the pre-diffing ship-full-every-batch behavior —
        never worse than the baseline protocol.
        """
        self._refs = None

    def _encode_full(
        self, engine: "TimingEngine", state: EvalState
    ) -> bytes:
        self._baseline_id += 1
        self._refs = _capture(state)
        self._engine_ref = weakref.ref(engine)
        packed = _pack_soa(state)
        if packed is not None:
            block, body, data_bytes = packed
            payload = pickle.dumps(
                ("soa_full", self.token, self._baseline_id, body),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            # the previous baseline block is dead weight by now: the
            # pool resolves every in-flight future before the next
            # batch encodes, so no worker can still be attaching to it
            self._release_shared()
            self._shm = block
            total = len(payload) + data_bytes
            self._last_full_bytes = total
            self.stats.full_batches += 1
            self.stats.full_bytes += total
            self.stats.full_pipe_bytes += len(payload)
            return payload
        payload = pickle.dumps(
            ("full", self.token, self._baseline_id, state),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._last_full_bytes = len(payload)
        self.stats.full_batches += 1
        self.stats.full_bytes += len(payload)
        self.stats.full_pipe_bytes += len(payload)
        return payload

    def close(self) -> None:
        """Release the parent-held shared-memory baseline (idempotent).

        Stats stay readable after close — benchmarks assert on them
        once the pool has shut down.
        """
        self._release_shared()

    def _release_shared(self) -> None:
        block = self._shm
        self._shm = None
        shm.release_segment(block)

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self._release_shared()
        except Exception:
            pass

    def _diff(self, state: EvalState) -> EvalDelta:
        refs = self._refs
        assert refs is not None
        network = state.network
        gates_upsert = []
        current_gates = set()
        for gate in network.gates():
            signature = (gate.gtype, tuple(gate.fanins), gate.cell)
            current_gates.add(gate.name)
            if refs.gates.get(gate.name) != signature:
                gates_upsert.append((gate.name, *signature))
        gates_removed = [
            name for name in refs.gates if name not in current_gates
        ]
        inputs = (
            list(network.inputs) if network.inputs != refs.inputs else None
        )
        outputs = (
            list(network.outputs) if network.outputs != refs.outputs else None
        )
        locations = state.placement.locations
        locations_upsert = [
            (name, location) for name, location in locations.items()
            if refs.locations.get(name) != location
        ]
        locations_removed = [
            name for name in refs.locations if name not in locations
        ]
        arrival_upsert, arrival_removed = _dict_diff(
            state.arrival, refs.arrival
        )
        req0_upsert, req0_removed = _dict_diff(state.req0, refs.req0)
        levels_upsert, levels_removed = _dict_diff(
            state.levels, refs.levels
        )
        stars_upsert = {
            net: star for net, star in state.stars.items()
            if refs.stars.get(net) is not star
        }
        stars_removed = [
            net for net in refs.stars if net not in state.stars
        ]
        return EvalDelta(
            gates_upsert=gates_upsert,
            gates_removed=gates_removed,
            inputs=inputs,
            outputs=outputs,
            locations_upsert=locations_upsert,
            locations_removed=locations_removed,
            arrival_upsert=arrival_upsert,
            arrival_removed=arrival_removed,
            req0_upsert=req0_upsert,
            req0_removed=req0_removed,
            levels_upsert=levels_upsert,
            levels_removed=levels_removed,
            stars_upsert=stars_upsert,
            stars_removed=stars_removed,
            max_delay=state.max_delay,
            version=state.version,
        )


def _capture(state: EvalState) -> _BaselineRefs:
    return _BaselineRefs(
        gates={
            gate.name: (gate.gtype, tuple(gate.fanins), gate.cell)
            for gate in state.network.gates()
        },
        inputs=list(state.network.inputs),
        outputs=list(state.network.outputs),
        locations=dict(state.placement.locations),
        arrival=dict(state.arrival),
        req0=dict(state.req0),
        levels=dict(state.levels),
        stars=dict(state.stars),
    )


def _dict_diff(current: dict, reference: dict) -> tuple[dict, list]:
    upsert = {
        key: value for key, value in current.items()
        if reference.get(key, _MISSING) != value
    }
    removed = [key for key in reference if key not in current]
    return upsert, removed


class _Missing:
    def __eq__(self, other) -> bool:  # pragma: no cover - never equal
        return False

    def __ne__(self, other) -> bool:
        return True


_MISSING = _Missing()


# ----------------------------------------------------------------------
# shared-memory packing (parent side)
# ----------------------------------------------------------------------

def _pack_soa(state: EvalState):
    """Pack *state* into flat arrays inside one shared-memory block.

    Returns ``(block, body, data_bytes)`` where ``body`` is the small
    picklable pipe header ``(block name, segment table, header dict)``,
    or ``None`` when the state cannot be expressed as indices into the
    SoA name table (callers then ship the pickled object graph).
    """
    if shared_memory is None:
        return None
    columns = pack_state_columns(state)
    if columns is None:
        return None
    blocks, header = columns
    block, table, data_bytes = _pack_shared(blocks)
    return block, (block.name, table, header), data_bytes


def pack_state_columns(state: EvalState):
    """*state* as flat named arrays plus a small picklable header.

    Returns ``(blocks, header)`` — ``blocks`` is a list of ``(name,
    ndarray)`` pairs, ``header`` the scalar/table dict that
    :func:`state_from_columns` needs to rebuild the state — or ``None``
    when the state cannot be expressed as indices into the SoA name
    table.  The column layout is the serialization shared by the
    shared-memory baseline protocol and :mod:`repro.checkpoint`.
    """
    if np is None:
        return None
    network = state.network
    compiled = get_soa(network).sync()
    arrays = get_soa(network).arrays()
    if arrays is None:
        return None
    net_index = compiled.net_index
    num_inputs = compiled.num_inputs
    num_gates = compiled.num_gates
    names = list(compiled.inputs) + list(compiled.gate_names)
    if any("\n" in name for name in names):
        return None
    # gate type / cell bindings as ids into small header tables
    gates = network._gates
    if len(gates) != num_gates:
        return None
    gtype_table: list = []
    gtype_of: dict = {}
    cell_table: list = []
    cell_of: dict = {}
    gtype_ids = np.empty(num_gates, dtype=np.int32)
    cell_ids = np.empty(num_gates, dtype=np.int32)
    for position, gate_name in enumerate(compiled.gate_names):
        gate = gates.get(gate_name)
        if gate is None:
            return None
        slot = gtype_of.get(gate.gtype)
        if slot is None:
            slot = len(gtype_table)
            gtype_of[gate.gtype] = slot
            gtype_table.append(gate.gtype)
        gtype_ids[position] = slot
        slot = cell_of.get(gate.cell)
        if slot is None:
            slot = len(cell_table)
            cell_of[gate.cell] = slot
            cell_table.append(gate.cell)
        cell_ids[position] = slot
    # the network dict's insertion order, as topological positions —
    # the worker re-inserts gates in this order so every name-keyed
    # iteration downstream matches the parent exactly
    gate_order = np.empty(num_gates, dtype=np.int64)
    for rank, gate_name in enumerate(gates):
        index = net_index.get(gate_name)
        if index is None or index < num_inputs:
            return None
        gate_order[rank] = index - num_inputs
    outputs = np.empty(len(network.outputs), dtype=np.int64)
    for slot, net in enumerate(network.outputs):
        index = net_index.get(net)
        if index is None:
            return None
        outputs[slot] = index
    # placement: coordinates for every entry in dict order; keys that
    # are not nets (stale entries) ride in the header by name
    placement = state.placement
    loc_extras: list[str] = []
    loc_keys = np.empty(len(placement.locations), dtype=np.int64)
    loc_xy = np.empty((len(placement.locations), 2), dtype=np.float64)
    for slot, (key, point) in enumerate(placement.locations.items()):
        index = net_index.get(key)
        if index is None:
            loc_extras.append(key)
            loc_keys[slot] = -1
        else:
            loc_keys[slot] = index
        loc_xy[slot, 0] = point[0]
        loc_xy[slot, 1] = point[1]
    arrival = _pair_columns(state.arrival, net_index)
    req0 = _pair_columns(state.req0, net_index)
    level_keys = _index_keys(state.levels, net_index)
    if arrival is None or req0 is None or level_keys is None:
        return None
    level_vals = np.fromiter(
        state.levels.values(), dtype=np.int64, count=len(state.levels)
    )
    # star models: per-star metadata plus one sink CSR
    stars = state.stars
    star_keys = _index_keys(stars, net_index)
    if star_keys is None:
        return None
    star_meta = np.empty((len(stars), 5), dtype=np.float64)
    sink_counts = np.empty(len(stars), dtype=np.int64)
    sink_gate: list[int] = []
    sink_pin: list[int] = []
    sink_vals: list[tuple[float, float, float, float]] = []
    for slot, (net, star) in enumerate(stars.items()):
        if star.net != net:
            return None
        star_meta[slot, 0] = star.source[0]
        star_meta[slot, 1] = star.source[1]
        star_meta[slot, 2] = star.center[0]
        star_meta[slot, 3] = star.center[1]
        star_meta[slot, 4] = star.total_cap
        sink_counts[slot] = len(star.sinks)
        for sink in star.sinks:
            if sink.pin is None:
                sink_gate.append(-1)
                sink_pin.append(0)
            else:
                index = net_index.get(sink.pin.gate)
                if index is None:
                    return None
                sink_gate.append(index)
                sink_pin.append(sink.pin.index)
            sink_vals.append(
                (sink.location[0], sink.location[1],
                 sink.pin_cap, sink.wire_delay)
            )
    blocks = [
        ("names", np.frombuffer(
            "\n".join(names).encode("utf-8"), dtype=np.uint8
        )),
        ("fanin_offset", arrays["fanin_offset"]),
        ("fanin_flat", arrays["fanin_flat"]),
        ("gtype_ids", gtype_ids),
        ("cell_ids", cell_ids),
        ("gate_order", gate_order),
        ("outputs", outputs),
        ("loc_keys", loc_keys),
        ("loc_xy", loc_xy),
        ("arrival_keys", arrival[0]),
        ("arrival_vals", arrival[1]),
        ("req0_keys", req0[0]),
        ("req0_vals", req0[1]),
        ("level_keys", level_keys),
        ("level_vals", level_vals),
        ("star_keys", star_keys),
        ("star_meta", star_meta),
        ("sink_counts", sink_counts),
        ("sink_gate", np.asarray(sink_gate, dtype=np.int64)),
        ("sink_pin", np.asarray(sink_pin, dtype=np.int64)),
        ("sink_vals", np.asarray(
            sink_vals, dtype=np.float64
        ).reshape(len(sink_vals), 4)),
    ]
    header = {
        "name": network.name,
        "version": state.version,
        "num_inputs": num_inputs,
        "library": state.library,
        "period": state.period,
        "po_pad_cap": state.po_pad_cap,
        "max_delay": state.max_delay,
        "die": (placement.die_width, placement.die_height),
        "input_pads": dict(placement.input_pads),
        "output_pads": dict(placement.output_pads),
        "loc_extras": loc_extras,
        "gtype_table": gtype_table,
        "cell_table": cell_table,
    }
    return blocks, header


def _pair_columns(mapping: dict, net_index: dict):
    """(net-index keys, (n, 2) float values) columns of *mapping*."""
    keys = _index_keys(mapping, net_index)
    if keys is None:
        return None
    vals = np.empty((len(mapping), 2), dtype=np.float64)
    for slot, pair in enumerate(mapping.values()):
        vals[slot, 0] = pair[0]
        vals[slot, 1] = pair[1]
    return keys, vals


def _index_keys(mapping: dict, net_index: dict):
    """*mapping*'s keys as net indices in dict order, or ``None``."""
    keys = np.empty(len(mapping), dtype=np.int64)
    for slot, name in enumerate(mapping):
        index = net_index.get(name)
        if index is None:
            return None
        keys[slot] = index
    return keys


def _pack_shared(blocks: list):
    """Copy named arrays into one shared-memory block.

    Returns ``(block, table, data_bytes)`` where ``table`` rows are
    ``(name, dtype, shape, offset)`` — everything :func:`_unpack_shared`
    needs to view the arrays back out of the buffer.
    """
    total = sum(int(array.nbytes) for _, array in blocks)
    block = shm.create_segment(total)
    table = []
    offset = 0
    for name, array in blocks:
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=block.buf, offset=offset
        )
        view[...] = array
        table.append((name, array.dtype.str, array.shape, offset))
        offset += int(array.nbytes)
    return block, table, total


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

class SnapshotSessionStore:
    """Per-process baseline cache, scoped and bounded by pool session.

    One slot per session token — a rebased baseline of the *same*
    session overwrites its predecessor — with LRU eviction across
    sessions, so a long-lived worker process serving many successive
    pools holds at most *capacity* snapshots instead of growing an
    unbounded module dict.
    """

    def __init__(self, capacity: int = 8) -> None:
        self._capacity = capacity
        self._sessions: "OrderedDict[str, tuple[int, EvalState]]" = (
            OrderedDict()
        )

    def put(
        self, token: str, baseline_id: int, state: EvalState
    ) -> None:
        sessions = self._sessions
        sessions[token] = (baseline_id, state)
        sessions.move_to_end(token)
        while len(sessions) > self._capacity:
            sessions.popitem(last=False)

    def get(self, token: str) -> "tuple[int, EvalState] | None":
        return self._sessions.get(token)

    def clear(self) -> None:
        self._sessions.clear()


#: Baseline cache of this worker process, keyed by pool session token.
_SESSIONS = SnapshotSessionStore()


def decode(payload: bytes, fault_token: int = -1) -> EvalState | None:
    """Rebuild the batch's :class:`EvalState`, or ``None`` when stale.

    ``None`` means this process lacks the referenced baseline (it
    joined the pool after the full snapshot shipped, the pool rebased
    while a task was queued, or the shared-memory block of a ``soa``
    baseline was already retired) — the caller must fall back.

    *fault_token* is the parent-assigned submission index; a
    :class:`~repro.parallel.faults.FaultPlan` keyed on it can force the
    shm-attach and corrupt-delta failure paths deterministically.
    """
    kind, token, baseline_id, body = pickle.loads(payload)
    if kind == "soa_full":
        if faults.decode_fault("shm_attach", fault_token):
            return None
        state = _decode_soa_full(body)
        if state is None:
            return None
        _SESSIONS.put(token, baseline_id, state)
        # hand out a clone, never the cached object: an engine built
        # from the return value may legally commit moves through it
        # (from_eval_state advertises that), and a mutated baseline
        # would silently corrupt every later delta reconstruction
        return _clone_state(state)
    if kind == "full":
        _SESSIONS.put(token, baseline_id, body)
        return _clone_state(body)
    if faults.decode_fault("corrupt_delta", fault_token):
        return None
    cached = _SESSIONS.get(token)
    if cached is None or cached[0] != baseline_id:
        return None
    return apply_delta(cached[1], body)


def _decode_soa_full(body) -> EvalState | None:
    """Rebuild an ``EvalState`` from a shared-memory ``soa_full`` body.

    Attaches the block, copies every segment out, closes it (the
    parent keeps the block alive until the next baseline ships) and
    reconstructs the object graph in the exact iteration orders the
    parent packed, so the result is bit-identical to unpickling the
    equivalent ``full`` payload.  ``None`` when the block is already
    gone — the caller reports the shard stale.
    """
    if np is None or shared_memory is None:  # pragma: no cover
        return None
    block_name, table, header = body
    try:
        # attach-time tracker registration is harmless here: fork and
        # spawn children share the parent's resource-tracker process,
        # so this re-add of an already-tracked name is a set no-op and
        # the parent's eventual unlink() is the single unregister
        block = shared_memory.SharedMemory(name=block_name)
    except (FileNotFoundError, OSError):
        return None
    try:
        arrays = _unpack_shared(block, table)
    finally:
        block.close()
    return state_from_columns(arrays, header)


def state_from_columns(arrays: dict, header: dict) -> EvalState:
    """Inverse of :func:`pack_state_columns`.

    Reconstructs the object graph in the exact iteration orders the
    packer recorded (explicit key columns, ``gate_order`` insertion
    ranks, slacks refolded with the ``_fold_slacks`` expression), so
    the result is bit-identical to unpickling the original state.
    Shared by the worker decode path and :mod:`repro.checkpoint`.
    """
    blob = arrays["names"].tobytes()
    names = blob.decode("utf-8").split("\n") if blob else []
    num_inputs = header["num_inputs"]
    network = Network(header["name"])
    network.inputs = list(names[:num_inputs])
    network._input_set = set(network.inputs)
    offsets = arrays["fanin_offset"].tolist()
    fanin_names = [names[index] for index in arrays["fanin_flat"].tolist()]
    gtype_table = header["gtype_table"]
    cell_table = header["cell_table"]
    gtype_ids = arrays["gtype_ids"].tolist()
    cell_ids = arrays["cell_ids"].tolist()
    for position in arrays["gate_order"].tolist():
        name = names[num_inputs + position]
        network._gates[name] = Gate(
            name=name,
            gtype=gtype_table[gtype_ids[position]],
            fanins=fanin_names[offsets[position]:offsets[position + 1]],
            cell=cell_table[cell_ids[position]],
        )
    network.outputs = [names[index] for index in arrays["outputs"].tolist()]
    network.version = header["version"]
    extras = iter(header["loc_extras"])
    locations: dict[str, tuple[float, float]] = {}
    for index, point in zip(
        arrays["loc_keys"].tolist(), arrays["loc_xy"].tolist()
    ):
        key = names[index] if index >= 0 else next(extras)
        locations[key] = (point[0], point[1])
    die_width, die_height = header["die"]
    placement = Placement(
        die_width=die_width,
        die_height=die_height,
        locations=locations,
        input_pads=header["input_pads"],
        output_pads=header["output_pads"],
    )
    arrival = _paired_dict(
        names, arrays["arrival_keys"], arrays["arrival_vals"]
    )
    req0 = _paired_dict(names, arrays["req0_keys"], arrays["req0_vals"])
    levels = {
        names[index]: level
        for index, level in zip(
            arrays["level_keys"].tolist(), arrays["level_vals"].tolist()
        )
    }
    stars: dict[str, StarNet] = {}
    meta_rows = arrays["star_meta"].tolist()
    counts = arrays["sink_counts"].tolist()
    sink_gate = arrays["sink_gate"].tolist()
    sink_pin = arrays["sink_pin"].tolist()
    sink_vals = arrays["sink_vals"].tolist()
    cursor = 0
    for slot, index in enumerate(arrays["star_keys"].tolist()):
        sinks = []
        for edge in range(cursor, cursor + counts[slot]):
            gate_index = sink_gate[edge]
            pin = (
                None if gate_index < 0
                else Pin(names[gate_index], sink_pin[edge])
            )
            values = sink_vals[edge]
            sinks.append(StarSink(
                pin=pin,
                location=(values[0], values[1]),
                pin_cap=values[2],
                wire_delay=values[3],
            ))
        cursor += counts[slot]
        net = names[index]
        meta = meta_rows[slot]
        stars[net] = StarNet(
            net=net,
            source=(meta[0], meta[1]),
            center=(meta[2], meta[3]),
            total_cap=meta[4],
            sinks=tuple(sinks),
        )
    target = (
        header["period"] if header["period"] is not None
        else header["max_delay"]
    )
    # refold slacks exactly as TimingEngine._fold_slacks does (see
    # apply_delta): same expression, same req0 iteration order
    slack = {}
    for net, (req_rise, req_fall) in req0.items():
        rise, fall = arrival.get(net, (0.0, 0.0))
        slack[net] = min(req_rise - rise, req_fall - fall) + target
    return EvalState(
        network=network,
        placement=placement,
        library=header["library"],
        period=header["period"],
        po_pad_cap=header["po_pad_cap"],
        arrival=arrival,
        slack=slack,
        stars=stars,
        levels=levels,
        req0=req0,
        max_delay=header["max_delay"],
        version=header["version"],
    )


def _paired_dict(names: list, keys, vals) -> dict:
    return {
        names[index]: (pair[0], pair[1])
        for index, pair in zip(keys.tolist(), vals.tolist())
    }


def _unpack_shared(block, table: list) -> dict:
    """Copy every packed segment out of an attached block."""
    arrays = {}
    for name, dtype, shape, offset in table:
        view = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=block.buf, offset=offset
        )
        arrays[name] = np.array(view, copy=True)
    return arrays




def apply_delta(baseline: EvalState, delta: EvalDelta) -> EvalState:
    """A fresh ``EvalState`` = pristine *baseline* + cumulative *delta*.

    The baseline is never mutated (its network is copied, its dicts
    merged into new ones), so any number of later deltas can be
    applied against it in any order of arrival.
    """
    network = baseline.network.copy()
    for name, gtype, fanins, cell in delta.gates_upsert:
        gate = network._gates.get(name)
        if gate is None:
            network._gates[name] = Gate(
                name=name, gtype=gtype, fanins=list(fanins), cell=cell
            )
        else:
            gate.gtype = gtype
            gate.fanins = list(fanins)
            gate.cell = cell
    for name in delta.gates_removed:
        network._gates.pop(name, None)
    if delta.inputs is not None:
        network.inputs = list(delta.inputs)
        network._input_set = set(delta.inputs)
    if delta.outputs is not None:
        network.outputs = list(delta.outputs)
    network.version = delta.version
    base_placement = baseline.placement
    locations = dict(base_placement.locations)
    locations.update(delta.locations_upsert)
    for name in delta.locations_removed:
        locations.pop(name, None)
    placement = Placement(
        die_width=base_placement.die_width,
        die_height=base_placement.die_height,
        locations=locations,
        input_pads=base_placement.input_pads,
        output_pads=base_placement.output_pads,
    )
    arrival = _merged(
        baseline.arrival, delta.arrival_upsert, delta.arrival_removed
    )
    req0 = _merged(baseline.req0, delta.req0_upsert, delta.req0_removed)
    levels = _merged(
        baseline.levels, delta.levels_upsert, delta.levels_removed
    )
    stars = _merged(
        baseline.stars, delta.stars_upsert, delta.stars_removed
    )
    target = (
        baseline.period if baseline.period is not None else delta.max_delay
    )
    # refold slacks exactly as TimingEngine._fold_slacks does, so the
    # reconstructed engine is bit-identical to a full-snapshot rebuild
    slack = {}
    for net, (req_rise, req_fall) in req0.items():
        rise, fall = arrival.get(net, (0.0, 0.0))
        slack[net] = min(req_rise - rise, req_fall - fall) + target
    return EvalState(
        network=network,
        placement=placement,
        library=baseline.library,
        period=baseline.period,
        po_pad_cap=baseline.po_pad_cap,
        arrival=arrival,
        slack=slack,
        stars=stars,
        levels=levels,
        req0=req0,
        max_delay=delta.max_delay,
        version=delta.version,
    )


def _clone_state(state: EvalState) -> EvalState:
    """Working copy of a baseline: shared immutables, fresh containers."""
    network = state.network.copy()
    network.version = state.version
    placement = Placement(
        die_width=state.placement.die_width,
        die_height=state.placement.die_height,
        locations=dict(state.placement.locations),
        input_pads=state.placement.input_pads,
        output_pads=state.placement.output_pads,
    )
    return EvalState(
        network=network,
        placement=placement,
        library=state.library,
        period=state.period,
        po_pad_cap=state.po_pad_cap,
        arrival=dict(state.arrival),
        slack=dict(state.slack),
        stars=dict(state.stars),
        levels=dict(state.levels),
        req0=dict(state.req0),
        max_delay=state.max_delay,
        version=state.version,
    )


def _merged(base: dict, upsert: dict, removed: list) -> dict:
    merged = dict(base)
    merged.update(upsert)
    for key in removed:
        merged.pop(key, None)
    return merged


def clear_worker_cache() -> None:
    """Drop every cached baseline (tests and long-lived processes)."""
    _SESSIONS.clear()
