"""Cross-batch snapshot diffing for sharded gain evaluation.

The parent used to re-ship the full :class:`~repro.timing.sta.EvalState`
(~120 KB pickled on c499) to the worker processes for *every*
evaluation batch, although a committed 64-move batch dirties only a
small slice of the analysis between exports.  This module ships the
difference instead:

* the first batch of a session sends a **baseline** — the complete
  pickled state tagged with a session token and baseline id; worker
  processes cache it module-globally (one slot per pool session);
* subsequent batches send a **delta**: everything that differs from
  the *baseline* (gate signatures, IO lists, placement locations,
  arrival/required/level entries, rebuilt star models, the scalar
  target).  Deltas are cumulative — always diffed against the
  baseline, never against the previous delta — so any worker holding
  the baseline can reconstruct the current state no matter which
  intermediate batches its process happened to execute.

A worker that never saw the baseline (process scheduling is not
uniform) reports ``stale`` and the parent evaluates that shard inline
against its live engine — same selections, slightly more parent work,
never a wrong answer.  When a delta approaches the size of a full
snapshot (late in an optimization run, when most nets have drifted)
the codec re-baselines automatically.

Slacks are never shipped in deltas: the worker refolds them from the
delta's required pairs, arrivals and target with the exact expression
:meth:`TimingEngine._fold_slacks` uses, so the reconstructed engine is
bit-identical to one built from a full snapshot.
"""

from __future__ import annotations

import os
import pickle
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..network.netlist import Gate
from ..place.placement import Placement
from ..timing.sta import EvalState

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..timing.sta import TimingEngine

#: Ship a full snapshot instead when the delta pickle exceeds this
#: fraction of the last full payload — past that point diffing only
#: adds bookkeeping.
REBASE_FRACTION = 0.6

_SESSION_COUNTER = 0


@dataclass
class EvalDelta:
    """Everything that changed relative to a baseline ``EvalState``."""

    gates_upsert: list[tuple[str, object, tuple[str, ...], str | None]]
    gates_removed: list[str]
    inputs: list[str] | None
    outputs: list[str] | None
    locations_upsert: list[tuple[str, tuple[float, float]]]
    locations_removed: list[str]
    arrival_upsert: dict
    arrival_removed: list[str]
    req0_upsert: dict
    req0_removed: list[str]
    levels_upsert: dict
    levels_removed: list[str]
    stars_upsert: dict
    stars_removed: list[str]
    max_delay: float
    version: int

    def change_count(self) -> int:
        return (
            len(self.gates_upsert) + len(self.gates_removed)
            + len(self.locations_upsert) + len(self.locations_removed)
            + len(self.arrival_upsert) + len(self.arrival_removed)
            + len(self.req0_upsert) + len(self.req0_removed)
            + len(self.levels_upsert) + len(self.levels_removed)
            + len(self.stars_upsert) + len(self.stars_removed)
        )


@dataclass
class SnapshotStats:
    """Payload accounting for benchmarks and tests."""

    full_batches: int = 0
    delta_batches: int = 0
    full_bytes: int = 0
    delta_bytes: int = 0
    stale_shards: int = 0
    changes_shipped: int = 0

    def mean_full_bytes(self) -> float:
        return self.full_bytes / self.full_batches if self.full_batches else 0.0

    def mean_delta_bytes(self) -> float:
        return (
            self.delta_bytes / self.delta_batches
            if self.delta_batches else 0.0
        )


@dataclass
class _BaselineRefs:
    """Parent-side shallow capture of a shipped baseline.

    Dict values are immutable (tuples, floats, ints) and star models
    are replaced — never mutated — when rebuilt, so value/identity
    comparison against these shallow copies detects every change.
    """

    gates: dict[str, tuple]
    inputs: list[str]
    outputs: list[str]
    locations: dict[str, tuple[float, float]]
    arrival: dict
    req0: dict
    levels: dict
    stars: dict


class EvalSnapshotCodec:
    """Parent-side encoder: full baselines + cumulative deltas."""

    def __init__(self) -> None:
        global _SESSION_COUNTER
        _SESSION_COUNTER += 1
        self.token = f"{os.getpid()}.{_SESSION_COUNTER}"
        self.stats = SnapshotStats()
        self._baseline_id = 0
        self._refs: _BaselineRefs | None = None
        self._engine_ref: "weakref.ref[TimingEngine] | None" = None
        self._last_full_bytes = 0

    def encode(self, engine: "TimingEngine") -> bytes:
        """Payload for this batch: a delta when possible, else a full."""
        state = engine.export_eval_state()
        previous = (
            self._engine_ref() if self._engine_ref is not None else None
        )
        if self._refs is None or previous is not engine:
            return self._encode_full(engine, state)
        delta = self._diff(state)
        payload = pickle.dumps(
            ("delta", self.token, self._baseline_id, delta),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        if len(payload) > REBASE_FRACTION * self._last_full_bytes:
            return self._encode_full(engine, state)
        self.stats.delta_batches += 1
        self.stats.delta_bytes += len(payload)
        self.stats.changes_shipped += delta.change_count()
        return payload

    def invalidate(self) -> None:
        """Force the next :meth:`encode` to ship a full baseline.

        Called when a worker reports a stale shard (it never cached
        the current baseline): re-shipping the full snapshot gives
        every process a chance to resynchronize instead of leaving the
        late joiner permanently on the parent-inline fallback.  Worst
        case (a worker that idles through every full batch) this
        degrades to the pre-diffing ship-full-every-batch behavior —
        never worse than the baseline protocol.
        """
        self._refs = None

    def _encode_full(
        self, engine: "TimingEngine", state: EvalState
    ) -> bytes:
        self._baseline_id += 1
        self._refs = _capture(state)
        self._engine_ref = weakref.ref(engine)
        payload = pickle.dumps(
            ("full", self.token, self._baseline_id, state),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._last_full_bytes = len(payload)
        self.stats.full_batches += 1
        self.stats.full_bytes += len(payload)
        return payload

    def _diff(self, state: EvalState) -> EvalDelta:
        refs = self._refs
        assert refs is not None
        network = state.network
        gates_upsert = []
        current_gates = set()
        for gate in network.gates():
            signature = (gate.gtype, tuple(gate.fanins), gate.cell)
            current_gates.add(gate.name)
            if refs.gates.get(gate.name) != signature:
                gates_upsert.append((gate.name, *signature))
        gates_removed = [
            name for name in refs.gates if name not in current_gates
        ]
        inputs = (
            list(network.inputs) if network.inputs != refs.inputs else None
        )
        outputs = (
            list(network.outputs) if network.outputs != refs.outputs else None
        )
        locations = state.placement.locations
        locations_upsert = [
            (name, location) for name, location in locations.items()
            if refs.locations.get(name) != location
        ]
        locations_removed = [
            name for name in refs.locations if name not in locations
        ]
        arrival_upsert, arrival_removed = _dict_diff(
            state.arrival, refs.arrival
        )
        req0_upsert, req0_removed = _dict_diff(state.req0, refs.req0)
        levels_upsert, levels_removed = _dict_diff(
            state.levels, refs.levels
        )
        stars_upsert = {
            net: star for net, star in state.stars.items()
            if refs.stars.get(net) is not star
        }
        stars_removed = [
            net for net in refs.stars if net not in state.stars
        ]
        return EvalDelta(
            gates_upsert=gates_upsert,
            gates_removed=gates_removed,
            inputs=inputs,
            outputs=outputs,
            locations_upsert=locations_upsert,
            locations_removed=locations_removed,
            arrival_upsert=arrival_upsert,
            arrival_removed=arrival_removed,
            req0_upsert=req0_upsert,
            req0_removed=req0_removed,
            levels_upsert=levels_upsert,
            levels_removed=levels_removed,
            stars_upsert=stars_upsert,
            stars_removed=stars_removed,
            max_delay=state.max_delay,
            version=state.version,
        )


def _capture(state: EvalState) -> _BaselineRefs:
    return _BaselineRefs(
        gates={
            gate.name: (gate.gtype, tuple(gate.fanins), gate.cell)
            for gate in state.network.gates()
        },
        inputs=list(state.network.inputs),
        outputs=list(state.network.outputs),
        locations=dict(state.placement.locations),
        arrival=dict(state.arrival),
        req0=dict(state.req0),
        levels=dict(state.levels),
        stars=dict(state.stars),
    )


def _dict_diff(current: dict, reference: dict) -> tuple[dict, list]:
    upsert = {
        key: value for key, value in current.items()
        if reference.get(key, _MISSING) != value
    }
    removed = [key for key in reference if key not in current]
    return upsert, removed


class _Missing:
    def __eq__(self, other) -> bool:  # pragma: no cover - never equal
        return False

    def __ne__(self, other) -> bool:
        return True


_MISSING = _Missing()


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: Baseline cache of this worker process: session token -> (id, state).
#: One slot per session keeps memory bounded at one snapshot per pool.
_BASELINES: dict[str, tuple[int, EvalState]] = {}


def decode(payload: bytes) -> EvalState | None:
    """Rebuild the batch's :class:`EvalState`, or ``None`` when stale.

    ``None`` means this process lacks the referenced baseline (it
    joined the pool after the full snapshot shipped, or the pool
    rebased while a task was queued) — the caller must fall back.
    """
    kind, token, baseline_id, body = pickle.loads(payload)
    if kind == "full":
        # the delta protocol's whole point is this worker-side cache;
        # it keys on the pool session token, so session scoping
        # (ROADMAP item 3) only has to narrow the key, not the design
        _BASELINES[token] = (baseline_id, body)  # lint: allow(worker-global)
        # hand out a clone, never the cached object: an engine built
        # from the return value may legally commit moves through it
        # (from_eval_state advertises that), and a mutated baseline
        # would silently corrupt every later delta reconstruction
        return _clone_state(body)
    cached = _BASELINES.get(token)
    if cached is None or cached[0] != baseline_id:
        return None
    return apply_delta(cached[1], body)


def apply_delta(baseline: EvalState, delta: EvalDelta) -> EvalState:
    """A fresh ``EvalState`` = pristine *baseline* + cumulative *delta*.

    The baseline is never mutated (its network is copied, its dicts
    merged into new ones), so any number of later deltas can be
    applied against it in any order of arrival.
    """
    network = baseline.network.copy()
    for name, gtype, fanins, cell in delta.gates_upsert:
        gate = network._gates.get(name)
        if gate is None:
            network._gates[name] = Gate(
                name=name, gtype=gtype, fanins=list(fanins), cell=cell
            )
        else:
            gate.gtype = gtype
            gate.fanins = list(fanins)
            gate.cell = cell
    for name in delta.gates_removed:
        network._gates.pop(name, None)
    if delta.inputs is not None:
        network.inputs = list(delta.inputs)
        network._input_set = set(delta.inputs)
    if delta.outputs is not None:
        network.outputs = list(delta.outputs)
    network.version = delta.version
    base_placement = baseline.placement
    locations = dict(base_placement.locations)
    locations.update(delta.locations_upsert)
    for name in delta.locations_removed:
        locations.pop(name, None)
    placement = Placement(
        die_width=base_placement.die_width,
        die_height=base_placement.die_height,
        locations=locations,
        input_pads=base_placement.input_pads,
        output_pads=base_placement.output_pads,
    )
    arrival = _merged(
        baseline.arrival, delta.arrival_upsert, delta.arrival_removed
    )
    req0 = _merged(baseline.req0, delta.req0_upsert, delta.req0_removed)
    levels = _merged(
        baseline.levels, delta.levels_upsert, delta.levels_removed
    )
    stars = _merged(
        baseline.stars, delta.stars_upsert, delta.stars_removed
    )
    target = (
        baseline.period if baseline.period is not None else delta.max_delay
    )
    # refold slacks exactly as TimingEngine._fold_slacks does, so the
    # reconstructed engine is bit-identical to a full-snapshot rebuild
    slack = {}
    for net, (req_rise, req_fall) in req0.items():
        rise, fall = arrival.get(net, (0.0, 0.0))
        slack[net] = min(req_rise - rise, req_fall - fall) + target
    return EvalState(
        network=network,
        placement=placement,
        library=baseline.library,
        period=baseline.period,
        po_pad_cap=baseline.po_pad_cap,
        arrival=arrival,
        slack=slack,
        stars=stars,
        levels=levels,
        req0=req0,
        max_delay=delta.max_delay,
        version=delta.version,
    )


def _clone_state(state: EvalState) -> EvalState:
    """Working copy of a baseline: shared immutables, fresh containers."""
    network = state.network.copy()
    network.version = state.version
    placement = Placement(
        die_width=state.placement.die_width,
        die_height=state.placement.die_height,
        locations=dict(state.placement.locations),
        input_pads=state.placement.input_pads,
        output_pads=state.placement.output_pads,
    )
    return EvalState(
        network=network,
        placement=placement,
        library=state.library,
        period=state.period,
        po_pad_cap=state.po_pad_cap,
        arrival=dict(state.arrival),
        slack=dict(state.slack),
        stars=dict(state.stars),
        levels=dict(state.levels),
        req0=dict(state.req0),
        max_delay=state.max_delay,
        version=state.version,
    )


def _merged(base: dict, upsert: dict, removed: list) -> dict:
    merged = dict(base)
    merged.update(upsert)
    for key in removed:
        merged.pop(key, None)
    return merged


def clear_worker_cache() -> None:
    """Drop every cached baseline (tests and long-lived processes)."""
    _BASELINES.clear()
