"""Shared evaluation pool: sharded gain projection over worker processes.

One :class:`EvalPool` lives for a whole ``optimize()`` run.  Per phase,
the parent exports the timing engine's cached analysis once
(:meth:`~repro.timing.sta.TimingEngine.export_eval_state`), serializes
it once, and ships it with one contiguous site shard to each of
``workers - 1`` worker processes, keeping the first shard to evaluate
itself against the live engine while they run.  Workers rebuild a
read-only engine from the snapshot (O(1) beyond unpickling — no STA
runs) and return ``(site_order, selection)`` pairs;
the parent merges them back into site-enumeration order, so the
candidate list — and therefore the applied-move trajectory — is
bit-identical to the serial path regardless of worker count, shard
boundaries or completion order.

Failures are supervised, not fatal.  Each shard submission carries a
timeout and walks a recovery ladder before the pool gives anything up:

1. **retry** — a worker-raised exception resubmits the shard to the
   same pool with exponential backoff, up to ``max_shard_retries``;
2. **rebuild** — a broken pool (killed worker → ``BrokenProcessPool``)
   or a shard timeout tears the executor down, starts a fresh one, and
   resends the *full* baseline with every still-pending shard (new
   processes have no cached snapshot), up to ``max_pool_rebuilds``
   times per pool lifetime;
3. **inline** — only the shard that exhausted its budget is evaluated
   by the parent against the live engine; the batch's other shards
   stay parallel.

A worker reporting ``("stale", None)`` (it missed the baseline
shipment) gets one full-baseline resend before the parent falls back
to inline for that shard.  Every rung is recorded in the structured
:class:`PoolHealth` counters; only when the rebuild budget is spent
does the pool degrade permanently (``health.degraded_reason``, still
readable as :attr:`EvalPool.fallback_reason`).  Because the merge is
site-order-deterministic and every recovery path scores the exact same
candidates, results are bit-identical to serial under any failure
pattern — only wall time changes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from ..contracts import worker_entry
from . import faults, shm
from .evaluate import (
    Selection,
    evaluate_shard,
    merge_selections,
    shard_sites,
)
from .snapshot import EvalSnapshotCodec, decode as _decode_snapshot

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..library.cells import Library
    from ..sizing.coudert import Site
    from ..timing.sta import TimingEngine

#: Default per-shard collection timeout (seconds); override with the
#: ``REPRO_SHARD_TIMEOUT`` environment variable or the constructor.
#: Generous on purpose — a timeout escalates straight to a pool
#: rebuild, so false positives are expensive.
DEFAULT_SHARD_TIMEOUT = 600.0

_SWEPT_STALE = False


@worker_entry
def _evaluate_in_worker(
    payload: bytes,
    shard: list[tuple[int, "Site"]],
    metric: str,
    epsilon: float,
    fault_token: int = -1,
) -> tuple[str, list[tuple[int, Selection | None]] | None]:
    """Worker entry point: rebuild the engine, evaluate one shard.

    Module-level so every start method can import it; the snapshot
    arrives as explicit payload bytes (serialized once in the parent,
    shared by all shards of a phase) — either a full baseline this
    process caches, or a delta against a cached baseline (see
    :mod:`repro.parallel.snapshot`).  Returns ``("stale", None)`` when
    the delta references a baseline this process never received; the
    parent then resends the full baseline once before going inline.

    *fault_token* is the parent's submission index for this attempt —
    the deterministic key a :class:`~repro.parallel.faults.FaultPlan`
    uses to kill, delay, or stale exactly this execution.
    """
    from ..timing.sta import TimingEngine

    if faults.worker_fault(fault_token) == "stale":
        return ("stale", None)
    state = _decode_snapshot(payload, fault_token)
    if state is None:
        return ("stale", None)
    engine = TimingEngine.from_eval_state(state)
    return ("ok", evaluate_shard(engine, state.library, shard, metric, epsilon))


@dataclass
class PoolHealth:
    """Structured recovery-ladder accounting for one :class:`EvalPool`.

    Replaces the old one-shot ``fallback_reason``: every rung of the
    ladder is counted, and only ``degraded_reason`` (the rebuild
    budget ran out, or sharded evaluation itself raised) is terminal.
    """

    shard_retries: int = 0
    shard_timeouts: int = 0
    worker_exceptions: int = 0
    pool_rebuilds: int = 0
    inline_fallbacks: int = 0
    stale_recoveries: int = 0
    teardown_errors: int = 0
    degraded_reason: str | None = None

    def as_dict(self) -> dict:
        return {
            "shard_retries": self.shard_retries,
            "shard_timeouts": self.shard_timeouts,
            "worker_exceptions": self.worker_exceptions,
            "pool_rebuilds": self.pool_rebuilds,
            "inline_fallbacks": self.inline_fallbacks,
            "stale_recoveries": self.stale_recoveries,
            "teardown_errors": self.teardown_errors,
            "degraded_reason": self.degraded_reason,
        }


@dataclass
class _ShardBatch:
    """In-flight bookkeeping for one supervised shard fan-out."""

    entry: Callable
    shards: list
    extra: tuple
    encode: Callable[[], bytes]
    payload: bytes
    #: shard position → outstanding future (removed once collected)
    pending: dict[int, Future] = field(default_factory=dict)
    #: positions that already consumed their one stale resend
    resent: set[int] = field(default_factory=set)


class EvalPool:
    """Worker pool for candidate-gain evaluation with deterministic merge.

    *workers* is the target parallelism, parent included (``workers=4``
    means three pool processes plus the parent's own shard);
    ``backend`` picks the executor:

    * ``"process"`` (default) — ``ProcessPoolExecutor`` on the ``fork``
      context when available (cheap start, no import replay), else the
      platform default;
    * ``"thread"``  — ``ThreadPoolExecutor`` sharing the parent engine
      directly (useful for exercising the sharded code path without
      process machinery; the GIL serializes the actual math);
    * ``"serial"``  — no executor at all, evaluation stays inline.

    Evaluation batches smaller than *min_sites* stay inline too: below
    that, snapshot serialization costs more than it saves.  The
    remaining knobs bound the recovery ladder (module docstring):
    *shard_timeout* seconds per shard collection, *max_shard_retries*
    same-pool resubmissions of an excepting shard, *max_pool_rebuilds*
    executor resurrections per pool lifetime, *retry_backoff* the base
    of the exponential retry sleep.
    """

    def __init__(
        self,
        workers: int,
        backend: str = "process",
        min_sites: int | None = None,
        shard_timeout: float | None = None,
        max_shard_retries: int = 2,
        max_pool_rebuilds: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        if backend not in ("process", "thread", "serial"):
            raise ValueError(f"unknown pool backend {backend!r}")
        self.workers = max(1, int(workers))
        self.backend = backend if self.workers > 1 else "serial"
        self.min_sites = (
            min_sites if min_sites is not None else 2 * self.workers
        )
        if shard_timeout is None:
            text = os.environ.get("REPRO_SHARD_TIMEOUT")
            shard_timeout = float(text) if text else DEFAULT_SHARD_TIMEOUT
        self.shard_timeout = shard_timeout
        self.max_shard_retries = max(0, int(max_shard_retries))
        self.max_pool_rebuilds = max(0, int(max_pool_rebuilds))
        self.retry_backoff = max(0.0, float(retry_backoff))
        #: recovery-ladder counters (see :class:`PoolHealth`)
        self.health = PoolHealth()
        #: counters for benchmarks and tests
        self.parallel_batches = 0
        self.inline_batches = 0
        self.sites_evaluated = 0
        #: cross-batch snapshot differ (process backend only); its
        #: ``stats`` record full/delta payload sizes and stale retries
        self.snapshot = EvalSnapshotCodec()
        self._executor: Executor | None = None
        self._submission_index = 0
        # reap /dev/shm segments of dead runs once per process: the
        # first pool of a run is the natural janitor slot (cheap listdir
        # when there is nothing to do)
        global _SWEPT_STALE
        if not _SWEPT_STALE:
            _SWEPT_STALE = True
            shm.sweep_stale_segments()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True while sharded evaluation is still on the table."""
        return self.backend != "serial" and self.health.degraded_reason is None

    @property
    def fallback_reason(self) -> str | None:
        """Terminal degradation reason (compatibility view of health)."""
        return self.health.degraded_reason

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            # the parent evaluates one shard itself, so the executor
            # only ever sees workers-1 concurrent shards
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=max(1, self.workers - 1),
                    thread_name_prefix="repro-eval",
                )
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=max(1, self.workers - 1),
                    mp_context=_fork_context(),
                )
        return self._executor

    def _shutdown_executor(self, wait: bool) -> None:
        """Tear the executor down; errors become health counters."""
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        try:
            executor.shutdown(wait=wait, cancel_futures=True)
        except Exception:
            self.health.teardown_errors += 1

    def close(self) -> None:
        """Shut the executor down and release shm (idempotent).

        Teardown failures are recorded in ``health.teardown_errors``
        instead of silently swallowed, and the snapshot codec's shared
        baseline block is always released through the segment registry.
        The codec's stats and the health counters stay readable —
        benchmarks assert on them after the pool closes.
        """
        self._shutdown_executor(wait=True)
        self.snapshot.close()

    def __enter__(self) -> "EvalPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _degrade(self, reason: str) -> None:
        """Give up on parallelism for the rest of the run.

        Keeps the *first* reason (later failures are consequences of
        the same outage) and tears down without waiting — a hung
        worker is a likely cause, and blocking on it would stall the
        optimizer the ladder just saved.
        """
        if self.health.degraded_reason is None:
            self.health.degraded_reason = reason
        self._shutdown_executor(wait=False)
        self.snapshot.close()

    # ------------------------------------------------------------------
    # supervised shard fan-out (shared with RegionEvalSession)
    # ------------------------------------------------------------------
    def start_shards(
        self,
        entry: Callable,
        shards: list,
        extra: tuple,
        encode: Callable[[], bytes],
    ) -> _ShardBatch:
        """Submit every shard to the executor under supervision.

        *entry* is a worker entry point taking ``(payload, shard,
        *extra, fault_token=...)``; *encode* produces a payload from
        the live engine (called again on resend/rebuild, when it must
        yield a fresh full baseline).  Collect with
        :meth:`finish_shards` — between the two calls the parent is
        free to evaluate its own local shard.
        """
        self._ensure_executor()
        payload = encode()
        batch = _ShardBatch(
            entry=entry, shards=list(shards), extra=tuple(extra),
            encode=encode, payload=payload,
        )
        for position, shard in enumerate(batch.shards):
            batch.pending[position] = self._submit(batch, shard)
        return batch

    def finish_shards(
        self, batch: _ShardBatch, inline_shard: Callable
    ) -> list:
        """Collect every shard's result, walking the recovery ladder.

        Results come back in shard-submission order; *inline_shard* is
        the parent-side fallback evaluator (rung 3) returning the same
        shape as a worker's ``("ok", results)`` payload.
        """
        return [
            self._collect(batch, position, inline_shard)
            for position in range(len(batch.shards))
        ]

    def _submit(self, batch: _ShardBatch, shard) -> Future:
        index = self._submission_index
        self._submission_index += 1
        executor = self._ensure_executor()
        return executor.submit(
            batch.entry, batch.payload, shard, *batch.extra,
            fault_token=index,
        )

    def _collect(
        self, batch: _ShardBatch, position: int, inline_shard: Callable
    ):
        shard = batch.shards[position]
        attempts = 0
        while True:
            future = batch.pending.get(position)
            if future is None or not self.active:
                break
            try:
                status, results = future.result(timeout=self.shard_timeout)
            except FuturesTimeoutError:
                # the task may be hung; retrying on the same pool would
                # queue behind it — escalate straight to a rebuild
                self.health.shard_timeouts += 1
                if not self._rebuild(batch):
                    break
                continue
            except (BrokenExecutor, CancelledError):
                if not self._rebuild(batch):
                    break
                continue
            except Exception:
                self.health.worker_exceptions += 1
                attempts += 1
                if attempts > self.max_shard_retries:
                    break
                self.health.shard_retries += 1
                time.sleep(self.retry_backoff * (2 ** (attempts - 1)))
                batch.pending[position] = self._submit(batch, shard)
                continue
            if status == "stale":
                self.snapshot.stats.stale_shards += 1
                # any cached baseline in that process is unusable;
                # force the next encode to ship a full snapshot
                self.snapshot.invalidate()
                if position in batch.resent:
                    break
                batch.resent.add(position)
                batch.payload = batch.encode()
                batch.pending[position] = self._submit(batch, shard)
                continue
            batch.pending.pop(position, None)
            if position in batch.resent:
                self.health.stale_recoveries += 1
            return results
        batch.pending.pop(position, None)
        self.health.inline_fallbacks += 1
        return inline_shard(shard)

    def _rebuild(self, batch: _ShardBatch) -> bool:
        """Rung 2: resurrect the executor, resend all pending shards.

        The fresh processes have no cached baseline, so the payload is
        re-encoded as a full snapshot before resubmission.  False once
        the rebuild budget is spent — the pool degrades and the caller
        falls back inline.
        """
        if self.health.pool_rebuilds >= self.max_pool_rebuilds:
            self._degrade("pool rebuild budget exhausted")
            return False
        self.health.pool_rebuilds += 1
        self._shutdown_executor(wait=False)
        self.snapshot.invalidate()
        batch.payload = batch.encode()
        for position in sorted(batch.pending):
            batch.pending[position] = self._submit(
                batch, batch.shards[position]
            )
        return True

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        engine: "TimingEngine",
        library: "Library",
        sites: Sequence["Site"],
        metric: str,
        epsilon: float,
    ) -> list[Selection | None]:
        """Best candidate per site, in site order.

        Exactly equivalent to running
        :func:`~repro.parallel.evaluate.best_phase_move` over *sites*
        with the parent *engine* — the sharded path merely computes it
        on snapshot replicas.
        """
        def inline() -> list[Selection | None]:
            self.inline_batches += 1
            self.sites_evaluated += len(sites)
            return [
                selection for _, selection in evaluate_shard(
                    engine, library, list(enumerate(sites)), metric, epsilon,
                )
            ]

        if not self.active or len(sites) < self.min_sites:
            return inline()
        try:
            merged = self._evaluate_sharded(
                engine, library, sites, metric, epsilon
            )
        except Exception as error:
            # the supervisor handles worker/pool failures internally;
            # anything escaping it (encode failure, sandbox without
            # process support) must still never kill the optimizer:
            # finish this and every later batch inline
            self._degrade(f"{type(error).__name__}: {error}")
            return inline()
        self.parallel_batches += 1
        self.sites_evaluated += len(sites)
        return merged

    def _evaluate_sharded(
        self,
        engine: "TimingEngine",
        library: "Library",
        sites: Sequence["Site"],
        metric: str,
        epsilon: float,
    ) -> list[Selection | None]:
        shards = shard_sites(sites, self.workers)
        # the parent keeps the first shard for itself: while workers
        # chew on their replicas it scores its share against the live
        # engine (identical results — the policy is shared and the
        # replicas are exact), so *workers* counts the parent and the
        # pool spawns workers-1 processes' worth of remote work
        local_shard, remote_shards = shards[0], shards[1:]
        if self.backend == "thread":
            # threads share the parent's address space: hand them the
            # live engine instead of a serialized replica
            executor = self._ensure_executor()
            futures = [
                executor.submit(
                    evaluate_shard, engine, library, shard, metric, epsilon
                )
                for shard in remote_shards
            ]
            local_results = evaluate_shard(
                engine, library, local_shard, metric, epsilon
            )
            shard_results = [local_results] + [
                future.result() for future in futures
            ]
            return merge_selections(len(sites), shard_results)
        batch = None
        if remote_shards:
            # full baseline on the first batch of a session, a
            # cumulative delta against it afterwards — see
            # repro.parallel.snapshot for the contract
            batch = self.start_shards(
                _evaluate_in_worker,
                remote_shards,
                (metric, epsilon),
                lambda: self.snapshot.encode(engine),
            )
        local_results = evaluate_shard(
            engine, library, local_shard, metric, epsilon
        )
        shard_results = [local_results]
        if batch is not None:
            shard_results.extend(self.finish_shards(
                batch,
                lambda shard: evaluate_shard(
                    engine, library, shard, metric, epsilon
                ),
            ))
        return merge_selections(len(sites), shard_results)


def _fork_context():
    """The ``fork`` multiprocessing context when the platform has it.

    Forked workers inherit the imported interpreter, so the first
    evaluation does not replay the package import; platforms without
    ``fork`` (Windows, some sandboxes) fall back to the default start
    method.
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None
