"""Shared evaluation pool: sharded gain projection over worker processes.

One :class:`EvalPool` lives for a whole ``optimize()`` run.  Per phase,
the parent exports the timing engine's cached analysis once
(:meth:`~repro.timing.sta.TimingEngine.export_eval_state`), serializes
it once, and ships it with one contiguous site shard to each of
``workers - 1`` worker processes, keeping the first shard to evaluate
itself against the live engine while they run.  Workers rebuild a
read-only engine from the snapshot (O(1) beyond unpickling — no STA
runs) and return ``(site_order, selection)`` pairs;
the parent merges them back into site-enumeration order, so the
candidate list — and therefore the applied-move trajectory — is
bit-identical to the serial path regardless of worker count, shard
boundaries or completion order.

Degradation is silent but visible: when process pools are unavailable
(restricted sandboxes, missing ``fork``/``spawn``) or a pool breaks
mid-run, the pool permanently falls back to in-process evaluation and
records why in :attr:`EvalPool.fallback_reason`.  Results are identical
either way — only wall time changes.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

from ..contracts import worker_entry
from .evaluate import (
    Selection,
    evaluate_shard,
    merge_selections,
    shard_sites,
)
from .snapshot import EvalSnapshotCodec, decode as _decode_snapshot

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..library.cells import Library
    from ..sizing.coudert import Site
    from ..timing.sta import TimingEngine


@worker_entry
def _evaluate_in_worker(
    payload: bytes,
    shard: list[tuple[int, "Site"]],
    metric: str,
    epsilon: float,
) -> tuple[str, list[tuple[int, Selection | None]] | None]:
    """Worker entry point: rebuild the engine, evaluate one shard.

    Module-level so every start method can import it; the snapshot
    arrives as explicit payload bytes (serialized once in the parent,
    shared by all shards of a phase) — either a full baseline this
    process caches, or a delta against a cached baseline (see
    :mod:`repro.parallel.snapshot`).  Returns ``("stale", None)`` when
    the delta references a baseline this process never received; the
    parent then evaluates the shard itself.
    """
    from ..timing.sta import TimingEngine

    state = _decode_snapshot(payload)
    if state is None:
        return ("stale", None)
    engine = TimingEngine.from_eval_state(state)
    return ("ok", evaluate_shard(engine, state.library, shard, metric, epsilon))


class EvalPool:
    """Worker pool for candidate-gain evaluation with deterministic merge.

    *workers* is the target parallelism, parent included (``workers=4``
    means three pool processes plus the parent's own shard);
    ``backend`` picks the executor:

    * ``"process"`` (default) — ``ProcessPoolExecutor`` on the ``fork``
      context when available (cheap start, no import replay), else the
      platform default;
    * ``"thread"``  — ``ThreadPoolExecutor`` sharing the parent engine
      directly (useful for exercising the sharded code path without
      process machinery; the GIL serializes the actual math);
    * ``"serial"``  — no executor at all, evaluation stays inline.

    Evaluation batches smaller than *min_sites* stay inline too: below
    that, snapshot serialization costs more than it saves.
    """

    def __init__(
        self,
        workers: int,
        backend: str = "process",
        min_sites: int | None = None,
    ) -> None:
        if backend not in ("process", "thread", "serial"):
            raise ValueError(f"unknown pool backend {backend!r}")
        self.workers = max(1, int(workers))
        self.backend = backend if self.workers > 1 else "serial"
        self.min_sites = (
            min_sites if min_sites is not None else 2 * self.workers
        )
        self.fallback_reason: str | None = None
        #: counters for benchmarks and tests
        self.parallel_batches = 0
        self.inline_batches = 0
        self.sites_evaluated = 0
        #: cross-batch snapshot differ (process backend only); its
        #: ``stats`` record full/delta payload sizes and stale retries
        self.snapshot = EvalSnapshotCodec()
        self._executor: Executor | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True while sharded evaluation is still on the table."""
        return self.backend != "serial" and self.fallback_reason is None

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            # the parent evaluates one shard itself, so the executor
            # only ever sees workers-1 concurrent shards
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=max(1, self.workers - 1),
                    thread_name_prefix="repro-eval",
                )
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=max(1, self.workers - 1),
                    mp_context=_fork_context(),
                )
        return self._executor

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        # release the parent-held shared-memory baseline block; the
        # codec's stats stay readable (benchmarks assert on them after
        # the pool closes)
        self.snapshot.close()

    def __enter__(self) -> "EvalPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _degrade(self, reason: str) -> None:
        self.fallback_reason = reason
        try:
            self.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        engine: "TimingEngine",
        library: "Library",
        sites: Sequence["Site"],
        metric: str,
        epsilon: float,
    ) -> list[Selection | None]:
        """Best candidate per site, in site order.

        Exactly equivalent to running
        :func:`~repro.parallel.evaluate.best_phase_move` over *sites*
        with the parent *engine* — the sharded path merely computes it
        on snapshot replicas.
        """
        def inline() -> list[Selection | None]:
            self.inline_batches += 1
            self.sites_evaluated += len(sites)
            return [
                selection for _, selection in evaluate_shard(
                    engine, library, list(enumerate(sites)), metric, epsilon,
                )
            ]

        if not self.active or len(sites) < self.min_sites:
            return inline()
        try:
            merged = self._evaluate_sharded(
                engine, library, sites, metric, epsilon
            )
        except Exception as error:
            # a broken pool (killed worker, unpicklable payload, sandbox
            # without process support) must never kill the optimizer:
            # finish this and every later batch inline
            self._degrade(f"{type(error).__name__}: {error}")
            return inline()
        self.parallel_batches += 1
        self.sites_evaluated += len(sites)
        return merged

    def _evaluate_sharded(
        self,
        engine: "TimingEngine",
        library: "Library",
        sites: Sequence["Site"],
        metric: str,
        epsilon: float,
    ) -> list[Selection | None]:
        executor = self._ensure_executor()
        shards = shard_sites(sites, self.workers)
        # the parent keeps the first shard for itself: while workers
        # chew on their replicas it scores its share against the live
        # engine (identical results — the policy is shared and the
        # replicas are exact), so *workers* counts the parent and the
        # pool spawns workers-1 processes' worth of remote work
        local_shard, remote_shards = shards[0], shards[1:]
        if self.backend == "thread":
            # threads share the parent's address space: hand them the
            # live engine instead of a serialized replica
            futures = [
                executor.submit(
                    evaluate_shard, engine, library, shard, metric, epsilon
                )
                for shard in remote_shards
            ]
            local_results = evaluate_shard(
                engine, library, local_shard, metric, epsilon
            )
            shard_results = [local_results] + [
                future.result() for future in futures
            ]
            return merge_selections(len(sites), shard_results)
        if remote_shards:
            # full baseline on the first batch of a session, a
            # cumulative delta against it afterwards — see
            # repro.parallel.snapshot for the contract
            payload = self.snapshot.encode(engine)
            futures = [
                (shard, executor.submit(
                    _evaluate_in_worker, payload, shard, metric, epsilon
                ))
                for shard in remote_shards
            ]
        else:
            futures = []
        local_results = evaluate_shard(
            engine, library, local_shard, metric, epsilon
        )
        shard_results = [local_results]
        stale_seen = False
        for shard, future in futures:
            status, results = future.result()
            if status == "stale":
                # this worker process missed the baseline shipment:
                # score its shard against the live engine instead —
                # identical selections, the policy is shared
                self.snapshot.stats.stale_shards += 1
                stale_seen = True
                results = evaluate_shard(
                    engine, library, shard, metric, epsilon
                )
            shard_results.append(results)
        if stale_seen:
            # resynchronize: ship a fresh full baseline next batch so
            # the late joiner stops falling back to the parent forever
            self.snapshot.invalidate()
        return merge_selections(len(sites), shard_results)


def _fork_context():
    """The ``fork`` multiprocessing context when the platform has it.

    Forked workers inherit the imported interpreter, so the first
    evaluation does not replay the package import; platforms without
    ``fork`` (Windows, some sandboxes) fall back to the default start
    method.
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None
