"""Deterministic fault injection for the supervised parallel path.

The recovery ladder in :class:`~repro.parallel.pool.EvalPool` (retry →
rebuild pool + resend full baseline → inline) is only trustworthy if
every rung is exercised on demand.  This module injects failures at
the exact points real ones occur, gated by a :class:`FaultPlan`
carried in the ``REPRO_FAULT_PLAN`` environment variable (JSON —
forked workers inherit it, spawn workers receive it through the
inherited environment):

* ``worker``           — fires at worker-task entry, keyed by the
  parent-assigned submission index: ``kill`` (``os._exit``, the
  BrokenProcessPool path), ``exception`` (:class:`FaultInjected`, the
  retry path), ``delay`` (sleep ``seconds``, the timeout path),
  ``stale`` (report the shard stale, the resend path);
* ``shm_attach`` / ``corrupt_delta`` — fire inside snapshot decode,
  simulating a retired shared-memory block or an unusable delta (both
  surface as a stale shard, which the ladder recovers by resending
  the full baseline);
* ``checkpoint_round`` — fires at checkpoint boundaries, keyed by the
  boundary counter: ``sigterm`` raises the real signal so the
  graceful save-and-stop path is tested end to end.

Every decision is a pure function of (env payload, explicit index),
so a fixed plan plus a fixed trajectory reproduces the same failure
pattern run after run — the property tests rest on that.  With no
plan set every hook is a cheap no-op.
"""

from __future__ import annotations

import json
import os
import signal
import time

from ..contracts import fault_hook

#: Environment variable carrying the JSON-encoded plan.
ENV_VAR = "REPRO_FAULT_PLAN"


class FaultInjected(RuntimeError):
    """Raised inside a worker by the ``exception`` fault action."""


class FaultPlan:
    """Mapping of injection point → submission index → action spec."""

    def __init__(self, entries: dict) -> None:
        self.entries = {
            str(point): {int(index): dict(spec) for index, spec in table.items()}
            for point, table in entries.items()
        }

    def get(self, point: str, index: int) -> dict | None:
        return self.entries.get(point, {}).get(index)

    def to_env(self) -> str:
        return json.dumps(
            {
                point: {str(index): spec for index, spec in table.items()}
                for point, table in self.entries.items()
            },
            sort_keys=True,
        )

    @classmethod
    def from_env(cls, text: str) -> "FaultPlan":
        return cls(json.loads(text))


def install(plan: "FaultPlan | dict | None") -> None:
    """Set (or, with ``None``, clear) the process-wide plan."""
    if plan is None:
        os.environ.pop(ENV_VAR, None)
        return
    if isinstance(plan, dict):
        plan = FaultPlan(plan)
    os.environ[ENV_VAR] = plan.to_env()


class active:
    """Context manager scoping a plan to a ``with`` block (tests)."""

    def __init__(self, plan: "FaultPlan | dict | None") -> None:
        self.plan = plan
        self._previous: str | None = None

    def __enter__(self) -> "active":
        self._previous = os.environ.get(ENV_VAR)
        install(self.plan)
        return self

    def __exit__(self, *_exc) -> None:
        if self._previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = self._previous


#: Parsed plans keyed by their (immutable) env payload — parsing a
#: multi-kilobyte JSON once per worker task would dominate the no-op
#: cost.  Exempt from the worker-global rule via ``@fault_hook``: the
#: cache is a pure function of its key, so it cannot carry state
#: between batches or sessions.
_PLAN_CACHE: dict[str, FaultPlan] = {}


@fault_hook
def _plan() -> FaultPlan | None:
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    plan = _PLAN_CACHE.get(text)
    if plan is None:
        try:
            plan = FaultPlan.from_env(text)
        except (ValueError, TypeError):
            return None
        _PLAN_CACHE[text] = plan
    return plan


@fault_hook
def spec(point: str, index: int) -> dict | None:
    """The action planned for (*point*, *index*), or ``None``."""
    plan = _plan()
    if plan is None:
        return None
    return plan.get(point, index)


@fault_hook
def worker_fault(index: int) -> str | None:
    """Execute the ``worker``-point fault for submission *index*.

    Returns ``"stale"`` when the entry should report its shard stale;
    ``kill`` never returns and ``exception`` raises.
    """
    action = spec("worker", index)
    if action is None:
        return None
    kind = action.get("action")
    if kind == "kill":
        os._exit(1)
    if kind == "exception":
        raise FaultInjected(f"injected worker exception (submission {index})")
    if kind == "delay":
        time.sleep(float(action.get("seconds", 0.5)))
        return None
    if kind == "stale":
        return "stale"
    return None


@fault_hook
def decode_fault(point: str, index: int) -> bool:
    """True when snapshot decode should fail at *point* (→ stale shard)."""
    return index >= 0 and spec(point, index) is not None


def checkpoint_fault(index: int) -> str | None:
    """Parent-side hook at checkpoint boundary *index*.

    ``sigterm`` raises the real signal (the manager's handler — or the
    default one, killing the process — receives it) and returns the
    action name so callers can make the interrupt flag deterministic
    regardless of delivery timing.
    """
    action = spec("checkpoint_round", index)
    if action is None:
        return None
    kind = action.get("action")
    if kind == "sigterm":
        signal.raise_signal(signal.SIGTERM)
    return kind
