"""Per-site candidate selection, shared by serial and sharded paths.

The optimizer's inner loop — "for every site, find the move with the
best projected gain" — is the embarrassingly parallel part of the
two-phase Coudert loop: every evaluation reads the same frozen timing
snapshot and touches nothing.  This module holds that loop as pure
functions so the serial path in :mod:`repro.sizing.coudert` and the
worker processes of :mod:`repro.parallel.pool` run *the same code* on
the same inputs; the trajectory-equivalence guarantee of the parallel
optimizer rests on there being exactly one copy of this policy.

A selection is reported as ``(score, area_delta, move_index)`` rather
than the move object itself: workers send indices back, and the parent
resolves them against its own site list — the applied move is always
the parent's object, and result payloads stay tiny.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..contracts import projection_only

#: Opt-in to the determinism lint (rule D of ``python -m tools.lint``):
#: this module's float accumulations and tie-breaks must never follow
#: set-iteration (= PYTHONHASHSEED) order.
__deterministic__ = True

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..library.cells import Library
    from ..sizing.coudert import Site
    from ..timing.sta import TimingEngine

#: A site's winning candidate: (score, area delta, index into site.moves).
Selection = tuple[float, float, int]


@projection_only
def best_phase_move(
    site: "Site",
    engine: "TimingEngine",
    library: "Library",
    metric: str,
    epsilon: float,
) -> Selection | None:
    """The site's best move under the phase metric, or ``None``.

    Mirrors the historical inline loop of ``coudert._phase`` exactly:
    same gating of area-increasing and worst-slack-wrecking moves, same
    score/area tie-break, same first-wins ordering over the move list.
    Any edit here changes the optimizer trajectory — serial and
    parallel together, which is the point.
    """
    best_index: int | None = None
    best_score = epsilon
    best_area = 0.0
    for index, move in enumerate(site.moves):
        gains = move.gains(engine)
        score = gains.min_gain if metric == "min" else gains.sum_gain
        area = move.area_delta(library)
        if area > epsilon and gains.min_gain < 0.005:
            # area-increasing moves (new inverters, upsizing) must
            # buy a real timing win, not noise-level churn
            continue
        if metric == "sum" and gains.min_gain < -epsilon:
            # relaxation must not wreck the local worst slack
            if not (score > epsilon and gains.min_gain > -0.01):
                continue
        if score > best_score or (
            abs(score - best_score) <= epsilon
            and area < best_area
            and best_index is not None
        ):
            best_index = index
            best_score = score
            best_area = area
    if best_index is None:
        return None
    return (best_score, best_area, best_index)


@projection_only
def evaluate_shard(
    engine: "TimingEngine",
    library: "Library",
    shard: Sequence[tuple[int, "Site"]],
    metric: str,
    epsilon: float,
) -> list[tuple[int, Selection | None]]:
    """Evaluate one shard of ``(site_order, site)`` pairs.

    Runs identically in the parent (serial path) and in a worker that
    reconstructed *engine* from an :class:`~repro.timing.sta.EvalState`
    snapshot; the site order tags let the parent merge shards back into
    the fixed site enumeration order no matter which worker finished
    first.
    """
    return [
        (order, best_phase_move(site, engine, library, metric, epsilon))
        for order, site in shard
    ]


def merge_selections(
    num_sites: int,
    shard_results: Sequence[Sequence[tuple[int, Selection | None]]],
) -> list[Selection | None]:
    """Deterministic merge: scatter tagged results into site order.

    The output is indexed by site order and therefore independent of
    shard boundaries, worker count and completion order — the parent
    builds its candidate list from this exactly as the serial path
    would.
    """
    merged: list[Selection | None] = [None] * num_sites
    for results in shard_results:
        for order, selection in results:
            merged[order] = selection
    return merged


def shard_sites(
    sites: Sequence["Site"], num_shards: int
) -> list[list[tuple[int, "Site"]]]:
    """Split sites into ``num_shards`` contiguous, balanced shards.

    Contiguous slices keep each worker's sites structurally close
    (neighboring sites share fanin cones, so their star/arrival lookups
    hit the same snapshot regions) and make the shard map trivially
    reproducible.  Every site keeps its enumeration order tag.
    """
    tagged = list(enumerate(sites))
    num_shards = max(1, min(num_shards, len(tagged)))
    base, extra = divmod(len(tagged), num_shards)
    shards: list[list[tuple[int, "Site"]]] = []
    start = 0
    for shard_index in range(num_shards):
        size = base + (1 if shard_index < extra else 0)
        shards.append(tagged[start:start + size])
        start += size
    return shards
