"""Parallel candidate evaluation for the post-placement optimizer.

Candidate-move gain projection — "for every site, score every
alternative against the current timing snapshot" — dominates the
optimizer's remaining runtime and is embarrassingly parallel: every
evaluation reads one frozen :class:`~repro.timing.sta.EvalState` and
mutates nothing.  This package shards that loop:

* :mod:`evaluate` — the per-site selection policy and the deterministic
  order-tagged merge, shared verbatim by the serial path and the
  workers so the two can never drift;
* :mod:`pool` — :class:`EvalPool`, the process/thread pool that ships
  one snapshot plus one contiguous site shard per worker and falls back
  to inline evaluation wherever process pools are unavailable;
* :mod:`snapshot` — the cross-batch snapshot differ: workers cache the
  first full :class:`~repro.timing.sta.EvalState` of a session and
  later batches ship only the nets dirtied since that baseline,
  shrinking steady-state payloads by an order of magnitude.

Invariant: ``optimize(..., workers=N)`` applies the bit-identical move
sequence for every N (``tests/test_parallel_eval.py``); parallelism
buys wall time only, never a different answer.  The snapshot-delta
protocol is specified in ``docs/architecture.md``.
"""

from .evaluate import (
    Selection,
    best_phase_move,
    evaluate_shard,
    merge_selections,
    shard_sites,
)
from .pool import EvalPool
from .snapshot import (
    EvalDelta,
    EvalSnapshotCodec,
    SnapshotStats,
    apply_delta,
)

__all__ = [
    "EvalDelta",
    "EvalPool",
    "EvalSnapshotCodec",
    "Selection",
    "SnapshotStats",
    "apply_delta",
    "best_phase_move",
    "evaluate_shard",
    "merge_selections",
    "shard_sites",
]
