"""Concurrent per-region candidate selection for partitioned rewiring.

The partitioned pipeline (:mod:`repro.rapids.partition`) selects moves
per region against *round-start* state and only then commits — so the
per-region selection calls are pure functions of that frozen state and
can run anywhere.  This module runs them on :class:`EvalPool` worker
processes: the parent encodes one ``soa_full``/delta snapshot of its
timing engine per round (the same codec, session cache and staleness
protocol as gain evaluation — :mod:`repro.parallel.snapshot`), workers
rebuild the netlist, placement and (for the timing-aware objective) a
read-only timing engine from it, run the shared selector
:func:`repro.rapids.wirelength._select_batch` over their region
shard, and return the accepted selections keyed by region order.

Worker-count invariance: a worker's replica is bit-exact (the snapshot
round-trip is asserted bit-exact by ``tests/test_soa.py``) and the
selector is deterministic and read-only, so inline and remote
selection of the same region agree move-for-move.  The parent keeps
shard 0 and evaluates it against its live engines while workers run,
exactly like gain evaluation; failures walk the pool's supervised
recovery ladder (retry → rebuild + full-baseline resend → inline for
the failing shard only — see :mod:`repro.parallel.pool`), and only an
exhausted rebuild budget degrades the session to inline selection with
the reason recorded — results identical either way.
"""

from __future__ import annotations

from ..contracts import worker_entry
from . import faults
from .evaluate import shard_sites
from .pool import EvalPool
from .snapshot import decode as _decode_snapshot

#: Opt-in to the determinism lint (rule D of ``python -m tools.lint``).
__deterministic__ = True


@worker_entry
def _select_regions_in_worker(
    payload: bytes,
    shard: list[tuple[int, tuple]],
    timing_aware: bool,
    margin: float,
    min_gain: float,
    fault_token: int = -1,
) -> tuple[str, tuple | None]:
    """Worker entry: rebuild engines from the snapshot, select a shard.

    *shard* holds ``(order, (region_index, pairs, crosses, klass))``
    tuples (*klass* being pre-verified coloring class-swap candidates,
    empty unless the partitioned run enabled ``class_swaps``).
    Returns ``("stale", None)`` when the snapshot delta references a
    baseline this process never cached (the parent then resends the
    full baseline once before selecting the shard inline), else
    ``("ok", (selections, rejected, scored))`` with ``selections`` as
    ``(order, accepted)`` pairs, the worker gate's rejected-candidate
    keys (merged into the parent's stats) and the replica engine's
    scored-candidate count.  *fault_token* is the parent's submission
    index, the :class:`~repro.parallel.faults.FaultPlan` key for this
    execution.
    """
    from ..place.hpwl import WirelengthEngine
    from ..rapids.wirelength import _TimingGate, _select_batch
    from ..timing.sta import TimingEngine

    if faults.worker_fault(fault_token) == "stale":
        return ("stale", None)
    state = _decode_snapshot(payload, fault_token)
    if state is None:
        return ("stale", None)
    network = state.network
    engine = WirelengthEngine(network, state.placement)
    gate = None
    if timing_aware:
        gate = _TimingGate(TimingEngine.from_eval_state(state), margin)
    scored_before = engine.candidates_scored
    selections = []
    for order, (region_index, pairs, crosses, klass) in shard:
        del region_index  # selection is region-agnostic; kept for logs
        selections.append(
            (order, _select_batch(
                network, engine, pairs, crosses, klass, min_gain, gate,
            ))
        )
    rejected = sorted(gate.rejected_keys) if gate is not None else []
    scored = engine.candidates_scored - scored_before
    return ("ok", (selections, rejected, scored))


class RegionEvalSession:
    """One partitioned run's worth of concurrent region selection.

    Wraps an :class:`EvalPool` for its executor, snapshot codec and
    degradation machinery.  *carrier* is the timing engine whose
    exported :class:`~repro.timing.sta.EvalState` ships the netlist
    and placement to workers — the slack gate's engine on the
    timing-aware objective, or a snapshot-only engine built from the
    library on the timing-blind one.  *gate* (optional) receives the
    workers' rejected-candidate keys so the reported rejection stats
    match the serial path.
    """

    def __init__(
        self,
        workers: int,
        carrier,
        timing_aware: bool,
        margin: float,
        min_gain: float,
        gate=None,
        backend: str = "process",
    ) -> None:
        self.carrier = carrier
        self.timing_aware = timing_aware
        self.margin = margin
        self.min_gain = min_gain
        self.gate = gate
        self.pool = EvalPool(workers, backend=backend)
        #: True when the most recent round actually ran on the pool.
        self.parallel_last_round = False

    @property
    def active(self) -> bool:
        return self.pool.active

    @property
    def fallback_reason(self) -> str | None:
        return self.pool.fallback_reason

    def close(self) -> None:
        self.pool.close()

    def select_round(
        self, tasks: list[tuple], select_inline
    ) -> tuple[list, int]:
        """Selections for *tasks* (in order) plus remote scored count.

        *select_inline* is the live-engine selector the parent uses
        for its own shard and for every fallback; remote shards are
        selected on workers against this round's snapshot.  Selection
        is read-only and repeatable, so any failure path simply
        re-selects inline — the returned selections are identical.
        """
        self.parallel_last_round = False
        if not self.pool.active or len(tasks) < 2:
            return [select_inline(task) for task in tasks], 0
        try:
            return self._select_sharded(tasks, select_inline)
        except Exception as error:
            self.pool._degrade(f"{type(error).__name__}: {error}")
            return [select_inline(task) for task in tasks], 0

    def _select_sharded(self, tasks, select_inline):
        self.carrier.refresh()
        shards = shard_sites(tasks, self.pool.workers)
        local_shard, remote_shards = shards[0], shards[1:]
        batch = None
        if remote_shards:
            batch = self.pool.start_shards(
                _select_regions_in_worker,
                remote_shards,
                (self.timing_aware, self.margin, self.min_gain),
                lambda: self.pool.snapshot.encode(self.carrier),
            )
        results: list = [None] * len(tasks)
        for order, task in local_shard:
            results[order] = select_inline(task)
        scored = 0
        if batch is not None:
            # the pool's supervisor walks the full recovery ladder
            # (retry → rebuild+resend → inline) per shard; the inline
            # fallback mirrors a worker's ("ok", ...) payload shape
            for packed in self.pool.finish_shards(
                batch,
                lambda shard: (
                    [(order, select_inline(task)) for order, task in shard],
                    [], 0,
                ),
            ):
                selections, rejected, shard_scored = packed
                scored += shard_scored
                if self.gate is not None and rejected:
                    self.gate.rejected_keys.update(
                        tuple(key) for key in rejected
                    )
                for order, accepted in selections:
                    results[order] = accepted
        self.parallel_last_round = True
        return results, scored
