"""Crash-safe shared-memory segment lifecycle (parent side).

``soa_full`` snapshot baselines (:mod:`repro.parallel.snapshot`) live
in ``multiprocessing.shared_memory`` blocks.  A block that is never
unlinked outlives the process as a file in ``/dev/shm`` — so an
abnormal exit used to leak the current baseline (one block per live
codec; SIGKILL leaks it unconditionally).  This module closes that
hole with three layers:

* **registry** — every segment is created through
  :func:`create_segment` under a name that encodes the owning pid
  (``repro_shm_<pid>_<seq>``) and is tracked until
  :func:`release_segment`;
* **exit hooks** — the first registration installs an ``atexit``
  callback, and a ``SIGTERM`` handler *when the signal is otherwise
  unhandled* (a graceful-shutdown owner like
  :class:`repro.checkpoint.CheckpointManager` keeps precedence: its
  orderly unwind closes the pools, and ``atexit`` sweeps the rest);
* **sweeper** — :func:`sweep_stale_segments` scans ``/dev/shm`` for
  segments whose embedded pid is dead and unlinks them, so even a
  SIGKILLed run leaks nothing past the next run's pool start
  (:class:`~repro.parallel.pool.EvalPool` sweeps once per process).

Workers only ever *attach* to segments by name and close their
mapping; creation and unlinking stay in the parent, so the registry
is never touched from worker-reachable code.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading

try:  # pragma: no cover - stdlib; absent only on exotic builds
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

#: Segment-name prefix; the pid of the creating process follows it.
PREFIX = "repro_shm_"

_LOCK = threading.Lock()
_REGISTRY: dict[str, object] = {}
_COUNTER = 0
_HOOKS_INSTALLED = False


def create_segment(size: int):
    """A fresh registered shared-memory block of at least *size* bytes.

    The name embeds this process's pid so :func:`sweep_stale_segments`
    can attribute (and reap) segments of dead runs.
    """
    if shared_memory is None:  # pragma: no cover - exotic builds
        raise RuntimeError("multiprocessing.shared_memory unavailable")
    global _COUNTER
    with _LOCK:
        _install_hooks()
        while True:
            _COUNTER += 1
            name = f"{PREFIX}{os.getpid()}_{_COUNTER}"
            try:
                block = shared_memory.SharedMemory(
                    create=True, size=max(1, int(size)), name=name
                )
            except FileExistsError:  # pragma: no cover - stale collision
                continue
            _REGISTRY[name] = block
            return block


def release_segment(block) -> None:
    """Close and unlink one registered block (idempotent, never raises)."""
    if block is None:
        return
    with _LOCK:
        _REGISTRY.pop(getattr(block, "name", ""), None)
    _destroy(block)


def release_all() -> None:
    """Close and unlink every registered block (atexit / signal hook)."""
    with _LOCK:
        blocks = list(_REGISTRY.values())
        _REGISTRY.clear()
    for block in blocks:
        _destroy(block)


def registered_names() -> list[str]:
    """Names of the segments currently registered (tests assert empty)."""
    with _LOCK:
        return sorted(_REGISTRY)


def sweep_stale_segments(directory: str = "/dev/shm") -> list[str]:
    """Unlink segments left behind by dead processes; returns their names.

    Only files matching this module's naming scheme are considered,
    and only when the pid they embed no longer exists — segments of
    live sibling runs are never touched.
    """
    removed: list[str] = []
    try:
        entries = os.listdir(directory)
    except OSError:
        return removed
    for entry in entries:
        if not entry.startswith(PREFIX):
            continue
        pid_text = entry[len(PREFIX):].split("_", 1)[0]
        if not pid_text.isdigit():
            continue
        pid = int(pid_text)
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(directory, entry))
            removed.append(entry)
        except OSError:  # pragma: no cover - raced with another sweeper
            pass
    return removed


def _destroy(block) -> None:
    try:
        block.close()
    except (OSError, ValueError):  # pragma: no cover - already closed
        pass
    try:
        block.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover
        pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # pragma: no cover - EPERM: alive, not ours
        return True
    return True


def _install_hooks() -> None:
    """One-time exit hooks; callers hold ``_LOCK``."""
    global _HOOKS_INSTALLED
    if _HOOKS_INSTALLED:
        return
    _HOOKS_INSTALLED = True
    atexit.register(release_all)
    try:
        current = signal.getsignal(signal.SIGTERM)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        return
    if current is not signal.SIG_DFL:
        # someone owns graceful shutdown (e.g. a CheckpointManager);
        # their unwind path plus atexit covers the release
        return
    def _on_term(signum, frame):  # pragma: no cover - signal path
        release_all()
        signal.signal(signum, signal.SIG_DFL)
        signal.raise_signal(signum)
    try:
        signal.signal(signal.SIGTERM, _on_term)
    except ValueError:  # pragma: no cover - non-main thread
        pass
