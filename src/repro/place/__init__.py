"""Placement substrate: FM partitioning, placer, wirelength metrics."""

from .congestion import CongestionStats, congestion_map, congestion_stats
from .fm import FmResult, bipartition
from .placement import (
    Placement,
    die_for,
    manhattan,
    net_hpwl,
    net_terminals,
    perturbation,
    total_hpwl,
)
from .placer import place

__all__ = [
    "CongestionStats",
    "FmResult",
    "Placement",
    "bipartition",
    "congestion_map",
    "congestion_stats",
    "die_for",
    "manhattan",
    "net_hpwl",
    "net_terminals",
    "perturbation",
    "place",
    "total_hpwl",
]
