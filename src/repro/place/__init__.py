"""Placement substrate: FM partitioning, placer, wirelength metrics."""

from .congestion import CongestionStats, congestion_map, congestion_stats
from .fm import FmResult, bipartition
from .hpwl import WirelengthEngine
from .placement import (
    Placement,
    die_for,
    manhattan,
    net_hpwl,
    net_terminals,
    output_pad_points,
    perturbation,
    total_hpwl,
)
from .placer import place

__all__ = [
    "CongestionStats",
    "FmResult",
    "Placement",
    "WirelengthEngine",
    "bipartition",
    "congestion_map",
    "congestion_stats",
    "die_for",
    "manhattan",
    "net_hpwl",
    "net_terminals",
    "output_pad_points",
    "perturbation",
    "place",
    "total_hpwl",
]
