"""Vectorized incremental half-perimeter wirelength engine.

The Section-5 wirelength flow prices thousands of candidate swaps per
pass.  The interpreted path re-walks every net terminal through
``net_hpwl`` *and* mutates the live network twice per candidate (trial
apply + revert), which bumps the version counter and storms every
subscribed incremental engine with events.  This module removes both
costs: the placement and the net -> terminal structure are flattened
**once** into per-net bounding-box extrema, and a candidate swap's
HPWL delta is computed *arithmetically* from those extrema — zero
network mutation, zero event traffic, O(1) per candidate.

The trick is the classic placer second-extrema form: for each net and
axis keep the two extreme coordinates plus the multiplicity of the
extreme.  Removing one terminal and adding another then yields the
exact new bounding box:

* effective max after removal = ``max2`` when the removed coordinate
  *is* the unique maximum, else ``max1``;
* new max = ``max(effective max, added coordinate)`` (min symmetric).

Every value is a *selection* of an input coordinate — no accumulation
— so deltas are bit-identical to the interpreted ``net_hpwl``
difference.  Batches of candidates are scored as single vectorized
numpy expressions over gathered extrema rows (a pure-Python fallback
keeps the engine importable without numpy).

Freshness follows the mutation-event contract (see
``docs/architecture.md``): the engine subscribes to the network; pin
rewires (``swap_fanins`` / ``replace_fanin``) are folded in
incrementally (the two affected nets' extrema are rebuilt from their
terminal lists), structural mutations mark the whole flattening stale
for lazy rebuild.  The placement is assumed frozen — the paper's
premise — and :meth:`rebuild` is the escape hatch for callers that
move cells anyway.
"""

from __future__ import annotations

from ..contracts import projection_only
from ..network import events
from ..network.netlist import Network, Pin
from ..network.soa import get_soa, ragged_indices
from .placement import Placement, output_pad_points

try:  # numpy accelerates batch scoring; the scalar path needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

#: Opt-in to the determinism lint (rule D of ``python -m tools.lint``):
#: this module's float accumulations and tie-breaks must never follow
#: set-iteration (= PYTHONHASHSEED) order.
__deterministic__ = True

_INCREMENTAL_EVENTS = frozenset({events.SWAP_FANINS, events.REPLACE_FANIN})
#: Mutations with no geometric effect: cell/type rebinds keep every
#: terminal where it was.
_GEOMETRY_NEUTRAL_EVENTS = frozenset({events.SET_CELL, events.SET_GATE_TYPE})
#: Everything else stales the flattening itself: gates or IO bindings
#: appear/disappear (new terminals, new pad points) or the mutation is
#: a restore/untracked change whose extent is unknown to this engine.
_REBUILD_EVENTS = frozenset({
    events.ADD_GATE,
    events.REMOVE_GATE,
    events.SET_FANINS,
    events.ADD_INPUT,
    events.ADD_OUTPUT,
    events.REPLACE_OUTPUT,
    events.RESTORE,
    events.UNKNOWN,
})


class WirelengthEngine:
    """Incremental per-net HPWL with arithmetic candidate pricing."""

    def __init__(self, network: Network, placement: Placement) -> None:
        self.network = network
        self.placement = placement
        #: work counters for benchmarks and tests
        self.rebuilds = 0
        self.net_updates = 0
        self.batches_scored = 0
        self.candidates_scored = 0
        self._needs_rebuild = True
        self._ids: dict[str, int] = {}
        self._names: list[str] = []
        self._sink_pins: list[set[Pin]] = []
        self._fixed: list[list[tuple[float, float]]] = []
        self._loc: dict[str, tuple[float, float]] = {}
        self._hpwl: list[float] = []
        # per-net, per-axis second-extrema rows:
        # [min1, min2, min_count, max1, max2, max_count] for x then y
        self._ext: list[list[float]] = []
        # lazily materialized numpy mirrors of _ext/_hpwl, kept in sync
        # row-wise by _recompute_net once built
        self._ext_np = None
        self._hpwl_np = None
        network.subscribe(self)

    # ------------------------------------------------------------------
    # mutation events
    # ------------------------------------------------------------------
    def notify_network_event(self, kind: str, data: dict) -> None:
        if self._needs_rebuild or kind in _GEOMETRY_NEUTRAL_EVENTS:
            return
        if kind == events.SWAP_FANINS:
            self._move_pin(data["pin_a"], data["net_a"], data["net_b"])
            self._move_pin(data["pin_b"], data["net_b"], data["net_a"])
        elif kind == events.REPLACE_FANIN:
            self._move_pin(data["pin"], data["old"], data["new"])
        elif kind in _REBUILD_EVENTS:
            # structural change (gates added/removed, IO rebinds,
            # restores, untracked): the flattening itself is stale
            self._needs_rebuild = True
        else:
            # unregistered/future kinds: treat as untracked
            self._needs_rebuild = True

    def _move_pin(self, pin: Pin, old_net: str, new_net: str) -> None:
        if old_net == new_net:
            return
        old_id = self._ids.get(old_net)
        new_id = self._ids.get(new_net)
        if old_id is None or new_id is None or pin.gate not in self._loc:
            self._needs_rebuild = True
            return
        self._sink_pins[old_id].discard(pin)
        self._sink_pins[new_id].add(pin)
        self._recompute_net(old_id)
        self._recompute_net(new_id)

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Rebuild the flattening if a structural mutation staled it."""
        if self._needs_rebuild:
            self.rebuild()

    def rebuild(self) -> None:
        """Flatten placement + net structure from scratch."""
        network = self.network
        placement = self.placement
        self._loc = dict(placement.locations)
        names = list(network.nets())
        self._names = names
        self._ids = {net: index for index, net in enumerate(names)}
        self._sink_pins = [set() for _ in names]
        self._fixed = [[] for _ in names]
        pad_points = output_pad_points(network, placement)
        for net in names:
            index = self._ids[net]
            self._fixed[index].append(
                placement.source_location(network, net)
            )
            self._fixed[index].extend(pad_points.get(net, ()))
        for gate in network.gates():
            for pin_index, net in enumerate(gate.fanins):
                self._sink_pins[self._ids[net]].add(
                    Pin(gate.name, pin_index)
                )
        self._hpwl = [0.0] * len(names)
        self._ext = [None] * len(names)  # type: ignore[list-item]
        self._ext_np = None
        self._hpwl_np = None
        self._needs_rebuild = False
        if not self._rebuild_vector():
            for index in range(len(names)):
                self._recompute_net(index)
        self.rebuilds += 1

    def _rebuild_vector(self) -> bool:
        """All nets' extrema rows + HPWL in one segmented numpy pass.

        Sink terminals are gathered through the shared SoA kernel's
        consumer CSR and placement table instead of walking Pin sets
        per net; the second-extrema rows come from segmented
        min/max/count reductions — selections and equality counts only,
        so every row and HPWL is bit-identical to the per-net
        :meth:`_recompute_net` scalar walk.  Returns ``False`` (caller
        falls back to that walk) when numpy or a fully mapped kernel
        view is unavailable.
        """
        if _np is None:
            return False
        kernel = get_soa(self.network)
        compiled = kernel.sync()
        arrays = kernel.arrays()
        if arrays is None:
            return False
        table = kernel.location_table(self.placement)
        if table is None:
            return False
        names = self._names
        net_index = compiled.net_index
        kernel_ids = _np.empty(len(names), dtype=_np.int64)
        for index, net in enumerate(names):
            kernel_id = net_index.get(net)
            if kernel_id is None:
                return False
            kernel_ids[index] = kernel_id
        # terminal points per net: the fixed points (driver + pads)
        # first, then every sink pin's gate location from the CSR
        fixed_counts = _np.array(
            [len(points) for points in self._fixed], dtype=_np.int64
        )
        sink_counts = arrays["consumer_counts"][kernel_ids]
        edges, _ = ragged_indices(
            arrays["consumer_offset"][kernel_ids], sink_counts
        )
        sink_points = table[arrays["consumer_gate"][edges]]
        counts = fixed_counts + sink_counts
        total = int(counts.sum())
        points = _np.empty((total, 2))
        seg_starts = _np.concatenate(
            ([0], _np.cumsum(counts)[:-1])
        ).astype(_np.int64)
        fixed_slots, _ = ragged_indices(seg_starts, fixed_counts)
        flat_fixed = [
            point for net_points in self._fixed for point in net_points
        ]
        points[fixed_slots] = _np.asarray(flat_fixed).reshape(-1, 2)
        sink_slots, _ = ragged_indices(
            seg_starts + fixed_counts, sink_counts
        )
        points[sink_slots] = sink_points
        rows = _np.empty((len(names), 12))
        for axis in (0, 1):
            values = points[:, axis]
            min1 = _np.minimum.reduceat(values, seg_starts)
            max1 = _np.maximum.reduceat(values, seg_starts)
            min1_rep = _np.repeat(min1, counts)
            max1_rep = _np.repeat(max1, counts)
            cnt_min = _np.add.reduceat(
                (values == min1_rep).astype(_np.float64), seg_starts
            )
            cnt_max = _np.add.reduceat(
                (values == max1_rep).astype(_np.float64), seg_starts
            )
            INF = float("inf")
            strict_min2 = _np.minimum.reduceat(
                _np.where(values == min1_rep, INF, values), seg_starts
            )
            strict_max2 = _np.maximum.reduceat(
                _np.where(values == max1_rep, -INF, values), seg_starts
            )
            # one unique extremum and >= 2 points: the strict second;
            # otherwise (duplicated extremum, single point) the extremum
            min2 = _np.where(
                (cnt_min == 1.0) & _np.isfinite(strict_min2),
                strict_min2, min1,
            )
            max2 = _np.where(
                (cnt_max == 1.0) & _np.isfinite(strict_max2),
                strict_max2, max1,
            )
            base = axis * 6
            rows[:, base + 0] = min1
            rows[:, base + 1] = min2
            rows[:, base + 2] = cnt_min
            rows[:, base + 3] = max1
            rows[:, base + 4] = max2
            rows[:, base + 5] = cnt_max
        hpwl = _np.where(
            counts >= 2,
            (rows[:, 3] - rows[:, 0]) + (rows[:, 9] - rows[:, 6]),
            0.0,
        )
        self._ext = rows.tolist()
        self._hpwl = hpwl.tolist()
        self._ext_np = rows
        self._hpwl_np = hpwl
        self.net_updates += len(names)
        return True

    def _recompute_net(self, index: int) -> None:
        """Exact extrema + HPWL of one net from its terminal list."""
        points = list(self._fixed[index])
        loc = self._loc
        for pin in self._sink_pins[index]:
            points.append(loc[pin.gate])
        row = _extrema_row(points)
        self._ext[index] = row
        if len(points) < 2:
            self._hpwl[index] = 0.0
        else:
            self._hpwl[index] = (row[3] - row[0]) + (row[9] - row[6])
        if self._ext_np is not None:
            self._ext_np[index] = row
            self._hpwl_np[index] = self._hpwl[index]
        self.net_updates += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def total_hpwl(self) -> float:
        """Sum of cached per-net HPWLs (== a fresh ``total_hpwl``)."""
        self.refresh()
        return float(sum(self._hpwl))

    def net_hpwl(self, net: str) -> float:
        """Cached HPWL of one net."""
        self.refresh()
        return self._hpwl[self._ids[net]]

    # ------------------------------------------------------------------
    # candidate pricing (no mutation, no events)
    # ------------------------------------------------------------------
    @projection_only
    def swap_delta(self, pin_a: Pin, pin_b: Pin) -> float:
        """HPWL change of exchanging the two pins' drivers (negative =
        shorter), priced arithmetically against the cached extrema."""
        self.refresh()
        network = self.network
        net_a = network.fanin_net(pin_a)
        net_b = network.fanin_net(pin_b)
        if net_a == net_b:
            return 0.0
        index_a = self._ids[net_a]
        index_b = self._ids[net_b]
        ax, ay = self._loc[pin_a.gate]
        bx, by = self._loc[pin_b.gate]
        after_a = self._after(index_a, ax, ay, bx, by)
        after_b = self._after(index_b, bx, by, ax, ay)
        self.candidates_scored += 1
        return (after_a + after_b) - (
            self._hpwl[index_a] + self._hpwl[index_b]
        )

    def _after(
        self, index: int,
        removed_x: float, removed_y: float,
        added_x: float, added_y: float,
    ) -> float:
        """HPWL of a net after removing one sink and adding another."""
        row = self._ext[index]
        width = _axis_after(
            row[0], row[1], row[2], row[3], row[4], row[5],
            removed_x, added_x,
        )
        height = _axis_after(
            row[6], row[7], row[8], row[9], row[10], row[11],
            removed_y, added_y,
        )
        return width + height

    @projection_only
    def score_swaps(self, pairs: list[tuple[Pin, Pin]]) -> list[float]:
        """Deltas for a batch of candidate pin swaps, one vectorized pass.

        Same-net pairs score exactly 0.0.  Results are bit-identical to
        calling :meth:`swap_delta` per pair (selection arithmetic only).
        """
        self.refresh()
        self.batches_scored += 1
        self.candidates_scored += len(pairs)
        if _np is None or len(pairs) < 2:
            return [self._scalar_delta(pin_a, pin_b) for pin_a, pin_b in pairs]
        network = self.network
        ids = self._ids
        loc = self._loc
        count = len(pairs)
        index_a = _np.empty(count, dtype=_np.int64)
        index_b = _np.empty(count, dtype=_np.int64)
        ax = _np.empty(count)
        ay = _np.empty(count)
        bx = _np.empty(count)
        by = _np.empty(count)
        for k, (pin_a, pin_b) in enumerate(pairs):
            index_a[k] = ids[network.fanin_net(pin_a)]
            index_b[k] = ids[network.fanin_net(pin_b)]
            ax[k], ay[k] = loc[pin_a.gate]
            bx[k], by[k] = loc[pin_b.gate]
        if self._ext_np is None:
            self._ext_np = _np.asarray(self._ext)
            self._hpwl_np = _np.asarray(self._hpwl)
        ext = self._ext_np
        hpwl = self._hpwl_np
        rows_a = ext[index_a]
        rows_b = ext[index_b]
        after_a = _after_rows(rows_a, ax, ay, bx, by)
        after_b = _after_rows(rows_b, bx, by, ax, ay)
        delta = (after_a + after_b) - (hpwl[index_a] + hpwl[index_b])
        delta[index_a == index_b] = 0.0
        return [float(value) for value in delta]

    def _scalar_delta(self, pin_a: Pin, pin_b: Pin) -> float:
        network = self.network
        net_a = network.fanin_net(pin_a)
        net_b = network.fanin_net(pin_b)
        if net_a == net_b:
            return 0.0
        index_a = self._ids[net_a]
        index_b = self._ids[net_b]
        ax, ay = self._loc[pin_a.gate]
        bx, by = self._loc[pin_b.gate]
        return (
            self._after(index_a, ax, ay, bx, by)
            + self._after(index_b, bx, by, ax, ay)
        ) - (self._hpwl[index_a] + self._hpwl[index_b])

    @projection_only
    def rebind_delta(self, bindings: list[tuple[Pin, str]]) -> float:
        """HPWL change of a batched pin-rebinding (cross-swap pricing).

        *bindings* maps pins to the nets they would be reconnected to.
        Affected nets' boxes are recomputed over the edited terminal
        multisets — still footprint-only: no mutation, no events.
        """
        self.refresh()
        network = self.network
        loc = self._loc
        moved: dict[Pin, str] = {}
        affected: set[int] = set()
        for pin, new_net in bindings:
            old_net = network.fanin_net(pin)
            if old_net == new_net:
                continue
            moved[pin] = new_net
            affected.add(self._ids[old_net])
            affected.add(self._ids[new_net])
        self.candidates_scored += 1
        delta = 0.0
        for index in sorted(affected):
            net = self._names[index]
            points = list(self._fixed[index])
            for pin in self._sink_pins[index]:
                if pin not in moved:
                    points.append(loc[pin.gate])
            for pin, new_net in moved.items():
                if new_net == net:
                    points.append(loc[pin.gate])
            if len(points) < 2:
                new_hpwl = 0.0
            else:
                xs = [point[0] for point in points]
                ys = [point[1] for point in points]
                new_hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
            delta += new_hpwl - self._hpwl[index]
        return delta

    def footprint_nets(self, pins: list[Pin]) -> set[str]:
        """Current driving nets of the given pins (conflict footprints)."""
        network = self.network
        return {network.fanin_net(pin) for pin in pins}


def _extrema_row(points: list[tuple[float, float]]) -> list[float]:
    """[min1, min2, cnt_min, max1, max2, cnt_max] for x then y."""
    row: list[float] = []
    for axis in (0, 1):
        min1 = min2 = float("inf")
        max1 = max2 = float("-inf")
        cnt_min = cnt_max = 0
        for point in points:
            value = point[axis]
            if value < min1:
                min2 = min1
                min1 = value
                cnt_min = 1
            elif value == min1:
                cnt_min += 1
                min2 = value
            elif value < min2:
                min2 = value
            if value > max1:
                max2 = max1
                max1 = value
                cnt_max = 1
            elif value == max1:
                cnt_max += 1
                max2 = value
            elif value > max2:
                max2 = value
        if not points:
            min1 = min2 = max1 = max2 = 0.0
        elif len(points) == 1:
            min2 = min1
            max2 = max1
        row.extend([min1, min2, float(cnt_min), max1, max2, float(cnt_max)])
    return row


def _axis_after(
    min1: float, min2: float, cnt_min: float,
    max1: float, max2: float, cnt_max: float,
    removed: float, added: float,
) -> float:
    """Exact axis extent after removing one terminal and adding another."""
    effective_max = max2 if (removed == max1 and cnt_max == 1) else max1
    effective_min = min2 if (removed == min1 and cnt_min == 1) else min1
    new_max = added if added > effective_max else effective_max
    new_min = added if added < effective_min else effective_min
    return new_max - new_min


def _after_rows(rows, removed_x, removed_y, added_x, added_y):
    """Vectorized :func:`_axis_after` over gathered extrema rows."""
    effective_max_x = _np.where(
        (removed_x == rows[:, 3]) & (rows[:, 5] == 1.0),
        rows[:, 4], rows[:, 3],
    )
    effective_min_x = _np.where(
        (removed_x == rows[:, 0]) & (rows[:, 2] == 1.0),
        rows[:, 1], rows[:, 0],
    )
    effective_max_y = _np.where(
        (removed_y == rows[:, 9]) & (rows[:, 11] == 1.0),
        rows[:, 10], rows[:, 9],
    )
    effective_min_y = _np.where(
        (removed_y == rows[:, 6]) & (rows[:, 8] == 1.0),
        rows[:, 7], rows[:, 6],
    )
    width = _np.maximum(effective_max_x, added_x) - _np.minimum(
        effective_min_x, added_x
    )
    height = _np.maximum(effective_max_y, added_y) - _np.minimum(
        effective_min_y, added_y
    )
    return width + height
