"""Placement model: cell coordinates, pads, wirelength metrics.

The rewiring engine consumes exactly what the paper extracts from its
commercial placer: a coordinate for every cell plus pad locations for
the primary inputs and outputs.  All distances are Manhattan, in um.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..library.cells import Library, ROW_HEIGHT_UM
from ..network.netlist import Network


@dataclass
class Placement:
    """Cell and pad coordinates over a rectangular die."""

    die_width: float
    die_height: float
    locations: dict[str, tuple[float, float]] = field(default_factory=dict)
    input_pads: dict[str, tuple[float, float]] = field(default_factory=dict)
    output_pads: dict[int, tuple[float, float]] = field(default_factory=dict)

    def location(self, gate_name: str) -> tuple[float, float]:
        """Coordinate of a placed gate."""
        return self.locations[gate_name]

    def set_location(self, gate_name: str, x: float, y: float) -> None:
        """Place or move a gate."""
        self.locations[gate_name] = (x, y)

    def source_location(
        self, network: Network, net: str
    ) -> tuple[float, float]:
        """Location of the net's driver (gate or input pad)."""
        if network.is_input(net):
            return self.input_pads[net]
        return self.locations[net]

    def sink_locations(
        self, network: Network, net: str
    ) -> list[tuple[float, float]]:
        """Locations of every sink of *net*: fanout pins, then PO pads."""
        sinks = [
            self.locations[pin.gate] for pin in network.fanout(net)
        ]
        for index, output in enumerate(network.outputs):
            if output == net:
                sinks.append(self.output_pads[index])
        return sinks

    def ensure_covered(self, network: Network) -> None:
        """Place any unplaced gate at its first sink (or die center).

        Rewiring may create inverters after placement; the paper's model
        is that these nestle next to the gate they feed, perturbing
        nothing.  Called before timing analysis.
        """
        center = (self.die_width / 2.0, self.die_height / 2.0)
        for name in network.topo_order():
            if name in self.locations:
                continue
            sinks = [
                self.locations[pin.gate]
                for pin in network.fanout(name)
                if pin.gate in self.locations
            ]
            self.locations[name] = sinks[0] if sinks else center

    def copy(self) -> "Placement":
        """Deep copy (cheap: coordinate tuples are immutable)."""
        return Placement(
            die_width=self.die_width,
            die_height=self.die_height,
            locations=dict(self.locations),
            input_pads=dict(self.input_pads),
            output_pads=dict(self.output_pads),
        )


def manhattan(
    a: tuple[float, float], b: tuple[float, float]
) -> float:
    """Manhattan distance between two points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def output_pad_points(
    network: Network, placement: Placement
) -> dict[str, list[tuple[float, float]]]:
    """Output-pad coordinates grouped by driven net.

    One pass over the output list, so whole-netlist consumers (the
    wirelength engine's flattening) avoid the per-net scan that
    :meth:`Placement.sink_locations` performs; a net listed as a
    primary output more than once contributes one pad per listing.
    """
    pads: dict[str, list[tuple[float, float]]] = {}
    for index, output in enumerate(network.outputs):
        pads.setdefault(output, []).append(placement.output_pads[index])
    return pads


def net_terminals(
    network: Network, placement: Placement, net: str
) -> list[tuple[float, float]]:
    """All terminal coordinates of a net: source first, then sinks."""
    return [
        placement.source_location(network, net)
    ] + placement.sink_locations(network, net)


def net_hpwl(network: Network, placement: Placement, net: str) -> float:
    """Half-perimeter wirelength of one net."""
    terminals = net_terminals(network, placement, net)
    if len(terminals) < 2:
        return 0.0
    xs = [t[0] for t in terminals]
    ys = [t[1] for t in terminals]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def total_hpwl(network: Network, placement: Placement) -> float:
    """Total half-perimeter wirelength over all nets with sinks."""
    total = 0.0
    for net in network.nets():
        if network.fanout_degree(net):
            total += net_hpwl(network, placement, net)
    return total


def die_for(
    network: Network, library: Library, utilization: float = 0.60
) -> tuple[float, float]:
    """Square die sized so cell area fills *utilization* of it."""
    area = 0.0
    for gate in network.gates():
        if gate.cell is not None:
            area += library.cell(gate.cell).area
    area = max(area, 4 * ROW_HEIGHT_UM * ROW_HEIGHT_UM)
    side = (area / max(utilization, 0.05)) ** 0.5
    rows = max(2, round(side / ROW_HEIGHT_UM))
    return side, rows * ROW_HEIGHT_UM


def grid_placement(network: Network, spacing: float = 1.0) -> Placement:
    """Row-major grid placement in netlist insertion order.

    The cheap deterministic stand-in for the annealer on workloads too
    large to anneal (the 1e5+-gate scaling benchmarks): gates land on a
    near-square grid in insertion order, so generators that emit
    spatially coherent clusters (e.g. ``tiled_control``) stay coherent
    on the die.  Input pads line the left edge, output pads the right.
    """
    import math

    names = [gate.name for gate in network.gates()]
    cols = max(1, math.isqrt(max(1, len(names) - 1)) + 1)
    rows = max(1, (len(names) + cols - 1) // cols)
    placement = Placement(
        die_width=(cols + 1) * spacing,
        die_height=(rows + 1) * spacing,
    )
    for index, name in enumerate(names):
        placement.locations[name] = (
            (index % cols + 1) * spacing,
            (index // cols + 1) * spacing,
        )
    inputs = list(network.inputs)
    for index, net in enumerate(inputs):
        y = (index + 1) * placement.die_height / (len(inputs) + 1)
        placement.input_pads[net] = (0.0, y)
    outputs = list(network.outputs)
    for index in range(len(outputs)):
        y = (index + 1) * placement.die_height / (len(outputs) + 1)
        placement.output_pads[index] = (placement.die_width, y)
    return placement


def perturbation(
    before: Placement, after: Placement
) -> dict[str, float]:
    """How much a placement changed (audit for the paper's §5 claim).

    Reports the number of moved cells, of added cells (post-placement
    inverters) and the total displacement of moved cells.
    """
    moved = 0
    displacement = 0.0
    for name, loc in before.locations.items():
        new = after.locations.get(name)
        if new is None:
            continue
        if new != loc:
            moved += 1
            displacement += manhattan(loc, new)
    added = len(set(after.locations) - set(before.locations))
    removed = len(set(before.locations) - set(after.locations))
    return {
        "moved_cells": float(moved),
        "added_cells": float(added),
        "removed_cells": float(removed),
        "total_displacement": displacement,
    }
