"""Placement-coherent region carving for partitioned rewiring.

Divide-and-conquer at 1e5-1e6 gates needs bounded-size rewiring scopes
whose boundaries are *frozen*: a move confined to one region can then
be priced, verified and committed without ever looking at another
region.  This module carves those scopes by recursive Fiduccia-
Mattheyses bisection (:mod:`repro.place.fm`) seeded from placement
geometry: every split starts from the weighted median along the longer
bounding-box axis of the current cell subset, so FM refines a
spatially coherent cut instead of discovering one from a random
partition — regions end up both min-cut *and* compact on the die,
which is what keeps their boundary-net count (the frozen, untouchable
fraction) small.

The net contract, enforced by :func:`RegionSet.classify` and relied on
by :mod:`repro.rapids.partition`:

* a net is **internal** to region ``r`` iff *every* terminal gate —
  its driver (when gate-driven) and all fanout-pin gates — lives in
  ``r``; ``net_region`` maps exactly these nets;
* every other net (including every primary input feeding two regions)
  is a **boundary** net: absent from ``net_region``, listed in
  ``boundary_nets``, and never rebound by partitioned rewiring.

Internality is *invariant under intra-region rewiring*: a leaf swap or
cross exchange between two nets internal to ``r`` only moves sink pins
whose gates are already in ``r``, so no rewiring move ever changes
which side of the contract a net is on — the carve is computed once
per run and stays truthful for its whole lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.netlist import Network
from .fm import bipartition
from .placement import Placement

#: Opt-in to the determinism lint (rule D of ``python -m tools.lint``):
#: carve order, geometric medians and tie-breaks must never follow
#: set-iteration (= PYTHONHASHSEED) order.
__deterministic__ = True


@dataclass(frozen=True)
class Region:
    """One carved rewiring scope: a fixed, ordered gate subset."""

    index: int
    gates: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.gates)


@dataclass
class RegionSet:
    """A complete carve: every gate in exactly one region."""

    regions: list[Region]
    region_of: dict[str, int]       # gate name -> region index
    net_region: dict[str, int]      # *internal* net -> region index
    boundary_nets: frozenset[str]   # nets spanning >= 2 regions (frozen)
    fm_passes: int                  # total FM refinement passes spent

    @property
    def max_region_gates(self) -> int:
        return max((len(r) for r in self.regions), default=0)

    def stats(self) -> dict[str, float]:
        sizes = [len(r) for r in self.regions]
        return {
            "regions": float(len(self.regions)),
            "max_region_gates": float(max(sizes, default=0)),
            "min_region_gates": float(min(sizes, default=0)),
            "boundary_nets": float(len(self.boundary_nets)),
            "fm_passes": float(self.fm_passes),
        }


def _net_terminal_gates(network: Network) -> list[tuple[str, list[str]]]:
    """(net, terminal gate names) in deterministic net order.

    The driver gate (for gate-driven nets the net name *is* the driver)
    plus every fanout pin's gate, deduplicated preserving first-seen
    order — multi-pin connections to one gate count once.
    """
    terminals: list[tuple[str, list[str]]] = []
    for net in network.nets():
        gates: dict[str, None] = {}
        if not network.is_input(net):
            gates[net] = None
        for pin in network.fanout(net):
            gates[pin.gate] = None
        terminals.append((net, list(gates)))
    return terminals


def _geometric_initial(
    members: list[int],
    locations: list[tuple[float, float]],
    names: list[str],
) -> list[int]:
    """Median split along the longer spread axis; 0/1 per member.

    Members are ordered by coordinate with the gate name as tie-break
    (coordinates collide on gridded placements; names never do), then
    the first half by count goes to side 0 — both sides are non-empty
    whenever there are >= 2 members.
    """
    xs = [locations[cell][0] for cell in members]
    ys = [locations[cell][1] for cell in members]
    axis = 0 if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else 1
    order = sorted(
        range(len(members)),
        key=lambda local: (locations[members[local]][axis],
                           names[members[local]]),
    )
    side = [0] * len(members)
    for rank, local in enumerate(order):
        if rank >= (len(members) + 1) // 2:
            side[local] = 1
    return side


def carve_regions(
    network: Network,
    placement: Placement,
    max_gates: int,
    balance: float = 0.55,
    refine_passes: int = 3,
    seed: int = 0,
) -> RegionSet:
    """Recursively bisect the placed netlist into bounded regions.

    Every region holds at most *max_gates* gates.  Splits are seeded
    geometrically (see :func:`_geometric_initial`) and refined with
    *refine_passes* FM passes against the hypergraph induced on the
    subset; a refinement that degenerates to an empty side falls back
    to the geometric seed, so recursion always terminates.  The carve
    is ``PYTHONHASHSEED``-independent: gate order is network insertion
    order, net order is :meth:`Network.nets` order, and all tie-breaks
    are by name.
    """
    if max_gates < 1:
        raise ValueError(f"max_gates must be >= 1, got {max_gates}")
    names = list(network.gate_names())
    index_of = {name: i for i, name in enumerate(names)}
    center = (placement.die_width / 2.0, placement.die_height / 2.0)
    locations = [
        placement.locations.get(name, center) for name in names
    ]
    terminals = _net_terminal_gates(network)
    # hyperedges over gate indices (pads contribute no vertex)
    edges: list[list[int]] = []
    for _, gates in terminals:
        if len(gates) >= 2:
            edges.append([index_of[g] for g in gates])
    cell_edges: list[list[int]] = [[] for _ in names]
    for edge_id, edge in enumerate(edges):
        for cell in edge:
            cell_edges[cell].append(edge_id)

    regions: list[Region] = []
    fm_passes = 0
    stack: list[list[int]] = [list(range(len(names)))]
    while stack:
        members = stack.pop()
        if len(members) <= max_gates:
            regions.append(Region(
                index=len(regions),
                gates=tuple(names[cell] for cell in members),
            ))
            continue
        member_set = set(members)
        local = {cell: i for i, cell in enumerate(members)}
        # induced hyperedges: every edge with >= 2 endpoints inside,
        # visited in deterministic edge order via the member adjacency
        seen_edges: set[int] = set()
        local_edges: list[list[int]] = []
        for cell in members:
            for edge_id in cell_edges[cell]:
                if edge_id in seen_edges:
                    continue
                seen_edges.add(edge_id)
                inside = [
                    local[other] for other in edges[edge_id]
                    if other in member_set
                ]
                if len(inside) >= 2:
                    local_edges.append(inside)
        initial = _geometric_initial(members, locations, names)
        result = bipartition(
            len(members), local_edges, balance=balance,
            max_passes=refine_passes, seed=seed, initial=initial,
        )
        fm_passes += result.passes
        side = result.side
        if not (0 < sum(side) < len(members)):
            side = initial  # refinement degenerated: keep the median
        side0 = [cell for i, cell in enumerate(members) if side[i] == 0]
        side1 = [cell for i, cell in enumerate(members) if side[i] == 1]
        # LIFO stack: push side1 first so side0 (geometrically lower
        # coordinates) is carved first — region indices sweep the die
        stack.append(side1)
        stack.append(side0)

    region_of = {
        name: region.index
        for region in regions
        for name in region.gates
    }
    net_region: dict[str, int] = {}
    boundary: list[str] = []
    for net, gates in terminals:
        if not gates:
            continue  # dangling primary input: no terminals, no moves
        owners = {region_of[g] for g in gates}
        if len(owners) == 1:
            net_region[net] = region_of[gates[0]]
        else:
            boundary.append(net)
    return RegionSet(
        regions=regions,
        region_of=region_of,
        net_region=net_region,
        boundary_nets=frozenset(boundary),
        fm_passes=fm_passes,
    )
