"""Probabilistic routing-congestion estimation.

Section 5 claims rewiring "can also relieve congestion": exchanging
symmetric signals shortens wires, which lowers routing demand over the
hot spots of the die.  With no router in the flow, congestion is
estimated the standard probabilistic way: every net spreads one unit of
horizontal and vertical routing demand uniformly over its bounding
box, accumulated on a grid of bins.

``congestion_map`` returns the bin matrix; ``congestion_stats``
summarizes it (peak and average demand, overflow count against a
uniform capacity) so optimizers and benches can compare before/after.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.netlist import Network
from .placement import Placement, net_terminals


@dataclass
class CongestionStats:
    """Summary of a congestion map."""

    peak: float
    average: float
    overflow_bins: int
    total_bins: int

    @property
    def overflow_fraction(self) -> float:
        if self.total_bins == 0:
            return 0.0
        return self.overflow_bins / self.total_bins


def congestion_map(
    network: Network,
    placement: Placement,
    bins: int = 16,
) -> list[list[float]]:
    """Accumulate probabilistic routing demand on a bins x bins grid.

    Each net adds ``(width + height) / area``-normalized demand to the
    bins its bounding box covers — the uniform-probability model used
    by early global-routing estimators.
    """
    grid = [[0.0] * bins for _ in range(bins)]
    width = max(placement.die_width, 1e-9)
    height = max(placement.die_height, 1e-9)
    for net in network.nets():
        if not network.fanout_degree(net):
            continue
        terminals = net_terminals(network, placement, net)
        xs = [t[0] for t in terminals]
        ys = [t[1] for t in terminals]
        lo_x = max(0, min(int(min(xs) / width * bins), bins - 1))
        hi_x = max(0, min(int(max(xs) / width * bins), bins - 1))
        lo_y = max(0, min(int(min(ys) / height * bins), bins - 1))
        hi_y = max(0, min(int(max(ys) / height * bins), bins - 1))
        span = (hi_x - lo_x + 1) * (hi_y - lo_y + 1)
        demand = ((hi_x - lo_x + 1) + (hi_y - lo_y + 1)) / span
        for gx in range(lo_x, hi_x + 1):
            for gy in range(lo_y, hi_y + 1):
                grid[gy][gx] += demand
    return grid


def congestion_stats(
    network: Network,
    placement: Placement,
    bins: int = 16,
    capacity: float | None = None,
) -> CongestionStats:
    """Peak / average / overflow summary of the congestion map.

    *capacity* defaults to twice the average demand — a relative
    threshold, since the abstract model has no track counts.
    """
    grid = congestion_map(network, placement, bins)
    flat = [value for row in grid for value in row]
    total = len(flat)
    average = sum(flat) / total if total else 0.0
    peak = max(flat, default=0.0)
    threshold = capacity if capacity is not None else 2.0 * average
    overflow = sum(1 for value in flat if value > threshold)
    return CongestionStats(
        peak=peak,
        average=average,
        overflow_bins=overflow,
        total_bins=total,
    )
