"""Fiduccia-Mattheyses min-cut bipartitioning.

The placement substrate uses recursive FM bisection, the classic
workhorse behind the timing-driven placers of the paper's era.  This is
a faithful implementation with gain buckets, single-cell moves, balance
constraints and multi-pass refinement; it operates on a hypergraph
given as ``nets: list[list[int]]`` over ``num_cells`` vertices with
per-cell weights.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass


@dataclass
class FmResult:
    """Outcome of a bipartitioning run."""

    side: list[int]          # 0 or 1 per cell
    cut: int                 # number of cut nets
    passes: int              # refinement passes executed


class _GainBuckets:
    """Bucket array keyed by gain with O(1) updates (the FM structure).

    Buckets are lazy min-heaps of cell indices: ``gain`` is the source
    of truth, entries whose recorded gain no longer matches their
    bucket's level are stale and skipped on pop.  ``pop_best`` returns
    the *smallest* allowed cell index at the highest populated level —
    the same deterministic (hash-seed-independent) tie-break as a full
    ``min()`` scan of a set bucket, without the O(bucket) rescan per
    pop that made large flat gain distributions quadratic.
    """

    def __init__(self, max_gain: int) -> None:
        self.max_gain = max_gain
        self.buckets: list[list[int]] = [
            [] for _ in range(2 * max_gain + 1)
        ]
        self.gain: dict[int, int] = {}
        self.best = -max_gain - 1

    def insert(self, cell: int, gain: int) -> None:
        self.gain[cell] = gain
        heapq.heappush(self.buckets[gain + self.max_gain], cell)
        if gain > self.best:
            self.best = gain

    def remove(self, cell: int) -> None:
        # the bucket entry goes stale and is skipped on a later pop
        self.gain.pop(cell)

    def update(self, cell: int, delta: int) -> None:
        if cell not in self.gain:
            return
        gain = self.gain[cell] + delta
        self.gain[cell] = gain
        heapq.heappush(self.buckets[gain + self.max_gain], cell)
        if gain > self.best:
            self.best = gain

    def pop_best(self, allowed) -> int | None:
        """Highest-gain cell satisfying *allowed*; removes and returns it."""
        level = min(self.best, self.max_gain)
        while level >= -self.max_gain:
            heap = self.buckets[level + self.max_gain]
            skipped: list[int] = []
            found = None
            while heap:
                cell = heap[0]
                if self.gain.get(cell) != level:
                    heapq.heappop(heap)  # stale entry
                    continue
                cell = heapq.heappop(heap)
                if allowed(cell):
                    found = cell
                    break
                skipped.append(cell)
            for cell in skipped:
                heapq.heappush(heap, cell)
            if found is not None:
                self.remove(found)
                self.best = level
                return found
            level -= 1
        return None


def bipartition(
    num_cells: int,
    nets: list[list[int]],
    weights: list[float] | None = None,
    balance: float = 0.55,
    max_passes: int = 8,
    seed: int = 0,
    initial: list[int] | None = None,
) -> FmResult:
    """Partition cells into two sides minimizing the net cut.

    *balance* bounds either side's weight fraction.  *initial* seeds the
    partition (random when omitted).  Returns the best partition seen
    over all passes.
    """
    rng = random.Random(seed)
    if weights is None:
        weights = [1.0] * num_cells
    total_weight = sum(weights) or 1.0
    # classic FM balance: a side may exceed the ratio bound by one cell,
    # otherwise no move is ever legal from a perfectly even split
    max_side = max(
        balance * total_weight,
        total_weight / 2.0 + max(weights, default=1.0),
    )
    if initial is None:
        side = [0] * num_cells
        order = list(range(num_cells))
        rng.shuffle(order)
        acc = 0.0
        for cell in order:
            if acc + weights[cell] <= total_weight / 2:
                acc += weights[cell]
            else:
                side[cell] = 1
    else:
        side = list(initial)
    cell_nets: list[list[int]] = [[] for _ in range(num_cells)]
    for net_id, net in enumerate(nets):
        for cell in net:
            cell_nets[cell].append(net_id)
    max_degree = max((len(n) for n in cell_nets), default=1)

    best_side = list(side)
    best_cut = _cut_size(nets, side)
    passes = 0
    for _ in range(max_passes):
        passes += 1
        improved = _fm_pass(
            num_cells, nets, cell_nets, weights, side, max_side, max_degree
        )
        cut = _cut_size(nets, side)
        if cut < best_cut:
            best_cut = cut
            best_side = list(side)
        if not improved:
            break
    return FmResult(side=best_side, cut=best_cut, passes=passes)


def _cut_size(nets: list[list[int]], side: list[int]) -> int:
    cut = 0
    for net in nets:
        if not net:
            continue
        first = side[net[0]]
        if any(side[cell] != first for cell in net[1:]):
            cut += 1
    return cut


def _fm_pass(
    num_cells: int,
    nets: list[list[int]],
    cell_nets: list[list[int]],
    weights: list[float],
    side: list[int],
    max_side: float,
    max_degree: int,
) -> bool:
    """One FM pass of tentative moves; commits the best prefix.

    Returns True when the pass improved the cut.
    """
    counts = [[0, 0] for _ in nets]
    for net_id, net in enumerate(nets):
        for cell in net:
            counts[net_id][side[cell]] += 1
    buckets = _GainBuckets(max_degree)
    for cell in range(num_cells):
        buckets.insert(cell, _initial_gain(cell, side, cell_nets, nets, counts))
    side_weight = [0.0, 0.0]
    for cell in range(num_cells):
        side_weight[side[cell]] += weights[cell]

    moves: list[int] = []
    gains: list[int] = []
    locked: set[int] = set()

    def allowed(cell: int) -> bool:
        target = 1 - side[cell]
        return side_weight[target] + weights[cell] <= max_side

    while True:
        cell = buckets.pop_best(allowed)
        if cell is None:
            break
        gains.append(buckets_gain := _initial_gain(
            cell, side, cell_nets, nets, counts
        ))
        origin = side[cell]
        target = 1 - origin
        # update gains of neighbours per FM rules before flipping counts
        for net_id in cell_nets[cell]:
            net = nets[net_id]
            if counts[net_id][target] == 0:
                for other in net:
                    if other != cell and other not in locked:
                        buckets.update(other, +1)
            elif counts[net_id][target] == 1:
                for other in net:
                    if other != cell and other not in locked and (
                        side[other] == target
                    ):
                        buckets.update(other, -1)
            counts[net_id][origin] -= 1
            counts[net_id][target] += 1
            if counts[net_id][origin] == 0:
                for other in net:
                    if other != cell and other not in locked:
                        buckets.update(other, -1)
            elif counts[net_id][origin] == 1:
                for other in net:
                    if other != cell and other not in locked and (
                        side[other] == origin
                    ):
                        buckets.update(other, +1)
        side_weight[origin] -= weights[cell]
        side_weight[target] += weights[cell]
        side[cell] = target
        locked.add(cell)
        moves.append(cell)

    # keep the best prefix of the move sequence
    best_prefix, best_total = 0, 0
    total = 0
    for index, gain in enumerate(gains):
        total += gain
        if total > best_total:
            best_total = total
            best_prefix = index + 1
    for cell in moves[best_prefix:]:
        side[cell] = 1 - side[cell]
    return best_total > 0


def _initial_gain(
    cell: int,
    side: list[int],
    cell_nets: list[list[int]],
    nets: list[list[int]],
    counts: list[list[int]],
) -> int:
    origin = side[cell]
    target = 1 - origin
    gain = 0
    for net_id in cell_nets[cell]:
        if counts[net_id][origin] == 1:
            gain += 1
        if counts[net_id][target] == 0:
            gain -= 1
    return gain
