"""Wirelength-driven placer: recursive FM bisection plus legalization.

Substitute for the paper's "commercial timing-driven placer".  The
pipeline is the classic late-90s recipe:

1. recursive min-cut bisection of the cell hypergraph (FM refinement at
   every level, alternating cut directions) assigns every cell a die
   region;
2. region-ordered legalization packs cells into standard-cell rows;
3. an optional low-temperature annealing pass polishes HPWL with
   pairwise swaps (seeded, deterministic).

Net weights bias the cut toward keeping timing-critical nets short,
which is all the "timing-driven" part of a min-cut placer amounts to.
"""

from __future__ import annotations

import math
import random

from ..library.cells import Library, ROW_HEIGHT_UM
from ..network.netlist import Network
from .fm import bipartition
from .placement import Placement, die_for, net_hpwl, total_hpwl

#: Opt-in to the determinism lint (rule D of ``python -m tools.lint``):
#: this module's float accumulations and tie-breaks must never follow
#: set-iteration (= PYTHONHASHSEED) order.
__deterministic__ = True


def place(
    network: Network,
    library: Library,
    seed: int = 0,
    net_weights: dict[str, float] | None = None,
    anneal_moves: int = 0,
    utilization: float = 0.60,
) -> Placement:
    """Place a mapped network; returns coordinates for every gate.

    ``anneal_moves`` > 0 enables the annealing polish with that move
    budget (useful for small designs and tests; the Table 1 flow leaves
    it off for speed, as bisection quality suffices for delay trends).
    """
    die_width, die_height = die_for(network, library, utilization)
    placement = Placement(die_width=die_width, die_height=die_height)
    _place_pads(network, placement)
    names = list(network.gate_names())
    if not names:
        return placement
    regions = _recursive_bisect(
        network, library, names, seed, net_weights
    )
    _legalize(network, library, placement, names, regions)
    if anneal_moves > 0:
        _anneal(network, placement, seed=seed, moves=anneal_moves)
    return placement


def _place_pads(network: Network, placement: Placement) -> None:
    """Input pads on the left/top edge, output pads on the right edge."""
    width, height = placement.die_width, placement.die_height
    num_inputs = max(len(network.inputs), 1)
    for index, net in enumerate(network.inputs):
        fraction = (index + 0.5) / num_inputs
        if fraction < 0.75:
            placement.input_pads[net] = (0.0, height * fraction / 0.75)
        else:
            placement.input_pads[net] = (
                width * (fraction - 0.75) / 0.25, height,
            )
    num_outputs = max(len(network.outputs), 1)
    for index in range(len(network.outputs)):
        fraction = (index + 0.5) / num_outputs
        placement.output_pads[index] = (width, height * fraction)


def _recursive_bisect(
    network: Network,
    library: Library,
    names: list[str],
    seed: int,
    net_weights: dict[str, float] | None,
) -> dict[str, tuple[float, float]]:
    """Assign every gate a normalized (x, y) region center in [0, 1]^2."""
    index_of = {name: i for i, name in enumerate(names)}
    weights = []
    for name in names:
        gate = network.gate(name)
        if gate.cell is not None:
            weights.append(library.cell(gate.cell).area)
        else:
            weights.append(ROW_HEIGHT_UM)
    hyperedges: list[list[int]] = []
    edge_weight: list[float] = []
    for net in network.nets():
        members = set()
        if net in index_of:
            members.add(index_of[net])
        for pin in network.fanout(net):
            members.add(index_of[pin.gate])
        if len(members) > 1:
            hyperedges.append(sorted(members))
            weight = (net_weights or {}).get(net, 1.0)
            edge_weight.append(weight)
    # weighted nets are replicated (integer weight) so FM favours them
    weighted_edges: list[list[int]] = []
    for edge, weight in zip(hyperedges, edge_weight):
        copies = max(1, min(4, round(weight)))
        weighted_edges.extend([edge] * copies)

    regions: dict[str, tuple[float, float]] = {}

    def split(
        cell_ids: list[int],
        x0: float, y0: float, x1: float, y1: float,
        vertical: bool,
        level: int,
    ) -> None:
        if len(cell_ids) <= 4 or level > 24:
            for rank, cell_id in enumerate(sorted(cell_ids)):
                offset = (rank + 0.5) / max(len(cell_ids), 1)
                regions[names[cell_id]] = (
                    x0 + (x1 - x0) * offset,
                    (y0 + y1) / 2.0,
                )
            return
        id_set = set(cell_ids)
        local_index = {cell: i for i, cell in enumerate(cell_ids)}
        local_nets = []
        for edge in weighted_edges:
            local = [local_index[c] for c in edge if c in id_set]
            if len(local) > 1:
                local_nets.append(local)
        local_weights = [weights[c] for c in cell_ids]
        result = bipartition(
            len(cell_ids), local_nets, local_weights,
            seed=seed + level * 7919 + len(cell_ids),
        )
        left = [c for c, s in zip(cell_ids, result.side) if s == 0]
        right = [c for c, s in zip(cell_ids, result.side) if s == 1]
        if not left or not right:
            half = len(cell_ids) // 2
            left, right = cell_ids[:half], cell_ids[half:]
        if vertical:
            xm = (x0 + x1) / 2.0
            split(left, x0, y0, xm, y1, False, level + 1)
            split(right, xm, y0, x1, y1, False, level + 1)
        else:
            ym = (y0 + y1) / 2.0
            split(left, x0, y0, x1, ym, True, level + 1)
            split(right, x0, ym, x1, y1, True, level + 1)

    split(list(range(len(names))), 0.0, 0.0, 1.0, 1.0, True, 0)
    return regions


def _legalize(
    network: Network,
    library: Library,
    placement: Placement,
    names: list[str],
    regions: dict[str, tuple[float, float]],
) -> None:
    """Pack cells into rows following their region assignment."""
    num_rows = max(2, int(placement.die_height / ROW_HEIGHT_UM))
    rows: list[list[str]] = [[] for _ in range(num_rows)]
    for name in names:
        rx, ry = regions[name]
        row = min(num_rows - 1, int(ry * num_rows))
        rows[row].append(name)
    for row_index, row in enumerate(rows):
        row.sort(key=lambda name: regions[name][0])
        y = (row_index + 0.5) * ROW_HEIGHT_UM
        widths = []
        for name in row:
            gate = network.gate(name)
            if gate.cell is not None:
                widths.append(library.cell(gate.cell).width)
            else:
                widths.append(1.0)
        used = sum(widths)
        # pack tightly (small routing gap), centering the row block:
        # spreading cells across all whitespace would triple wirelength
        gap = min(
            2.0,
            max(0.0, (placement.die_width - used) / (len(row) + 1)),
        )
        block = used + gap * (len(row) + 1)
        x = max(0.0, (placement.die_width - block) / 2.0) + gap
        for name, width in zip(row, widths):
            # clamp overfull rows to the die; slight overlap is an
            # accepted abstraction (the timing model only needs
            # coordinates, not DRC-clean rows)
            center = min(x + width / 2.0, placement.die_width)
            placement.set_location(name, center, y)
            x += width + gap


def _anneal(
    network: Network,
    placement: Placement,
    seed: int,
    moves: int,
) -> None:
    """Low-temperature pairwise-swap polish of the legal placement."""
    rng = random.Random(seed)
    names = list(network.gate_names())
    if len(names) < 2:
        return
    nets_of: dict[str, list[str]] = {name: [name] for name in names}
    for gate in network.gates():
        for net in gate.fanins:
            nets_of[gate.name].append(net)
    current = total_hpwl(network, placement)
    temperature = max(current / max(len(names), 1), 1.0)
    for step in range(moves):
        a, b = rng.sample(names, 2)
        # sorted: HPWL deltas are float sums, and summing in set
        # iteration order would make accept/reject decisions (and the
        # whole trajectory) depend on PYTHONHASHSEED
        affected = sorted(
            net for net in set(nets_of[a]) | set(nets_of[b])
            if net in placement.locations or network.is_input(net)
        )
        before = sum(
            net_hpwl(network, placement, net) for net in affected
        )
        loc_a, loc_b = placement.locations[a], placement.locations[b]
        placement.locations[a], placement.locations[b] = loc_b, loc_a
        after = sum(net_hpwl(network, placement, net) for net in affected)
        delta = after - before
        if delta > 0 and rng.random() >= math.exp(
            -delta / max(temperature, 1e-9)
        ):
            placement.locations[a], placement.locations[b] = loc_a, loc_b
        temperature *= 0.999
    return
