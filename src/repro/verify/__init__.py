"""Functional verification substrate."""

from .equiv import (
    EquivalenceError,
    assert_equivalent,
    find_counterexample,
    networks_equivalent,
)

__all__ = [
    "EquivalenceError",
    "assert_equivalent",
    "find_counterexample",
    "networks_equivalent",
]
